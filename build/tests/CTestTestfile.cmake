# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/autograd_stress_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/bench_common_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_behaviors_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/conv_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_components_test[1]_include.cmake")
include("/root/repo/build/tests/core_gaia_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
include("/root/repo/build/tests/market_io_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_ops_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
