file(REMOVE_RECURSE
  "CMakeFiles/core_gaia_test.dir/core_gaia_test.cc.o"
  "CMakeFiles/core_gaia_test.dir/core_gaia_test.cc.o.d"
  "core_gaia_test"
  "core_gaia_test.pdb"
  "core_gaia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gaia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
