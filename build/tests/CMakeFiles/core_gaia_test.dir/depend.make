# Empty dependencies file for core_gaia_test.
# This may be replaced when dependencies are built.
