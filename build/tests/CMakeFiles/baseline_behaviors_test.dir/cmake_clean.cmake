file(REMOVE_RECURSE
  "CMakeFiles/baseline_behaviors_test.dir/baseline_behaviors_test.cc.o"
  "CMakeFiles/baseline_behaviors_test.dir/baseline_behaviors_test.cc.o.d"
  "baseline_behaviors_test"
  "baseline_behaviors_test.pdb"
  "baseline_behaviors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_behaviors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
