# Empty dependencies file for baseline_behaviors_test.
# This may be replaced when dependencies are built.
