# Empty compiler generated dependencies file for conv_property_test.
# This may be replaced when dependencies are built.
