file(REMOVE_RECURSE
  "CMakeFiles/gaia_cli.dir/gaia_cli.cc.o"
  "CMakeFiles/gaia_cli.dir/gaia_cli.cc.o.d"
  "gaia_cli"
  "gaia_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
