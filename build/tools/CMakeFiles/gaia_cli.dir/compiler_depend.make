# Empty compiler generated dependencies file for gaia_cli.
# This may be replaced when dependencies are built.
