file(REMOVE_RECURSE
  "libgaia_nn.a"
)
