# Empty compiler generated dependencies file for gaia_nn.
# This may be replaced when dependencies are built.
