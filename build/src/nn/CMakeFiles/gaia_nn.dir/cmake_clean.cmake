file(REMOVE_RECURSE
  "CMakeFiles/gaia_nn.dir/init.cc.o"
  "CMakeFiles/gaia_nn.dir/init.cc.o.d"
  "CMakeFiles/gaia_nn.dir/layers.cc.o"
  "CMakeFiles/gaia_nn.dir/layers.cc.o.d"
  "CMakeFiles/gaia_nn.dir/module.cc.o"
  "CMakeFiles/gaia_nn.dir/module.cc.o.d"
  "libgaia_nn.a"
  "libgaia_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
