file(REMOVE_RECURSE
  "CMakeFiles/gaia_serving.dir/model_server.cc.o"
  "CMakeFiles/gaia_serving.dir/model_server.cc.o.d"
  "CMakeFiles/gaia_serving.dir/monthly_scheduler.cc.o"
  "CMakeFiles/gaia_serving.dir/monthly_scheduler.cc.o.d"
  "libgaia_serving.a"
  "libgaia_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
