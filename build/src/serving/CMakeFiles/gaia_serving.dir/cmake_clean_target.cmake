file(REMOVE_RECURSE
  "libgaia_serving.a"
)
