# Empty compiler generated dependencies file for gaia_serving.
# This may be replaced when dependencies are built.
