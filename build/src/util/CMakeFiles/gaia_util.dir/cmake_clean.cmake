file(REMOVE_RECURSE
  "CMakeFiles/gaia_util.dir/check.cc.o"
  "CMakeFiles/gaia_util.dir/check.cc.o.d"
  "CMakeFiles/gaia_util.dir/logging.cc.o"
  "CMakeFiles/gaia_util.dir/logging.cc.o.d"
  "CMakeFiles/gaia_util.dir/rng.cc.o"
  "CMakeFiles/gaia_util.dir/rng.cc.o.d"
  "CMakeFiles/gaia_util.dir/status.cc.o"
  "CMakeFiles/gaia_util.dir/status.cc.o.d"
  "CMakeFiles/gaia_util.dir/table_printer.cc.o"
  "CMakeFiles/gaia_util.dir/table_printer.cc.o.d"
  "libgaia_util.a"
  "libgaia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
