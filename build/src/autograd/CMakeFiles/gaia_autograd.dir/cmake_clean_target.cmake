file(REMOVE_RECURSE
  "libgaia_autograd.a"
)
