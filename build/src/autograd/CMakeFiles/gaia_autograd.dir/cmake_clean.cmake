file(REMOVE_RECURSE
  "CMakeFiles/gaia_autograd.dir/grad_check.cc.o"
  "CMakeFiles/gaia_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/gaia_autograd.dir/ops.cc.o"
  "CMakeFiles/gaia_autograd.dir/ops.cc.o.d"
  "CMakeFiles/gaia_autograd.dir/variable.cc.o"
  "CMakeFiles/gaia_autograd.dir/variable.cc.o.d"
  "libgaia_autograd.a"
  "libgaia_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
