# Empty compiler generated dependencies file for gaia_autograd.
# This may be replaced when dependencies are built.
