file(REMOVE_RECURSE
  "CMakeFiles/gaia_core.dir/cau.cc.o"
  "CMakeFiles/gaia_core.dir/cau.cc.o.d"
  "CMakeFiles/gaia_core.dir/evaluator.cc.o"
  "CMakeFiles/gaia_core.dir/evaluator.cc.o.d"
  "CMakeFiles/gaia_core.dir/ffl.cc.o"
  "CMakeFiles/gaia_core.dir/ffl.cc.o.d"
  "CMakeFiles/gaia_core.dir/forecast_model.cc.o"
  "CMakeFiles/gaia_core.dir/forecast_model.cc.o.d"
  "CMakeFiles/gaia_core.dir/gaia_model.cc.o"
  "CMakeFiles/gaia_core.dir/gaia_model.cc.o.d"
  "CMakeFiles/gaia_core.dir/ita_gcn.cc.o"
  "CMakeFiles/gaia_core.dir/ita_gcn.cc.o.d"
  "CMakeFiles/gaia_core.dir/probabilistic_gaia.cc.o"
  "CMakeFiles/gaia_core.dir/probabilistic_gaia.cc.o.d"
  "CMakeFiles/gaia_core.dir/tel.cc.o"
  "CMakeFiles/gaia_core.dir/tel.cc.o.d"
  "CMakeFiles/gaia_core.dir/trainer.cc.o"
  "CMakeFiles/gaia_core.dir/trainer.cc.o.d"
  "libgaia_core.a"
  "libgaia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
