
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cau.cc" "src/core/CMakeFiles/gaia_core.dir/cau.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/cau.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/gaia_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/ffl.cc" "src/core/CMakeFiles/gaia_core.dir/ffl.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/ffl.cc.o.d"
  "/root/repo/src/core/forecast_model.cc" "src/core/CMakeFiles/gaia_core.dir/forecast_model.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/forecast_model.cc.o.d"
  "/root/repo/src/core/gaia_model.cc" "src/core/CMakeFiles/gaia_core.dir/gaia_model.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/gaia_model.cc.o.d"
  "/root/repo/src/core/ita_gcn.cc" "src/core/CMakeFiles/gaia_core.dir/ita_gcn.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/ita_gcn.cc.o.d"
  "/root/repo/src/core/probabilistic_gaia.cc" "src/core/CMakeFiles/gaia_core.dir/probabilistic_gaia.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/probabilistic_gaia.cc.o.d"
  "/root/repo/src/core/tel.cc" "src/core/CMakeFiles/gaia_core.dir/tel.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/tel.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/gaia_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/gaia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/gaia_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gaia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gaia_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/gaia_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/gaia_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gaia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
