file(REMOVE_RECURSE
  "libgaia_optim.a"
)
