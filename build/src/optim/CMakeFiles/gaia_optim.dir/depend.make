# Empty dependencies file for gaia_optim.
# This may be replaced when dependencies are built.
