file(REMOVE_RECURSE
  "CMakeFiles/gaia_optim.dir/lr_schedule.cc.o"
  "CMakeFiles/gaia_optim.dir/lr_schedule.cc.o.d"
  "CMakeFiles/gaia_optim.dir/optimizer.cc.o"
  "CMakeFiles/gaia_optim.dir/optimizer.cc.o.d"
  "libgaia_optim.a"
  "libgaia_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
