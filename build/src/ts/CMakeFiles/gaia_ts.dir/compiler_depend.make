# Empty compiler generated dependencies file for gaia_ts.
# This may be replaced when dependencies are built.
