file(REMOVE_RECURSE
  "libgaia_ts.a"
)
