file(REMOVE_RECURSE
  "CMakeFiles/gaia_ts.dir/arima.cc.o"
  "CMakeFiles/gaia_ts.dir/arima.cc.o.d"
  "CMakeFiles/gaia_ts.dir/holt_winters.cc.o"
  "CMakeFiles/gaia_ts.dir/holt_winters.cc.o.d"
  "CMakeFiles/gaia_ts.dir/metrics.cc.o"
  "CMakeFiles/gaia_ts.dir/metrics.cc.o.d"
  "libgaia_ts.a"
  "libgaia_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
