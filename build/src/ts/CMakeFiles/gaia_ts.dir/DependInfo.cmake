
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/arima.cc" "src/ts/CMakeFiles/gaia_ts.dir/arima.cc.o" "gcc" "src/ts/CMakeFiles/gaia_ts.dir/arima.cc.o.d"
  "/root/repo/src/ts/holt_winters.cc" "src/ts/CMakeFiles/gaia_ts.dir/holt_winters.cc.o" "gcc" "src/ts/CMakeFiles/gaia_ts.dir/holt_winters.cc.o.d"
  "/root/repo/src/ts/metrics.cc" "src/ts/CMakeFiles/gaia_ts.dir/metrics.cc.o" "gcc" "src/ts/CMakeFiles/gaia_ts.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
