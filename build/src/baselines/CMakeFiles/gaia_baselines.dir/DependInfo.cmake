
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/arima_forecaster.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/arima_forecaster.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/arima_forecaster.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/gat.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/gat.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/gat.cc.o.d"
  "/root/repo/src/baselines/geniepath.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/geniepath.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/geniepath.cc.o.d"
  "/root/repo/src/baselines/gman.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/gman.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/gman.cc.o.d"
  "/root/repo/src/baselines/graphsage.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/graphsage.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/graphsage.cc.o.d"
  "/root/repo/src/baselines/logtrans.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/logtrans.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/logtrans.cc.o.d"
  "/root/repo/src/baselines/lstm_forecaster.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/lstm_forecaster.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/lstm_forecaster.cc.o.d"
  "/root/repo/src/baselines/mtgnn.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/mtgnn.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/mtgnn.cc.o.d"
  "/root/repo/src/baselines/stgcn.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/stgcn.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/stgcn.cc.o.d"
  "/root/repo/src/baselines/zoo.cc" "src/baselines/CMakeFiles/gaia_baselines.dir/zoo.cc.o" "gcc" "src/baselines/CMakeFiles/gaia_baselines.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gaia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gaia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/gaia_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/gaia_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gaia_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gaia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gaia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/gaia_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
