file(REMOVE_RECURSE
  "libgaia_baselines.a"
)
