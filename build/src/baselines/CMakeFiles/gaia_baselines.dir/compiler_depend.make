# Empty compiler generated dependencies file for gaia_baselines.
# This may be replaced when dependencies are built.
