file(REMOVE_RECURSE
  "CMakeFiles/gaia_baselines.dir/arima_forecaster.cc.o"
  "CMakeFiles/gaia_baselines.dir/arima_forecaster.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/common.cc.o"
  "CMakeFiles/gaia_baselines.dir/common.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/gat.cc.o"
  "CMakeFiles/gaia_baselines.dir/gat.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/geniepath.cc.o"
  "CMakeFiles/gaia_baselines.dir/geniepath.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/gman.cc.o"
  "CMakeFiles/gaia_baselines.dir/gman.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/graphsage.cc.o"
  "CMakeFiles/gaia_baselines.dir/graphsage.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/logtrans.cc.o"
  "CMakeFiles/gaia_baselines.dir/logtrans.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/lstm_forecaster.cc.o"
  "CMakeFiles/gaia_baselines.dir/lstm_forecaster.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/mtgnn.cc.o"
  "CMakeFiles/gaia_baselines.dir/mtgnn.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/stgcn.cc.o"
  "CMakeFiles/gaia_baselines.dir/stgcn.cc.o.d"
  "CMakeFiles/gaia_baselines.dir/zoo.cc.o"
  "CMakeFiles/gaia_baselines.dir/zoo.cc.o.d"
  "libgaia_baselines.a"
  "libgaia_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
