file(REMOVE_RECURSE
  "libgaia_tensor.a"
)
