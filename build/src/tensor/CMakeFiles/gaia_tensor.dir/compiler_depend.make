# Empty compiler generated dependencies file for gaia_tensor.
# This may be replaced when dependencies are built.
