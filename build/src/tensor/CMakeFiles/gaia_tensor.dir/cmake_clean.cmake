file(REMOVE_RECURSE
  "CMakeFiles/gaia_tensor.dir/tensor.cc.o"
  "CMakeFiles/gaia_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/gaia_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/gaia_tensor.dir/tensor_ops.cc.o.d"
  "libgaia_tensor.a"
  "libgaia_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
