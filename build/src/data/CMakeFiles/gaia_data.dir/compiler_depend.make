# Empty compiler generated dependencies file for gaia_data.
# This may be replaced when dependencies are built.
