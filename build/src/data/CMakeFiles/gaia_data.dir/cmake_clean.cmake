file(REMOVE_RECURSE
  "CMakeFiles/gaia_data.dir/dataset.cc.o"
  "CMakeFiles/gaia_data.dir/dataset.cc.o.d"
  "CMakeFiles/gaia_data.dir/market_io.cc.o"
  "CMakeFiles/gaia_data.dir/market_io.cc.o.d"
  "CMakeFiles/gaia_data.dir/market_simulator.cc.o"
  "CMakeFiles/gaia_data.dir/market_simulator.cc.o.d"
  "libgaia_data.a"
  "libgaia_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
