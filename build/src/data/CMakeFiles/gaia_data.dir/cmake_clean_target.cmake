file(REMOVE_RECURSE
  "libgaia_data.a"
)
