file(REMOVE_RECURSE
  "CMakeFiles/gaia_graph.dir/eseller_graph.cc.o"
  "CMakeFiles/gaia_graph.dir/eseller_graph.cc.o.d"
  "libgaia_graph.a"
  "libgaia_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
