# Empty compiler generated dependencies file for gaia_graph.
# This may be replaced when dependencies are built.
