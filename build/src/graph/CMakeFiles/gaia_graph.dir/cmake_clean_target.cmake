file(REMOVE_RECURSE
  "libgaia_graph.a"
)
