# Empty dependencies file for fig5_monthly_schedule.
# This may be replaced when dependencies are built.
