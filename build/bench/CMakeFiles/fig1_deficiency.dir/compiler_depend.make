# Empty compiler generated dependencies file for fig1_deficiency.
# This may be replaced when dependencies are built.
