file(REMOVE_RECURSE
  "CMakeFiles/fig1_deficiency.dir/fig1_deficiency.cc.o"
  "CMakeFiles/fig1_deficiency.dir/fig1_deficiency.cc.o.d"
  "fig1_deficiency"
  "fig1_deficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_deficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
