file(REMOVE_RECURSE
  "CMakeFiles/fig4_case_study.dir/fig4_case_study.cc.o"
  "CMakeFiles/fig4_case_study.dir/fig4_case_study.cc.o.d"
  "fig4_case_study"
  "fig4_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
