file(REMOVE_RECURSE
  "CMakeFiles/deployment_sim.dir/deployment_sim.cc.o"
  "CMakeFiles/deployment_sim.dir/deployment_sim.cc.o.d"
  "deployment_sim"
  "deployment_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
