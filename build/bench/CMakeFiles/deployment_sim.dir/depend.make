# Empty dependencies file for deployment_sim.
# This may be replaced when dependencies are built.
