file(REMOVE_RECURSE
  "CMakeFiles/fig3_group_analysis.dir/fig3_group_analysis.cc.o"
  "CMakeFiles/fig3_group_analysis.dir/fig3_group_analysis.cc.o.d"
  "fig3_group_analysis"
  "fig3_group_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_group_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
