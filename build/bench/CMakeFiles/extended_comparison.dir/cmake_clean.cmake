file(REMOVE_RECURSE
  "CMakeFiles/extended_comparison.dir/extended_comparison.cc.o"
  "CMakeFiles/extended_comparison.dir/extended_comparison.cc.o.d"
  "extended_comparison"
  "extended_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
