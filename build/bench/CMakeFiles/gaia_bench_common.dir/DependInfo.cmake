
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/gaia_bench_common.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/gaia_bench_common.dir/bench_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gaia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gaia_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/gaia_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gaia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/gaia_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/gaia_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gaia_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gaia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gaia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/gaia_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
