file(REMOVE_RECURSE
  "libgaia_bench_common.a"
)
