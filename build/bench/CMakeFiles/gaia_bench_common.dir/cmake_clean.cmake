file(REMOVE_RECURSE
  "CMakeFiles/gaia_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/gaia_bench_common.dir/bench_common.cc.o.d"
  "libgaia_bench_common.a"
  "libgaia_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
