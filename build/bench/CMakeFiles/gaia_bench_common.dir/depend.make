# Empty dependencies file for gaia_bench_common.
# This may be replaced when dependencies are built.
