# Empty dependencies file for new_shop_coldstart.
# This may be replaced when dependencies are built.
