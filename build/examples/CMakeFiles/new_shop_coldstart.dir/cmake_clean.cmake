file(REMOVE_RECURSE
  "CMakeFiles/new_shop_coldstart.dir/new_shop_coldstart.cpp.o"
  "CMakeFiles/new_shop_coldstart.dir/new_shop_coldstart.cpp.o.d"
  "new_shop_coldstart"
  "new_shop_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/new_shop_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
