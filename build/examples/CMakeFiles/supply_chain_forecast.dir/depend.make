# Empty dependencies file for supply_chain_forecast.
# This may be replaced when dependencies are built.
