file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_forecast.dir/supply_chain_forecast.cpp.o"
  "CMakeFiles/supply_chain_forecast.dir/supply_chain_forecast.cpp.o.d"
  "supply_chain_forecast"
  "supply_chain_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
