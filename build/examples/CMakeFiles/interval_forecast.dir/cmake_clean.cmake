file(REMOVE_RECURSE
  "CMakeFiles/interval_forecast.dir/interval_forecast.cpp.o"
  "CMakeFiles/interval_forecast.dir/interval_forecast.cpp.o.d"
  "interval_forecast"
  "interval_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
