# Empty compiler generated dependencies file for interval_forecast.
# This may be replaced when dependencies are built.
