file(REMOVE_RECURSE
  "CMakeFiles/custom_data.dir/custom_data.cpp.o"
  "CMakeFiles/custom_data.dir/custom_data.cpp.o.d"
  "custom_data"
  "custom_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
