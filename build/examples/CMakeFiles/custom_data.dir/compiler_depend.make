# Empty compiler generated dependencies file for custom_data.
# This may be replaced when dependencies are built.
