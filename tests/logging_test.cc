#include "util/logging.h"

#include <gtest/gtest.h>

namespace gaia {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedMessagesDoNotEvaluateExpensively) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // Streaming into a disabled message is cheap and crash-free.
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  GAIA_LOG(Debug) << "value " << expensive();
  // Note: arguments ARE evaluated (stream semantics); the message is just
  // dropped. This documents the contract.
  EXPECT_EQ(evaluations, 1);
  SUCCEED();
}

TEST(LoggingTest, EmittingAtAllLevelsIsSafe) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  GAIA_LOG(Debug) << "debug message " << 1;
  GAIA_LOG(Info) << "info message " << 2.5;
  GAIA_LOG(Warning) << "warning message " << "text";
  GAIA_LOG(Error) << "error message";
  SUCCEED();
}

}  // namespace
}  // namespace gaia
