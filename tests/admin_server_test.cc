// Live operational plane: the request EventLog ring (seqlock slots, wrap,
// gating, concurrent hammer), the embedded admin HTTP server (endpoint
// routing, /metrics byte-identity with the in-process exporter, /healthz
// flipping 503 -> 200 when the serving generation is adopted, /quitz), and
// request-id correlation — ids returned on Predictions match the records a
// /requestz scrape returns, including degraded and cancelled-in-queue
// requests under a seeded fault schedule. Registered under the ctest label
// "admin"; CI runs the suite under both ASan and TSan.
//
// Tests that arm the process-global FaultInjector reset it on exit; ctest
// runs each test in its own process, so armed faults never leak.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/gaia_model.h"
#include "data/market_simulator.h"
#include "obs/admin_server.h"
#include "obs/event_log.h"
#include "obs/obs.h"
#include "serving/model_server.h"
#include "serving/sharded_server.h"
#include "util/cancel.h"
#include "util/fault_injector.h"

namespace gaia {
namespace {

using obs::AdminServer;
using obs::AdminServerOptions;
using obs::EventLog;
using obs::EventRecord;
using serving::ModelServer;
using serving::ShardedServer;
using serving::ShardedServerConfig;

// ---------------------------------------------------------------------------
// Minimal HTTP/1.0 client (the admin server's whole protocol surface)
// ---------------------------------------------------------------------------

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

HttpResponse HttpGet(int port, const std::string& path) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (fd < 0) return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return response;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 200 OK\r\n<headers>\r\n\r\n<body>"
  const size_t space = raw.find(' ');
  if (space != std::string::npos) {
    response.status = std::atoi(raw.c_str() + space + 1);
  }
  const size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) {
    response.headers = raw.substr(0, blank);
    response.body = raw.substr(blank + 4);
  }
  return response;
}

EventRecord MakeRecord(uint64_t id, int32_t shop) {
  EventRecord record;
  record.request_id = id;
  record.shop = shop;
  record.latency_ms = 1.5;
  return record;
}

// ---------------------------------------------------------------------------
// EventLog ring
// ---------------------------------------------------------------------------

TEST(EventLogTest, AppendsAndReadsOldestFirst) {
  EventLog log(16);
  log.SetEnabled(true);
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(MakeRecord(i, static_cast<int32_t>(i)));
  }
  const std::vector<EventRecord> got = log.Recent(5);
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].request_id, i + 1);  // oldest first
    EXPECT_EQ(got[i].shop, static_cast<int32_t>(i + 1));
    EXPECT_EQ(got[i].latency_ms, 1.5);
  }
  EXPECT_EQ(log.total_appended(), 5u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, WrapKeepsNewestAndCountsDropped) {
  EventLog log(8);
  log.SetEnabled(true);
  for (uint64_t i = 1; i <= 20; ++i) log.Append(MakeRecord(i, 0));
  EXPECT_EQ(log.total_appended(), 20u);
  EXPECT_EQ(log.dropped(), 12u);
  // Asking for more than capacity returns exactly the survivors: 13..20.
  const std::vector<EventRecord> got = log.Recent(100);
  ASSERT_EQ(got.size(), 8u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].request_id, 13 + i);
  }
}

TEST(EventLogTest, DisabledLogRecordsNothing) {
  EventLog log(8);
  log.Append(MakeRecord(1, 0));  // disabled by default
  EXPECT_EQ(log.total_appended(), 0u);
  EXPECT_TRUE(log.Recent(8).empty());
  log.SetEnabled(true);
  log.Append(MakeRecord(2, 0));
  log.SetEnabled(false);
  log.Append(MakeRecord(3, 0));
  ASSERT_EQ(log.Recent(8).size(), 1u);
  EXPECT_EQ(log.Recent(8)[0].request_id, 2u);
}

TEST(EventLogTest, ConcurrentAppendsAndReadsStayConsistent) {
  EventLog log(64);
  log.SetEnabled(true);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  // A reader hammers Recent() while writers wrap the ring many times over;
  // every record it sees must be fully-formed (never a torn slot).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const EventRecord& record : log.Recent(64)) {
        EXPECT_GE(record.request_id, 1u);
        EXPECT_LE(record.request_id, kWriters * kPerWriter);
        EXPECT_EQ(record.shop,
                  static_cast<int32_t>(record.request_id % 1000));
        EXPECT_EQ(record.latency_ms, 1.5);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t id = static_cast<uint64_t>(w) * kPerWriter + i + 1;
        log.Append(MakeRecord(id, static_cast<int32_t>(id % 1000)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(log.total_appended(), kWriters * kPerWriter);
  EXPECT_EQ(log.dropped(), kWriters * kPerWriter - 64);
}

TEST(EventLogTest, RecentJsonEmitsRequestIdAsDecimalString) {
  EventLog log(8);
  log.SetEnabled(true);
  EventRecord record = MakeRecord(18446744073709551615ull, 7);  // 2^64 - 1
  std::strncpy(record.reason, "deadline \"exceeded\"", sizeof(record.reason));
  record.reason[sizeof(record.reason) - 1] = '\0';
  log.Append(record);
  const std::string json = log.RecentJson(8);
  // 64-bit ids overflow doubles; the contract is a decimal *string*.
  EXPECT_NE(json.find("\"request_id\":\"18446744073709551615\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"deadline \\\"exceeded\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"total_appended\":1"), std::string::npos) << json;
}

TEST(EventLogTest, NextRequestIdIsUniqueAndNonZero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = obs::NextRequestId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
}

// ---------------------------------------------------------------------------
// AdminServer endpoints
// ---------------------------------------------------------------------------

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AdminServerOptions options;  // port 0: ephemeral
    std::string error;
    ASSERT_TRUE(server_.Start(options, &error)) << error;
    ASSERT_GT(server_.port(), 0);
  }
  void TearDown() override { server_.Stop(); }
  AdminServer server_;
};

TEST_F(AdminServerTest, MetricsScrapeIsByteIdenticalToExporter) {
  obs::MetricsRegistry::Global()
      .GetCounter("gaia_admin_test_probe_total")
      .Increment(41);
  const HttpResponse response = HttpGet(server_.port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << response.headers;
  // /metrics bumps its own scrape counter *before* rendering, so the bytes
  // on the wire equal an ExportPrometheus() taken right after the scrape.
  EXPECT_EQ(response.body, obs::MetricsRegistry::Global().ExportPrometheus());
  EXPECT_NE(response.body.find("gaia_admin_test_probe_total 41"),
            std::string::npos);
  EXPECT_NE(response.body.find("gaia_admin_requests_total"),
            std::string::npos);
}

TEST_F(AdminServerTest, HealthzFlipsFrom503To200WhenCheckPasses) {
  std::atomic<bool> ready{false};
  server_.AddCheck("checkpoint_loaded", [&ready](std::string* detail) {
    if (ready.load()) return true;
    if (detail != nullptr) *detail = "no generation adopted";
    return false;
  });
  const HttpResponse before = HttpGet(server_.port(), "/healthz");
  EXPECT_EQ(before.status, 503);
  EXPECT_NE(before.body.find("checkpoint_loaded: no generation adopted"),
            std::string::npos)
      << before.body;
  ready.store(true);
  const HttpResponse after = HttpGet(server_.port(), "/healthz");
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, "ok\n");
  // /readyz is an alias over the same check set.
  EXPECT_EQ(HttpGet(server_.port(), "/readyz").status, 200);
}

TEST_F(AdminServerTest, StatuszCarriesChecksAndInfoProviders) {
  server_.AddCheck("always_ok", [](std::string*) { return true; });
  server_.AddInfo("generation", [] { return std::string("3"); });
  const HttpResponse response = HttpGet(server_.port(), "/statusz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(response.body.find("\"always_ok\":true"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"generation\":\"3\""), std::string::npos)
      << response.body;
}

TEST_F(AdminServerTest, StatuszCarriesDriftBlock) {
  // The drift lifecycle (score, window, trigger counters) is first-class
  // status: the block is always present, fed by the unconditional scheduler
  // gauges/counters, so an operator can see drift state with GAIA_OBS off.
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("gaia_drift_score").Set(1.25);
  registry.GetGauge("gaia_drift_window_cycles").Set(3.0);
  const uint64_t fired =
      registry.CounterValue("gaia_drift_retrains_total");
  const uint64_t suppressed =
      registry.CounterValue("gaia_drift_retrains_suppressed_total");
  const HttpResponse response = HttpGet(server_.port(), "/statusz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"drift\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"score\":1.25"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"window_cycles\":3"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"retrains_total\":" +
                               std::to_string(fired)),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"retrains_suppressed_total\":" +
                               std::to_string(suppressed)),
            std::string::npos)
      << response.body;
}

TEST_F(AdminServerTest, MetricsJsonAndTracezAreServed) {
  const HttpResponse json = HttpGet(server_.port(), "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("\"counters\""), std::string::npos);
  const HttpResponse tracez = HttpGet(server_.port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"spans\""), std::string::npos);
}

TEST_F(AdminServerTest, RequestzReturnsRecentEventLogRecords) {
  EventLog& log = EventLog::Global();
  const bool was_enabled = log.enabled();
  log.SetEnabled(true);
  const uint64_t id = obs::NextRequestId();
  log.Append(MakeRecord(id, 42));
  const HttpResponse response = HttpGet(server_.port(), "/requestz?n=5");
  log.SetEnabled(was_enabled);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"request_id\":\"" + std::to_string(id) +
                               "\""),
            std::string::npos)
      << response.body;
}

TEST_F(AdminServerTest, UnknownPathReturns404) {
  const HttpResponse response = HttpGet(server_.port(), "/nope");
  EXPECT_EQ(response.status, 404);
}

TEST_F(AdminServerTest, QuitzWakesWaitForQuit) {
  // Before /quitz: a bounded wait times out.
  EXPECT_FALSE(server_.WaitForQuit(/*timeout_ms=*/10.0));
  std::thread waiter([&] { EXPECT_TRUE(server_.WaitForQuit()); });
  EXPECT_EQ(HttpGet(server_.port(), "/quitz").status, 200);
  waiter.join();
}

TEST(AdminServerLifecycleTest, StartStopStartReusesCleanly) {
  AdminServer server;
  std::string error;
  ASSERT_TRUE(server.Start(AdminServerOptions{}, &error)) << error;
  const int first_port = server.port();
  EXPECT_FALSE(server.Start(AdminServerOptions{}))
      << "double Start must fail";
  server.Stop();
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start(AdminServerOptions{}, &error)) << error;
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(HttpGet(server.port(), "/healthz").status, 200);
  server.Stop();
  (void)first_port;
}

// ---------------------------------------------------------------------------
// Request-id correlation through the serving tier
// ---------------------------------------------------------------------------

class AdminServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 60;
    cfg.history_months = 14;
    cfg.seed = 31;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());
    EventLog::Global().Clear();
    EventLog::Global().SetEnabled(true);
  }
  void TearDown() override {
    EventLog::Global().SetEnabled(false);
    util::FaultInjector::Global().Reset();
  }

  std::shared_ptr<core::GaiaModel> MakeModel(uint64_t seed = 1) {
    core::GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = 1;
    cfg.seed = seed;
    auto model = core::GaiaModel::Create(
        cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    EXPECT_TRUE(model.ok());
    return std::shared_ptr<core::GaiaModel>(std::move(model).value());
  }

  std::shared_ptr<data::ForecastDataset> dataset_;
};

TEST_F(AdminServingTest, EveryServedRequestAppearsInEventLogWithItsId) {
  ModelServer server(MakeModel(), dataset_, serving::ServerConfig{});
  std::set<uint64_t> served_ids;
  for (int32_t shop = 0; shop < 10; ++shop) {
    const ModelServer::Prediction prediction = server.Predict(shop);
    EXPECT_NE(prediction.request_id, 0u);
    EXPECT_TRUE(served_ids.insert(prediction.request_id).second);
  }
  const std::vector<EventRecord> records = EventLog::Global().Recent(100);
  ASSERT_EQ(records.size(), 10u);
  for (const EventRecord& record : records) {
    EXPECT_EQ(served_ids.count(record.request_id), 1u);
    EXPECT_EQ(record.served_by, 0u);  // healthy: model path
    EXPECT_EQ(record.cancelled, 0u);
    EXPECT_EQ(record.shard, -1);  // unsharded serving
    EXPECT_STREQ(record.reason, "");
  }
}

TEST_F(AdminServingTest, DegradedRequestIdsMatchSeededFaultSchedule) {
  ModelServer server(MakeModel(), dataset_, serving::ServerConfig{});
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();
  faults.Reseed(1234);
  faults.Arm({"serving.forward", util::FaultKind::kUnavailable, 0.5, -1});
  std::set<uint64_t> degraded_ids;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const ModelServer::Prediction prediction =
        server.Predict(static_cast<int32_t>(i % 60));
    if (prediction.served_by == ModelServer::ServePath::kFallback) {
      degraded_ids.insert(prediction.request_id);
    }
  }
  faults.Reset();
  ASSERT_GT(degraded_ids.size(), 0u) << "seeded schedule injected no faults";
  ASSERT_LT(degraded_ids.size(), static_cast<size_t>(kRequests));
  // The flight recorder must tell the same story: exactly the degraded ids
  // carry served_by=fallback and a non-empty reason.
  std::set<uint64_t> logged_degraded;
  const std::vector<EventRecord> records = EventLog::Global().Recent(100);
  ASSERT_EQ(records.size(), static_cast<size_t>(kRequests));
  for (const EventRecord& record : records) {
    if (record.served_by == 1u) {
      logged_degraded.insert(record.request_id);
      EXPECT_STRNE(record.reason, "");
    }
  }
  EXPECT_EQ(logged_degraded, degraded_ids);
  // And a /requestz scrape surfaces those same ids over HTTP.
  AdminServer admin;
  ASSERT_TRUE(admin.Start(AdminServerOptions{}));
  const HttpResponse response =
      HttpGet(admin.port(), "/requestz?n=" + std::to_string(kRequests));
  admin.Stop();
  for (const uint64_t id : degraded_ids) {
    EXPECT_NE(response.body.find("\"request_id\":\"" + std::to_string(id) +
                                 "\""),
              std::string::npos)
        << "degraded id " << id << " missing from /requestz";
  }
}

TEST_F(AdminServingTest, CancelledWhileQueuedIsRecordedWithReason) {
  ShardedServerConfig cfg;
  cfg.num_shards = 2;
  ShardedServer server(MakeModel(), dataset_, cfg);
  util::CancelToken token;
  token.Cancel();  // fired before the request is even submitted
  const ModelServer::Prediction prediction =
      server.Predict(/*shop=*/3, /*deadline_ms=*/0.0, &token);
  EXPECT_EQ(prediction.served_by, ModelServer::ServePath::kFallback);
  EXPECT_NE(prediction.request_id, 0u);
  const std::vector<EventRecord> records = EventLog::Global().Recent(100);
  bool found = false;
  for (const EventRecord& record : records) {
    if (record.request_id != prediction.request_id) continue;
    found = true;
    EXPECT_EQ(record.cancelled, 1u);
    EXPECT_EQ(record.served_by, 1u);
    EXPECT_STREQ(record.reason, "cancelled while queued");
    EXPECT_GE(record.shard, 0);
  }
  EXPECT_TRUE(found) << "cancelled request never reached the event log";
}

TEST_F(AdminServingTest, ShardedRequestsRecordShardAndQueueWait) {
  ShardedServerConfig cfg;
  cfg.num_shards = 2;
  ShardedServer server(MakeModel(), dataset_, cfg);
  std::set<uint64_t> ids;
  for (int32_t shop = 0; shop < 8; ++shop) {
    ids.insert(server.Predict(shop).request_id);
  }
  server.Stop();
  const std::vector<EventRecord> records = EventLog::Global().Recent(100);
  ASSERT_EQ(records.size(), 8u);
  for (const EventRecord& record : records) {
    EXPECT_EQ(ids.count(record.request_id), 1u);
    EXPECT_GE(record.shard, 0);
    EXPECT_LT(record.shard, 2);
    EXPECT_GE(record.queue_wait_ms, 0.0);
  }
}

}  // namespace
}  // namespace gaia
