// Shared fixture for the golden-regression layer: tools/golden_dump.cc
// *writes* these tensors to tests/golden/ and tests/golden_test.cc *compares*
// freshly computed values against the committed files. Both sides include
// this header so the fixture definitions can never drift apart.
//
// Everything here is seeded and runs on deterministic code paths (no dropout,
// thread-count-invariant kernels), so the committed goldens are stable across
// machines up to libm rounding — hence the 1e-6 comparison tolerance rather
// than bitwise equality.

#ifndef GAIA_TESTS_GOLDEN_COMMON_H_
#define GAIA_TESTS_GOLDEN_COMMON_H_

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/cau.h"
#include "core/ffl.h"
#include "core/gaia_model.h"
#include "core/tel.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gaia::golden {

struct NamedTensor {
  std::string name;  ///< file stem under tests/golden/
  Tensor value;
};

/// Recomputes every golden tensor from fixed seeds. Covers each Gaia
/// component in isolation (FFL, TEL, CAU) plus the full model's 3-step
/// predictions and training loss on a small fixed market.
inline std::vector<NamedTensor> ComputeGoldenOutputs() {
  namespace ag = autograd;
  std::vector<NamedTensor> out;

  // --- Component fixtures: one rng stream for weights, one for inputs. ---
  {
    Rng layer_rng(101);
    Rng input_rng(202);
    constexpr int64_t kT = 8, kDt = 3, kDs = 2, kC = 8;

    core::FeatureFusionLayer ffl(kT, kDt, kDs, kC, &layer_rng);
    ag::Var z = ag::Constant(Tensor::Randn({kT}, &input_rng));
    ag::Var temporal = ag::Constant(Tensor::Randn({kT, kDt}, &input_rng));
    ag::Var statics = ag::Constant(Tensor::Randn({kDs}, &input_rng));
    out.push_back({"ffl_forward", ffl.Forward(z, temporal, statics)->value});

    core::TemporalEmbeddingLayer tel(kC, /*num_groups=*/2, &layer_rng);
    ag::Var s = ag::Constant(Tensor::Randn({kT, kC}, &input_rng));
    out.push_back({"tel_forward", tel.Forward(s)->value});

    core::ConvAttentionUnit cau(kC, &layer_rng);
    ag::Var h_u = ag::Constant(Tensor::Randn({kT, kC}, &input_rng));
    ag::Var h_v = ag::Constant(Tensor::Randn({kT, kC}, &input_rng));
    Tensor attention;
    out.push_back({"cau_forward", cau.Forward(h_u, h_v, &attention)->value});
    out.push_back({"cau_attention", attention});
  }

  // --- Full model on a small fixed market. ---
  {
    data::MarketConfig market_cfg;
    market_cfg.num_shops = 40;
    market_cfg.seed = 77;
    auto market = data::MarketSimulator(market_cfg).Generate();
    data::ForecastDataset dataset =
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value();
    core::GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = 2;
    cfg.seed = 5;
    std::unique_ptr<core::GaiaModel> model =
        std::move(core::GaiaModel::Create(cfg, dataset.history_len(),
                                          dataset.horizon(),
                                          dataset.temporal_dim(),
                                          dataset.static_dim()))
            .value();

    const std::vector<int32_t> nodes = {0, 1, 2, 5, 11};
    std::vector<autograd::Var> preds =
        model->PredictNodes(dataset, nodes, /*training=*/false, nullptr);
    const int64_t horizon = dataset.horizon();
    Tensor stacked({static_cast<int64_t>(nodes.size()), horizon});
    for (size_t i = 0; i < preds.size(); ++i) {
      for (int64_t h = 0; h < horizon; ++h) {
        stacked.at(static_cast<int64_t>(i), h) = preds[i]->value.data()[h];
      }
    }
    out.push_back({"gaia_predictions", std::move(stacked)});

    Rng loss_rng(0);
    ag::Var loss =
        model->TrainingLoss(dataset, nodes, /*training=*/false, &loss_rng);
    out.push_back({"gaia_mse_loss", loss->value});
  }
  return out;
}

/// Text format: line 1 is "ndim d0 d1 ...", then one %.9e value per line.
/// Plain text keeps goldens reviewable in diffs; 9 significant digits is
/// well inside the 1e-6 comparison tolerance for these O(1)-magnitude
/// activations.
inline bool WriteTensorFile(const std::string& path, const Tensor& t) {
  std::ofstream file(path);
  if (!file) return false;
  file << t.ndim();
  for (int64_t d : t.shape()) file << ' ' << d;
  file << '\n';
  char buf[32];
  for (int64_t i = 0; i < t.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.9e", static_cast<double>(t.data()[i]));
    file << buf << '\n';
  }
  return static_cast<bool>(file);
}

inline bool ReadTensorFile(const std::string& path, Tensor* out) {
  std::ifstream file(path);
  if (!file) return false;
  int64_t ndim = -1;
  file >> ndim;
  if (ndim < 0 || ndim > 8) return false;
  std::vector<int64_t> shape(static_cast<size_t>(ndim));
  int64_t total = 1;
  for (int64_t& d : shape) {
    file >> d;
    if (!file || d <= 0) return false;
    total *= d;
  }
  std::vector<float> data(static_cast<size_t>(total));
  for (float& v : data) {
    file >> v;
    if (!file) return false;
  }
  *out = Tensor(std::move(shape), std::move(data));
  return true;
}

}  // namespace gaia::golden

#endif  // GAIA_TESTS_GOLDEN_COMMON_H_
