#include "core/gaia_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"

namespace gaia::core {
namespace {

data::MarketConfig SmallMarket() {
  data::MarketConfig cfg;
  cfg.num_shops = 60;
  cfg.history_months = 16;
  cfg.horizon_months = 3;
  cfg.seed = 7;
  return cfg;
}

class GaiaModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto market = data::MarketSimulator(SmallMarket()).Generate();
    ASSERT_TRUE(market.ok()) << market.status().ToString();
    market_ = std::make_unique<data::MarketData>(std::move(market).value());
    auto ds = data::ForecastDataset::Create(*market_, data::DatasetOptions{});
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::make_unique<data::ForecastDataset>(std::move(ds).value());
  }

  GaiaConfig SmallConfig() const {
    GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = 1;
    cfg.seed = 3;
    return cfg;
  }

  std::unique_ptr<GaiaModel> MakeModel(const GaiaConfig& cfg) const {
    auto model = GaiaModel::Create(cfg, dataset_->history_len(),
                                   dataset_->horizon(), dataset_->temporal_dim(),
                                   dataset_->static_dim());
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(model).value();
  }

  std::unique_ptr<data::MarketData> market_;
  std::unique_ptr<data::ForecastDataset> dataset_;
};

TEST_F(GaiaModelTest, CreateRejectsBadConfig) {
  GaiaConfig cfg = SmallConfig();
  cfg.channels = 7;  // not divisible by tel_groups
  auto model = GaiaModel::Create(cfg, 16, 3, 6, 16);
  EXPECT_FALSE(model.ok());
  cfg = SmallConfig();
  cfg.num_layers = 0;
  EXPECT_FALSE(GaiaModel::Create(cfg, 16, 3, 6, 16).ok());
}

TEST_F(GaiaModelTest, ForwardShapesAndFiniteness) {
  auto model = MakeModel(SmallConfig());
  Rng rng(0);
  std::vector<int32_t> nodes = {0, 1, 2, 3};
  auto preds = model->PredictNodes(*dataset_, nodes, false, &rng);
  ASSERT_EQ(preds.size(), nodes.size());
  for (const auto& p : preds) {
    EXPECT_EQ(p->value.ndim(), 1);
    EXPECT_EQ(p->value.dim(0), dataset_->horizon());
    EXPECT_TRUE(p->value.AllFinite());
    // ReLU head: predictions are non-negative (GMV is non-negative).
    EXPECT_GE(p->value.Min(), 0.0f);
  }
}

TEST_F(GaiaModelTest, TrainingReducesLoss) {
  auto model = MakeModel(SmallConfig());
  TrainConfig tc;
  tc.max_epochs = 30;
  tc.eval_every = 10;
  tc.patience = 100;
  tc.learning_rate = 5e-3f;
  TrainResult result = Trainer(tc).Fit(model.get(), *dataset_);
  ASSERT_GE(result.train_loss_history.size(), 10u);
  EXPECT_LT(result.final_train_loss, result.train_loss_history.front());
}

TEST_F(GaiaModelTest, AblationVariantsConstructAndRun) {
  for (int variant = 0; variant < 3; ++variant) {
    GaiaConfig cfg = SmallConfig();
    if (variant == 0) cfg.use_ita = false;
    if (variant == 1) cfg.use_ffl = false;
    if (variant == 2) cfg.use_tel = false;
    auto model = MakeModel(cfg);
    Rng rng(0);
    auto preds = model->PredictNodes(*dataset_, {0, 5}, false, &rng);
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_TRUE(preds[0]->value.AllFinite());
  }
}

TEST_F(GaiaModelTest, MultiHeadAndMaskOffVariantsRun) {
  for (int variant = 0; variant < 2; ++variant) {
    GaiaConfig cfg = SmallConfig();
    if (variant == 0) cfg.cau_heads = 2;
    if (variant == 1) cfg.causal_mask = false;
    auto model = MakeModel(cfg);
    Rng rng(0);
    auto preds = model->PredictNodes(*dataset_, {0, 1}, false, &rng);
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_TRUE(preds[0]->value.AllFinite());
    EXPECT_EQ(preds[0]->value.dim(0), dataset_->horizon());
  }
  // Heads must divide channels.
  GaiaConfig bad = SmallConfig();
  bad.cau_heads = 3;  // channels = 8
  EXPECT_FALSE(GaiaModel::Create(bad, dataset_->history_len(),
                                 dataset_->horizon(),
                                 dataset_->temporal_dim(),
                                 dataset_->static_dim())
                   .ok());
}

TEST_F(GaiaModelTest, MaskOffAttendsToFutureInProbe) {
  GaiaConfig cfg = SmallConfig();
  cfg.causal_mask = false;
  auto model = MakeModel(cfg);
  ItaProbe probe = model->CollectAttention(*dataset_);
  double future_mass = 0.0;
  const Tensor& att = probe.intra.front().attention;
  for (int64_t i = 0; i < att.dim(0); ++i) {
    for (int64_t j = i + 1; j < att.dim(1); ++j) future_mass += att.at(i, j);
  }
  EXPECT_GT(future_mass, 0.0);
}

TEST_F(GaiaModelTest, EgoPredictionMatchesHorizonShape) {
  auto model = MakeModel(SmallConfig());
  Rng rng(11);
  auto ego = graph::ExtractEgoSubgraph(dataset_->graph(), /*center=*/2,
                                       /*num_hops=*/2, /*max_fanout=*/5, &rng);
  Tensor pred = model->PredictEgo(*dataset_, ego).value();
  EXPECT_EQ(pred.dim(0), dataset_->horizon());
  EXPECT_TRUE(pred.AllFinite());
}

TEST_F(GaiaModelTest, AttentionProbeCoversEdgesAndNodes) {
  auto model = MakeModel(SmallConfig());
  ItaProbe probe = model->CollectAttention(*dataset_);
  EXPECT_EQ(static_cast<int64_t>(probe.intra.size()), dataset_->num_nodes());
  EXPECT_EQ(static_cast<int64_t>(probe.inter.size()),
            dataset_->graph().num_edges());
  // Attention rows sum to one over the allowed (past) positions.
  const Tensor& att = probe.intra.front().attention;
  for (int64_t i = 0; i < att.dim(0); ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < att.dim(1); ++j) row_sum += att.at(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-4);
    for (int64_t j = i + 1; j < att.dim(1); ++j) {
      EXPECT_EQ(att.at(i, j), 0.0f) << "future attention leaked";
    }
  }
}

TEST_F(GaiaModelTest, EvaluatorProducesPerMonthMetrics) {
  auto model = MakeModel(SmallConfig());
  EvaluationReport report =
      Evaluator::Evaluate(model.get(), *dataset_, dataset_->test_nodes());
  ASSERT_EQ(report.per_month.size(),
            static_cast<size_t>(dataset_->horizon()));
  EXPECT_GT(report.overall.count, 0);
  EXPECT_GE(report.overall.mae, 0.0);
}

}  // namespace
}  // namespace gaia::core
