#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "autograd/ops.h"
#include "optim/lr_schedule.h"

namespace gaia::optim {
namespace {

namespace ag = autograd;
using ag::Var;

/// Minimizes f(x) = ||x - target||^2 with the given optimizer; returns the
/// final distance to the optimum.
template <typename MakeOpt>
double MinimizeQuadratic(MakeOpt make_opt, int steps) {
  Var x = ag::Parameter(Tensor({3}, {5.0f, -4.0f, 2.0f}));
  Tensor target({3}, {1.0f, 1.0f, 1.0f});
  auto opt = make_opt(std::vector<Var>{x});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Var loss = ag::MseLoss(x, target);
    ag::Backward(loss);
    opt->Step();
  }
  double dist = 0.0;
  for (int64_t j = 0; j < 3; ++j) {
    const double d = x->value.at(j) - target.at(j);
    dist += d * d;
  }
  return std::sqrt(dist);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const double dist = MinimizeQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      200);
  EXPECT_LT(dist, 1e-3);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  const double plain = MinimizeQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Sgd>(std::move(p), 0.02f);
      },
      50);
  const double momentum = MinimizeQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Sgd>(std::move(p), 0.02f, 0.9f);
      },
      50);
  EXPECT_LT(momentum, plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const double dist = MinimizeQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Adam>(std::move(p), 0.1f);
      },
      300);
  EXPECT_LT(dist, 1e-2);
}

TEST(AdamTest, StepCountAdvances) {
  Var x = ag::Parameter(Tensor({1}, {1.0f}));
  Adam adam({x}, 0.01f);
  EXPECT_EQ(adam.step_count(), 0);
  x->AccumulateGrad(Tensor({1}, {1.0f}));
  adam.Step();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Var x = ag::Parameter(Tensor({1}, {10.0f}));
  Adam adam({x}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 100; ++i) {
    adam.ZeroGrad();
    x->AccumulateGrad(Tensor({1}));  // zero task gradient
    adam.Step();
  }
  EXPECT_LT(std::fabs(x->value.at(0)), 5.0f);
}

TEST(AdamTest, SkipsParametersWithoutGradients) {
  Var x = ag::Parameter(Tensor({2}, {1.0f, 2.0f}));
  Adam adam({x}, 0.5f);
  adam.Step();  // no gradient accumulated yet
  EXPECT_FLOAT_EQ(x->value.at(0), 1.0f);
  EXPECT_FLOAT_EQ(x->value.at(1), 2.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Var x = ag::Parameter(Tensor({2}, {0.0f, 0.0f}));
  x->AccumulateGrad(Tensor({2}, {3.0f, 4.0f}));  // norm 5
  const double pre = ClipGradNorm({x}, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(x->grad.Norm(), 1.0, 1e-5);
  // Direction preserved.
  EXPECT_NEAR(x->grad.at(0) / x->grad.at(1), 0.75, 1e-5);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Var x = ag::Parameter(Tensor({2}));
  x->AccumulateGrad(Tensor({2}, {0.1f, 0.1f}));
  ClipGradNorm({x}, 10.0);
  EXPECT_FLOAT_EQ(x->grad.at(0), 0.1f);
}

TEST(EarlyStoppingTest, StopsAfterPatienceExhausted) {
  EarlyStopping stopper(2);
  EXPECT_FALSE(stopper.Update(1.0));   // best
  EXPECT_FALSE(stopper.Update(0.5));   // improves
  EXPECT_FALSE(stopper.Update(0.6));   // bad 1
  EXPECT_TRUE(stopper.Update(0.7));    // bad 2 -> stop
  EXPECT_DOUBLE_EQ(stopper.best(), 0.5);
}

TEST(EarlyStoppingTest, ImprovementResetsCounter) {
  EarlyStopping stopper(2);
  stopper.Update(1.0);
  stopper.Update(1.1);              // bad 1
  EXPECT_FALSE(stopper.Update(0.9));  // improvement resets
  EXPECT_EQ(stopper.bad_epochs(), 0);
}

TEST(EarlyStoppingTest, MinDeltaCountsTinyImprovementsAsBad) {
  EarlyStopping stopper(1, /*min_delta=*/0.1);
  stopper.Update(1.0);
  EXPECT_TRUE(stopper.Update(0.95));  // within min_delta -> bad -> stop
}

// ---------------------------------------------------------------------------
// Learning-rate schedules
// ---------------------------------------------------------------------------

TEST(LrScheduleTest, ConstantIsConstant) {
  ConstantLr schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0, 100), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(99, 100), 0.01f);
}

TEST(LrScheduleTest, CosineDecayEndpointsAndMonotonicity) {
  CosineDecayLr schedule(1.0f, 0.1f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0, 50), 1.0f);
  EXPECT_NEAR(schedule.LearningRate(49, 50), 0.1f, 1e-6);
  float prev = 2.0f;
  for (int step = 0; step < 50; ++step) {
    const float lr = schedule.LearningRate(step, 50);
    EXPECT_LE(lr, prev);
    prev = lr;
  }
}

TEST(LrScheduleTest, CosineDegenerateRunLength) {
  CosineDecayLr schedule(0.5f, 0.05f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0, 1), 0.5f);
}

TEST(LrScheduleTest, StepDecayDropsAtPeriods) {
  StepDecayLr schedule(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0, 100), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(9, 100), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(10, 100), 0.5f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(25, 100), 0.25f);
}

TEST(LrScheduleTest, WarmupRampsLinearly) {
  auto inner = std::make_shared<ConstantLr>(1.0f);
  WarmupLr schedule(inner, 4);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0, 100), 0.25f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(1, 100), 0.5f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(3, 100), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(50, 100), 1.0f);
}

}  // namespace
}  // namespace gaia::optim
