#include "serving/model_server.h"

#include "serving/monthly_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "data/market_simulator.h"
#include "obs/metrics.h"

namespace gaia::serving {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 60;
    cfg.history_months = 14;
    cfg.seed = 31;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());

    core::GaiaConfig model_cfg;
    model_cfg.channels = 8;
    model_cfg.tel_groups = 2;
    model_cfg.num_layers = 1;
    auto model = core::GaiaModel::Create(
        model_cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    ASSERT_TRUE(model.ok());
    model_ = std::shared_ptr<core::GaiaModel>(std::move(model).value());
  }

  std::shared_ptr<data::ForecastDataset> dataset_;
  std::shared_ptr<core::GaiaModel> model_;
};

TEST_F(ServingTest, PredictReturnsHorizonForecastInGmvUnits) {
  ModelServer server(model_, dataset_, ServerConfig{});
  auto prediction = server.Predict(3);
  EXPECT_EQ(prediction.shop, 3);
  ASSERT_EQ(static_cast<int64_t>(prediction.gmv.size()),
            dataset_->horizon());
  for (double v : prediction.gmv) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_GE(prediction.latency_ms, 0.0);
  EXPECT_GE(prediction.ego_nodes, 1);
}

TEST_F(ServingTest, BatchAccumulatesServerStats) {
  ModelServer server(model_, dataset_, ServerConfig{});
  auto predictions = server.PredictBatch({0, 1, 2, 3, 4});
  EXPECT_EQ(predictions.size(), 5u);
  EXPECT_EQ(server.total_requests(), 5);
  EXPECT_GT(server.total_latency_ms(), 0.0);
}

TEST_F(ServingTest, EgoFanoutCapBoundsSubgraph) {
  ServerConfig cfg;
  cfg.ego_hops = 1;
  cfg.max_fanout = 2;
  ModelServer server(model_, dataset_, cfg);
  for (int32_t shop = 0; shop < 10; ++shop) {
    auto prediction = server.Predict(shop);
    EXPECT_LE(prediction.ego_nodes, 3);  // centre + at most 2
  }
}

TEST_F(ServingTest, OfflinePipelinePublishesLoadableCheckpoint) {
  const std::string path = "/tmp/gaia_serving_test_ckpt.bin";
  OfflineTrainingPipeline::Config cfg;
  cfg.model.channels = 8;
  cfg.model.tel_groups = 2;
  cfg.model.num_layers = 1;
  cfg.train.max_epochs = 5;
  cfg.train.eval_every = 5;
  cfg.checkpoint_path = path;
  OfflineTrainingPipeline pipeline(cfg);
  OfflineTrainingPipeline::RunReport report;
  auto trained = pipeline.Run(*dataset_, &report);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_EQ(report.train.epochs_run, 5);
  EXPECT_EQ(report.checkpoint_path, path);

  // A fresh server hot-swaps the published weights and then matches the
  // trained model's predictions exactly.
  ModelServer server(model_, dataset_, ServerConfig{});
  ASSERT_TRUE(server.LoadCheckpoint(path).ok());
  ModelServer trained_server(trained.value(), dataset_, ServerConfig{});
  auto a = server.Predict(7);
  auto b = trained_server.Predict(7);
  ASSERT_EQ(a.gmv.size(), b.gmv.size());
  for (size_t i = 0; i < a.gmv.size(); ++i) {
    EXPECT_NEAR(a.gmv[i], b.gmv[i], 1e-6 * (1.0 + std::abs(b.gmv[i])));
  }
  std::remove(path.c_str());
}

TEST_F(ServingTest, CheckpointReloadIsIdempotentForPredictions) {
  // Same server, same request twice -> identical forecast values (ego
  // sampling uses the server RNG, so fix fanout above the true degree).
  ServerConfig cfg;
  cfg.max_fanout = 1000;
  ModelServer server(model_, dataset_, cfg);
  auto first = server.Predict(5);
  auto second = server.Predict(5);
  ASSERT_EQ(first.gmv.size(), second.gmv.size());
  for (size_t i = 0; i < first.gmv.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.gmv[i], second.gmv[i]);
  }
}

TEST_F(ServingTest, MonthlySchedulerRunsAllCycles) {
  MonthlyScheduler::Config cfg;
  cfg.market.num_shops = 40;
  cfg.market.history_months = 12;
  cfg.market.seed = 17;
  cfg.offline.model.channels = 8;
  cfg.offline.model.tel_groups = 2;
  cfg.offline.model.num_layers = 1;
  cfg.offline.train.max_epochs = 4;
  cfg.offline.train.eval_every = 4;
  cfg.offline.checkpoint_path = "/tmp/gaia_scheduler_test_ckpt.bin";
  cfg.num_cycles = 3;
  MonthlyScheduler scheduler(cfg);
  auto reports = scheduler.Run();
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports.value().size(), 3u);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto& report = reports.value()[static_cast<size_t>(cycle)];
    EXPECT_EQ(report.cycle, cycle);
    // The calendar advances one month per cycle.
    EXPECT_EQ(report.calendar_start_month,
              (cfg.market.start_calendar_month + cycle) % 12);
    EXPECT_EQ(report.train.epochs_run, 4);
    EXPECT_GT(report.online.overall.count, 0);
    EXPECT_GT(report.graph_edges, 0);
    EXPECT_GE(report.mean_latency_ms, 0.0);
  }
  // The graph population actually changes between cycles.
  EXPECT_NE(reports.value()[0].graph_edges, reports.value()[1].graph_edges);

  // Drift accounting: the first served cycle has no baseline and scores 0;
  // every later cycle's baseline is the mean MAE of the window before it.
  const auto& r0 = reports.value()[0];
  const auto& r1 = reports.value()[1];
  const auto& r2 = reports.value()[2];
  EXPECT_EQ(r0.drift_score, 0.0);
  EXPECT_EQ(r0.drift_baseline_mae, 0.0);
  EXPECT_DOUBLE_EQ(r1.drift_baseline_mae, r0.online.overall.mae);
  EXPECT_DOUBLE_EQ(
      r1.drift_score,
      (r1.online.overall.mae - r1.drift_baseline_mae) /
          std::max(r1.drift_baseline_mae, 1e-12));
  EXPECT_DOUBLE_EQ(
      r2.drift_baseline_mae,
      (r0.online.overall.mae + r1.online.overall.mae) / 2.0);
  // The gauges mirror the last cycle (set unconditionally, like the
  // gaia_robust_* counters, so drift is visible with GAIA_OBS off).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.GetGauge("gaia_drift_score").value(),
                   r2.drift_score);
  EXPECT_DOUBLE_EQ(registry.GetGauge("gaia_drift_window_cycles").value(),
                   3.0);
  std::remove("/tmp/gaia_scheduler_test_ckpt.bin");
}

TEST_F(ServingTest, MonthlySchedulerDriftDisabledLeavesReportsAtZero) {
  MonthlyScheduler::Config cfg;
  cfg.market.num_shops = 40;
  cfg.market.history_months = 12;
  cfg.market.seed = 17;
  cfg.offline.model.channels = 8;
  cfg.offline.model.tel_groups = 2;
  cfg.offline.model.num_layers = 1;
  cfg.offline.train.max_epochs = 2;
  cfg.offline.train.eval_every = 2;
  cfg.offline.checkpoint_path = "/tmp/gaia_scheduler_drift_off_ckpt.bin";
  cfg.num_cycles = 2;
  cfg.drift_window_cycles = 0;  // <= 0 disables the tracker entirely
  auto reports = MonthlyScheduler(cfg).Run();
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  for (const auto& report : reports.value()) {
    EXPECT_EQ(report.drift_score, 0.0);
    EXPECT_EQ(report.drift_baseline_mae, 0.0);
  }
  std::remove("/tmp/gaia_scheduler_drift_off_ckpt.bin");
}

TEST_F(ServingTest, MonthlySchedulerPropagatesBadConfig) {
  MonthlyScheduler::Config cfg;
  cfg.market.num_shops = 5;  // below the simulator's minimum
  cfg.num_cycles = 1;
  MonthlyScheduler scheduler(cfg);
  EXPECT_FALSE(scheduler.Run().ok());
}

TEST_F(ServingTest, LoadCheckpointFailsCleanlyOnMissingFile) {
  ModelServer server(model_, dataset_, ServerConfig{});
  Status status = server.LoadCheckpoint("/tmp/no_such_gaia_ckpt.bin");
  EXPECT_FALSE(status.ok());
  // Server still serves with its previous weights.
  EXPECT_EQ(static_cast<int64_t>(server.Predict(0).gmv.size()),
            dataset_->horizon());
}

}  // namespace
}  // namespace gaia::serving
