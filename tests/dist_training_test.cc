// Distributed training layer: the deterministic ring all-reduce, the wire
// protocol, and the DistTrainer supervisor's failure ladder (heartbeat →
// retry → skip-step → degrade). Registered under the ctest label "dist" so
// CI can run the suite standalone (tools/ci.sh dist) and under sanitizers.
//
// The spawn tests exec the real gaia_cli binary (GAIA_CLI_BIN, injected by
// CMake) in its hidden train-worker mode, so they cover the supervisor and
// the worker end to end: pipes, ring routing, death detection, checkpoint
// publish. Worker-side faults are armed through the GAIA_FAULTS environment
// (inherited across exec); supervisor-side faults are armed in-process.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/market_io.h"
#include "data/market_simulator.h"
#include "dist/dist_trainer.h"
#include "dist/ring.h"
#include "dist/wire.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "serving/checkpoint_store.h"
#include "util/fault_injector.h"

#ifndef GAIA_CLI_BIN
#error "tests/CMakeLists.txt must define GAIA_CLI_BIN for dist_training_test"
#endif

namespace gaia::dist {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string TempDir(const std::string& stem) {
  const std::string dir =
      "/tmp/gaia_dist_" + stem + "_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Generates the small synthetic market the spawn tests train on and saves
/// it as CSV (the workers load it back through data::LoadMarketCsvRetry).
std::string MakeMarketDir(const std::string& stem) {
  const std::string dir = TempDir(stem);
  data::MarketConfig cfg;
  cfg.num_shops = 48;
  cfg.history_months = 12;
  cfg.seed = 3;
  auto market = data::MarketSimulator(cfg).Generate();
  EXPECT_TRUE(market.ok());
  EXPECT_TRUE(data::SaveMarketCsv(market.value(), dir).ok());
  return dir;
}

DistTrainerConfig BaseConfig(const std::string& market_dir,
                             const std::string& checkpoint_path) {
  DistTrainerConfig cfg;
  cfg.market_dir = market_dir;
  cfg.checkpoint_path = checkpoint_path;
  cfg.worker_binary = GAIA_CLI_BIN;
  cfg.channels = 8;
  cfg.num_layers = 1;
  cfg.model_seed = 1;
  cfg.train.max_epochs = 6;
  cfg.train.eval_every = 2;
  cfg.train.patience = 100;  // never early-stop: epoch counts stay exact
  cfg.train.batch_nodes = 32;
  cfg.train.seed = 7;
  return cfg;
}

// ---------------------------------------------------------------------------
// Ring all-reduce: partition and bitwise determinism
// ---------------------------------------------------------------------------

TEST(RingBlockTest, PartitionsRangeContiguouslyAndCompletely) {
  for (int64_t len : {int64_t{0}, int64_t{1}, int64_t{5}, int64_t{16},
                      int64_t{97}}) {
    for (int world : {1, 2, 3, 5}) {
      int64_t cursor = 0;
      for (int block = 0; block < world; ++block) {
        const BlockRange range = RingBlock(len, world, block);
        EXPECT_EQ(range.begin, cursor) << len << "/" << world << "@" << block;
        EXPECT_LE(range.begin, range.end);
        cursor = range.end;
      }
      EXPECT_EQ(cursor, len) << len << "/" << world;
    }
  }
}

/// In-memory ring: rank i's sends land in rank (i+1)%world's mailbox. The
/// fixed schedule means frames arrive in recv order, so each recv just pops
/// its mailbox and asserts the (step, block) tag.
class Mailboxes {
 public:
  explicit Mailboxes(int world) : boxes_(static_cast<size_t>(world)) {}

  void Push(int dst, int step, int block, std::vector<float> data) {
    Box& box = boxes_[static_cast<size_t>(dst)];
    std::lock_guard<std::mutex> lock(box.mu);
    box.frames.push_back({step, block, std::move(data)});
    box.cv.notify_one();
  }

  std::vector<float> Pop(int dst, int step, int block) {
    Box& box = boxes_[static_cast<size_t>(dst)];
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait(lock, [&] { return !box.frames.empty(); });
    Entry entry = std::move(box.frames.front());
    box.frames.pop_front();
    EXPECT_EQ(entry.step, step);
    EXPECT_EQ(entry.block, block);
    return std::move(entry.data);
  }

 private:
  struct Entry {
    int step;
    int block;
    std::vector<float> data;
  };
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Entry> frames;
  };
  std::vector<Box> boxes_;
};

std::vector<std::vector<float>> RunInMemoryRing(
    const std::vector<std::vector<float>>& inputs) {
  const int world = static_cast<int>(inputs.size());
  const int64_t len = static_cast<int64_t>(inputs[0].size());
  std::vector<std::vector<float>> data = inputs;
  Mailboxes mail(world);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world));
  for (int pos = 0; pos < world; ++pos) {
    threads.emplace_back([&, pos] {
      RingTransport transport;
      transport.send = [&, pos](int step, int block, const float* buf,
                                int64_t count) {
        mail.Push((pos + 1) % world, step, block,
                  std::vector<float>(buf, buf + count));
        return Status::OK();
      };
      transport.recv = [&, pos](int step, int block, float* buf,
                                int64_t count) {
        std::vector<float> got = mail.Pop(pos, step, block);
        EXPECT_EQ(static_cast<int64_t>(got.size()), count);
        std::memcpy(buf, got.data(), got.size() * sizeof(float));
        return Status::OK();
      };
      EXPECT_TRUE(RingAllReduceSum(pos, world,
                                   data[static_cast<size_t>(pos)].data(), len,
                                   transport)
                      .ok());
    });
  }
  for (std::thread& t : threads) t.join();
  return data;
}

TEST(RingAllReduceTest, SumsExactlyOnIntegerValues) {
  // Small integers add exactly in float32 under any association, so the
  // result must equal the plain sum regardless of the reduction order.
  const int world = 4;
  const int64_t len = 13;
  std::vector<std::vector<float>> inputs(world);
  for (int r = 0; r < world; ++r) {
    for (int64_t i = 0; i < len; ++i) {
      inputs[static_cast<size_t>(r)].push_back(
          static_cast<float>((r + 1) * 10 + i));
    }
  }
  const auto out = RunInMemoryRing(inputs);
  for (int64_t i = 0; i < len; ++i) {
    float want = 0.0f;
    for (int r = 0; r < world; ++r) {
      want += inputs[static_cast<size_t>(r)][static_cast<size_t>(i)];
    }
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(out[static_cast<size_t>(r)][static_cast<size_t>(i)], want)
          << "rank " << r << " index " << i;
    }
  }
}

TEST(RingAllReduceTest, RoundingIsBitwiseIdenticalAcrossRunsAndRanks) {
  // Values whose sum depends on association: determinism must come from the
  // fixed rank-ordered schedule, not from luck.
  const int world = 5;
  const int64_t len = 23;
  std::vector<std::vector<float>> inputs(world);
  for (int r = 0; r < world; ++r) {
    for (int64_t i = 0; i < len; ++i) {
      inputs[static_cast<size_t>(r)].push_back(
          1.0f / static_cast<float>(3 + r) +
          static_cast<float>(i) * 1e-7f);
    }
  }
  const auto first = RunInMemoryRing(inputs);
  for (int run = 0; run < 3; ++run) {
    const auto again = RunInMemoryRing(inputs);
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(again[static_cast<size_t>(r)], first[0])
          << "run " << run << " rank " << r;
    }
  }
}

TEST(RingAllReduceTest, WorldOfOneIsANoOp) {
  std::vector<float> data = {1.5f, -2.25f, 3.0f};
  const std::vector<float> before = data;
  RingTransport transport;  // never invoked at world size 1
  EXPECT_TRUE(RingAllReduceSum(0, 1, data.data(),
                               static_cast<int64_t>(data.size()), transport)
                  .ok());
  EXPECT_EQ(data, before);
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(WireTest, FrameSurvivesByteAtATimeReassembly) {
  Frame frame;
  frame.type = FrameType::kRingData;
  frame.epoch = 41;
  frame.arg0 = 2;
  frame.arg1 = 0;
  frame.arg2 = 3;
  frame.arg3 = 1;
  frame.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  const std::vector<uint8_t> bytes = SerializeFrame(frame);

  FrameBuffer buffer;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    buffer.Append(&bytes[i], 1);
    auto next = buffer.Next();
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next.value().has_value()) << "frame complete early at " << i;
  }
  buffer.Append(&bytes[bytes.size() - 1], 1);
  auto next = buffer.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.value().has_value());
  const Frame& got = *next.value();
  EXPECT_EQ(got.type, FrameType::kRingData);
  EXPECT_EQ(got.epoch, 41);
  EXPECT_EQ(got.arg0, 2u);
  EXPECT_EQ(got.arg2, 3u);
  EXPECT_EQ(got.payload, frame.payload);
}

TEST(WireTest, BadMagicIsDataLossNotAHang) {
  std::vector<uint8_t> junk(64, 0);
  FrameBuffer buffer;
  buffer.Append(junk.data(), junk.size());
  auto next = buffer.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kDataLoss);
}

TEST(WireTest, StructAndRankCodecsRoundTrip) {
  EpochReport report;
  report.ok = 1;
  report.shard_size = 17;
  report.shard_loss = 0.125f;
  auto report2 = DecodeStruct<EpochReport>(EncodeStruct(report));
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2.value().ok, 1u);
  EXPECT_EQ(report2.value().shard_size, 17u);
  EXPECT_EQ(report2.value().shard_loss, 0.125f);

  auto truncated =
      DecodeStruct<EpochReport>(std::vector<uint8_t>(3, 0));
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);

  const std::vector<int> ranks = {0, 2, 5};
  auto ranks2 = DecodeRanks(EncodeRanks(ranks));
  ASSERT_TRUE(ranks2.ok());
  EXPECT_EQ(ranks2.value(), ranks);
}

TEST(WireTest, CounterDeltaCodecRoundTrips) {
  const std::vector<std::pair<std::string, uint64_t>> deltas = {
      {"gaia_worker_epochs_total", 3},
      {"gaia_alloc_bytes_total", 123456789012345ull},
  };
  auto decoded = DecodeCounterDeltas(EncodeCounterDeltas(deltas));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), deltas);
  // Empty set is a valid (if pointless) frame.
  auto empty = DecodeCounterDeltas(EncodeCounterDeltas({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(WireTest, CorruptCounterDeltaPayloadIsDataLossNotACrash) {
  std::vector<uint8_t> good =
      EncodeCounterDeltas({{"gaia_worker_epochs_total", 1}});
  // Truncated mid-entry.
  std::vector<uint8_t> truncated(good.begin(), good.end() - 3);
  EXPECT_EQ(DecodeCounterDeltas(truncated).status().code(),
            StatusCode::kDataLoss);
  // A name length that claims more bytes than the payload holds.
  std::vector<uint8_t> lying = good;
  lying[4] = 0xff;  // first entry's name_len LSB
  lying[5] = 0xff;
  EXPECT_EQ(DecodeCounterDeltas(lying).status().code(),
            StatusCode::kDataLoss);
  // Trailing junk after the declared entries.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_EQ(DecodeCounterDeltas(padded).status().code(),
            StatusCode::kDataLoss);
  // Too short to even hold the count.
  EXPECT_EQ(DecodeCounterDeltas(std::vector<uint8_t>(2, 0)).status().code(),
            StatusCode::kDataLoss);
}

TEST(WireTest, WorkerArgvSerializesFloatsBitExactly) {
  DistTrainerConfig cfg;
  cfg.train.learning_rate = 0.0171f;
  cfg.train.grad_clip = 3.5f;
  const std::vector<std::string> argv = WorkerArgv(cfg, 1, 5, 6);
  auto value_of = [&](const std::string& flag) -> std::string {
    for (size_t i = 0; i + 1 < argv.size(); ++i) {
      if (argv[i] == flag) return argv[i + 1];
    }
    ADD_FAILURE() << "missing " << flag;
    return "";
  };
  // Hexfloat (%a) round-trips through strtod with zero rounding error —
  // the worker's parsed TrainConfig is bit-exact.
  EXPECT_EQ(static_cast<float>(std::strtod(value_of("--lr").c_str(), nullptr)),
            0.0171f);
  EXPECT_EQ(static_cast<float>(
                std::strtod(value_of("--grad-clip").c_str(), nullptr)),
            3.5f);
  EXPECT_EQ(value_of("--rank"), "1");
  EXPECT_EQ(value_of("--read-fd"), "5");
  EXPECT_EQ(value_of("--write-fd"), "6");
}

// ---------------------------------------------------------------------------
// End-to-end: real worker processes through gaia_cli train-worker
// ---------------------------------------------------------------------------

class DistTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    ::unsetenv("GAIA_FAULTS");
    ::unsetenv("GAIA_FAULTS_SEED");
    market_dir_ = MakeMarketDir("market");
    out_dir_ = TempDir("out");
  }

  void TearDown() override {
    util::FaultInjector::Global().Reset();
    ::unsetenv("GAIA_FAULTS");
    ::unsetenv("GAIA_FAULTS_SEED");
  }

  std::string Checkpoint(const std::string& name) const {
    return out_dir_ + "/" + name;
  }

  std::string market_dir_;
  std::string out_dir_;
};

TEST_F(DistTrainerTest, SingleWorkerMatchesInProcessTrainerBitwise) {
  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("w1.bin"));
  cfg.num_workers = 1;
  auto dist = DistTrainer(cfg).Fit();
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(dist.value().epochs_run, cfg.train.max_epochs);
  EXPECT_EQ(dist.value().skipped_steps, 0);
  EXPECT_EQ(dist.value().workers_lost, 0);

  // The in-process replica: same CSV round trip, same model construction as
  // RunTrainWorker, same TrainConfig. At world size 1 the hooks do zero
  // numeric work, so the checkpoints must agree byte for byte.
  auto market = data::LoadMarketCsv(market_dir_);
  ASSERT_TRUE(market.ok());
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  ASSERT_TRUE(dataset.ok());
  core::GaiaConfig model_cfg;
  model_cfg.channels = cfg.channels;
  model_cfg.num_layers = cfg.num_layers;
  model_cfg.tel_groups = 4;
  model_cfg.seed = cfg.model_seed;
  auto model = core::GaiaModel::Create(
      model_cfg, dataset.value().history_len(), dataset.value().horizon(),
      dataset.value().temporal_dim(), dataset.value().static_dim());
  ASSERT_TRUE(model.ok());
  core::TrainConfig train = cfg.train;
  train.deadline_ms = 0.0;
  core::TrainResult result =
      core::Trainer(train).Fit(model.value().get(), dataset.value());
  EXPECT_EQ(result.epochs_run, cfg.train.max_epochs);
  const std::string inproc_path = Checkpoint("inproc.bin");
  ASSERT_TRUE(model.value()->Save(inproc_path).ok());

  EXPECT_EQ(ReadFileBytes(Checkpoint("w1.bin")), ReadFileBytes(inproc_path));
}

TEST_F(DistTrainerTest, WorkerMetricsAreAggregatedBySupervisor) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t frames_before =
      registry.CounterValue("gaia_dist_metric_frames_total");
  const uint64_t epochs_before =
      registry.CounterValue("gaia_dist_worker_epoch_exchanges_total");
  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("wm.bin"));
  cfg.num_workers = 2;
  auto dist = DistTrainer(cfg).Fit();
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  // Every worker ships a counter-delta frame per epoch; the supervisor
  // merges them under the gaia_dist_worker_ prefix (gaia_ stripped first).
  // gaia_epoch_exchanges_total is bumped unconditionally in
  // ExchangeGradients, so even a run with no faults and observability off
  // produces nonzero deltas.
  EXPECT_GT(registry.CounterValue("gaia_dist_metric_frames_total"),
            frames_before);
  const uint64_t epochs_after =
      registry.CounterValue("gaia_dist_worker_epoch_exchanges_total");
  EXPECT_GE(epochs_after - epochs_before,
            static_cast<uint64_t>(cfg.train.max_epochs * cfg.num_workers));
}

TEST_F(DistTrainerTest, FixedWorldSizeRerunsAreBitwiseIdentical) {
  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("w3a.bin"));
  cfg.num_workers = 3;
  auto first = DistTrainer(cfg).Fit();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().skipped_steps, 0);
  EXPECT_EQ(first.value().workers_lost, 0);
  EXPECT_FALSE(first.value().degraded);

  cfg.checkpoint_path = Checkpoint("w3b.bin");
  auto second = DistTrainer(cfg).Fit();
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_EQ(ReadFileBytes(Checkpoint("w3a.bin")),
            ReadFileBytes(Checkpoint("w3b.bin")));
}

TEST_F(DistTrainerTest, SpawnFaultsRideTheRetryLadder) {
  // Exactly two spawn attempts fail (probability 1, max_fires 2); the retry
  // policy absorbs both and the run is otherwise clean.
  util::FaultSpec spec;
  spec.site = "dist.worker_spawn";
  spec.kind = util::FaultKind::kUnavailable;
  spec.probability = 1.0;
  spec.max_fires = 2;
  util::FaultInjector::Global().Arm(spec);

  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("spawn.bin"));
  cfg.num_workers = 2;
  cfg.spawn_retry.max_attempts = 5;
  cfg.spawn_retry.sleep = false;
  auto result = DistTrainer(cfg).Fit();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().spawn_retries, 2);
  EXPECT_EQ(result.value().workers_started, 2);
  EXPECT_EQ(result.value().skipped_steps, 0);
  EXPECT_TRUE(nn::Module::VerifyCheckpoint(result.value().checkpoint_path)
                  .ok());
}

TEST_F(DistTrainerTest, GradExchangeFaultsSkipStepsAndStillPublish) {
  // Armed through the environment so the exec'd workers inherit it; the
  // per-site PCG stream makes the fire pattern reproducible at this seed.
  ::setenv("GAIA_FAULTS", "train.grad_exchange:unavailable:0.3", 1);
  ::setenv("GAIA_FAULTS_SEED", "11", 1);

  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("faulted.bin"));
  cfg.num_workers = 2;
  cfg.train.max_epochs = 8;
  auto result = DistTrainer(cfg).Fit();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().epochs_run, 8);
  EXPECT_GT(result.value().skipped_steps, 0);
  EXPECT_EQ(result.value().workers_lost, 0);
  EXPECT_TRUE(nn::Module::VerifyCheckpoint(result.value().checkpoint_path)
                  .ok());
}

TEST_F(DistTrainerTest, KilledWorkerDegradesToSurvivorsAndStillPublishes) {
  // Chaos leg: SIGKILL one randomly chosen worker after round 2. The seed is
  // echoed so a failure reproduces with GAIA_CHAOS_SEED=<seed>.
  uint32_t seed;
  if (const char* env = ::getenv("GAIA_CHAOS_SEED")) {
    seed = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  } else {
    seed = std::random_device{}();
  }
  std::cerr << "[dist chaos] GAIA_CHAOS_SEED=" << seed << "\n";
  std::mt19937 rng(seed);

  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("chaos.bin"));
  cfg.num_workers = 3;
  cfg.min_workers = 1;
  cfg.train.max_epochs = 10;
  bool killed = false;
  cfg.on_round = [&](int64_t epoch, const std::vector<pid_t>& pids) {
    if (killed || epoch < 2 || pids.empty()) return;
    const pid_t victim =
        pids[rng() % static_cast<uint32_t>(pids.size())];
    std::cerr << "[dist chaos] killing worker pid " << victim << " after "
              << "round " << epoch << "\n";
    ::kill(victim, SIGKILL);
    killed = true;
  };

  auto result = DistTrainer(cfg).Fit();
  ASSERT_TRUE(result.ok()) << result.status().ToString()
                           << " (GAIA_CHAOS_SEED=" << seed << ")";
  EXPECT_TRUE(killed);
  EXPECT_EQ(result.value().workers_lost, 1) << "seed " << seed;
  EXPECT_TRUE(result.value().degraded) << "seed " << seed;
  EXPECT_GE(result.value().skipped_steps, 1) << "seed " << seed;
  EXPECT_EQ(result.value().epochs_run, 10) << "seed " << seed;
  EXPECT_TRUE(nn::Module::VerifyCheckpoint(result.value().checkpoint_path)
                  .ok())
      << "seed " << seed;
}

TEST_F(DistTrainerTest, FinalCheckpointIsAdoptedIntoStore) {
  DistTrainerConfig cfg = BaseConfig(market_dir_, Checkpoint("stored.bin"));
  cfg.num_workers = 2;
  cfg.store_dir = TempDir("store");
  auto result = DistTrainer(cfg).Fit();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // A fresh store over the same directory sees the adopted checkpoint.
  serving::CheckpointStoreConfig store_cfg;
  store_cfg.dir = cfg.store_dir;
  serving::CheckpointStore store(store_cfg);
  core::GaiaConfig model_cfg;
  model_cfg.channels = cfg.channels;
  model_cfg.num_layers = cfg.num_layers;
  model_cfg.tel_groups = 4;
  model_cfg.seed = cfg.model_seed;
  auto market = data::LoadMarketCsv(market_dir_);
  ASSERT_TRUE(market.ok());
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  ASSERT_TRUE(dataset.ok());
  auto model = core::GaiaModel::Create(
      model_cfg, dataset.value().history_len(), dataset.value().horizon(),
      dataset.value().temporal_dim(), dataset.value().static_dim());
  ASSERT_TRUE(model.ok());
  auto loaded = store.LoadLatestGood(model.value().get());
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

// ---------------------------------------------------------------------------
// PublishLock: dead-holder break is counted and audited
// ---------------------------------------------------------------------------

TEST(PublishLockTest, BreakingADeadHoldersLockIncrementsTheCounter) {
  const std::string dir = TempDir("lockbreak");

  // A pid that provably lived and died: fork a child that exits at once.
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(dead, &wstatus, 0), dead);

  const std::string lock_path = dir + "/store.lock";
  {
    std::ofstream out(lock_path);
    out << dead << "\n";
  }

  const uint64_t broken_before = obs::MetricsRegistry::Global().CounterValue(
      "gaia_robust_checkpoint_lock_broken_total");
  auto lock = serving::PublishLock::Acquire(dir);
  EXPECT_TRUE(lock.ok()) << lock.status().ToString();
  EXPECT_EQ(obs::MetricsRegistry::Global().CounterValue(
                "gaia_robust_checkpoint_lock_broken_total"),
            broken_before + 1);
}

TEST(PublishLockTest, LiveHoldersLockIsRespectedNotBroken) {
  const std::string dir = TempDir("lockheld");
  const std::string lock_path = dir + "/store.lock";
  {
    std::ofstream out(lock_path);
    out << ::getpid() << "\n";  // we are definitely alive
  }
  const uint64_t broken_before = obs::MetricsRegistry::Global().CounterValue(
      "gaia_robust_checkpoint_lock_broken_total");
  auto lock = serving::PublishLock::Acquire(dir);
  EXPECT_FALSE(lock.ok());
  EXPECT_EQ(lock.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(obs::MetricsRegistry::Global().CounterValue(
                "gaia_robust_checkpoint_lock_broken_total"),
            broken_before);
  std::remove(lock_path.c_str());
}

}  // namespace
}  // namespace gaia::dist
