#include "graph/eseller_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "graph/partitioner.h"

namespace gaia::graph {
namespace {

TEST(EsellerGraphTest, EmptyGraph) {
  auto g = EsellerGraph::Create(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0);
  EXPECT_EQ(g.value().num_edges(), 0);
}

TEST(EsellerGraphTest, CsrInNeighbors) {
  std::vector<Edge> edges = {
      {0, 2, EdgeType::kSupplyChain},
      {1, 2, EdgeType::kSameOwner},
      {2, 0, EdgeType::kSupplyChain},
  };
  auto g = EsellerGraph::Create(3, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().InDegree(2), 2);
  EXPECT_EQ(g.value().InDegree(1), 0);
  auto neighbors = g.value().InNeighbors(2);
  std::set<int32_t> sources;
  for (const auto& nb : neighbors) sources.insert(nb.node);
  EXPECT_EQ(sources, (std::set<int32_t>{0, 1}));
}

TEST(EsellerGraphTest, EdgeTypePreserved) {
  auto g = EsellerGraph::Create(
      2, {{0, 1, EdgeType::kSameOwner}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().InNeighbors(1)[0].type, EdgeType::kSameOwner);
}

TEST(EsellerGraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_FALSE(EsellerGraph::Create(2, {{0, 2, EdgeType::kSameOwner}}).ok());
  EXPECT_FALSE(EsellerGraph::Create(2, {{-1, 0, EdgeType::kSameOwner}}).ok());
  EXPECT_FALSE(EsellerGraph::Create(-1, {}).ok());
}

TEST(EsellerGraphTest, RejectsSelfLoops) {
  auto g = EsellerGraph::Create(2, {{1, 1, EdgeType::kSupplyChain}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(EsellerGraphTest, SampleNeighborsBoundsAndSubset) {
  std::vector<Edge> edges;
  for (int32_t v = 1; v < 20; ++v) {
    edges.push_back({v, 0, EdgeType::kSupplyChain});
  }
  auto g = EsellerGraph::Create(20, edges);
  ASSERT_TRUE(g.ok());
  Rng rng(3);
  auto sample = g.value().SampleInNeighbors(0, 5, &rng);
  EXPECT_EQ(sample.size(), 5u);
  std::set<int32_t> unique;
  for (const auto& nb : sample) {
    EXPECT_GE(nb.node, 1);
    EXPECT_LT(nb.node, 20);
    unique.insert(nb.node);
  }
  EXPECT_EQ(unique.size(), 5u);  // without replacement
  // Sampling fewer than degree returns all.
  auto all = g.value().SampleInNeighbors(0, 50, &rng);
  EXPECT_EQ(all.size(), 19u);
}

TEST(EsellerGraphTest, StatsAreConsistent) {
  GraphBuilder builder(5);
  builder.AddSupplyChain(0, 1).AddSameOwner(2, 3);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  GraphStats stats = g.value().ComputeStats();
  EXPECT_EQ(stats.num_nodes, 5);
  EXPECT_EQ(stats.num_edges, 4);  // two bidirectional relations
  EXPECT_EQ(stats.supply_chain_edges, 2);
  EXPECT_EQ(stats.same_owner_edges, 2);
  EXPECT_EQ(stats.isolated_nodes, 1);  // node 4
  EXPECT_EQ(stats.max_in_degree, 1);
  EXPECT_NE(g.value().ToString().find("nodes=5"), std::string::npos);
}

TEST(GraphBuilderTest, RelationsAreBidirectional) {
  GraphBuilder builder(3);
  builder.AddSupplyChain(0, 1);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().InDegree(0), 1);
  EXPECT_EQ(g.value().InDegree(1), 1);
}

TEST(GraphBuilderTest, DeduplicatesRepeatedEdges) {
  GraphBuilder builder(3);
  builder.AddSameOwner(0, 1).AddSameOwner(0, 1).AddSameOwner(1, 0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2);
}

TEST(GraphBuilderTest, SameEndpointsDifferentTypesKept) {
  GraphBuilder builder(2);
  builder.AddDirected(0, 1, EdgeType::kSupplyChain);
  builder.AddDirected(0, 1, EdgeType::kSameOwner);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2);
}

// ---------------------------------------------------------------------------
// Ego subgraph extraction
// ---------------------------------------------------------------------------

class EgoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Chain 0 <- 1 <- 2 <- 3 plus a hub feeding node 0.
    GraphBuilder builder(8);
    builder.AddDirected(1, 0, EdgeType::kSupplyChain);
    builder.AddDirected(2, 1, EdgeType::kSupplyChain);
    builder.AddDirected(3, 2, EdgeType::kSupplyChain);
    for (int32_t v = 4; v < 8; ++v) {
      builder.AddDirected(v, 0, EdgeType::kSameOwner);
    }
    auto g = builder.Build();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<EsellerGraph>(std::move(g).value());
  }
  std::unique_ptr<EsellerGraph> graph_;
};

TEST_F(EgoTest, CenterIsLocalZero) {
  Rng rng(1);
  EgoSubgraph ego = ExtractEgoSubgraph(*graph_, 2, 1, 0, &rng);
  EXPECT_EQ(ego.nodes[0], 2);
}

TEST_F(EgoTest, HopLimitRespected) {
  Rng rng(2);
  EgoSubgraph one_hop = ExtractEgoSubgraph(*graph_, 0, 1, 0, &rng);
  std::set<int32_t> nodes(one_hop.nodes.begin(), one_hop.nodes.end());
  EXPECT_TRUE(nodes.count(1));
  EXPECT_FALSE(nodes.count(2));  // 2 hops away
  EgoSubgraph two_hop = ExtractEgoSubgraph(*graph_, 0, 2, 0, &rng);
  std::set<int32_t> nodes2(two_hop.nodes.begin(), two_hop.nodes.end());
  EXPECT_TRUE(nodes2.count(2));
  EXPECT_FALSE(nodes2.count(3));
}

TEST_F(EgoTest, ZeroHopsIsJustCenter) {
  Rng rng(3);
  EgoSubgraph ego = ExtractEgoSubgraph(*graph_, 0, 0, 0, &rng);
  EXPECT_EQ(ego.num_nodes(), 1);
  EXPECT_TRUE(ego.edges.empty());
}

TEST_F(EgoTest, FanoutCapLimitsNeighbors) {
  Rng rng(4);
  EgoSubgraph ego = ExtractEgoSubgraph(*graph_, 0, 1, 2, &rng);
  EXPECT_LE(ego.num_nodes(), 3);  // center + at most 2 sampled
}

TEST_F(EgoTest, LocalEdgesAreValidAndTyped) {
  Rng rng(5);
  EgoSubgraph ego = ExtractEgoSubgraph(*graph_, 0, 2, 0, &rng);
  for (const Edge& e : ego.edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, ego.num_nodes());
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, ego.num_nodes());
  }
  // Local subgraph must be constructible as a graph.
  EXPECT_TRUE(EsellerGraph::Create(ego.num_nodes(), ego.edges).ok());
}

TEST_F(EgoTest, IsolatedCenterYieldsSingleton) {
  GraphBuilder builder(2);
  builder.AddSameOwner(0, 1);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(6);
  // Node with no in-neighbours in a fresh 3-node graph.
  auto g2 = EsellerGraph::Create(3, {{0, 1, EdgeType::kSameOwner}});
  EgoSubgraph ego = ExtractEgoSubgraph(g2.value(), 2, 2, 0, &rng);
  EXPECT_EQ(ego.num_nodes(), 1);
}

// ---------------------------------------------------------------------------
// Partitioner (the sharded serving tier's shop -> shard map)
// ---------------------------------------------------------------------------

TEST(PartitionerTest, ShardAssignmentIsStableAndInRange) {
  HashPartitioner partitioner(4);
  for (int32_t node = 0; node < 1000; ++node) {
    const int shard = partitioner.ShardOf(node);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    // Pure function of the node id: the routing contract the sharded
    // server (and any future cross-process router) relies on.
    EXPECT_EQ(shard, partitioner.ShardOf(node));
  }
  // A second instance with the same K agrees — no per-instance state.
  HashPartitioner other(4);
  for (int32_t node = 0; node < 1000; ++node) {
    EXPECT_EQ(partitioner.ShardOf(node), other.ShardOf(node));
  }
}

TEST(PartitionerTest, SingleShardMapsEverythingToZero) {
  HashPartitioner partitioner(1);
  for (int32_t node : {0, 1, 63, 100000}) {
    EXPECT_EQ(partitioner.ShardOf(node), 0);
  }
}

TEST(PartitionerTest, HashSpreadsDenseIdsRoughlyEvenly) {
  // Dense sequential shop ids (the common case: shops are numbered 0..N)
  // must not pile onto few shards; the splitmix64 mix should keep every
  // shard within a loose factor of the ideal share.
  constexpr int kShards = 8;
  constexpr int64_t kNodes = 8000;
  HashPartitioner partitioner(kShards);
  const std::vector<int64_t> sizes = ShardSizes(partitioner, kNodes);
  ASSERT_EQ(sizes.size(), static_cast<size_t>(kShards));
  const int64_t ideal = kNodes / kShards;
  int64_t total = 0;
  for (int64_t size : sizes) {
    total += size;
    EXPECT_GT(size, ideal / 2) << "shard starved";
    EXPECT_LT(size, ideal * 2) << "shard overloaded";
  }
  EXPECT_EQ(total, kNodes);  // a partition: every node in exactly one shard
}

TEST(PartitionerTest, FactorySelectsStrategy) {
  const std::unique_ptr<Partitioner> p =
      MakePartitioner(PartitionStrategy::kHash, 3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->num_shards(), 3);
  EXPECT_EQ(p->name(), "hash");
  const HashPartitioner direct(3);
  for (int32_t node = 0; node < 256; ++node) {
    EXPECT_EQ(p->ShardOf(node), direct.ShardOf(node));
  }
}

}  // namespace
}  // namespace gaia::graph
