#include "data/dataset.h"
#include "data/market_simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/evaluator.h"
#include "ts/metrics.h"

namespace gaia::data {
namespace {

MarketConfig TestConfig() {
  MarketConfig cfg;
  cfg.num_shops = 200;
  cfg.seed = 123;
  return cfg;
}

class MarketSimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto market = MarketSimulator(TestConfig()).Generate();
    ASSERT_TRUE(market.ok()) << market.status().ToString();
    market_ = std::make_unique<MarketData>(std::move(market).value());
  }
  std::unique_ptr<MarketData> market_;
};

TEST_F(MarketSimulatorTest, ValidatesConfig) {
  MarketConfig bad = TestConfig();
  bad.num_shops = 5;
  EXPECT_FALSE(MarketSimulator(bad).Generate().ok());
  bad = TestConfig();
  bad.supplier_fraction = 0.0;
  EXPECT_FALSE(MarketSimulator(bad).Generate().ok());
  bad = TestConfig();
  bad.min_lead_months = 4;
  bad.max_lead_months = 2;
  EXPECT_FALSE(MarketSimulator(bad).Generate().ok());
  bad = TestConfig();
  bad.min_age_months = 0;
  EXPECT_FALSE(MarketSimulator(bad).Generate().ok());
  bad = TestConfig();
  bad.noise_level = 2.0;
  EXPECT_FALSE(MarketSimulator(bad).Generate().ok());
}

TEST_F(MarketSimulatorTest, DeterministicForSameSeed) {
  auto second = MarketSimulator(TestConfig()).Generate();
  ASSERT_TRUE(second.ok());
  const MarketData& a = *market_;
  const MarketData& b = second.value();
  ASSERT_EQ(a.shops.size(), b.shops.size());
  for (size_t i = 0; i < a.shops.size(); i += 17) {
    EXPECT_EQ(a.shops[i].industry, b.shops[i].industry);
    EXPECT_EQ(a.shops[i].age_months, b.shops[i].age_months);
    ASSERT_EQ(a.shops[i].gmv.size(), b.shops[i].gmv.size());
    for (size_t m = 0; m < a.shops[i].gmv.size(); ++m) {
      EXPECT_DOUBLE_EQ(a.shops[i].gmv[m], b.shops[i].gmv[m]);
    }
  }
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST_F(MarketSimulatorTest, ShapesAndNonNegativity) {
  const int total = TestConfig().total_months();
  for (const Shop& shop : market_->shops) {
    ASSERT_EQ(static_cast<int>(shop.gmv.size()), total);
    for (int m = 0; m < total; ++m) {
      EXPECT_GE(shop.gmv[static_cast<size_t>(m)], 0.0);
      EXPECT_GE(shop.orders[static_cast<size_t>(m)], 0.0);
      EXPECT_GE(shop.customers[static_cast<size_t>(m)], 0.0);
    }
    // Inactive before birth.
    for (int m = 0; m < shop.birth_month; ++m) {
      EXPECT_EQ(shop.gmv[static_cast<size_t>(m)], 0.0);
    }
    EXPECT_GE(shop.age_months, TestConfig().min_age_months);
    EXPECT_LE(shop.age_months, TestConfig().history_months);
  }
}

TEST_F(MarketSimulatorTest, AgeDistributionIsRightSkewed) {
  int young = 0, old = 0;
  for (const Shop& shop : market_->shops) {
    (shop.age_months < 10 ? young : old) += 1;
  }
  // Pareto(1.1) from 4: most shops are young — the Fig. 1a shape.
  EXPECT_GT(young, old);
}

TEST_F(MarketSimulatorTest, SupplierSeriesLeadsRetailer) {
  // The planted inter temporal shift: supplier GMV at t correlates best
  // with downstream retailer GMV at t + lead. Verify on links whose shops
  // have full histories and a single dominant supplier-retailer pairing.
  int checked = 0, leading = 0;
  for (const SupplyLink& link : market_->supply_links) {
    const Shop& supplier = market_->shops[static_cast<size_t>(link.supplier)];
    const Shop& retailer = market_->shops[static_cast<size_t>(link.retailer)];
    if (supplier.birth_month > 6 || retailer.birth_month > 6) continue;
    std::vector<double> s(supplier.gmv.begin(), supplier.gmv.end());
    std::vector<double> r(retailer.gmv.begin(), retailer.gmv.end());
    ts::LagCorrelation best = ts::BestLagCorrelation(s, r, 6);
    ++checked;
    if (best.lag > 0) ++leading;
    if (checked >= 60) break;
  }
  ASSERT_GT(checked, 4);
  // A clear majority of links must show the supplier leading (positive lag).
  EXPECT_GT(leading * 2, checked);
}

TEST_F(MarketSimulatorTest, NovemberFestivalSpikeVisible) {
  // Average retailer GMV in November months should exceed the adjacent
  // October/December months (festival boost 0.9).
  const MarketConfig cfg = TestConfig();
  double nov = 0.0, adjacent = 0.0;
  int64_t nov_n = 0, adj_n = 0;
  for (const Shop& shop : market_->shops) {
    if (shop.is_supplier) continue;
    for (int m = shop.birth_month; m < cfg.history_months; ++m) {
      const int cal = market_->CalendarMonth(m);
      if (cal == 10) {
        nov += shop.gmv[static_cast<size_t>(m)];
        ++nov_n;
      } else if (cal == 9 || cal == 11) {
        adjacent += shop.gmv[static_cast<size_t>(m)];
        ++adj_n;
      }
    }
  }
  ASSERT_GT(nov_n, 0);
  ASSERT_GT(adj_n, 0);
  EXPECT_GT(nov / nov_n, 1.2 * adjacent / adj_n);
}

TEST_F(MarketSimulatorTest, GraphMatchesRelations) {
  const graph::GraphStats stats = market_->graph.ComputeStats();
  EXPECT_EQ(stats.num_nodes, TestConfig().num_shops);
  EXPECT_GT(stats.supply_chain_edges, 0);
  EXPECT_GT(stats.same_owner_edges, 0);
  // Every supply link appears in both directions.
  const SupplyLink& link = market_->supply_links.front();
  bool found = false;
  for (const auto& nb : market_->graph.InNeighbors(link.retailer)) {
    if (nb.node == link.supplier &&
        nb.type == graph::EdgeType::kSupplyChain) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MarketSimulatorTest, OwnerClustersAreDisjoint) {
  std::vector<int> seen(static_cast<size_t>(TestConfig().num_shops), 0);
  for (const auto& cluster : market_->owner_clusters) {
    EXPECT_GE(cluster.size(), 2u);
    EXPECT_LE(cluster.size(), 4u);
    for (int32_t v : cluster) ++seen[static_cast<size_t>(v)];
  }
  for (int count : seen) EXPECT_LE(count, 1);
}

// ---------------------------------------------------------------------------
// ForecastDataset
// ---------------------------------------------------------------------------

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto market = MarketSimulator(TestConfig()).Generate();
    ASSERT_TRUE(market.ok());
    market_ = std::make_unique<MarketData>(std::move(market).value());
    auto ds = ForecastDataset::Create(*market_, DatasetOptions{});
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::make_unique<ForecastDataset>(std::move(ds).value());
  }
  std::unique_ptr<MarketData> market_;
  std::unique_ptr<ForecastDataset> dataset_;
};

TEST_F(DatasetTest, OptionValidation) {
  DatasetOptions bad;
  bad.train_fraction = 0.95;
  bad.val_fraction = 0.1;
  EXPECT_FALSE(ForecastDataset::Create(*market_, bad).ok());
  bad = DatasetOptions{};
  bad.mape_floor = -1.0;
  EXPECT_FALSE(ForecastDataset::Create(*market_, bad).ok());
}

TEST_F(DatasetTest, FeatureShapes) {
  const MarketConfig cfg = TestConfig();
  EXPECT_EQ(dataset_->num_nodes(), cfg.num_shops);
  EXPECT_EQ(dataset_->history_len(), cfg.history_months);
  EXPECT_EQ(dataset_->horizon(), cfg.horizon_months);
  const Tensor& z = dataset_->z(0);
  EXPECT_EQ(z.dim(0), cfg.history_months);
  const Tensor& temporal = dataset_->temporal(0);
  EXPECT_EQ(temporal.dim(0), cfg.history_months);
  EXPECT_EQ(temporal.dim(1), dataset_->temporal_dim());
  EXPECT_EQ(dataset_->static_features(0).dim(0), dataset_->static_dim());
  EXPECT_EQ(dataset_->target(0).dim(0), cfg.horizon_months);
}

TEST_F(DatasetTest, NormalizationRoundTrip) {
  for (int32_t v = 0; v < 20; ++v) {
    const Shop& shop = market_->shops[static_cast<size_t>(v)];
    for (int h = 0; h < dataset_->horizon(); ++h) {
      const double actual =
          shop.gmv[static_cast<size_t>(TestConfig().history_months + h)];
      EXPECT_NEAR(dataset_->ActualGmv(v, h), actual,
                  1e-2 * std::max(actual, 1.0));
    }
  }
}

TEST_F(DatasetTest, NormalizedHistoryIsOrderOne) {
  // Per-shop scaling: mean of active normalized history should be ~1.
  for (int32_t v = 0; v < 20; ++v) {
    const Tensor& z = dataset_->z(v);
    const int len = dataset_->series_length(v);
    double sum = 0.0;
    for (int64_t t = z.dim(0) - len; t < z.dim(0); ++t) sum += z.at(t);
    EXPECT_NEAR(sum / len, 1.0, 1e-3);
  }
}

TEST_F(DatasetTest, StaticFeaturesOneHotStructure) {
  const MarketConfig cfg = TestConfig();
  for (int32_t v = 0; v < 10; ++v) {
    const Tensor& s = dataset_->static_features(v);
    double industry_sum = 0.0, region_sum = 0.0;
    for (int i = 0; i < cfg.num_industries; ++i) industry_sum += s.at(i);
    for (int r = 0; r < cfg.num_regions; ++r) {
      region_sum += s.at(cfg.num_industries + r);
    }
    EXPECT_DOUBLE_EQ(industry_sum, 1.0);
    EXPECT_DOUBLE_EQ(region_sum, 1.0);
  }
}

TEST_F(DatasetTest, ActiveMaskMatchesSeriesLength) {
  for (int32_t v = 0; v < 20; ++v) {
    const Tensor& temporal = dataset_->temporal(v);
    int active = 0;
    for (int64_t t = 0; t < temporal.dim(0); ++t) {
      active += temporal.at(t, 4) > 0.5f ? 1 : 0;
    }
    EXPECT_EQ(active, dataset_->series_length(v));
  }
}

TEST_F(DatasetTest, SplitIsDisjointPartition) {
  std::vector<int> seen(static_cast<size_t>(dataset_->num_nodes()), 0);
  for (int32_t v : dataset_->train_nodes()) ++seen[static_cast<size_t>(v)];
  for (int32_t v : dataset_->val_nodes()) ++seen[static_cast<size_t>(v)];
  for (int32_t v : dataset_->test_nodes()) ++seen[static_cast<size_t>(v)];
  for (int count : seen) EXPECT_EQ(count, 1);
  // Roughly 70/10/20.
  EXPECT_NEAR(static_cast<double>(dataset_->train_nodes().size()) /
                  dataset_->num_nodes(),
              0.7, 0.02);
}

TEST_F(DatasetTest, SplitDeterministicPerSeed) {
  auto ds2 = ForecastDataset::Create(*market_, DatasetOptions{});
  ASSERT_TRUE(ds2.ok());
  EXPECT_EQ(dataset_->train_nodes(), ds2.value().train_nodes());
  DatasetOptions other;
  other.split_seed = 999;
  auto ds3 = ForecastDataset::Create(*market_, other);
  ASSERT_TRUE(ds3.ok());
  EXPECT_NE(dataset_->train_nodes(), ds3.value().train_nodes());
}

TEST_F(DatasetTest, GraphCarriedOver) {
  EXPECT_EQ(dataset_->graph().num_nodes(), market_->graph.num_nodes());
  EXPECT_EQ(dataset_->graph().num_edges(), market_->graph.num_edges());
}

}  // namespace
}  // namespace gaia::data
