// Fault-tolerance layer: checkpoint integrity, last-good rollback, request
// degradation and the end-to-end chaos schedule. Registered under the ctest
// label "robust" so CI can run the suite standalone (tools/ci.sh robust) and
// under sanitizers.
//
// Every test arms the process-global util::FaultInjector and resets it on
// exit; ctest runs each test in its own process, so armed faults never leak
// across tests.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/market_simulator.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "serving/checkpoint_store.h"
#include "serving/model_server.h"
#include "serving/monthly_scheduler.h"
#include "ts/holt_winters.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace gaia {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& stem) {
  return "/tmp/gaia_robust_" + stem + "_" + std::to_string(::getpid());
}

/// XORs one mid-file byte — the same corruption model the injector uses.
void FlipByteOnDisk(const std::string& path) {
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<int64_t>(f.tellg());
  ASSERT_GT(size, 0);
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(size / 2);
  f.write(&byte, 1);
}

void TruncateOnDisk(const std::string& path, double keep_fraction) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(static_cast<size_t>(static_cast<double>(bytes.size()) *
                                   keep_fraction));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<float> Snapshot(const nn::Module& module) {
  std::vector<float> out;
  for (const nn::Var& p : module.Parameters()) {
    const float* data = p->value.data();
    out.insert(out.end(), data, data + p->value.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint format v2: integrity rejection matrix
// ---------------------------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    path_ = TempPath("ckpt") + ".bin";
  }
  void TearDown() override {
    util::FaultInjector::Global().Reset();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(CheckpointTest, SaveWritesVerifiableFileWithoutTempResidue) {
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  ASSERT_TRUE(module.Save(path_).ok());
  EXPECT_TRUE(nn::Module::VerifyCheckpoint(path_).ok());
  // Atomic publish leaves no temp file behind.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointTest, LoadRejectsByteFlipAndLeavesModuleUntouched) {
  Rng rng(3);
  nn::Linear source(4, 3, &rng);
  ASSERT_TRUE(source.Save(path_).ok());
  FlipByteOnDisk(path_);

  Rng rng2(99);
  nn::Linear target(4, 3, &rng2);
  const std::vector<float> before = Snapshot(target);
  Status status = target.Load(path_);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  // Verify-then-swap: a failed load never half-applies.
  EXPECT_EQ(Snapshot(target), before);
  EXPECT_EQ(nn::Module::VerifyCheckpoint(path_).code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, LoadRejectsTruncation) {
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  ASSERT_TRUE(module.Save(path_).ok());
  TruncateOnDisk(path_, 0.5);
  Rng rng2(4);
  nn::Linear target(4, 3, &rng2);
  EXPECT_EQ(target.Load(path_).code(), StatusCode::kDataLoss);
  EXPECT_EQ(nn::Module::VerifyCheckpoint(path_).code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, LoadRejectsV1FormatExplicitly) {
  // A well-formed v1 shell: v1 magic, 4 bytes of padding, valid file CRC —
  // the reader must name the version problem, not a CRC mismatch.
  std::string buf;
  const uint64_t magic_v1 = 0x4741494143503031ULL;  // "GAIACP01"
  buf.append(reinterpret_cast<const char*>(&magic_v1), sizeof(magic_v1));
  buf.append(4, '\0');
  const uint32_t crc = util::Crc32(buf.data(), buf.size());
  buf.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::ofstream out(path_, std::ios::binary);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.close();

  Rng rng(3);
  nn::Linear target(4, 3, &rng);
  Status status = target.Load(path_);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("v1"), std::string::npos)
      << status.ToString();
}

TEST_F(CheckpointTest, LoadRejectsNonFiniteParameters) {
  Rng rng(3);
  nn::Linear source(4, 3, &rng);
  source.Parameters()[0]->value.data()[0] = std::nanf("");
  ASSERT_TRUE(source.Save(path_).ok());  // save records the finiteness flag
  EXPECT_EQ(nn::Module::VerifyCheckpoint(path_).code(), StatusCode::kDataLoss);
  Rng rng2(4);
  nn::Linear target(4, 3, &rng2);
  const std::vector<float> before = Snapshot(target);
  EXPECT_EQ(target.Load(path_).code(), StatusCode::kDataLoss);
  EXPECT_EQ(Snapshot(target), before);
}

TEST_F(CheckpointTest, InjectedWriteFaultFailsSaveThenRecovers) {
  util::FaultSpec spec;
  spec.site = "checkpoint.write";
  spec.kind = util::FaultKind::kIoError;
  spec.probability = 1.0;
  spec.max_fires = 1;
  util::FaultInjector::Global().Arm(spec);

  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  EXPECT_EQ(module.Save(path_).code(), StatusCode::kIoError);
  std::ifstream gone(path_);
  EXPECT_FALSE(gone.good());  // the faulted save published nothing
  EXPECT_TRUE(module.Save(path_).ok());  // budget exhausted: clean save
  EXPECT_TRUE(nn::Module::VerifyCheckpoint(path_).ok());
  EXPECT_EQ(util::FaultInjector::Global().fired_count("checkpoint.write"), 1);
}

TEST_F(CheckpointTest, InjectedCorruptWriteIsCaughtByVerification) {
  util::FaultSpec spec;
  spec.site = "checkpoint.write";
  spec.kind = util::FaultKind::kCorrupt;
  spec.probability = 1.0;
  spec.max_fires = 1;
  util::FaultInjector::Global().Arm(spec);

  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  ASSERT_TRUE(module.Save(path_).ok());  // write "succeeds" with rotted bytes
  EXPECT_EQ(nn::Module::VerifyCheckpoint(path_).code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// CheckpointStore: publish, prune, restart recovery, rollback
// ---------------------------------------------------------------------------

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    dir_ = TempPath("store");
    std::system(("rm -rf " + dir_).c_str());
  }
  void TearDown() override {
    util::FaultInjector::Global().Reset();
    std::system(("rm -rf " + dir_).c_str());
  }
  serving::CheckpointStoreConfig StoreConfig(int keep_last) {
    serving::CheckpointStoreConfig cfg;
    cfg.dir = dir_;
    cfg.keep_last = keep_last;
    cfg.retry.sleep = false;
    return cfg;
  }
  std::string dir_;
};

TEST_F(CheckpointStoreTest, PublishPrunesBeyondKeepLast) {
  serving::CheckpointStore store(StoreConfig(3));
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  std::vector<std::string> published;
  for (int i = 0; i < 5; ++i) {
    auto path = store.Publish(module);
    ASSERT_TRUE(path.ok()) << path.status().ToString();
    published.push_back(path.value());
  }
  ASSERT_EQ(store.history().size(), 3u);
  // The three newest survive, the two oldest are pruned from disk.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(std::ifstream(published[static_cast<size_t>(i)]).good());
  }
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(store.history()[static_cast<size_t>(i - 2)],
              published[static_cast<size_t>(i)]);
    EXPECT_TRUE(std::ifstream(published[static_cast<size_t>(i)]).good());
  }
}

TEST_F(CheckpointStoreTest, RestartAdoptsSurvivingCheckpoints) {
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  std::string newest;
  {
    serving::CheckpointStore store(StoreConfig(3));
    for (int i = 0; i < 2; ++i) {
      auto path = store.Publish(module);
      ASSERT_TRUE(path.ok());
      newest = path.value();
    }
  }
  serving::CheckpointStore reopened(StoreConfig(3));
  ASSERT_EQ(reopened.history().size(), 2u);
  EXPECT_EQ(reopened.history().back(), newest);
  // Sequence numbering continues past the adopted files.
  auto next = reopened.Publish(module);
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value(), newest);  // lexicographic == numeric for ckpt-%06d
}

TEST_F(CheckpointStoreTest, LoadLatestGoodRollsBackPastCorruptNewest) {
  serving::CheckpointStore store(StoreConfig(3));
  Rng rng(3);
  nn::Linear old_weights(4, 3, &rng);
  ASSERT_TRUE(store.Publish(old_weights).ok());
  Rng rng2(17);
  nn::Linear new_weights(4, 3, &rng2);
  auto newest = store.Publish(new_weights);
  ASSERT_TRUE(newest.ok());
  FlipByteOnDisk(newest.value());

  Rng rng3(99);
  nn::Linear serving_module(4, 3, &rng3);
  auto report = store.LoadLatestGood(&serving_module);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().rollbacks, 1);
  EXPECT_EQ(report.value().path, store.history().front());
  EXPECT_EQ(Snapshot(serving_module), Snapshot(old_weights));
}

TEST_F(CheckpointStoreTest, LoadLatestGoodFailsWhenEveryCheckpointIsBad) {
  serving::CheckpointStore store(StoreConfig(3));
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  for (int i = 0; i < 2; ++i) {
    auto path = store.Publish(module);
    ASSERT_TRUE(path.ok());
    FlipByteOnDisk(path.value());
  }
  Rng rng2(99);
  nn::Linear target(4, 3, &rng2);
  const std::vector<float> before = Snapshot(target);
  auto report = store.LoadLatestGood(&target);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(Snapshot(target), before);
}

TEST_F(CheckpointStoreTest, FailedPublishNeverEntersHistory) {
  util::FaultSpec spec;
  spec.site = "checkpoint.write";
  spec.kind = util::FaultKind::kCorrupt;
  spec.probability = 1.0;
  spec.max_fires = 1;
  util::FaultInjector::Global().Arm(spec);

  serving::CheckpointStore store(StoreConfig(3));
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  auto bad = store.Publish(module);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(store.history().empty());
  auto good = store.Publish(module);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(store.history().size(), 1u);
  // The rejected file was deleted, not left to poison restart recovery.
  serving::CheckpointStore reopened(StoreConfig(3));
  EXPECT_EQ(reopened.history().size(), 1u);
}

TEST_F(CheckpointStoreTest, EmptyStoreReportsNotFound) {
  serving::CheckpointStore store(StoreConfig(3));
  Rng rng(3);
  nn::Linear module(4, 3, &rng);
  EXPECT_EQ(store.LoadLatestGood(&module).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// ModelServer degradation ladder
// ---------------------------------------------------------------------------

class DegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    data::MarketConfig cfg;
    cfg.num_shops = 60;
    cfg.history_months = 14;
    cfg.seed = 31;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds =
        data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());

    core::GaiaConfig model_cfg;
    model_cfg.channels = 8;
    model_cfg.tel_groups = 2;
    model_cfg.num_layers = 1;
    auto model = core::GaiaModel::Create(
        model_cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    ASSERT_TRUE(model.ok());
    model_ = std::shared_ptr<core::GaiaModel>(std::move(model).value());
  }
  void TearDown() override { util::FaultInjector::Global().Reset(); }

  void ArmOnce(const std::string& site, util::FaultKind kind) {
    util::FaultSpec spec;
    spec.site = site;
    spec.kind = kind;
    spec.probability = 1.0;
    spec.max_fires = 1;
    util::FaultInjector::Global().Arm(spec);
  }

  std::shared_ptr<data::ForecastDataset> dataset_;
  std::shared_ptr<core::GaiaModel> model_;
};

TEST_F(DegradationTest, NanForwardDegradesToFiniteFallback) {
  ArmOnce("serving.forward", util::FaultKind::kNan);
  serving::ModelServer server(model_, dataset_, serving::ServerConfig{});
  auto degraded = server.Predict(3);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_NE(degraded.degraded_reason.find("non-finite"), std::string::npos);
  ASSERT_EQ(static_cast<int64_t>(degraded.gmv.size()), dataset_->horizon());
  for (double v : degraded.gmv) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_EQ(server.fallback_requests(), 1);
  // Fault budget spent: the next request takes the model path again.
  auto healthy = server.Predict(3);
  EXPECT_EQ(healthy.served_by, serving::ModelServer::ServePath::kModel);
  EXPECT_TRUE(healthy.degraded_reason.empty());
  EXPECT_EQ(server.fallback_requests(), 1);
}

TEST_F(DegradationTest, TransientForwardFaultDegradesOnlyThatRequest) {
  ArmOnce("serving.forward", util::FaultKind::kUnavailable);
  serving::ModelServer server(model_, dataset_, serving::ServerConfig{});
  auto degraded = server.Predict(5);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_FALSE(degraded.degraded_reason.empty());
  EXPECT_EQ(server.Predict(5).served_by,
            serving::ModelServer::ServePath::kModel);
}

TEST_F(DegradationTest, EgoExtractionFaultDegradesToFallback) {
  ArmOnce("graph.ego_extract", util::FaultKind::kCorrupt);
  serving::ModelServer server(model_, dataset_, serving::ServerConfig{});
  auto degraded = server.Predict(7);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_EQ(degraded.ego_nodes, 0);
  EXPECT_NE(degraded.degraded_reason.find("ego"), std::string::npos);
  ASSERT_EQ(static_cast<int64_t>(degraded.gmv.size()), dataset_->horizon());
}

TEST_F(DegradationTest, DeadlineFaultDegradesToFallback) {
  ArmOnce("serving.forward", util::FaultKind::kDeadline);
  serving::ModelServer server(model_, dataset_, serving::ServerConfig{});
  auto degraded = server.Predict(2);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_NE(degraded.degraded_reason.find("Deadline"), std::string::npos);
}

TEST_F(DegradationTest, DisabledFallbackServesZeros) {
  ArmOnce("serving.forward", util::FaultKind::kNan);
  serving::ServerConfig cfg;
  cfg.fallback_enabled = false;
  serving::ModelServer server(model_, dataset_, cfg);
  auto degraded = server.Predict(3);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  ASSERT_EQ(static_cast<int64_t>(degraded.gmv.size()), dataset_->horizon());
  for (double v : degraded.gmv) EXPECT_EQ(v, 0.0);
}

TEST_F(DegradationTest, BatchSweepSurvivesPoisonedRequests) {
  util::FaultSpec spec;
  spec.site = "serving.forward";
  spec.kind = util::FaultKind::kNan;
  spec.probability = 1.0;
  spec.max_fires = 3;
  util::FaultInjector::Global().Arm(spec);
  serving::ModelServer server(model_, dataset_, serving::ServerConfig{});
  auto predictions = server.PredictBatch({0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_EQ(predictions.size(), 8u);
  int64_t fallbacks = 0;
  for (const auto& p : predictions) {
    ASSERT_EQ(static_cast<int64_t>(p.gmv.size()), dataset_->horizon());
    for (double v : p.gmv) EXPECT_TRUE(std::isfinite(v));
    if (p.served_by == serving::ModelServer::ServePath::kFallback) {
      ++fallbacks;
    }
  }
  EXPECT_EQ(fallbacks, 3);
  EXPECT_EQ(server.fallback_requests(), 3);
}

TEST_F(DegradationTest, ArmedButForeignSiteLeavesForecastsBitwiseIdentical) {
  // Faults on unrelated sites must not perturb the decision or RNG stream of
  // the serve path: PR 1's bitwise determinism holds whenever the armed
  // rules never fire on serving sites.
  serving::ModelServer baseline(model_, dataset_, serving::ServerConfig{});
  auto expected = baseline.Predict(9);
  util::FaultInjector::Global().Reset();
  ArmOnce("some.unrelated.site", util::FaultKind::kIoError);
  serving::ModelServer armed(model_, dataset_, serving::ServerConfig{});
  auto actual = armed.Predict(9);
  ASSERT_EQ(actual.gmv.size(), expected.gmv.size());
  for (size_t i = 0; i < actual.gmv.size(); ++i) {
    EXPECT_EQ(actual.gmv[i], expected.gmv[i]);  // bitwise, not approximate
  }
  EXPECT_EQ(actual.served_by, serving::ModelServer::ServePath::kModel);
}

// ---------------------------------------------------------------------------
// End-to-end chaos schedule
// ---------------------------------------------------------------------------

TEST(ChaosScheduleTest, SurvivesCorruptionNanAndExtractionFaults) {
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();
  // Exact-count chaos: probability 1.0 + max_fires makes the injected fault
  // totals order-independent, so the counters below must match exactly.
  ASSERT_TRUE(faults
                  .ArmFromString(
                      "checkpoint.read:corrupt:1.0:2;"
                      "serving.forward:nan:1.0:5;"
                      "graph.ego_extract:corrupt:1.0:2")
                  .ok());

  const std::string dir = TempPath("chaos_store");
  std::system(("rm -rf " + dir).c_str());
  serving::MonthlyScheduler::Config cfg;
  cfg.market.num_shops = 40;
  cfg.market.history_months = 12;
  cfg.market.seed = 17;
  cfg.offline.model.channels = 8;
  cfg.offline.model.tel_groups = 2;
  cfg.offline.model.num_layers = 1;
  cfg.offline.train.max_epochs = 2;
  cfg.offline.train.eval_every = 2;
  cfg.server.checkpoint_retry.sleep = false;
  cfg.num_cycles = 3;
  cfg.checkpoint_dir = dir;
  serving::MonthlyScheduler scheduler(cfg);
  auto reports = scheduler.Run();
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports.value().size(), 3u);

  int64_t total_requests = 0;
  int64_t total_fallbacks = 0;
  int rolled_back_cycles = 0;
  for (const auto& report : reports.value()) {
    // Every cycle keeps serving, broken or not.
    EXPECT_TRUE(report.served) << "cycle " << report.cycle;
    EXPECT_TRUE(report.trained);
    total_requests += report.online.overall.count;
    total_fallbacks += report.fallback_requests;
    if (report.rolled_back) ++rolled_back_cycles;
  }
  ASSERT_GE(total_requests, 9);  // enough traffic to drain the fault budgets

  // Cycle 0: the only checkpoint is corrupted on read -> the swap fails and
  // the cycle serves its in-memory trained weights.
  EXPECT_FALSE(reports.value()[0].healthy);
  // Cycle 1: the newest checkpoint corrupts on read, the store rolls back to
  // cycle 0's published file.
  EXPECT_EQ(rolled_back_cycles, 1);
  EXPECT_TRUE(reports.value()[1].rolled_back);
  // Cycle 2: every fault budget is spent; the cycle is fully healthy.
  EXPECT_TRUE(reports.value()[2].healthy);
  EXPECT_TRUE(reports.value()[2].error.ok());

  // Counters match the injected fault budgets exactly.
  EXPECT_EQ(faults.fired_count("checkpoint.read"), 2);
  EXPECT_EQ(faults.fired_count("serving.forward"), 5);
  EXPECT_EQ(faults.fired_count("graph.ego_extract"), 2);
  EXPECT_EQ(faults.total_fired(), 9);
  // Every nan forward and every failed extraction was answered by the
  // fallback — no request was dropped.
  EXPECT_EQ(total_fallbacks, 7);

  faults.Reset();
  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------------
// Chaos training: training-loop fault sites skip the step, never corrupt
// ---------------------------------------------------------------------------

class ChaosTrainingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    data::MarketConfig cfg;
    cfg.num_shops = 40;
    cfg.history_months = 14;
    cfg.seed = 31;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds =
        data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());

    core::GaiaConfig model_cfg;
    model_cfg.channels = 8;
    model_cfg.tel_groups = 2;
    model_cfg.num_layers = 1;
    auto model = core::GaiaModel::Create(
        model_cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    ASSERT_TRUE(model.ok());
    model_ = std::shared_ptr<core::GaiaModel>(std::move(model).value());

    train_cfg_.max_epochs = 6;
    train_cfg_.eval_every = 2;
    train_cfg_.patience = 10;
  }
  void TearDown() override { util::FaultInjector::Global().Reset(); }

  void Arm(const std::string& site, int64_t max_fires) {
    util::FaultSpec spec;
    spec.site = site;
    spec.kind = util::FaultKind::kUnavailable;
    spec.probability = 1.0;
    spec.max_fires = max_fires;
    util::FaultInjector::Global().Arm(spec);
  }

  /// Faulted or not, a finished run must leave every parameter finite and
  /// produce a checkpoint that round-trips CRC verification.
  void ExpectConsistentParameters() {
    const std::vector<int32_t> nodes = {0, 1, 2};
    auto preds =
        model_->PredictNodes(*dataset_, nodes, /*training=*/false, nullptr);
    ASSERT_EQ(preds.size(), nodes.size());
    for (const auto& p : preds) {
      const float* data = p->value.data();
      for (int64_t i = 0; i < p->value.size(); ++i) {
        ASSERT_TRUE(std::isfinite(data[i]));
      }
    }
    const std::string path = TempPath("chaos_train.ckpt");
    ASSERT_TRUE(model_->Save(path).ok());
    EXPECT_TRUE(nn::Module::VerifyCheckpoint(path).ok());
    std::remove(path.c_str());
  }

  std::shared_ptr<data::ForecastDataset> dataset_;
  std::shared_ptr<core::GaiaModel> model_;
  core::TrainConfig train_cfg_;
};

TEST_F(ChaosTrainingTest, OptimizerStepFaultSkipsEpochsNotTheRun) {
  const uint64_t skipped_before = obs::MetricsRegistry::Global().CounterValue(
      "gaia_robust_train_steps_skipped_total");
  Arm("train.optimizer_step", /*max_fires=*/2);
  core::TrainResult result = core::Trainer(train_cfg_).Fit(model_.get(),
                                                           *dataset_);
  EXPECT_EQ(util::FaultInjector::Global().fired_count("train.optimizer_step"),
            2);
  // Faulted epochs skip the parameter write but still count as epochs: the
  // run completes its full budget instead of dying.
  EXPECT_EQ(result.skipped_steps, 2);
  EXPECT_EQ(result.epochs_run, train_cfg_.max_epochs);
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(obs::MetricsRegistry::Global().CounterValue(
                "gaia_robust_train_steps_skipped_total"),
            skipped_before + 2);
  ExpectConsistentParameters();
}

TEST_F(ChaosTrainingTest, GradExchangeFaultSkipsTheStep) {
  Arm("train.grad_exchange", /*max_fires=*/1);
  core::TrainResult result = core::Trainer(train_cfg_).Fit(model_.get(),
                                                           *dataset_);
  EXPECT_EQ(util::FaultInjector::Global().fired_count("train.grad_exchange"),
            1);
  EXPECT_EQ(result.skipped_steps, 1);
  EXPECT_EQ(result.epochs_run, train_cfg_.max_epochs);
  ExpectConsistentParameters();
}

TEST_F(ChaosTrainingTest, BothSitesFaultingSameEpochSkipOnce) {
  // Both sites are sampled every epoch (so budgets drain deterministically);
  // two faults landing on the same epoch still skip exactly one step.
  Arm("train.grad_exchange", /*max_fires=*/1);
  Arm("train.optimizer_step", /*max_fires=*/1);
  core::TrainResult result = core::Trainer(train_cfg_).Fit(model_.get(),
                                                           *dataset_);
  EXPECT_EQ(util::FaultInjector::Global().fired_count("train.grad_exchange"),
            1);
  EXPECT_EQ(util::FaultInjector::Global().fired_count("train.optimizer_step"),
            1);
  EXPECT_EQ(result.skipped_steps, 1);
  EXPECT_EQ(result.epochs_run, train_cfg_.max_epochs);
  ExpectConsistentParameters();
}

TEST_F(ChaosTrainingTest, SkippedStepLeavesTrainingDeterministic) {
  // Fault handling must not introduce nondeterminism: re-running with the
  // same fault schedule reproduces the loss history bit for bit.
  Arm("train.optimizer_step", /*max_fires=*/1);
  core::TrainResult first = core::Trainer(train_cfg_).Fit(model_.get(),
                                                          *dataset_);
  util::FaultInjector::Global().Reset();

  SetUp();  // fresh model + same seed
  Arm("train.optimizer_step", /*max_fires=*/1);
  core::TrainResult second = core::Trainer(train_cfg_).Fit(model_.get(),
                                                           *dataset_);
  ASSERT_EQ(first.train_loss_history.size(), second.train_loss_history.size());
  for (size_t e = 0; e < first.train_loss_history.size(); ++e) {
    EXPECT_EQ(first.train_loss_history[e], second.train_loss_history[e])
        << "epoch " << e;
  }
  EXPECT_EQ(first.skipped_steps, second.skipped_steps);
}

TEST_F(ChaosTrainingTest, CancelledRetrainPublishesNoCheckpoint) {
  // A retrain that blows its budget must leave the published path untouched
  // (the scheduler then keeps serving the last good checkpoint).
  const std::string path = TempPath("cancelled_retrain.ckpt");
  std::remove(path.c_str());
  serving::OfflineTrainingPipeline::Config cfg;
  cfg.model.channels = 8;
  cfg.model.tel_groups = 2;
  cfg.model.num_layers = 1;
  cfg.train = train_cfg_;
  cfg.train.deadline_ms = 1e-6;  // fires before the first epoch
  cfg.checkpoint_path = path;
  serving::OfflineTrainingPipeline::RunReport report;
  auto trained =
      serving::OfflineTrainingPipeline(cfg).Run(*dataset_, &report);
  ASSERT_FALSE(trained.ok());
  EXPECT_EQ(trained.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(report.train.cancelled);
  std::ifstream published(path, std::ios::binary);
  EXPECT_FALSE(published.good()) << "cancelled retrain published " << path;
}

// ---------------------------------------------------------------------------
// Holt-Winters fallback under shocked series: the degradation ladder's last
// real rung must stay finite and non-negative on exactly the series an
// adversarial regime produces (step changes, zeroed history, cold starts).
// ---------------------------------------------------------------------------

void ExpectFiniteNonNegativeForecast(const std::vector<double>& series,
                                     const std::string& label) {
  auto fit = ts::AutoHoltWinters(series, 12);
  ASSERT_TRUE(fit.ok()) << label << ": " << fit.status().ToString();
  const std::vector<double> forecast = fit.value().Forecast(6);
  ASSERT_EQ(forecast.size(), 6u);
  for (double v : forecast) {
    EXPECT_TRUE(std::isfinite(v)) << label;
    EXPECT_GE(v, 0.0) << label;
  }
}

TEST(HoltWintersShockPropertyTest, StepChangedSeriesStaysFiniteNonNegative) {
  // Property sweep: random base series with a random multiplicative step
  // (crash to 0.05x or boom to 6x) at a random month — the demand-shock
  // regime shape. Every draw must forecast finite, non-negative values.
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const int len = 8 + static_cast<int>(rng.UniformInt(20));
    std::vector<double> series(static_cast<size_t>(len));
    const double scale = rng.LogNormal(9.0, 1.0);
    for (auto& v : series) v = scale * rng.Uniform(0.5, 1.5);
    const int step = 1 + static_cast<int>(
                             rng.UniformInt(static_cast<uint32_t>(len - 1)));
    const double factor = rng.Bernoulli(0.5) ? rng.Uniform(0.05, 0.5)
                                             : rng.Uniform(2.0, 6.0);
    for (int m = step; m < len; ++m) {
      series[static_cast<size_t>(m)] *= factor;
    }
    ExpectFiniteNonNegativeForecast(
        series, "seed " + std::to_string(seed) + " step at " +
                    std::to_string(step) + " factor " +
                    std::to_string(factor));
  }
}

TEST(HoltWintersShockPropertyTest, ZeroedSeriesForecastsZeroes) {
  // A supplier wiped out at magnitude 1.0 produces an all-zero tail — or an
  // all-zero series outright. Neither may go negative or non-finite.
  ExpectFiniteNonNegativeForecast(std::vector<double>(14, 0.0), "all zero");
  std::vector<double> tail_zero(14, 50000.0);
  for (size_t m = 6; m < tail_zero.size(); ++m) tail_zero[m] = 0.0;
  ExpectFiniteNonNegativeForecast(tail_zero, "zeroed tail");
  // A crashed tail extrapolates a *decaying* trend that the zero floor must
  // clip rather than extrapolate below zero.
  std::vector<double> crashing;
  for (int m = 0; m < 14; ++m) {
    crashing.push_back(std::max(100000.0 - 9000.0 * m, 0.0));
  }
  ExpectFiniteNonNegativeForecast(crashing, "crashing trend");
}

TEST(HoltWintersShockPropertyTest, ColdStartShortSeriesStaysFinite) {
  // Coldstart-flood shops keep as little as one observed month.
  for (int len = 1; len <= 5; ++len) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      Rng rng(100 * static_cast<uint64_t>(len) + seed);
      std::vector<double> series(static_cast<size_t>(len));
      for (auto& v : series) v = rng.LogNormal(9.0, 1.2);
      ExpectFiniteNonNegativeForecast(
          series, "cold start len " + std::to_string(len) + " seed " +
                      std::to_string(seed));
    }
  }
}

TEST(ChaosScheduleTest, AllCyclesBrokenStillReportsFirstError) {
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();
  // Market generation itself cannot be faulted (it is in-memory), so break
  // serving irrecoverably instead: every publish corrupts and every read
  // fails, leaving nothing to serve only when training also fails. Training
  // cannot fail here, so this instead asserts the bad-config path.
  serving::MonthlyScheduler::Config cfg;
  cfg.market.num_shops = 5;  // below the simulator's minimum
  cfg.num_cycles = 2;
  serving::MonthlyScheduler scheduler(cfg);
  auto reports = scheduler.Run();
  EXPECT_FALSE(reports.ok());
  faults.Reset();
}

}  // namespace
}  // namespace gaia
