// Tests for the extension features beyond the paper's core: GRU cell,
// Holt-Winters smoothing, weakly connected components, and the
// probabilistic (Gaussian-head) Gaia variant.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "autograd/grad_check.h"
#include "core/evaluator.h"
#include "core/probabilistic_gaia.h"
#include "core/trainer.h"
#include "data/market_simulator.h"
#include "graph/eseller_graph.h"
#include "nn/layers.h"
#include "ts/holt_winters.h"

namespace gaia {
namespace {

namespace ag = autograd;
using ag::Var;

// ---------------------------------------------------------------------------
// GruCell
// ---------------------------------------------------------------------------

TEST(GruCellTest, StateShapeAndBoundedActivations) {
  Rng rng(1);
  nn::GruCell cell(3, 5, &rng);
  Var h = cell.InitialState();
  EXPECT_EQ(h->value.dim(0), 5);
  Var x = ag::Constant(Tensor::Randn({3}, &rng));
  for (int step = 0; step < 6; ++step) h = cell.Forward(x, h);
  // GRU state is a convex combination of tanh candidates: bounded by 1.
  EXPECT_LE(h->value.Max(), 1.0f);
  EXPECT_GE(h->value.Min(), -1.0f);
  EXPECT_TRUE(h->value.AllFinite());
}

TEST(GruCellTest, ZeroUpdateGateKeepsState) {
  // With z ~ 1 (large positive z-gate bias), h' ~ h. Instead of forcing
  // internals, verify the recurrence is state-dependent: different states
  // give different next states.
  Rng rng(2);
  nn::GruCell cell(2, 4, &rng);
  Var x = ag::Constant(Tensor::Randn({2}, &rng));
  Var h1 = ag::Constant(Tensor::Full({4}, 0.5f));
  Var h2 = ag::Constant(Tensor::Full({4}, -0.5f));
  EXPECT_FALSE(AllClose(cell.Forward(x, h1)->value,
                        cell.Forward(x, h2)->value, 1e-6f));
}

TEST(GruCellTest, GradCheckThroughTwoSteps) {
  Rng rng(3);
  auto cell = std::make_shared<nn::GruCell>(2, 3, &rng);
  auto build = [&](const std::vector<Var>&) {
    Var x = ag::Constant(Tensor::Full({2}, 0.4f));
    Var h = cell->InitialState();
    h = cell->Forward(x, h);
    h = cell->Forward(x, h);
    return ag::SumAll(h);
  };
  auto result = ag::CheckGradients(build, cell->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---------------------------------------------------------------------------
// Holt-Winters
// ---------------------------------------------------------------------------

TEST(HoltWintersTest, ConfigValidation) {
  ts::HoltWintersConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_FALSE(ts::HoltWinters::Fit({1, 2, 3}, cfg).ok());
  cfg = ts::HoltWintersConfig{};
  cfg.beta = 1.0;
  EXPECT_FALSE(ts::HoltWinters::Fit({1, 2, 3}, cfg).ok());
  cfg = ts::HoltWintersConfig{};
  cfg.season_length = -1;
  EXPECT_FALSE(ts::HoltWinters::Fit({1, 2, 3}, cfg).ok());
  EXPECT_FALSE(ts::HoltWinters::Fit({}, ts::HoltWintersConfig{}).ok());
}

TEST(HoltWintersTest, ExtrapolatesLinearTrend) {
  std::vector<double> series;
  for (int t = 0; t < 30; ++t) series.push_back(10.0 + 2.0 * t);
  ts::HoltWintersConfig cfg;
  cfg.season_length = 0;  // Holt's linear method
  cfg.alpha = 0.8;
  cfg.beta = 0.5;
  auto fit = ts::HoltWinters::Fit(series, cfg);
  ASSERT_TRUE(fit.ok());
  auto forecast = fit.value().Forecast(3);
  for (int h = 0; h < 3; ++h) {
    EXPECT_NEAR(forecast[static_cast<size_t>(h)], 10.0 + 2.0 * (30 + h), 1.0);
  }
}

TEST(HoltWintersTest, RecoversSeasonalPattern) {
  // Period-4 additive seasonality on a flat level.
  std::vector<double> series;
  const double pattern[4] = {10.0, -5.0, 3.0, -8.0};
  for (int t = 0; t < 40; ++t) series.push_back(100.0 + pattern[t % 4]);
  ts::HoltWintersConfig cfg;
  cfg.season_length = 4;
  auto fit = ts::HoltWinters::Fit(series, cfg);
  ASSERT_TRUE(fit.ok());
  auto forecast = fit.value().Forecast(4);
  for (int h = 0; h < 4; ++h) {
    EXPECT_NEAR(forecast[static_cast<size_t>(h)],
                100.0 + pattern[(40 + h) % 4], 1.5)
        << "h=" << h;
  }
}

TEST(HoltWintersTest, ShortSeriesFallsBackToTrendOnly) {
  std::vector<double> series = {5, 6, 7, 8, 9};  // < 2 seasons of 12
  auto fit = ts::HoltWinters::Fit(series, ts::HoltWintersConfig{});
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().seasonal().empty());
  EXPECT_GT(fit.value().Forecast(2)[0], 8.0);
}

TEST(HoltWintersTest, ForecastsAreNonNegative) {
  std::vector<double> series = {5, 4, 3, 2, 1};  // strong downtrend
  ts::HoltWintersConfig cfg;
  cfg.season_length = 0;
  cfg.beta = 0.8;
  auto fit = ts::HoltWinters::Fit(series, cfg);
  ASSERT_TRUE(fit.ok());
  for (double v : fit.value().Forecast(10)) EXPECT_GE(v, 0.0);
}

TEST(HoltWintersTest, AutoGridPicksLowInSampleError) {
  Rng rng(4);
  std::vector<double> series;
  for (int t = 0; t < 48; ++t) {
    series.push_back(50.0 + 10.0 * std::sin(2.0 * M_PI * t / 12.0) +
                     rng.Normal(0.0, 0.5));
  }
  auto best = ts::AutoHoltWinters(series, 12);
  ASSERT_TRUE(best.ok());
  // Any fixed config must not beat the grid winner.
  ts::HoltWintersConfig fixed;
  auto fixed_fit = ts::HoltWinters::Fit(series, fixed);
  ASSERT_TRUE(fixed_fit.ok());
  EXPECT_LE(best.value().in_sample_mse(),
            fixed_fit.value().in_sample_mse() + 1e-9);
}

// ---------------------------------------------------------------------------
// Weakly connected components
// ---------------------------------------------------------------------------

TEST(ConnectedComponentsTest, CountsAndLabels) {
  // Two components: {0,1,2} chained, {3,4} paired; 5 isolated.
  graph::GraphBuilder builder(6);
  builder.AddSameOwner(0, 1).AddSupplyChain(1, 2).AddSameOwner(3, 4);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumWeaklyConnectedComponents(), 3);
  auto component = g.value().WeaklyConnectedComponents();
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[1], component[2]);
  EXPECT_EQ(component[3], component[4]);
  EXPECT_NE(component[0], component[3]);
  EXPECT_NE(component[0], component[5]);
  EXPECT_NE(component[3], component[5]);
}

TEST(ConnectedComponentsTest, EmptyAndFullyConnected) {
  auto empty = graph::EsellerGraph::Create(0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().NumWeaklyConnectedComponents(), 0);
  graph::GraphBuilder builder(4);
  for (int32_t a = 0; a < 4; ++a) {
    for (int32_t b = a + 1; b < 4; ++b) builder.AddSameOwner(a, b);
  }
  auto full = builder.Build();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().NumWeaklyConnectedComponents(), 1);
}

// ---------------------------------------------------------------------------
// ProbabilisticGaia
// ---------------------------------------------------------------------------

class ProbabilisticGaiaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 50;
    cfg.history_months = 12;
    cfg.seed = 11;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<data::ForecastDataset>(std::move(ds).value());
  }

  std::unique_ptr<core::ProbabilisticGaia> MakeModel() const {
    core::ProbabilisticGaia::Config cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = 1;
    auto model = core::ProbabilisticGaia::Create(
        cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    EXPECT_TRUE(model.ok());
    return std::move(model).value();
  }

  std::unique_ptr<data::ForecastDataset> dataset_;
};

TEST_F(ProbabilisticGaiaTest, GaussianNllIsMinimalAtPerfectMean) {
  Tensor target({3}, {1.0f, 2.0f, 3.0f});
  Var exact = ag::Constant(target);
  Var off = ag::Constant(Tensor({3}, {2.0f, 3.0f, 4.0f}));
  Var logvar = ag::Constant(Tensor({3}));  // unit variance
  const float nll_exact =
      core::GaussianNll(exact, logvar, target)->value.at(0);
  const float nll_off = core::GaussianNll(off, logvar, target)->value.at(0);
  EXPECT_LT(nll_exact, nll_off);
  EXPECT_FLOAT_EQ(nll_exact, 0.0f);  // 0.5 * mean(0 + 0)
}

TEST_F(ProbabilisticGaiaTest, NllGradCheck) {
  Rng rng(5);
  Tensor target = Tensor::Randn({4}, &rng);
  std::vector<Var> params = {ag::Parameter(Tensor::Randn({4}, &rng)),
                             ag::Parameter(Tensor::Randn({4}, &rng, 0.3f))};
  auto build = [&](const std::vector<Var>& p) {
    return core::GaussianNll(p[0], p[1], target);
  };
  auto result = ag::CheckGradients(build, params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_F(ProbabilisticGaiaTest, PredictShapesAndPositiveStddev) {
  auto model = MakeModel();
  auto dists = model->PredictDistribution(*dataset_, {0, 1, 2});
  ASSERT_EQ(dists.size(), 3u);
  for (const auto& dist : dists) {
    EXPECT_EQ(dist.mean.dim(0), dataset_->horizon());
    EXPECT_EQ(dist.stddev.dim(0), dataset_->horizon());
    EXPECT_GE(dist.mean.Min(), 0.0f);
    EXPECT_GT(dist.stddev.Min(), 0.0f);
    // Bounded log-variance: stddev <= exp(max_logvar / 2).
    EXPECT_LE(dist.stddev.Max(), std::exp(2.0f) + 1e-3f);
  }
}

TEST_F(ProbabilisticGaiaTest, NllTrainingImprovesLossAndCoverage) {
  auto model = MakeModel();
  core::TrainConfig tc;
  tc.max_epochs = 25;
  tc.eval_every = 25;
  tc.patience = 100;
  core::TrainResult result = core::Trainer(tc).Fit(model.get(), *dataset_);
  EXPECT_LT(result.final_train_loss, result.train_loss_history.front());

  // ~2-sigma intervals should cover a clear majority of test actuals.
  const auto& nodes = dataset_->test_nodes();
  auto dists = model->PredictDistribution(*dataset_, nodes);
  int covered = 0, total = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Tensor& target = dataset_->target(nodes[i]);
    for (int64_t h = 0; h < target.size(); ++h) {
      const double lo =
          dists[i].mean.at(h) - 2.0 * dists[i].stddev.at(h);
      const double hi =
          dists[i].mean.at(h) + 2.0 * dists[i].stddev.at(h);
      covered += (target.at(h) >= lo && target.at(h) <= hi) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(covered) / total, 0.6);
}

TEST_F(ProbabilisticGaiaTest, WorksWithStandardEvaluator) {
  auto model = MakeModel();
  auto report = core::Evaluator::Evaluate(model.get(), *dataset_,
                                          dataset_->test_nodes());
  EXPECT_EQ(report.method, "Gaia (probabilistic)");
  EXPECT_GT(report.overall.count, 0);
}

}  // namespace
}  // namespace gaia
