// bench/harness tests: robust-statistics correctness (median/p95/MAD on odd
// and even sample counts), runner semantics (warmup + reps, filtering, the
// obs-enabled attribution pass and its level restoration), and a golden
// byte-level check of the gaia.bench/1 JSON emitter that tools/bench_compare
// and the CI perf gate parse.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness/harness.h"
#include "bench/harness/stats.h"
#include "obs/obs.h"

namespace gaia::bench::harness {
namespace {

/// Restores the process observability level; the attribution pass flips it.
class BenchHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = obs::CurrentLevel(); }
  void TearDown() override { obs::SetLevel(saved_level_); }
  obs::Level saved_level_ = obs::Level::kOff;
};

// ---------------------------------------------------------------------------
// Robust statistics
// ---------------------------------------------------------------------------

TEST_F(BenchHarnessTest, StatsOddSampleCount) {
  const RobustStats s = ComputeStats({3.0, 1.0, 5.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 3.0);
  // p95 over sorted {1..5}: position 0.95 * 4 = 3.8 -> 4 + 0.8 * (5 - 4).
  EXPECT_DOUBLE_EQ(s.p95, 4.8);
  // |x - 3| = {2,1,0,1,2}; median of {0,1,1,2,2} = 1.
  EXPECT_EQ(s.mad, 1.0);
}

TEST_F(BenchHarnessTest, StatsEvenSampleCountInterpolates) {
  const RobustStats s = ComputeStats({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.median, 2.5);
  EXPECT_EQ(s.mean, 2.5);
  // Deviations {1.5, 0.5, 0.5, 1.5}; median = 1.0.
  EXPECT_EQ(s.mad, 1.0);
}

TEST_F(BenchHarnessTest, StatsDegenerateInputs) {
  const RobustStats empty = ComputeStats({});
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.median, 0.0);
  const RobustStats one = ComputeStats({7.0});
  EXPECT_EQ(one.count, 1);
  EXPECT_EQ(one.min, 7.0);
  EXPECT_EQ(one.median, 7.0);
  EXPECT_EQ(one.p95, 7.0);
  EXPECT_EQ(one.max, 7.0);
  EXPECT_EQ(one.mad, 0.0);
}

TEST_F(BenchHarnessTest, SortedQuantileEndpoints) {
  const std::vector<double> sorted = {10.0, 20.0, 30.0};
  EXPECT_EQ(SortedQuantile(sorted, 0.0), 10.0);
  EXPECT_EQ(SortedQuantile(sorted, 1.0), 30.0);
  EXPECT_EQ(SortedQuantile(sorted, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.25), 15.0);
}

// ---------------------------------------------------------------------------
// Runner semantics
// ---------------------------------------------------------------------------

TEST_F(BenchHarnessTest, RunsWarmupPlusRepsAndReportsStats) {
  RunOptions options;
  options.warmup = 2;
  options.reps = 5;
  options.attribution = false;
  Harness harness(options);
  int calls = 0;
  harness.AddCase("unit.count_calls", [&]() { ++calls; });
  std::ostringstream table;
  const std::vector<CaseResult>& results = harness.Run(table);
  EXPECT_EQ(calls, 2 + 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "unit.count_calls");
  EXPECT_EQ(results[0].wall_ns.count, 5);
  EXPECT_GE(results[0].wall_ns.median, 0.0);
  EXPECT_GT(results[0].peak_rss_kb, 0);
  EXPECT_NE(table.str().find("unit.count_calls"), std::string::npos);
}

TEST_F(BenchHarnessTest, FilterSelectsSubstringMatchesOnly) {
  RunOptions options;
  options.warmup = 0;
  options.reps = 1;
  options.attribution = false;
  options.filter = "alpha";
  Harness harness(options);
  harness.AddCase("unit.alpha", []() {});
  harness.AddCase("unit.beta", []() {});
  EXPECT_EQ(harness.CaseNames(),
            std::vector<std::string>{std::string("unit.alpha")});
  std::ostringstream table;
  const std::vector<CaseResult>& results = harness.Run(table);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "unit.alpha");
}

TEST_F(BenchHarnessTest, AttributionCapturesSpansAndRestoresLevel) {
  obs::SetLevel(obs::Level::kOff);
  RunOptions options;
  options.warmup = 1;
  options.reps = 3;
  options.attribution = true;
  Harness harness(options);
  harness.AddCase("unit.spanning", []() {
    GAIA_OBS_SPAN("test.harness_phase");
  });
  std::ostringstream table;
  const std::vector<CaseResult>& results = harness.Run(table);
  ASSERT_EQ(results.size(), 1u);
  // Exactly one obs-enabled run contributes to the aggregate, regardless of
  // warmup/reps — those run at the ambient (off) level.
  ASSERT_EQ(results[0].spans.count("test.harness_phase"), 1u);
  EXPECT_EQ(results[0].spans.at("test.harness_phase").count, 1u);
  // The schema-stable counter keys are present even for an idle body.
  EXPECT_EQ(results[0].counters.count("gaia_pool_jobs_total"), 1u);
  EXPECT_EQ(results[0].counters.count("gaia_alloc_bytes_total"), 1u);
  // Ambient level restored and the shared registry left clean.
  EXPECT_EQ(obs::CurrentLevel(), obs::Level::kOff);
  EXPECT_EQ(obs::MetricsRegistry::Global().CounterValue(
                "gaia_pool_jobs_total"),
            0u);
}

TEST_F(BenchHarnessTest, PerCaseOptionsOverrideHarnessDefaults) {
  RunOptions options;
  options.warmup = 5;
  options.reps = 7;
  options.attribution = false;
  Harness harness(options);
  int calls = 0;
  CaseOptions case_options;
  case_options.warmup = 0;
  case_options.reps = 2;
  harness.AddCase("unit.override", [&]() { ++calls; }, case_options);
  std::ostringstream table;
  const std::vector<CaseResult>& results = harness.Run(table);
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].wall_ns.count, 2);
}

// ---------------------------------------------------------------------------
// gaia.bench/1 JSON golden
// ---------------------------------------------------------------------------

TEST_F(BenchHarnessTest, JsonMatchesGoldenShape) {
  CaseResult result;
  result.name = "unit.case";
  result.tags = {"unit", "golden"};
  result.items_per_rep = 7;
  result.wall_ns.count = 3;
  result.wall_ns.min = 100.0;
  result.wall_ns.median = 200.0;
  result.wall_ns.p95 = 290.0;
  result.wall_ns.max = 300.0;
  result.wall_ns.mean = 200.0;
  result.wall_ns.mad = 50.0;
  obs::SpanStats phase;
  phase.count = 2;
  phase.total_ms = 1.5;
  phase.max_ms = 1.0;
  result.spans["phase.a"] = phase;
  result.counters["gaia_alloc_bytes_total"] = 1024;
  result.counters["gaia_pool_jobs_total"] = 3;
  result.peak_rss_kb = 4096;

  RunOptions options;  // defaults: warmup 2, reps 9, attribution on
  const std::string expected =
      "{\n"
      "  \"schema\": \"gaia.bench/1\",\n"
      "  \"config\": {\"warmup\": 2, \"reps\": 9, \"attribution\": true},\n"
      "  \"cases\": [\n"
      "    {\n"
      "      \"name\": \"unit.case\",\n"
      "      \"tags\": [\"unit\", \"golden\"],\n"
      "      \"items_per_rep\": 7,\n"
      "      \"wall_ns\": {\"count\": 3, \"min\": 100, \"median\": 200, "
      "\"p95\": 290, \"max\": 300, \"mean\": 200, \"mad\": 50},\n"
      "      \"spans\": {\"phase.a\": {\"count\": 2, \"total_ms\": 1.5, "
      "\"max_ms\": 1}},\n"
      "      \"counters\": {\"gaia_alloc_bytes_total\": 1024, "
      "\"gaia_pool_jobs_total\": 3},\n"
      "      \"peak_rss_kb\": 4096\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(Harness::ResultsToJson({result}, options), expected);
}

TEST_F(BenchHarnessTest, JsonEscapesNamesAndHandlesEmptyResults) {
  RunOptions options;
  const std::string empty = Harness::ResultsToJson({}, options);
  EXPECT_NE(empty.find("\"cases\": [\n  ]"), std::string::npos);

  CaseResult result;
  result.name = "unit.\"quoted\"\\case";
  const std::string json = Harness::ResultsToJson({result}, options);
  EXPECT_NE(json.find("unit.\\\"quoted\\\"\\\\case"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Driver flags
// ---------------------------------------------------------------------------

TEST_F(BenchHarnessTest, ParseDriverFlagsRoundTrips) {
  const char* argv[] = {"bench",   "--json",   "out.json", "--reps",
                        "4",       "--warmup", "1",        "--filter",
                        "matmul",  "--no-attribution",     "--list"};
  DriverOptions options;
  ASSERT_TRUE(ParseDriverFlags(11, const_cast<char**>(argv), &options));
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_EQ(options.run.reps, 4);
  EXPECT_EQ(options.run.warmup, 1);
  EXPECT_EQ(options.run.filter, "matmul");
  EXPECT_FALSE(options.run.attribution);
  EXPECT_TRUE(options.list);
}

TEST_F(BenchHarnessTest, ParseDriverFlagsRejectsUnknownAndDangling) {
  DriverOptions options;
  const char* unknown[] = {"bench", "--bogus"};
  EXPECT_FALSE(ParseDriverFlags(2, const_cast<char**>(unknown), &options));
  const char* dangling[] = {"bench", "--json"};
  EXPECT_FALSE(ParseDriverFlags(2, const_cast<char**>(dangling), &options));
}

}  // namespace
}  // namespace gaia::bench::harness
