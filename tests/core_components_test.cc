#include <gtest/gtest.h>

#include <memory>

#include "autograd/grad_check.h"
#include "core/cau.h"
#include "core/ffl.h"
#include "core/ita_gcn.h"
#include "core/tel.h"

namespace gaia::core {
namespace {

namespace ag = autograd;
using ag::Var;

constexpr int64_t kT = 8;
constexpr int64_t kC = 4;
constexpr int64_t kDt = 3;
constexpr int64_t kDs = 5;

// ---------------------------------------------------------------------------
// FFL
// ---------------------------------------------------------------------------

class FflTest : public ::testing::Test {
 protected:
  FflTest() : rng_(1), ffl_(kT, kDt, kDs, kC, &rng_) {}

  Var RandomInput(int64_t rows, int64_t cols) {
    return ag::Constant(Tensor::Randn({rows, cols}, &rng_));
  }

  Rng rng_;
  FeatureFusionLayer ffl_;
};

TEST_F(FflTest, OutputShape) {
  Var z = ag::Constant(Tensor::Randn({kT}, &rng_));
  Var out = ffl_.Forward(z, RandomInput(kT, kDt),
                         ag::Constant(Tensor::Randn({kDs}, &rng_)));
  EXPECT_EQ(out->value.dim(0), kT);
  EXPECT_EQ(out->value.dim(1), kC);
  EXPECT_TRUE(out->value.AllFinite());
}

TEST_F(FflTest, ParameterInventoryMatchesPaper) {
  // w^I, b^I, W^T, {b^T_t}, W^S, b^S, W^F, {b^F_t} -> 8 parameters.
  EXPECT_EQ(ffl_.Parameters().size(), 8u);
  const int64_t expected = kC + kC                 // w^I, b^I
                           + kDt * kC + kT * kC    // W^T, per-t bias
                           + kDs * kC + kC         // W^S, b^S
                           + 3 * kC * kC + kT * kC;  // W^F, per-t bias
  EXPECT_EQ(ffl_.ParameterCount(), expected);
}

TEST_F(FflTest, PerTimestepBiasGivesPositionSensitivity) {
  // Constant inputs at every timestep: without per-timestep biases all rows
  // would be identical; the b_t parameters break that symmetry after a
  // perturbation.
  Var z = ag::Constant(Tensor::Ones({kT}));
  Var f_t = ag::Constant(Tensor::Ones({kT, kDt}));
  Var f_s = ag::Constant(Tensor::Ones({kDs}));
  Var out0 = ffl_.Forward(z, f_t, f_s);
  for (int64_t j = 0; j < kC; ++j) {
    EXPECT_FLOAT_EQ(out0->value.at(0, j), out0->value.at(kT - 1, j));
  }
  // Perturb one timestep of the fusion bias.
  ffl_.Parameters()[7]->value.at(2, 0) += 1.0f;  // b^F_t at t=2
  Var out1 = ffl_.Forward(z, f_t, f_s);
  EXPECT_NE(out1->value.at(2, 0), out1->value.at(0, 0));
}

TEST_F(FflTest, GradientsFlowToAllParameters) {
  Rng data_rng(2);
  Tensor z = Tensor::Randn({kT}, &data_rng);
  Tensor ft = Tensor::Randn({kT, kDt}, &data_rng);
  Tensor fs = Tensor::Randn({kDs}, &data_rng);
  auto build = [&](const std::vector<Var>&) {
    return ag::SumAll(ffl_.Forward(ag::Constant(z), ag::Constant(ft),
                                   ag::Constant(fs)));
  };
  auto result = ag::CheckGradients(build, ffl_.Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---------------------------------------------------------------------------
// TEL
// ---------------------------------------------------------------------------

TEST(TelTest, OutputShapePreserved) {
  Rng rng(3);
  TemporalEmbeddingLayer tel(kC, 2, &rng);
  Var s = ag::Constant(Tensor::Randn({kT, kC}, &rng));
  Var e = tel.Forward(s);
  EXPECT_EQ(e->value.dim(0), kT);
  EXPECT_EQ(e->value.dim(1), kC);
}

TEST(TelTest, OutputIsNonNegative) {
  // E = ReLU(S^C) ⊙ Sigmoid(S^D) >= 0 elementwise.
  Rng rng(4);
  TemporalEmbeddingLayer tel(kC, 2, &rng);
  Var s = ag::Constant(Tensor::Randn({kT, kC}, &rng, 2.0f));
  EXPECT_GE(tel.Forward(s)->value.Min(), 0.0f);
}

TEST(TelTest, KernelGroupStructure) {
  Rng rng(5);
  TemporalEmbeddingLayer grouped(12, 3, &rng);         // widths 2, 4, 8
  EXPECT_EQ(grouped.num_groups(), 3);
  // 3 capture + 3 denoise convs, each with weight+bias.
  EXPECT_EQ(grouped.Parameters().size(), 12u);
  TemporalEmbeddingLayer single(12, 3, &rng, /*single_kernel=*/true);
  EXPECT_EQ(single.num_groups(), 1);
  EXPECT_EQ(single.Parameters().size(), 4u);
}

TEST(TelTest, RejectsIndivisibleChannelsViaCheck) {
  Rng rng(6);
  EXPECT_DEATH(TemporalEmbeddingLayer(7, 2, &rng), "GAIA_CHECK failed");
}

TEST(TelTest, GradCheck) {
  Rng rng(7);
  auto tel = std::make_shared<TemporalEmbeddingLayer>(4, 2, &rng);
  Tensor s = Tensor::Randn({6, 4}, &rng);
  auto build = [&](const std::vector<Var>&) {
    Var e = tel->Forward(ag::Constant(s));
    return ag::SumAll(ag::Mul(e, e));
  };
  auto result = ag::CheckGradients(build, tel->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---------------------------------------------------------------------------
// CAU
// ---------------------------------------------------------------------------

class CauTest : public ::testing::Test {
 protected:
  CauTest() : rng_(8), cau_(kC, &rng_) {}
  Rng rng_;
  ConvAttentionUnit cau_;
};

TEST_F(CauTest, OutputShape) {
  Var h_u = ag::Constant(Tensor::Randn({kT, kC}, &rng_));
  Var h_v = ag::Constant(Tensor::Randn({kT, kC}, &rng_));
  Var out = cau_.Forward(h_u, h_v);
  EXPECT_EQ(out->value.dim(0), kT);
  EXPECT_EQ(out->value.dim(1), kC);
}

TEST_F(CauTest, AttentionIsCausalRowStochastic) {
  Var h_u = ag::Constant(Tensor::Randn({kT, kC}, &rng_));
  Var h_v = ag::Constant(Tensor::Randn({kT, kC}, &rng_));
  Tensor attention;
  cau_.Forward(h_u, h_v, &attention);
  ASSERT_EQ(attention.dim(0), kT);
  for (int64_t i = 0; i < kT; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < kT; ++j) {
      if (j > i) {
        EXPECT_EQ(attention.at(i, j), 0.0f);
      }
      row_sum += attention.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST_F(CauTest, NoFutureLeakageEndToEnd) {
  // The causality invariant from DESIGN.md: perturbing H_v at future
  // timestamps must not change CAU outputs at earlier timestamps.
  Tensor h_u = Tensor::Randn({kT, kC}, &rng_);
  Tensor h_v = Tensor::Randn({kT, kC}, &rng_);
  Var base = cau_.Forward(ag::Constant(h_u), ag::Constant(h_v));
  Tensor h_v_pert = h_v;
  for (int64_t c = 0; c < kC; ++c) h_v_pert.at(kT - 1, c) += 5.0f;
  Var pert = cau_.Forward(ag::Constant(h_u), ag::Constant(h_v_pert));
  // V projection is width-1 causal and Q/K are causal convs, so rows
  // 0..T-2 are bit-identical.
  for (int64_t t = 0; t + 1 < kT; ++t) {
    for (int64_t c = 0; c < kC; ++c) {
      EXPECT_FLOAT_EQ(base->value.at(t, c), pert->value.at(t, c));
    }
  }
}

TEST_F(CauTest, SelfAttentionSharesProjections) {
  // Forward(h, h) must equal Attend over a single Project(h).
  Var h = ag::Constant(Tensor::Randn({kT, kC}, &rng_));
  auto proj = cau_.Project(h);
  Var direct = cau_.Attend(proj.q, proj.k, proj.v);
  Var composed = cau_.Forward(h, h);
  EXPECT_TRUE(AllClose(direct->value, composed->value, 1e-6f));
}

TEST_F(CauTest, DenseUnmaskedVariantAttendsToFuture) {
  Rng rng(9);
  ConvAttentionUnit ablated(kC, &rng, /*dense_projections=*/true,
                            /*causal=*/false);
  Var h_u = ag::Constant(Tensor::Randn({kT, kC}, &rng));
  Var h_v = ag::Constant(Tensor::Randn({kT, kC}, &rng));
  Tensor attention;
  ablated.Forward(h_u, h_v, &attention);
  double future_mass = 0.0;
  for (int64_t i = 0; i < kT; ++i) {
    for (int64_t j = i + 1; j < kT; ++j) future_mass += attention.at(i, j);
  }
  EXPECT_GT(future_mass, 0.0);
}

TEST_F(CauTest, MultiHeadOutputShapeAndCausality) {
  Rng rng(21);
  ConvAttentionUnit multi(kC, &rng, false, true, /*num_heads=*/2);
  EXPECT_EQ(multi.num_heads(), 2);
  Var h_u = ag::Constant(Tensor::Randn({kT, kC}, &rng));
  Var h_v = ag::Constant(Tensor::Randn({kT, kC}, &rng));
  Tensor attention;
  Var out = multi.Forward(h_u, h_v, &attention);
  EXPECT_EQ(out->value.dim(0), kT);
  EXPECT_EQ(out->value.dim(1), kC);
  // Head-averaged attention is still causal and row-stochastic.
  for (int64_t i = 0; i < kT; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < kT; ++j) {
      if (j > i) {
        EXPECT_EQ(attention.at(i, j), 0.0f);
      }
      row_sum += attention.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST_F(CauTest, MultiHeadRejectsIndivisibleChannels) {
  Rng rng(22);
  EXPECT_DEATH(ConvAttentionUnit(kC, &rng, false, true, /*num_heads=*/3),
               "GAIA_CHECK failed");
}

TEST_F(CauTest, MultiHeadGradCheck) {
  Rng rng(23);
  auto cau = std::make_shared<ConvAttentionUnit>(4, &rng, false, true, 2);
  Tensor h_u = Tensor::Randn({5, 4}, &rng);
  Tensor h_v = Tensor::Randn({5, 4}, &rng);
  auto build = [&](const std::vector<Var>&) {
    Var out = cau->Forward(ag::Constant(h_u), ag::Constant(h_v));
    return ag::SumAll(ag::Mul(out, out));
  };
  auto result = ag::CheckGradients(build, cau->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_F(CauTest, GradCheck) {
  Rng rng(10);
  auto cau = std::make_shared<ConvAttentionUnit>(3, &rng);
  Tensor h_u = Tensor::Randn({5, 3}, &rng);
  Tensor h_v = Tensor::Randn({5, 3}, &rng);
  auto build = [&](const std::vector<Var>&) {
    Var out = cau->Forward(ag::Constant(h_u), ag::Constant(h_v));
    return ag::SumAll(ag::Mul(out, out));
  };
  auto result = ag::CheckGradients(build, cau->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---------------------------------------------------------------------------
// ITA-GCN layer
// ---------------------------------------------------------------------------

class ItaGcnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 0 <- {1, 2}; 1 <- 2; 3 isolated.
    graph::GraphBuilder builder(4);
    builder.AddDirected(1, 0, graph::EdgeType::kSupplyChain);
    builder.AddDirected(2, 0, graph::EdgeType::kSameOwner);
    builder.AddDirected(2, 1, graph::EdgeType::kSupplyChain);
    auto g = builder.Build();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<graph::EsellerGraph>(std::move(g).value());
    Rng rng(11);
    for (int i = 0; i < 4; ++i) {
      h_.push_back(ag::Constant(Tensor::Randn({kT, kC}, &rng)));
    }
  }
  std::unique_ptr<graph::EsellerGraph> graph_;
  std::vector<Var> h_;
};

TEST_F(ItaGcnTest, OutputShapes) {
  Rng rng(12);
  ItaGcnLayer layer(kC, kT, &rng);
  auto out = layer.Forward(*graph_, h_);
  ASSERT_EQ(out.size(), 4u);
  for (const Var& o : out) {
    EXPECT_EQ(o->value.dim(0), kT);
    EXPECT_EQ(o->value.dim(1), kC);
    EXPECT_TRUE(o->value.AllFinite());
  }
}

TEST_F(ItaGcnTest, IsolatedNodeGetsOnlySelfTerm) {
  Rng rng(13);
  ItaGcnLayer layer(kC, kT, &rng);
  ItaProbe probe;
  layer.Forward(*graph_, h_, &probe);
  // Node 3 contributes no alpha record and no inter edges.
  for (const auto& rec : probe.alphas) EXPECT_NE(rec.u, 3);
  for (const auto& rec : probe.inter) EXPECT_NE(rec.u, 3);
  // But it does get an intra record.
  bool has_intra = false;
  for (const auto& rec : probe.intra) has_intra |= rec.u == 3;
  EXPECT_TRUE(has_intra);
}

TEST_F(ItaGcnTest, AlphaIsDistributionOverNeighbors) {
  Rng rng(14);
  ItaGcnLayer layer(kC, kT, &rng);
  ItaProbe probe;
  layer.Forward(*graph_, h_, &probe);
  for (const auto& rec : probe.alphas) {
    double sum = 0.0;
    for (int64_t i = 0; i < rec.alpha.size(); ++i) {
      EXPECT_GE(rec.alpha.at(i), 0.0f);
      sum += rec.alpha.at(i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(rec.alpha.size(),
              static_cast<int64_t>(rec.neighbors.size()));
  }
}

TEST_F(ItaGcnTest, NeighborInfluencePropagates) {
  Rng rng(15);
  ItaGcnLayer layer(kC, kT, &rng);
  auto base = layer.Forward(*graph_, h_);
  // Perturb node 2 (a neighbour of 0 and 1, not of 3).
  std::vector<Var> h2 = h_;
  Tensor perturbed = h_[2]->value;
  perturbed.Scale(3.0f);
  h2[2] = ag::Constant(perturbed);
  auto out = layer.Forward(*graph_, h2);
  EXPECT_FALSE(AllClose(base[0]->value, out[0]->value, 1e-6f));
  EXPECT_FALSE(AllClose(base[1]->value, out[1]->value, 1e-6f));
  EXPECT_TRUE(AllClose(base[3]->value, out[3]->value, 1e-6f));
}

TEST_F(ItaGcnTest, UniformAlphaInAblatedMode) {
  Rng rng(16);
  ItaGcnLayer layer(kC, kT, &rng, /*use_ita=*/false);
  ItaProbe probe;
  layer.Forward(*graph_, h_, &probe);
  for (const auto& rec : probe.alphas) {
    const float expected = 1.0f / static_cast<float>(rec.neighbors.size());
    for (int64_t i = 0; i < rec.alpha.size(); ++i) {
      EXPECT_FLOAT_EQ(rec.alpha.at(i), expected);
    }
  }
}

TEST_F(ItaGcnTest, EdgeTypeBiasInfluencesAlpha) {
  // Node 0 has one supply-chain and one same-owner in-neighbour. Biasing
  // one relation type must shift the aggregation weights.
  Rng rng(19);
  ItaGcnLayer layer(kC, kT, &rng);
  ItaProbe before;
  layer.Forward(*graph_, h_, &before);
  const NeighborAlphaRecord* rec0 = nullptr;
  for (const auto& rec : before.alphas) {
    if (rec.u == 0) rec0 = &rec;
  }
  ASSERT_NE(rec0, nullptr);
  const float alpha0_before = rec0->alpha.at(0);

  // Strongly favour supply-chain edges.
  for (auto& [name, param] : layer.NamedParameters()) {
    if (name == "edge_type_bias") {
      param->value.at(static_cast<int64_t>(graph::EdgeType::kSupplyChain)) =
          5.0f;
    }
  }
  ItaProbe after;
  layer.Forward(*graph_, h_, &after);
  const NeighborAlphaRecord* rec1 = nullptr;
  for (const auto& rec : after.alphas) {
    if (rec.u == 0) rec1 = &rec;
  }
  ASSERT_NE(rec1, nullptr);
  // Identify which slot is the supply-chain neighbour (node 1).
  int64_t supply_slot = rec1->neighbors[0] == 1 ? 0 : 1;
  EXPECT_GT(rec1->alpha.at(supply_slot), 0.9f);
  EXPECT_NE(rec1->alpha.at(0), alpha0_before);
}

TEST_F(ItaGcnTest, GradCheckThroughGraphLayer) {
  Rng rng(17);
  auto layer = std::make_shared<ItaGcnLayer>(3, 4, &rng);
  graph::GraphBuilder builder(2);
  builder.AddSupplyChain(0, 1);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  Rng data_rng(18);
  Tensor h0 = Tensor::Randn({4, 3}, &data_rng);
  Tensor h1 = Tensor::Randn({4, 3}, &data_rng);
  auto build = [&](const std::vector<Var>&) {
    auto out = layer->Forward(g.value(),
                              {ag::Constant(h0), ag::Constant(h1)});
    return ag::SumAll(ag::Mul(out[0], out[0]));
  };
  auto result = ag::CheckGradients(build, layer->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace gaia::core
