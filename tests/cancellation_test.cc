// Cancellation-tentpole test layer (ctest label: cancel).
//
// Four families:
//  1. CancelToken semantics — flag, deadline auto-fire, parent/child.
//  2. Mid-ParallelFor abort — a fired token stops chunk dispatch early at
//     1, 2 and 8 threads, and the pool stays fully usable afterwards.
//  3. The no-perturbation guarantee — an armed-but-unfired token leaves the
//     Gaia forward bitwise identical at every thread count (mirrors
//     parallel_determinism_test).
//  4. Serving + observability — a tight deadline aborts the forward
//     mid-flight (proved via ita_gcn.forward span aggregates), degrades to
//     the fallback with degraded_reason=deadline_exceeded, bumps the
//     gaia_cancel_* counters, and randomized aborts leave counters monotonic
//     and the span stack balanced.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/model_server.h"
#include "serving/sharded_server.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

using core::GaiaConfig;
using core::GaiaModel;
using util::CancelScope;
using util::CancelToken;
using util::ThreadPool;

// ---------------------------------------------------------------------------
// Token semantics
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, StartsLiveAndFiresOnce) {
  auto token = CancelToken::Create();
  EXPECT_FALSE(token->Cancelled());
  EXPECT_STREQ(token->reason(), "");
  EXPECT_TRUE(token->ToStatus().ok());

  token->Cancel("operator_abort");
  EXPECT_TRUE(token->Cancelled());
  EXPECT_STREQ(token->reason(), "operator_abort");

  // First reason wins; later fires are no-ops.
  token->Cancel("too_late");
  EXPECT_STREQ(token->reason(), "operator_abort");

  const Status st = token->ToStatus();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("operator_abort"), std::string::npos);
  EXPECT_EQ(std::string(StatusCodeToString(st.code())), "Cancelled");
}

TEST(CancelTokenTest, DeadlineAutoFires) {
  auto token = CancelToken::WithDeadline(/*deadline_ms=*/2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token->Cancelled());
  EXPECT_STREQ(token->reason(), "deadline_exceeded");
  EXPECT_EQ(token->ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ChildObservesParentCancellation) {
  auto parent = CancelToken::Create();
  auto child = CancelToken::Child(parent.get());
  EXPECT_FALSE(child->Cancelled());
  parent->Cancel("batch_abort");
  EXPECT_TRUE(child->Cancelled());
  EXPECT_STREQ(child->reason(), "batch_abort");
}

TEST(CancelTokenTest, CancellingChildLeavesParentLive) {
  auto parent = CancelToken::Create();
  auto child = CancelToken::Child(parent.get());
  child->Cancel("request_abort");
  EXPECT_TRUE(child->Cancelled());
  // One request aborting must not abort its batch.
  EXPECT_FALSE(parent->Cancelled());
  EXPECT_STREQ(parent->reason(), "");
}

TEST(CancelTokenTest, ChildWithOwnDeadlineFiresIndependently) {
  auto parent = CancelToken::Create();
  auto child = CancelToken::Child(parent.get(), /*deadline_ms=*/2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(child->Cancelled());
  EXPECT_STREQ(child->reason(), "deadline_exceeded");
  EXPECT_FALSE(parent->Cancelled());
}

TEST(CancelScopeTest, InstallsAndRestoresNested) {
  EXPECT_EQ(CancelToken::Current(), nullptr);
  auto outer = CancelToken::Create();
  auto inner = CancelToken::Create();
  {
    CancelScope outer_scope(outer.get());
    EXPECT_EQ(CancelToken::Current(), outer.get());
    {
      CancelScope inner_scope(inner.get());
      EXPECT_EQ(CancelToken::Current(), inner.get());
      // A nullptr scope is a no-op: the ambient token stays installed.
      CancelScope noop(nullptr);
      EXPECT_EQ(CancelToken::Current(), inner.get());
    }
    EXPECT_EQ(CancelToken::Current(), outer.get());
  }
  EXPECT_EQ(CancelToken::Current(), nullptr);
}

TEST(CancelScopeTest, CurrentCancelledTracksAmbientToken) {
  EXPECT_FALSE(util::CurrentCancelled());  // no token installed
  auto token = CancelToken::Create();
  CancelScope scope(token.get());
  EXPECT_FALSE(util::CurrentCancelled());
  token->Cancel();
  EXPECT_TRUE(util::CurrentCancelled());
}

// ---------------------------------------------------------------------------
// Mid-ParallelFor abort
// ---------------------------------------------------------------------------

class CancelPoolTest : public ::testing::TestWithParam<int> {};

TEST_P(CancelPoolTest, MidLoopCancelStopsDispatchEarly) {
  ThreadPool pool(GetParam());
  constexpr int64_t kN = 1 << 16;
  auto token = CancelToken::Create();
  std::atomic<int64_t> visits{0};
  pool.ParallelFor(
      kN,
      [&](int64_t i) {
        if (i == 10) token->Cancel();
        visits.fetch_add(1);
      },
      /*grain=*/1, token.get());
  // The cancelling index itself ran, and far fewer than all indices did:
  // after the token fires, remaining chunks are claimed but skipped. A few
  // in-flight chunks may still complete — that is the cooperative contract.
  EXPECT_GE(visits.load(), 1);
  EXPECT_LT(visits.load(), kN) << "cancellation was never observed";

  // The pool must stay fully usable after a cancelled loop.
  std::atomic<int64_t> after{0};
  pool.ParallelFor(500, [&](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 500);
}

TEST_P(CancelPoolTest, AlreadyCancelledTokenSkipsEveryChunk) {
  ThreadPool pool(GetParam());
  auto token = CancelToken::Create();
  token->Cancel();
  std::atomic<int64_t> visits{0};
  pool.ParallelFor(1000, [&](int64_t) { visits.fetch_add(1); },
                   /*grain=*/8, token.get());
  EXPECT_EQ(visits.load(), 0);
}

TEST_P(CancelPoolTest, FreeParallelForConsultsAmbientToken) {
  const int saved = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(GetParam());
  auto token = CancelToken::Create();
  std::atomic<int64_t> visits{0};
  {
    CancelScope scope(token.get());
    util::ParallelFor(1 << 16, [&](int64_t i) {
      if (i == 10) token->Cancel();
      visits.fetch_add(1);
    });
  }
  EXPECT_GE(visits.load(), 1);
  EXPECT_LT(visits.load(), 1 << 16);
  ThreadPool::SetGlobalThreads(saved);
}

INSTANTIATE_TEST_SUITE_P(Threads, CancelPoolTest, ::testing::Values(1, 2, 8));

TEST(CancelPoolTest, WorkersObserveTokenAsCurrent) {
  // The submitting job's token is re-installed on the pool workers, so
  // nested kernels (free ParallelFor) observe it with no plumbing.
  ThreadPool pool(4);
  auto token = CancelToken::Create();
  std::atomic<int64_t> installed{0};
  pool.ParallelFor(
      256,
      [&](int64_t) {
        if (CancelToken::Current() == token.get()) installed.fetch_add(1);
      },
      /*grain=*/1, token.get());
  EXPECT_EQ(installed.load(), 256);
}

// ---------------------------------------------------------------------------
// Armed-but-unfired token changes nothing (bitwise)
// ---------------------------------------------------------------------------

data::ForecastDataset MakeDataset() {
  data::MarketConfig cfg;
  cfg.num_shops = 60;
  cfg.seed = 21;
  auto market = data::MarketSimulator(cfg).Generate();
  return std::move(data::ForecastDataset::Create(market.value(),
                                                 data::DatasetOptions{}))
      .value();
}

std::unique_ptr<GaiaModel> MakeModel(const data::ForecastDataset& dataset) {
  GaiaConfig cfg;
  cfg.channels = 8;
  cfg.tel_groups = 2;
  cfg.num_layers = 2;
  cfg.seed = 3;
  return std::move(GaiaModel::Create(cfg, dataset.history_len(),
                                     dataset.horizon(), dataset.temporal_dim(),
                                     dataset.static_dim()))
      .value();
}

std::vector<int32_t> AllNodes(const data::ForecastDataset& dataset) {
  std::vector<int32_t> nodes(dataset.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

std::vector<float> Flatten(const std::vector<autograd::Var>& preds) {
  std::vector<float> flat;
  for (const autograd::Var& p : preds) {
    const float* data = p->value.data();
    flat.insert(flat.end(), data, data + p->value.size());
  }
  return flat;
}

// EXPECT_EQ on floats is deliberate: the bar is bit-identical, not close.
void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, int threads) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i << " differs at " << threads
                          << " threads";
  }
}

class CancelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(CancelDeterminismTest, ArmedButUnfiredTokenIsBitwiseInvisible) {
  data::ForecastDataset dataset = MakeDataset();
  const std::vector<int32_t> nodes = AllNodes(dataset);
  std::vector<float> reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    std::unique_ptr<GaiaModel> model = MakeModel(dataset);
    std::vector<float> bare = Flatten(
        model->PredictNodes(dataset, nodes, /*training=*/false, nullptr));
    ASSERT_FALSE(bare.empty());

    // Same forward with a far-future deadline token armed over the whole
    // call tree: chunk boundaries and accumulation order must not depend on
    // the token, so the floats are identical bit for bit.
    auto token = CancelToken::WithDeadline(/*deadline_ms=*/3.6e6);
    std::vector<float> armed;
    {
      CancelScope scope(token.get());
      armed = Flatten(
          model->PredictNodes(dataset, nodes, /*training=*/false, nullptr));
    }
    EXPECT_FALSE(token->Cancelled());
    ExpectBitwiseEqual(bare, armed, threads);

    // And across thread counts, as in parallel_determinism_test.
    if (threads == 1) {
      reference = std::move(bare);
    } else {
      ExpectBitwiseEqual(reference, bare, threads);
    }
  }
}

// ---------------------------------------------------------------------------
// Serving: cooperative deadline aborts mid-flight
// ---------------------------------------------------------------------------

class CancelServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = obs::CurrentLevel();
    dataset_ = std::make_shared<data::ForecastDataset>(MakeDataset());
    model_ = std::shared_ptr<GaiaModel>(MakeModel(*dataset_));
  }
  void TearDown() override { obs::SetLevel(saved_level_); }

  static obs::SpanStats ForwardSpanStats() {
    auto agg = obs::TraceBuffer::Global().AggregateByName();
    auto it = agg.find("ita_gcn.forward");
    return it != agg.end() ? it->second : obs::SpanStats{};
  }

  obs::Level saved_level_ = obs::Level::kOff;
  std::shared_ptr<data::ForecastDataset> dataset_;
  std::shared_ptr<GaiaModel> model_;
};

TEST_F(CancelServeTest, TightDeadlineAbortsForwardAndDegrades) {
  obs::SetLevel(obs::Level::kOn);
  auto& registry = obs::MetricsRegistry::Global();

  // Baseline: an uncancelled serve runs every ITA-GCN layer.
  obs::TraceBuffer::Global().Clear();
  serving::ModelServer server(model_, dataset_, serving::ServerConfig{});
  auto healthy = server.Predict(3);
  EXPECT_EQ(healthy.served_by, serving::ModelServer::ServePath::kModel);
  const obs::SpanStats healthy_spans = ForwardSpanStats();
  ASSERT_GE(healthy_spans.count,
            static_cast<uint64_t>(model_->config().num_layers));

  // Tight budget: the token fires before the first chunk boundary, so the
  // forward unwinds before completing — strictly fewer layer spans and
  // strictly less time inside them than the healthy serve.
  const uint64_t requested_before =
      registry.CounterValue("gaia_cancel_requested_total");
  const uint64_t observed_before =
      registry.CounterValue("gaia_cancel_observed_total");
  obs::TraceBuffer::Global().Clear();
  auto degraded = server.Predict(3, /*deadline_ms=*/1e-6);
  const obs::SpanStats aborted_spans = ForwardSpanStats();

  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_NE(degraded.degraded_reason.find("deadline_exceeded"),
            std::string::npos)
      << degraded.degraded_reason;
  EXPECT_NE(degraded.degraded_reason.find("aborted mid-forward"),
            std::string::npos)
      << degraded.degraded_reason;
  ASSERT_EQ(static_cast<int64_t>(degraded.gmv.size()), dataset_->horizon());
  for (double v : degraded.gmv) EXPECT_GE(v, 0.0);

  EXPECT_LT(aborted_spans.count, healthy_spans.count);
  EXPECT_LT(aborted_spans.total_ms, healthy_spans.total_ms);
  EXPECT_GT(registry.CounterValue("gaia_cancel_requested_total"),
            requested_before);
  EXPECT_GT(registry.CounterValue("gaia_cancel_observed_total"),
            observed_before);

  // The token dies with the request: the next serve takes the model path.
  auto after = server.Predict(3);
  EXPECT_EQ(after.served_by, serving::ModelServer::ServePath::kModel);
}

TEST_F(CancelServeTest, PerRequestDeadlineOverridesConfig) {
  serving::ServerConfig cfg;
  cfg.deadline_ms = 0.0;  // no config-level budget
  serving::ModelServer server(model_, dataset_, cfg);
  EXPECT_EQ(server.Predict(4).served_by,
            serving::ModelServer::ServePath::kModel);
  auto degraded = server.Predict(4, /*deadline_ms=*/1e-6);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_NE(degraded.degraded_reason.find("deadline_exceeded"),
            std::string::npos);
  // Per-request 0 keeps the request un-budgeted.
  EXPECT_EQ(server.Predict(4, /*deadline_ms=*/0.0).served_by,
            serving::ModelServer::ServePath::kModel);
}

TEST_F(CancelServeTest, LegacyCheckAfterForwardStillDegrades) {
  // cooperative_cancel=false reverts to the post-hoc deadline check: the
  // forward completes, the overrun is detected afterwards.
  serving::ServerConfig cfg;
  cfg.cooperative_cancel = false;
  serving::ModelServer server(model_, dataset_, cfg);
  auto degraded = server.Predict(6, /*deadline_ms=*/1e-6);
  EXPECT_EQ(degraded.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_NE(degraded.degraded_reason.find("deadline_exceeded"),
            std::string::npos);
  EXPECT_NE(degraded.degraded_reason.find("completed late"),
            std::string::npos);
}

TEST_F(CancelServeTest, GenerousDeadlineKeepsServeBitwiseIdentical) {
  serving::ModelServer bare(model_, dataset_, serving::ServerConfig{});
  auto expected = bare.Predict(9);
  ASSERT_EQ(expected.served_by, serving::ModelServer::ServePath::kModel);

  serving::ServerConfig cfg;
  cfg.deadline_ms = 3.6e6;  // armed on every request, never fires
  serving::ModelServer armed(model_, dataset_, cfg);
  auto actual = armed.Predict(9);
  ASSERT_EQ(actual.served_by, serving::ModelServer::ServePath::kModel);
  ASSERT_EQ(actual.gmv.size(), expected.gmv.size());
  for (size_t i = 0; i < expected.gmv.size(); ++i) {
    EXPECT_EQ(actual.gmv[i], expected.gmv[i]) << "forecast month " << i;
  }
}

// ---------------------------------------------------------------------------
// Sharded tier: cancellation inside the micro-batch queue
// ---------------------------------------------------------------------------

TEST_F(CancelServeTest, RequestCancelledInMicroBatchQueueIsDroppedBeforeForward) {
  obs::SetLevel(obs::Level::kOn);
  auto& registry = obs::MetricsRegistry::Global();

  // Reference answers (no tokens anywhere).
  serving::ModelServer reference(model_, dataset_, serving::ServerConfig{});
  const auto want_a = reference.Predict(1);
  const auto want_b = reference.Predict(2);
  const auto want_c = reference.Predict(3);

  // Spans one forward records (num_layers ita_gcn.forward spans), measured
  // rather than assumed so a config change cannot silently skew the check.
  obs::TraceBuffer::Global().Clear();
  (void)reference.Predict(5);
  const uint64_t spans_per_forward = [&] {
    auto agg = obs::TraceBuffer::Global().AggregateByName();
    auto it = agg.find("ita_gcn.forward");
    return it != agg.end() ? it->second.count : uint64_t{0};
  }();
  ASSERT_GT(spans_per_forward, 0u);

  serving::ShardedServerConfig cfg;
  cfg.num_shards = 1;  // one queue so all four requests share a window
  cfg.max_batch = 4;
  cfg.max_wait_us = 50e3;
  serving::ShardedServer sharded(model_, dataset_, cfg);

  obs::TraceBuffer::Global().Clear();
  const uint64_t observed_before =
      registry.CounterValue("gaia_cancel_observed_total");
  const uint64_t dropped_before =
      registry.CounterValue("gaia_serve_cancelled_in_queue_total");

  // Four concurrent requests; the token of one fires while it waits in the
  // shard queue (it is born fired — the strictest version of "while
  // queued": no window has opened yet).
  CancelToken cancelled;
  cancelled.Cancel();
  serving::ShardedServer::Prediction got_a, got_b, got_c, got_dropped;
  std::thread ta([&] { got_a = sharded.Predict(1); });
  std::thread tb([&] { got_b = sharded.Predict(2); });
  std::thread tc([&] { got_c = sharded.Predict(3); });
  std::thread td([&] { got_dropped = sharded.Predict(4, 0.0, &cancelled); });
  ta.join();
  tb.join();
  tc.join();
  td.join();
  sharded.Stop();

  // The cancelled request was answered without a forward...
  EXPECT_EQ(got_dropped.served_by, serving::ModelServer::ServePath::kFallback);
  EXPECT_EQ(got_dropped.degraded_reason, "cancelled while queued");
  EXPECT_GT(registry.CounterValue("gaia_cancel_observed_total"),
            observed_before);
  EXPECT_EQ(registry.CounterValue("gaia_serve_cancelled_in_queue_total"),
            dropped_before + 1);
  // ...literally: exactly three model forwards ran, one per live request.
  auto agg = obs::TraceBuffer::Global().AggregateByName();
  auto it = agg.find("ita_gcn.forward");
  ASSERT_NE(it, agg.end());
  EXPECT_EQ(it->second.count, 3 * spans_per_forward)
      << "dropped request still reached the model forward";
  // ...and the rest of its window is unaffected: bitwise equal to the
  // unsharded reference.
  for (const auto& [got, want] :
       {std::pair{&got_a, &want_a}, {&got_b, &want_b}, {&got_c, &want_c}}) {
    ASSERT_EQ(got->gmv.size(), want->gmv.size());
    for (size_t i = 0; i < want->gmv.size(); ++i) {
      EXPECT_EQ(got->gmv[i], want->gmv[i])
          << "shop " << want->shop << " month " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Property: randomized aborts keep observability consistent
// ---------------------------------------------------------------------------

TEST(CancellationPropertyTest, RandomizedAbortsKeepCountersAndSpansConsistent) {
  const obs::Level saved_level = obs::CurrentLevel();
  obs::SetLevel(obs::Level::kOn);
  auto& registry = obs::MetricsRegistry::Global();

  data::ForecastDataset dataset = MakeDataset();
  std::unique_ptr<GaiaModel> model = MakeModel(dataset);
  const std::vector<int32_t> nodes = AllNodes(dataset);

  Rng rng(2026);
  ThreadPool pool(4);
  uint64_t prev_requested = registry.CounterValue("gaia_cancel_requested_total");
  uint64_t prev_observed = registry.CounterValue("gaia_cancel_observed_total");
  for (int iter = 0; iter < 20; ++iter) {
    // A pool loop cancelled at a randomized chunk index...
    auto loop_token = CancelToken::Create();
    const int64_t fire_at = static_cast<int64_t>(rng.UniformInt(512));
    std::atomic<int64_t> claimed{0};
    pool.ParallelFor(
        4096,
        [&](int64_t) {
          if (claimed.fetch_add(1) == fire_at) loop_token->Cancel();
        },
        /*grain=*/4, loop_token.get());
    ASSERT_TRUE(loop_token->Cancelled());

    // ...and a model forward whose deadline fires at a random depth (some
    // iterations abort mid-encode, some mid-layer, some complete).
    auto fwd_token = CancelToken::WithDeadline(rng.Uniform(0.01, 0.5));
    {
      CancelScope scope(fwd_token.get());
      (void)model->PredictNodes(dataset, nodes, /*training=*/false, nullptr);
    }

    // Counters only ever grow, regardless of where the abort landed.
    const uint64_t requested =
        registry.CounterValue("gaia_cancel_requested_total");
    const uint64_t observed =
        registry.CounterValue("gaia_cancel_observed_total");
    ASSERT_GE(requested, prev_requested + 1) << "iteration " << iter;
    ASSERT_GE(observed, prev_observed) << "iteration " << iter;
    prev_requested = requested;
    prev_observed = observed;

    // Span stack balanced: every RAII span an aborted run opened was also
    // closed, so a probe span on this thread is top-level (parent 0).
    ASSERT_EQ(obs::TraceSpan::CurrentSpanId(), 0u) << "iteration " << iter;
  }

  {
    obs::TraceSpan probe("cancel_test.probe");
    EXPECT_NE(obs::TraceSpan::CurrentSpanId(), 0u);
  }
  EXPECT_EQ(obs::TraceSpan::CurrentSpanId(), 0u);
  bool probe_found = false;
  for (const obs::SpanRecord& rec : obs::TraceBuffer::Global().Snapshot()) {
    if (std::string(rec.name) == "cancel_test.probe") {
      probe_found = true;
      EXPECT_EQ(rec.parent_id, 0u) << "orphaned open span left on the stack";
    }
  }
  EXPECT_TRUE(probe_found);
  obs::SetLevel(saved_level);
}

}  // namespace
}  // namespace gaia
