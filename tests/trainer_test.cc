#include "core/trainer.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "data/market_simulator.h"

namespace gaia::core {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 50;
    cfg.history_months = 12;
    cfg.seed = 3;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<data::ForecastDataset>(std::move(ds).value());
  }

  std::unique_ptr<GaiaModel> MakeModel() const {
    GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = 1;
    auto model = GaiaModel::Create(cfg, dataset_->history_len(),
                                   dataset_->horizon(),
                                   dataset_->temporal_dim(),
                                   dataset_->static_dim());
    EXPECT_TRUE(model.ok());
    return std::move(model).value();
  }

  std::unique_ptr<data::ForecastDataset> dataset_;
};

TEST_F(TrainerTest, RespectsMaxEpochs) {
  auto model = MakeModel();
  TrainConfig cfg;
  cfg.max_epochs = 7;
  cfg.eval_every = 100;  // no early stop
  TrainResult result = Trainer(cfg).Fit(model.get(), *dataset_);
  EXPECT_EQ(result.epochs_run, 7);
  EXPECT_EQ(result.train_loss_history.size(), 7u);
}

TEST_F(TrainerTest, EarlyStoppingTriggersBeforeMaxEpochs) {
  auto model = MakeModel();
  TrainConfig cfg;
  cfg.max_epochs = 200;
  cfg.eval_every = 1;
  cfg.patience = 2;
  cfg.learning_rate = 0.0f;  // no progress -> early stop fires quickly
  cfg.cosine_lr_decay = false;
  TrainResult result = Trainer(cfg).Fit(model.get(), *dataset_);
  EXPECT_LT(result.epochs_run, 10);
}

TEST_F(TrainerTest, RestoresBestParameters) {
  auto model = MakeModel();
  TrainConfig cfg;
  cfg.max_epochs = 20;
  cfg.eval_every = 2;
  cfg.patience = 50;
  TrainResult result = Trainer(cfg).Fit(model.get(), *dataset_);
  // After restore, current validation loss equals the best recorded loss.
  const double current =
      Trainer::EvaluateMse(model.get(), *dataset_, dataset_->val_nodes());
  EXPECT_NEAR(current, result.best_val_loss, 1e-6);
}

TEST_F(TrainerTest, NodeBatchingTrains) {
  auto model = MakeModel();
  TrainConfig cfg;
  cfg.max_epochs = 10;
  cfg.batch_nodes = 8;
  cfg.eval_every = 5;
  cfg.patience = 100;
  TrainResult result = Trainer(cfg).Fit(model.get(), *dataset_);
  EXPECT_EQ(result.epochs_run, 10);
  EXPECT_GT(result.seconds, 0.0);
}

TEST_F(TrainerTest, DeterministicTrainingRuns) {
  TrainConfig cfg;
  cfg.max_epochs = 8;
  cfg.eval_every = 4;
  auto m1 = MakeModel();
  auto m2 = MakeModel();
  TrainResult r1 = Trainer(cfg).Fit(m1.get(), *dataset_);
  TrainResult r2 = Trainer(cfg).Fit(m2.get(), *dataset_);
  ASSERT_EQ(r1.train_loss_history.size(), r2.train_loss_history.size());
  for (size_t i = 0; i < r1.train_loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.train_loss_history[i], r2.train_loss_history[i]);
  }
}

TEST_F(TrainerTest, ValHistoryTracksEvalCadence) {
  auto model = MakeModel();
  TrainConfig cfg;
  cfg.max_epochs = 12;
  cfg.eval_every = 4;
  cfg.patience = 100;
  TrainResult result = Trainer(cfg).Fit(model.get(), *dataset_);
  EXPECT_EQ(result.val_loss_history.size(), 3u);  // epochs 4, 8, 12
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

TEST_F(TrainerTest, EvaluatorFromPredictionsMatchesHandComputation) {
  // Two nodes, known predictions.
  std::vector<int32_t> nodes = {0, 1};
  std::vector<std::vector<double>> preds(2);
  std::vector<double> abs_errors;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int h = 0; h < dataset_->horizon(); ++h) {
      const double actual = dataset_->ActualGmv(nodes[i], h);
      preds[i].push_back(actual + 100.0);  // constant error of 100
      abs_errors.push_back(100.0);
    }
  }
  EvaluationReport report =
      Evaluator::FromPredictions("test", *dataset_, nodes, preds);
  EXPECT_NEAR(report.overall.mae, 100.0, 1e-6);
  EXPECT_NEAR(report.overall.rmse, 100.0, 1e-6);
  EXPECT_EQ(report.overall.count,
            static_cast<int64_t>(nodes.size()) * dataset_->horizon());
}

TEST_F(TrainerTest, EvaluatorSplitsNewAndOldShops) {
  const auto& nodes = dataset_->test_nodes();
  std::vector<std::vector<double>> preds(
      nodes.size(),
      std::vector<double>(static_cast<size_t>(dataset_->horizon()), 0.0));
  EvaluationReport report =
      Evaluator::FromPredictions("zeros", *dataset_, nodes, preds);
  EXPECT_EQ(report.overall.count,
            report.new_shop.count + report.old_shop.count);
  // Predicting zero for positive GMV gives MAPE ~ 1 wherever defined.
  EXPECT_NEAR(report.overall.mape, 1.0, 1e-9);
}

}  // namespace
}  // namespace gaia::core
