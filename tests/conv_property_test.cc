// Property-style parameterized sweep over the 1-D convolution configuration
// space: every (kernel width, dilation, padding mode, channel combo) must
// (a) preserve sequence length, (b) keep causality when causal, and
// (c) have analytic gradients that match finite differences.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "core/cau.h"
#include "tensor/tensor_ops.h"

namespace gaia {
namespace {

namespace ag = autograd;
using ag::Var;

struct ConvCase {
  int64_t kernel;
  int64_t dilation;
  PadMode mode;
  int64_t c_in;
  int64_t c_out;
};

class ConvPropertyTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvPropertyTest, PreservesSequenceLength) {
  const ConvCase& c = GetParam();
  Rng rng(1);
  const int64_t t_len = 12;
  Tensor input = Tensor::Randn({t_len, c.c_in}, &rng);
  Tensor weight = Tensor::Randn({c.c_out, c.kernel, c.c_in}, &rng);
  Tensor out = Conv1d(input, weight, Tensor(), c.mode, c.dilation);
  EXPECT_EQ(out.dim(0), t_len);
  EXPECT_EQ(out.dim(1), c.c_out);
  EXPECT_TRUE(out.AllFinite());
}

TEST_P(ConvPropertyTest, CausalModeNeverReadsFuture) {
  const ConvCase& c = GetParam();
  if (c.mode != PadMode::kCausal) GTEST_SKIP();
  Rng rng(2);
  const int64_t t_len = 12;
  Tensor input = Tensor::Randn({t_len, c.c_in}, &rng);
  Tensor weight = Tensor::Randn({c.c_out, c.kernel, c.c_in}, &rng);
  Tensor base = Conv1d(input, weight, Tensor(), c.mode, c.dilation);
  for (int64_t t_perturb : {t_len - 1, t_len / 2}) {
    Tensor perturbed = input;
    for (int64_t ch = 0; ch < c.c_in; ++ch) {
      perturbed.at(t_perturb, ch) += 100.0f;
    }
    Tensor out = Conv1d(perturbed, weight, Tensor(), c.mode, c.dilation);
    for (int64_t t = 0; t < t_perturb; ++t) {
      for (int64_t o = 0; o < c.c_out; ++o) {
        ASSERT_EQ(out.at(t, o), base.at(t, o))
            << "future leak at t=" << t << " after perturbing " << t_perturb;
      }
    }
  }
}

TEST_P(ConvPropertyTest, GradientsMatchFiniteDifferences) {
  const ConvCase& c = GetParam();
  Rng rng(3);
  const int64_t t_len = 9;
  std::vector<Var> params = {
      ag::Parameter(Tensor::Randn({t_len, c.c_in}, &rng, 0.5f)),
      ag::Parameter(Tensor::Randn({c.c_out, c.kernel, c.c_in}, &rng, 0.5f)),
      ag::Parameter(Tensor::Randn({c.c_out}, &rng, 0.5f))};
  auto build = [&](const std::vector<Var>& p) {
    Var out = ag::Conv1d(p[0], p[1], p[2], c.mode, c.dilation);
    return ag::SumAll(ag::Mul(out, out));
  };
  auto result = ag::CheckGradients(build, params);
  EXPECT_TRUE(result.ok) << result.detail;
}

std::vector<ConvCase> MakeConvCases() {
  std::vector<ConvCase> cases;
  for (int64_t kernel : {1, 2, 3, 5}) {
    for (int64_t dilation : {1, 2}) {
      for (PadMode mode : {PadMode::kSame, PadMode::kCausal}) {
        cases.push_back(ConvCase{kernel, dilation, mode, 2, 3});
      }
    }
  }
  cases.push_back(ConvCase{3, 4, PadMode::kCausal, 1, 1});  // extreme dilation
  cases.push_back(ConvCase{4, 1, PadMode::kSame, 4, 2});    // even width
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvPropertyTest, ::testing::ValuesIn(MakeConvCases()),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const ConvCase& c = info.param;
      return "k" + std::to_string(c.kernel) + "_d" +
             std::to_string(c.dilation) +
             (c.mode == PadMode::kCausal ? "_causal" : "_same") + "_ci" +
             std::to_string(c.c_in) + "_co" + std::to_string(c.c_out);
    });

// ---------------------------------------------------------------------------
// Softmax property sweep over row/column sizes.
// ---------------------------------------------------------------------------

class SoftmaxPropertyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SoftmaxPropertyTest, RowsAreDistributions) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<uint64_t>(rows * 31 + cols));
  Tensor logits = Tensor::Randn({rows, cols}, &rng, 5.0f);
  Tensor probs = SoftmaxRows(logits);
  for (int64_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    float max_p = 0.0f;
    int64_t argmax_p = 0, argmax_l = 0;
    float max_l = -1e30f;
    for (int64_t j = 0; j < cols; ++j) {
      EXPECT_GE(probs.at(i, j), 0.0f);
      sum += probs.at(i, j);
      if (probs.at(i, j) > max_p) {
        max_p = probs.at(i, j);
        argmax_p = j;
      }
      if (logits.at(i, j) > max_l) {
        max_l = logits.at(i, j);
        argmax_l = j;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(argmax_p, argmax_l);  // order preserved
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxPropertyTest,
                         ::testing::Combine(::testing::Values<int64_t>(1, 3,
                                                                       24),
                                            ::testing::Values<int64_t>(1, 7,
                                                                       24)));

// ---------------------------------------------------------------------------
// ConvAttentionUnit properties, parameterized over the head count.
// ---------------------------------------------------------------------------

class CauHeadsTest : public ::testing::TestWithParam<int64_t> {};

// The multi-head path (SliceCols / per-head softmax / ConcatCols) has its own
// backward composition; finite differences must agree through the full CAU
// for both the unit's parameters and the node representations.
TEST_P(CauHeadsTest, MultiHeadGradientsMatchFiniteDifferences) {
  const int64_t heads = GetParam();
  Rng rng(41);
  const int64_t t_len = 6, c = 4;
  core::ConvAttentionUnit cau(c, &rng, /*dense_projections=*/false,
                              /*causal=*/true, heads);
  Var h_u = ag::Parameter(Tensor::Randn({t_len, c}, &rng, 0.5f));
  Var h_v = ag::Parameter(Tensor::Randn({t_len, c}, &rng, 0.5f));
  std::vector<Var> params = cau.Parameters();
  params.push_back(h_u);
  params.push_back(h_v);
  auto build = [&](const std::vector<Var>&) {
    Var out = cau.Forward(h_u, h_v);
    return ag::SumAll(ag::Mul(out, out));
  };
  auto result = ag::CheckGradients(build, params);
  EXPECT_TRUE(result.ok) << result.detail;
}

// Causal property of the whole unit: since Q/K/V projections are causal
// convolutions and the mask kills rightward attention, the output at t is a
// function of inputs at <= t only. Perturbing timestamps >= t_perturb (on
// both endpoints of the edge) must leave every earlier row untouched.
TEST_P(CauHeadsTest, CausalMaskBlocksFutureInfluence) {
  const int64_t heads = GetParam();
  const int64_t t_len = 10, c = 4;
  Rng rng(51);
  core::ConvAttentionUnit cau(c, &rng, /*dense_projections=*/false,
                              /*causal=*/true, heads);
  Rng data_rng(52);
  Tensor h_u = Tensor::Randn({t_len, c}, &data_rng);
  Tensor h_v = Tensor::Randn({t_len, c}, &data_rng);
  Tensor base = cau.Forward(ag::Constant(h_u), ag::Constant(h_v))->value;
  for (int64_t t_perturb : {t_len - 1, t_len - 4}) {
    Tensor pu = h_u, pv = h_v;
    for (int64_t t = t_perturb; t < t_len; ++t) {
      for (int64_t ch = 0; ch < c; ++ch) {
        pu.at(t, ch) += 50.0f;
        pv.at(t, ch) -= 50.0f;
      }
    }
    Tensor out = cau.Forward(ag::Constant(pu), ag::Constant(pv))->value;
    for (int64_t t = 0; t < t_perturb; ++t) {
      for (int64_t ch = 0; ch < c; ++ch) {
        ASSERT_FLOAT_EQ(out.at(t, ch), base.at(t, ch))
            << "future leak at t=" << t << " after perturbing >= " << t_perturb
            << " with " << heads << " heads";
      }
    }
  }
}

// Control for the property above: with the mask disabled (the w/o-causal
// ablation) the same perturbation *must* reach earlier rows through the
// attention weights — otherwise the previous test proves nothing.
TEST_P(CauHeadsTest, NonCausalAttentionSeesFuturePerturbations) {
  const int64_t heads = GetParam();
  const int64_t t_len = 10, c = 4;
  Rng rng(51);
  core::ConvAttentionUnit cau(c, &rng, /*dense_projections=*/false,
                              /*causal=*/false, heads);
  Rng data_rng(52);
  Tensor h_u = Tensor::Randn({t_len, c}, &data_rng);
  Tensor h_v = Tensor::Randn({t_len, c}, &data_rng);
  Tensor base = cau.Forward(ag::Constant(h_u), ag::Constant(h_v))->value;
  const int64_t t_perturb = t_len - 2;
  Tensor pv = h_v;
  for (int64_t t = t_perturb; t < t_len; ++t) {
    for (int64_t ch = 0; ch < c; ++ch) pv.at(t, ch) += 50.0f;
  }
  Tensor out = cau.Forward(ag::Constant(h_u), ag::Constant(pv))->value;
  float max_diff = 0.0f;
  for (int64_t t = 0; t < t_perturb; ++t) {
    for (int64_t ch = 0; ch < c; ++ch) {
      max_diff = std::max(max_diff, std::fabs(out.at(t, ch) - base.at(t, ch)));
    }
  }
  EXPECT_GT(max_diff, 1e-6f)
      << "unmasked attention should leak the future into earlier rows";
}

INSTANTIATE_TEST_SUITE_P(Heads, CauHeadsTest,
                         ::testing::Values<int64_t>(1, 2, 4),
                         [](const ::testing::TestParamInfo<int64_t>& info) {
                           return "h" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gaia
