#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/arima_forecaster.h"
#include "baselines/mtgnn.h"
#include "baselines/zoo.h"
#include "core/trainer.h"
#include "data/market_simulator.h"

namespace gaia::baselines {
namespace {

data::MarketConfig SmallMarket() {
  data::MarketConfig cfg;
  cfg.num_shops = 50;
  cfg.history_months = 14;
  cfg.seed = 77;
  return cfg;
}

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto market = data::MarketSimulator(SmallMarket()).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ =
        std::make_unique<data::ForecastDataset>(std::move(ds).value());
  }
  std::unique_ptr<data::ForecastDataset> dataset_;
};

TEST_F(BaselinesTest, ZooListsAllTableOneMethods) {
  auto names = TrainableModelNames();
  EXPECT_EQ(names.size(), 8u);
  EXPECT_EQ(names.back(), "Gaia");
}

TEST_F(BaselinesTest, ZooRejectsUnknownName) {
  auto model = CreateModel("NotAModel", *dataset_);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

// Every trainable model: builds, predicts the right shapes, produces finite
// non-negative forecasts, and one optimizer step reduces training loss.
class PerModelTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto market = data::MarketSimulator(SmallMarket()).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ =
        std::make_unique<data::ForecastDataset>(std::move(ds).value());
  }
  std::unique_ptr<data::ForecastDataset> dataset_;
};

TEST_P(PerModelTest, PredictShapesAndFiniteness) {
  auto model = CreateModel(GetParam(), *dataset_, /*channels=*/6,
                           /*seed=*/5);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Rng rng(1);
  std::vector<int32_t> nodes = {0, 3, 7};
  auto preds = model.value()->PredictNodes(*dataset_, nodes, false, &rng);
  ASSERT_EQ(preds.size(), nodes.size());
  for (const auto& p : preds) {
    EXPECT_EQ(p->value.ndim(), 1);
    EXPECT_EQ(p->value.dim(0), dataset_->horizon());
    EXPECT_TRUE(p->value.AllFinite());
    EXPECT_GE(p->value.Min(), 0.0f) << "GMV forecasts must be non-negative";
  }
}

TEST_P(PerModelTest, ShortTrainingReducesLoss) {
  auto model = CreateModel(GetParam(), *dataset_, /*channels=*/6,
                           /*seed=*/5);
  ASSERT_TRUE(model.ok());
  core::TrainConfig tc;
  tc.max_epochs = 12;
  tc.eval_every = 6;
  tc.patience = 100;
  tc.learning_rate = 5e-3f;
  core::TrainResult result =
      core::Trainer(tc).Fit(model.value().get(), *dataset_);
  ASSERT_EQ(result.train_loss_history.size(), 12u);
  EXPECT_LT(result.final_train_loss, result.train_loss_history.front());
}

TEST_P(PerModelTest, DeterministicGivenSeeds) {
  Rng rng1(3), rng2(3);
  auto m1 = CreateModel(GetParam(), *dataset_, 6, 5);
  auto m2 = CreateModel(GetParam(), *dataset_, 6, 5);
  ASSERT_TRUE(m1.ok() && m2.ok());
  auto p1 = m1.value()->PredictNodes(*dataset_, {1}, false, &rng1);
  auto p2 = m2.value()->PredictNodes(*dataset_, {1}, false, &rng2);
  EXPECT_TRUE(AllClose(p1[0]->value, p2[0]->value, 0.0f));
}

std::vector<std::string> AllModelNames() {
  std::vector<std::string> names = TrainableModelNames();
  for (const std::string& extra : ExtraModelNames()) names.push_back(extra);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PerModelTest, ::testing::ValuesIn(AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Model-specific behaviours
// ---------------------------------------------------------------------------

TEST_F(BaselinesTest, MtgnnLearnsSparseGraph) {
  MtgnnConfig cfg;
  cfg.channels = 6;
  cfg.top_k = 3;
  Mtgnn model(cfg, *dataset_);
  auto neighbors = model.LearnedNeighbors();
  ASSERT_EQ(static_cast<int64_t>(neighbors.size()), dataset_->num_nodes());
  for (const auto& nbrs : neighbors) {
    EXPECT_LE(nbrs.size(), 3u);
    for (int32_t v : nbrs) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, dataset_->num_nodes());
    }
  }
}

TEST_F(BaselinesTest, MtgnnIsTransductive) {
  MtgnnConfig cfg;
  cfg.channels = 6;
  Mtgnn model(cfg, *dataset_);
  // A dataset with a different node count must be rejected.
  data::MarketConfig other = SmallMarket();
  other.num_shops = 30;
  auto market = data::MarketSimulator(other).Generate();
  ASSERT_TRUE(market.ok());
  auto ds = data::ForecastDataset::Create(market.value(),
                                          data::DatasetOptions{});
  ASSERT_TRUE(ds.ok());
  Rng rng(1);
  EXPECT_DEATH(model.PredictNodes(ds.value(), {0}, false, &rng),
               "transductive");
}

TEST_F(BaselinesTest, GaiaAblationNamesRouteToVariants) {
  for (const char* name :
       {"Gaia w/o ITA", "Gaia w/o FFL", "Gaia w/o TEL"}) {
    auto model = CreateModel(name, *dataset_, 6, 5);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ(model.value()->name(), name);
  }
}

// ---------------------------------------------------------------------------
// ARIMA forecaster adapter
// ---------------------------------------------------------------------------

TEST_F(BaselinesTest, ArimaRawHistoryLengthMatchesSeriesLength) {
  ArimaForecaster arima;
  for (int32_t v = 0; v < 10; ++v) {
    auto history = ArimaForecaster::RawHistory(*dataset_, v);
    EXPECT_EQ(static_cast<int>(history.size()),
              dataset_->series_length(v));
    for (double g : history) EXPECT_GE(g, 0.0);
  }
}

TEST_F(BaselinesTest, ArimaForecastsEveryRequestedNode) {
  ArimaForecaster arima;
  const std::vector<int32_t>& nodes = dataset_->test_nodes();
  auto forecasts = arima.ForecastNodes(*dataset_, nodes);
  ASSERT_EQ(forecasts.size(), nodes.size());
  for (const auto& f : forecasts) {
    EXPECT_EQ(static_cast<int64_t>(f.size()), dataset_->horizon());
    for (double v : f) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(BaselinesTest, ArimaEvaluationReportIsComplete) {
  ArimaForecaster arima;
  core::EvaluationReport report =
      arima.Evaluate(*dataset_, dataset_->test_nodes());
  EXPECT_EQ(report.method, "ARIMA");
  EXPECT_EQ(static_cast<int64_t>(report.per_month.size()),
            dataset_->horizon());
  EXPECT_GT(report.overall.count, 0);
  EXPECT_EQ(report.overall.count,
            report.new_shop.count + report.old_shop.count);
}

}  // namespace
}  // namespace gaia::baselines
