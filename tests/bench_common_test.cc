#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gaia::bench {
namespace {

core::EvaluationReport MakeReport(double base) {
  core::EvaluationReport report;
  report.method = "m";
  for (int h = 0; h < 3; ++h) {
    ts::ForecastMetrics m;
    m.mae = base + h;
    m.rmse = 2 * base + h;
    m.mape = base / 100.0;
    m.count = 10;
    report.per_month.push_back(m);
  }
  report.overall.mae = base;
  report.overall.count = 30;
  report.new_shop.mae = base * 2;
  report.old_shop.mae = base / 2;
  return report;
}

TEST(BenchCommonTest, AverageReportsIsElementwiseMean) {
  auto avg = AverageReports({MakeReport(10.0), MakeReport(20.0)});
  EXPECT_EQ(avg.method, "m");
  ASSERT_EQ(avg.per_month.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.per_month[0].mae, 15.0);
  EXPECT_DOUBLE_EQ(avg.per_month[2].mae, 17.0);
  EXPECT_DOUBLE_EQ(avg.per_month[1].rmse, 31.0);
  EXPECT_DOUBLE_EQ(avg.overall.mae, 15.0);
  EXPECT_DOUBLE_EQ(avg.new_shop.mae, 30.0);
  EXPECT_DOUBLE_EQ(avg.old_shop.mae, 7.5);
  // Counts accumulate (total samples seen across reps).
  EXPECT_EQ(avg.overall.count, 60);
}

TEST(BenchCommonTest, AverageOfSingleReportIsIdentityOnMetrics) {
  auto report = MakeReport(7.0);
  auto avg = AverageReports({report});
  EXPECT_DOUBLE_EQ(avg.overall.mae, report.overall.mae);
  EXPECT_DOUBLE_EQ(avg.per_month[1].mape, report.per_month[1].mape);
}

TEST(BenchCommonTest, ScaleReadsEnvironment) {
  setenv("GAIA_BENCH_SCALE", "full", 1);
  setenv("GAIA_BENCH_SEED", "123", 1);
  BenchScale full = GetBenchScale();
  EXPECT_EQ(full.name, "full");
  EXPECT_EQ(full.seed, 123u);
  EXPECT_GT(full.num_shops, 300);
  setenv("GAIA_BENCH_SCALE", "small", 1);
  BenchScale small = GetBenchScale();
  EXPECT_EQ(small.name, "small");
  EXPECT_LT(small.num_shops, full.num_shops);
  unsetenv("GAIA_BENCH_SCALE");
  unsetenv("GAIA_BENCH_SEED");
}

TEST(BenchCommonTest, RepsDefaultToOneAndClampInvalid) {
  unsetenv("GAIA_BENCH_REPS");
  EXPECT_EQ(GetBenchReps(), 1);
  setenv("GAIA_BENCH_REPS", "3", 1);
  EXPECT_EQ(GetBenchReps(), 3);
  setenv("GAIA_BENCH_REPS", "0", 1);
  EXPECT_EQ(GetBenchReps(), 1);
  setenv("GAIA_BENCH_REPS", "garbage", 1);
  EXPECT_EQ(GetBenchReps(), 1);
  unsetenv("GAIA_BENCH_REPS");
}

TEST(BenchCommonTest, HorizonMonthNamesFollowCalendar) {
  data::MarketConfig cfg;
  cfg.start_calendar_month = 9;  // October start
  cfg.history_months = 24;
  EXPECT_EQ(HorizonMonthName(cfg, 0), "Oct");
  EXPECT_EQ(HorizonMonthName(cfg, 1), "Nov");
  EXPECT_EQ(HorizonMonthName(cfg, 2), "Dec");
  cfg.start_calendar_month = 0;
  EXPECT_EQ(HorizonMonthName(cfg, 0), "Jan");
}

TEST(BenchCommonTest, PaperTableHasNineMethodsInOrder) {
  const auto& table = PaperTable1();
  ASSERT_EQ(table.size(), 9u);
  EXPECT_EQ(table.front().method, "ARIMA");
  EXPECT_EQ(table.back().method, "Gaia");
  // Paper's headline: Gaia beats every baseline on every month's MAPE.
  for (size_t i = 0; i + 1 < table.size(); ++i) {
    for (int h = 0; h < 3; ++h) {
      EXPECT_LT(table.back().mape[h], table[i].mape[h]);
    }
  }
}

}  // namespace
}  // namespace gaia::bench
