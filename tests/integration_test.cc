// Cross-module integration tests: simulator -> dataset -> model -> trainer
// -> evaluator -> serving, plus the ego-subgraph exactness property.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "baselines/zoo.h"
#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/market_io.h"
#include "data/market_simulator.h"
#include "serving/model_server.h"

namespace gaia {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 70;
    cfg.history_months = 14;
    cfg.seed = 13;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    market_ = std::make_unique<data::MarketData>(std::move(market).value());
    auto ds = data::ForecastDataset::Create(*market_, data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());
  }

  std::shared_ptr<core::GaiaModel> MakeGaia(int64_t layers = 2) const {
    core::GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = layers;
    auto model = core::GaiaModel::Create(
        cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    EXPECT_TRUE(model.ok());
    return std::shared_ptr<core::GaiaModel>(std::move(model).value());
  }

  std::unique_ptr<data::MarketData> market_;
  std::shared_ptr<data::ForecastDataset> dataset_;
};

TEST_F(IntegrationTest, EgoForwardIsExactWithFullFanoutAndEnoughHops) {
  // Message passing reaches exactly L hops, so an unsampled L-hop ego
  // subgraph must reproduce the full-graph prediction bit for bit.
  auto model = MakeGaia(/*layers=*/2);
  Rng rng(1);
  std::vector<int32_t> nodes = {0, 5, 11, 23};
  auto full = model->PredictNodes(*dataset_, nodes, false, &rng);
  auto ego = model->PredictNodesViaEgo(*dataset_, nodes, /*num_hops=*/2,
                                       /*max_fanout=*/0, &rng);
  ASSERT_EQ(full.size(), ego.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_TRUE(AllClose(full[i]->value, ego[i]->value, 1e-5f))
        << "node " << nodes[i];
  }
}

TEST_F(IntegrationTest, UndersizedEgoDeviatesFromFullGraph) {
  // With 1 hop for a 2-layer model the receptive field is truncated; for at
  // least one well-connected node the prediction must differ.
  auto model = MakeGaia(/*layers=*/2);
  Rng rng(2);
  bool any_different = false;
  for (int32_t v = 0; v < 30; ++v) {
    if (dataset_->graph().InDegree(v) == 0) continue;
    auto full = model->PredictNodes(*dataset_, {v}, false, &rng);
    auto ego = model->PredictNodesViaEgo(*dataset_, {v}, /*num_hops=*/1,
                                         /*max_fanout=*/0, &rng);
    if (!AllClose(full[0]->value, ego[0]->value, 1e-6f)) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST_F(IntegrationTest, EgoBatchTrainingReducesLoss) {
  auto inner = MakeGaia(/*layers=*/1);
  core::EgoSamplingGaia model(inner, /*num_hops=*/1, /*train_fanout=*/4);
  EXPECT_EQ(model.name(), "Gaia (ego-batch)");
  // Adapter exposes the inner parameters for the optimizer.
  EXPECT_EQ(model.ParameterCount(), inner->ParameterCount());
  core::TrainConfig tc;
  tc.max_epochs = 8;
  tc.batch_nodes = 12;
  tc.eval_every = 8;
  tc.patience = 100;
  core::TrainResult result = core::Trainer(tc).Fit(&model, *dataset_);
  EXPECT_LT(result.final_train_loss, result.train_loss_history.front());
}

TEST_F(IntegrationTest, FullPipelineDeterminism) {
  // Two independent end-to-end runs produce identical metrics.
  auto run_once = [&] {
    auto model = MakeGaia(1);
    core::TrainConfig tc;
    tc.max_epochs = 6;
    tc.eval_every = 3;
    core::Trainer(tc).Fit(model.get(), *dataset_);
    return core::Evaluator::Evaluate(model.get(), *dataset_,
                                     dataset_->test_nodes());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_DOUBLE_EQ(a.overall.mae, b.overall.mae);
  EXPECT_DOUBLE_EQ(a.overall.rmse, b.overall.rmse);
  EXPECT_DOUBLE_EQ(a.overall.mape, b.overall.mape);
}

TEST_F(IntegrationTest, CsvRoundTripPreservesModelPredictions) {
  // Market -> CSV -> market -> dataset must leave predictions unchanged.
  const std::string dir = "/tmp/gaia_integration_market";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  ASSERT_TRUE(data::SaveMarketCsv(*market_, dir).ok());
  auto loaded = data::LoadMarketCsv(dir);
  ASSERT_TRUE(loaded.ok());
  auto ds2 = data::ForecastDataset::Create(loaded.value(),
                                           data::DatasetOptions{});
  ASSERT_TRUE(ds2.ok());
  auto model = MakeGaia(1);
  Rng rng(3);
  auto before = model->PredictNodes(*dataset_, {1, 2}, false, &rng);
  auto after = model->PredictNodes(ds2.value(), {1, 2}, false, &rng);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(AllClose(before[i]->value, after[i]->value, 1e-5f));
  }
}

TEST_F(IntegrationTest, TrainedModelSurvivesCheckpointAndServing) {
  auto model = MakeGaia(2);
  core::TrainConfig tc;
  tc.max_epochs = 6;
  tc.eval_every = 3;
  core::Trainer(tc).Fit(model.get(), *dataset_);
  const std::string path = "/tmp/gaia_integration_ckpt.bin";
  ASSERT_TRUE(model->Save(path).ok());

  auto fresh = MakeGaia(2);
  ASSERT_TRUE(fresh->Load(path).ok());
  serving::ServerConfig server_cfg;
  server_cfg.max_fanout = 1000;  // deterministic full neighbourhoods
  server_cfg.ego_hops = 2;
  serving::ModelServer server(fresh, dataset_, server_cfg);
  Rng rng(4);
  const int32_t shop = dataset_->test_nodes().front();
  auto served = server.Predict(shop);
  auto direct = model->PredictNodes(*dataset_, {shop}, false, &rng);
  for (int h = 0; h < dataset_->horizon(); ++h) {
    EXPECT_NEAR(served.gmv[static_cast<size_t>(h)],
                dataset_->Denormalize(shop, direct[0]->value.at(h)),
                1e-2);
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, ExtraBaselinesIntegrateWithTrainer) {
  for (const std::string& name : baselines::ExtraModelNames()) {
    auto model = baselines::CreateModel(name, *dataset_, 6, 3);
    ASSERT_TRUE(model.ok()) << name;
    core::TrainConfig tc;
    tc.max_epochs = 6;
    tc.eval_every = 3;
    core::TrainResult result =
        core::Trainer(tc).Fit(model.value().get(), *dataset_);
    EXPECT_LT(result.final_train_loss, result.train_loss_history.front())
        << name;
    auto report = core::Evaluator::Evaluate(model.value().get(), *dataset_,
                                            dataset_->test_nodes());
    EXPECT_GT(report.overall.count, 0);
  }
}

}  // namespace
}  // namespace gaia
