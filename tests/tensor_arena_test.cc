#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/market_simulator.h"
#include "core/gaia_model.h"
#include "obs/metrics.h"
#include "serving/model_server.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

using util::ArenaScope;
using util::FloatBuffer;
using util::TensorArena;

/// Restores the arena enable flag and trims this thread's cache so tests
/// can't leak state into each other.
class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = TensorArena::Enabled(); }
  void TearDown() override {
    TensorArena::SetEnabled(previous_);
    TensorArena::Trim();
  }
  bool previous_ = false;
};

TEST_F(ArenaTest, ReusesBuffersAcrossScopes) {
  TensorArena::SetEnabled(true);
  TensorArena::Trim();
  constexpr int64_t kFloats = 1024;
  {
    ArenaScope scope;
    { FloatBuffer warm(kFloats); }  // first allocation hits the heap
    const auto before = TensorArena::Stats();
    {
      FloatBuffer a(kFloats);
      FloatBuffer b(kFloats);  // cache holds one buffer; second is a miss
    }
    {
      ArenaScope nested;  // scopes nest; same thread cache underneath
      FloatBuffer c(kFloats);
    }
    const auto after = TensorArena::Stats();
    EXPECT_EQ(after.reuse_count - before.reuse_count, 2);
    EXPECT_EQ(after.heap_allocs - before.heap_allocs, 1);
  }
  // Outside any scope allocations bypass the cache entirely.
  const auto before = TensorArena::Stats();
  { FloatBuffer plain(kFloats); }
  const auto after = TensorArena::Stats();
  EXPECT_EQ(after.reuse_count, before.reuse_count);
  EXPECT_EQ(after.heap_allocs - before.heap_allocs, 1);
}

TEST_F(ArenaTest, TracksLiveAndHighWaterBytes) {
  TensorArena::SetEnabled(true);
  TensorArena::Trim();
  ArenaScope scope;
  const auto base = TensorArena::Stats();
  // 1000 floats = 4000 B rounds up to the 4096 B size class.
  FloatBuffer a(1000);
  auto stats = TensorArena::Stats();
  EXPECT_EQ(stats.live_bytes - base.live_bytes, 4096);
  EXPECT_GE(stats.high_water_bytes, stats.live_bytes);
  {
    FloatBuffer b(1000);
    stats = TensorArena::Stats();
    EXPECT_EQ(stats.live_bytes - base.live_bytes, 8192);
  }
  stats = TensorArena::Stats();
  EXPECT_EQ(stats.live_bytes - base.live_bytes, 4096);   // b returned
  EXPECT_GE(stats.high_water_bytes - base.live_bytes, 8192);
  EXPECT_EQ(stats.cached_bytes, 4096);                   // b parked, a live
}

TEST_F(ArenaTest, AllocationsAreZeroFilledEvenWhenReused) {
  TensorArena::SetEnabled(true);
  TensorArena::Trim();
  ArenaScope scope;
  constexpr int64_t kFloats = 512;
  {
    FloatBuffer dirty(kFloats);
    for (int64_t i = 0; i < kFloats; ++i) dirty[static_cast<size_t>(i)] = 7.0f;
  }
  FloatBuffer reused(kFloats);  // pops the dirtied buffer from the cache
  for (int64_t i = 0; i < kFloats; ++i) {
    ASSERT_EQ(reused[static_cast<size_t>(i)], 0.0f) << "index " << i;
  }
}

TEST_F(ArenaTest, DisabledFallbackIsBitwiseIdentical) {
  // The same computation with the arena on, off, and on-with-warm-cache must
  // produce byte-identical tensors: the arena is invisible to numerics.
  auto compute = [] {
    Rng rng(1234);
    Tensor a = Tensor::Randn({64, 96}, &rng);
    Tensor b = Tensor::Randn({96, 80}, &rng);
    Tensor h = MatMul(a, b);
    h = SoftmaxRows(h);
    h = MatMul(h, Transpose(b));
    return Relu(h);
  };
  TensorArena::SetEnabled(false);
  const Tensor off = compute();
  TensorArena::SetEnabled(true);
  TensorArena::Trim();
  ArenaScope scope;
  const Tensor cold = compute();
  const Tensor warm = compute();  // second run reuses cached buffers
  ASSERT_TRUE(off.SameShape(cold));
  EXPECT_EQ(std::memcmp(off.data(), cold.data(),
                        static_cast<size_t>(off.size()) * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(off.data(), warm.data(),
                        static_cast<size_t>(off.size()) * sizeof(float)),
            0);
}

TEST_F(ArenaTest, ParseEnabledMatchesDocumentedKnob) {
  EXPECT_TRUE(TensorArena::ParseEnabled(nullptr));   // unset -> on
  EXPECT_TRUE(TensorArena::ParseEnabled(""));
  EXPECT_TRUE(TensorArena::ParseEnabled("1"));
  EXPECT_TRUE(TensorArena::ParseEnabled("on"));
  EXPECT_FALSE(TensorArena::ParseEnabled("0"));
  EXPECT_FALSE(TensorArena::ParseEnabled("off"));
  EXPECT_FALSE(TensorArena::ParseEnabled("OFF"));
  EXPECT_FALSE(TensorArena::ParseEnabled("false"));
  EXPECT_FALSE(TensorArena::ParseEnabled("no"));
}

// Buffers allocated on one thread may be released on another (tensors move
// through the serving pipeline and outlive pool jobs). Eight threads trade
// buffers through a shared mailbox; TSan (the concurrency CI leg runs this
// binary) checks the cross-thread release path, and the arena must neither
// crash nor corrupt data.
TEST_F(ArenaTest, EightThreadCrossReleaseHammer) {
  TensorArena::SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::mutex mu;
  std::vector<std::unique_ptr<FloatBuffer>> mailbox;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &mailbox, t] {
      ArenaScope scope;
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int round = 0; round < kRounds; ++round) {
        const int64_t n = 64 + static_cast<int64_t>(rng.NextUint32() % 1024);
        auto buffer = std::make_unique<FloatBuffer>(n);
        (*buffer)[0] = static_cast<float>(t);
        std::unique_ptr<FloatBuffer> adopted;
        {
          std::lock_guard<std::mutex> lock(mu);
          mailbox.push_back(std::move(buffer));
          if (mailbox.size() > 4) {
            adopted = std::move(mailbox.front());
            mailbox.erase(mailbox.begin());
          }
        }
        // `adopted` was allocated by some other thread; releasing it here
        // parks it on *this* thread's free list.
        if (adopted != nullptr) {
          ASSERT_GE((*adopted)[0], 0.0f);
        }
      }
      TensorArena::Trim();
    });
  }
  for (std::thread& thread : threads) thread.join();
  mailbox.clear();
}

// ---------------------------------------------------------------------------
// Packed-vs-naive MatMul equivalence
// ---------------------------------------------------------------------------

Tensor RandomNonZero(std::vector<int64_t> shape, Rng* rng) {
  // Strictly non-zero entries: the naive kernel's zero-skip is the one spot
  // where its accumulation chain could diverge from the packed kernel's (a
  // skipped +0.0 vs an added -0.0), so the equivalence property is stated
  // over zero-free operands.
  Tensor t = Tensor::RandUniform(std::move(shape), rng, 0.25f, 1.0f);
  Tensor sign = Tensor::RandUniform(t.shape(), rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    if (sign.data()[i] < 0.0f) t.data()[i] = -t.data()[i];
  }
  return t;
}

void ExpectExactlyEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0)
      << what << ": packed and naive kernels diverged bitwise";
}

TEST(MatMulEquivalenceTest, PackedMatchesNaiveExactlyOverRandomShapes) {
  Rng rng(99);
  // Deliberate edge coverage: sub-tile dims, exact tile multiples, one-off
  // remainders, k crossing the KC=128 block boundary, m crossing MC=128.
  const std::vector<std::vector<int64_t>> shapes = {
      {1, 1, 1},     {3, 5, 7},     {8, 8, 8},     {7, 9, 16},
      {16, 16, 16},  {24, 130, 24}, {64, 64, 64},  {65, 127, 63},
      {128, 128, 8}, {130, 257, 9}, {33, 300, 65}, {256, 96, 40},
  };
  for (const auto& s : shapes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    Tensor a = RandomNonZero({m, k}, &rng);
    Tensor b = RandomNonZero({k, n}, &rng);
    const std::string what = "m=" + std::to_string(m) + " k=" +
                             std::to_string(k) + " n=" + std::to_string(n);
    Tensor naive = MatMulNaive(a, b);
    Tensor packed = MatMulPacked(a, b);
    ExpectExactlyEqual(naive, packed, what);
    // The public entry point dispatches to one of the two; either way the
    // result must be the same bits.
    ExpectExactlyEqual(naive, MatMul(a, b), what + " (dispatch)");
  }
}

TEST(MatMulEquivalenceTest, PackedIsThreadCountInvariant) {
  Rng rng(7);
  Tensor a = RandomNonZero({130, 257}, &rng);
  Tensor b = RandomNonZero({257, 96}, &rng);
  util::ThreadPool::SetGlobalThreads(1);
  Tensor serial = MatMulPacked(a, b);
  util::ThreadPool::SetGlobalThreads(4);
  Tensor parallel = MatMulPacked(a, b);
  util::ThreadPool::SetGlobalThreads(util::ThreadPool::DefaultThreads());
  ExpectExactlyEqual(serial, parallel, "1 thread vs 4 threads");
}

// ---------------------------------------------------------------------------
// Steady-state serving: the arena removes the heap from the hot path
// ---------------------------------------------------------------------------

TEST(ArenaServingTest, SteadyStatePredictHeapAllocsDropByNinetyPercent) {
  const bool previous = TensorArena::Enabled();
  TensorArena::SetEnabled(true);
  const obs::Level previous_level = obs::CurrentLevel();
  obs::SetLevel(obs::Level::kOn);

  data::MarketConfig cfg;
  cfg.num_shops = 40;
  cfg.history_months = 14;
  cfg.seed = 17;
  auto market = data::MarketSimulator(cfg).Generate();
  ASSERT_TRUE(market.ok());
  auto ds = data::ForecastDataset::Create(market.value(),
                                          data::DatasetOptions{});
  ASSERT_TRUE(ds.ok());
  auto dataset =
      std::make_shared<data::ForecastDataset>(std::move(ds).value());
  core::GaiaConfig model_cfg;
  model_cfg.channels = 8;
  model_cfg.tel_groups = 2;
  model_cfg.num_layers = 1;
  auto model_or = core::GaiaModel::Create(
      model_cfg, dataset->history_len(), dataset->horizon(),
      dataset->temporal_dim(), dataset->static_dim());
  ASSERT_TRUE(model_or.ok());
  auto model =
      std::shared_ptr<core::GaiaModel>(std::move(model_or).value());
  serving::ModelServer server(model, dataset, serving::ServerConfig{});

  auto& heap_allocs = obs::MetricsRegistry::Global().GetCounter(
      "gaia_alloc_tensors_total");
  const uint64_t at_start = heap_allocs.value();
  server.Predict(3);  // cold: populates every per-thread cache
  const uint64_t after_cold = heap_allocs.value();
  server.Predict(3);  // steady state: all cache hits
  const uint64_t after_warm = heap_allocs.value();

  const uint64_t cold = after_cold - at_start;
  const uint64_t warm = after_warm - after_cold;
  ASSERT_GT(cold, 0u) << "cold request should touch the heap";
  EXPECT_LE(warm * 10, cold)
      << "steady-state Predict made " << warm << " heap allocations vs "
      << cold << " on the cold request; expected a >=90% drop";

  obs::SetLevel(previous_level);
  TensorArena::SetEnabled(previous);
  TensorArena::Trim();
}

}  // namespace
}  // namespace gaia
