#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gaia {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(1);
  Tensor a = Tensor::Randn({5, 5}, &rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Eye(5)), a));
  EXPECT_TRUE(AllClose(MatMul(Tensor::Eye(5), a), a));
}

TEST(MatMulDeathTest, InnerDimMismatchAborts) {
  EXPECT_DEATH(MatMul(Tensor({2, 3}), Tensor({2, 3})), "GAIA_CHECK failed");
}

TEST(MatVecTest, MatchesMatMul) {
  Rng rng(2);
  Tensor a = Tensor::Randn({4, 6}, &rng);
  Tensor x = Tensor::Randn({6}, &rng);
  Tensor via_matmul = MatMul(a, x.Reshape({6, 1})).Reshape({4});
  EXPECT_TRUE(AllClose(MatVec(a, x), via_matmul, 1e-4f));
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({3, 7}, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(DotOuterTest, Consistency) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(Dot(a, b), 32.0f);
  Tensor o = Outer(a, b);
  EXPECT_EQ(o.at(2, 0), 12.0f);
  EXPECT_EQ(o.at(0, 2), 6.0f);
}

TEST(ActivationTest, ReluClampsNegatives) {
  Tensor x({4}, {-2, -0.5f, 0, 3});
  EXPECT_TRUE(AllClose(Relu(x), Tensor({4}, {0, 0, 0, 3})));
}

TEST(ActivationTest, SigmoidRangeAndSymmetry) {
  Tensor x({3}, {-10, 0, 10});
  Tensor y = Sigmoid(x);
  EXPECT_NEAR(y.at(0), 0.0f, 1e-4);
  EXPECT_FLOAT_EQ(y.at(1), 0.5f);
  EXPECT_NEAR(y.at(2), 1.0f, 1e-4);
}

TEST(ActivationTest, TanhExpLogSqrtAbs) {
  Tensor x({2}, {1.0f, 4.0f});
  EXPECT_NEAR(Tanh(x).at(0), std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(Exp(x).at(0), std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(x).at(1), std::log(4.0f), 1e-6);
  EXPECT_NEAR(Sqrt(x).at(1), 2.0f, 1e-6);
  EXPECT_EQ(Abs(Tensor({2}, {-3, 3})).at(0), 3.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(4);
  Tensor logits = Tensor::Randn({5, 8}, &rng, 3.0f);
  Tensor probs = SoftmaxRows(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_GE(probs.at(i, j), 0.0f);
      sum += probs.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, MaskedEntriesGetZeroProbability) {
  Tensor logits({1, 3}, {1.0f, kMaskNegInf, 2.0f});
  Tensor probs = SoftmaxRows(logits);
  EXPECT_EQ(probs.at(0, 1), 0.0f);
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 2), 1.0, 1e-6);
}

TEST(SoftmaxTest, FullyMaskedRowIsZero) {
  Tensor logits({1, 2}, {kMaskNegInf, kMaskNegInf});
  Tensor probs = SoftmaxRows(logits);
  EXPECT_EQ(probs.at(0, 0), 0.0f);
  EXPECT_EQ(probs.at(0, 1), 0.0f);
}

TEST(SoftmaxTest, InvariantToLogitShift) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {101, 102, 103});
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(b), 1e-5f));
}

TEST(SoftmaxTest, BackwardMatchesFiniteDifference) {
  // d/dx of sum(w . softmax(x)) via the analytic backward.
  Tensor x({1, 4}, {0.3f, -0.1f, 0.7f, 0.2f});
  Tensor w({1, 4}, {1.0f, 2.0f, -1.0f, 0.5f});
  Tensor y = SoftmaxRows(x);
  Tensor analytic = SoftmaxRowsBackward(y, w);
  const double eps = 1e-3;
  for (int64_t j = 0; j < 4; ++j) {
    Tensor xp = x, xm = x;
    xp.at(0, j) += static_cast<float>(eps);
    xm.at(0, j) -= static_cast<float>(eps);
    const double fp = (SoftmaxRows(xp) * w).Sum();
    const double fm = (SoftmaxRows(xm) * w).Sum();
    EXPECT_NEAR(analytic.at(0, j), (fp - fm) / (2 * eps), 1e-3);
  }
}

TEST(ReductionTest, AxisSums) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(SumAxis0(a), Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(AllClose(SumAxis1(a), Tensor({2}, {6, 15})));
}

TEST(BroadcastTest, AddRowAndColVectors) {
  Tensor a({2, 2}, {1, 1, 1, 1});
  EXPECT_TRUE(AllClose(AddRowVector(a, Tensor({2}, {1, 2})),
                       Tensor({2, 2}, {2, 3, 2, 3})));
  EXPECT_TRUE(AllClose(AddColVector(a, Tensor({2}, {1, 2})),
                       Tensor({2, 2}, {2, 2, 3, 3})));
}

TEST(ConcatSliceTest, RoundTripCols) {
  Rng rng(5);
  Tensor a = Tensor::Randn({3, 2}, &rng);
  Tensor b = Tensor::Randn({3, 5}, &rng);
  Tensor cat = ConcatCols({a, b});
  EXPECT_EQ(cat.dim(1), 7);
  EXPECT_TRUE(AllClose(SliceCols(cat, 0, 2), a));
  EXPECT_TRUE(AllClose(SliceCols(cat, 2, 5), b));
}

TEST(ConcatSliceTest, RoundTripRows) {
  Rng rng(6);
  Tensor a = Tensor::Randn({2, 4}, &rng);
  Tensor b = Tensor::Randn({3, 4}, &rng);
  Tensor cat = ConcatRows({a, b});
  EXPECT_EQ(cat.dim(0), 5);
  EXPECT_TRUE(AllClose(SliceRows(cat, 0, 2), a));
  EXPECT_TRUE(AllClose(SliceRows(cat, 2, 3), b));
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

TEST(Conv1dTest, IdentityKernelReproducesInput) {
  // Width-1 identity kernel: out[t, o] = in[t, o].
  Rng rng(7);
  Tensor input = Tensor::Randn({6, 3}, &rng);
  Tensor weight({3, 1, 3});
  for (int64_t o = 0; o < 3; ++o) weight.at(o, 0, o) = 1.0f;
  Tensor out = Conv1d(input, weight, Tensor(), PadMode::kCausal);
  EXPECT_TRUE(AllClose(out, input));
}

TEST(Conv1dTest, CausalSumKernel) {
  // Width-2 causal all-ones kernel on a 1-channel ramp: out[t] = x[t-1]+x[t].
  Tensor input({5, 1}, {1, 2, 3, 4, 5});
  Tensor weight = Tensor::Ones({1, 2, 1});
  Tensor out = Conv1d(input, weight, Tensor(), PadMode::kCausal);
  EXPECT_TRUE(AllClose(out, Tensor({5, 1}, {1, 3, 5, 7, 9})));
}

TEST(Conv1dTest, SamePaddingCentersKernel) {
  // Width-3 same-padded averaging-style kernel touches t-1, t, t+1.
  Tensor input({4, 1}, {1, 2, 3, 4});
  Tensor weight = Tensor::Ones({1, 3, 1});
  Tensor out = Conv1d(input, weight, Tensor(), PadMode::kSame);
  EXPECT_TRUE(AllClose(out, Tensor({4, 1}, {3, 6, 9, 7})));
}

TEST(Conv1dTest, BiasIsAdded) {
  Tensor input({2, 1}, {0, 0});
  Tensor weight({2, 1, 1});
  Tensor bias({2}, {1.5f, -2.0f});
  Tensor out = Conv1d(input, weight, bias, PadMode::kCausal);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(1, 1), -2.0f);
}

TEST(Conv1dTest, CausalNeverSeesFuture) {
  // Perturbing input at time t must not change outputs before t.
  Rng rng(8);
  Tensor input = Tensor::Randn({10, 2}, &rng);
  Tensor weight = Tensor::Randn({2, 4, 2}, &rng);
  Tensor base = Conv1d(input, weight, Tensor(), PadMode::kCausal, 2);
  Tensor perturbed = input;
  perturbed.at(7, 1) += 10.0f;
  Tensor out = Conv1d(perturbed, weight, Tensor(), PadMode::kCausal, 2);
  for (int64_t t = 0; t < 7; ++t) {
    for (int64_t c = 0; c < 2; ++c) EXPECT_EQ(out.at(t, c), base.at(t, c));
  }
}

TEST(Conv1dTest, DilationWidensReceptiveField) {
  // Width-2, dilation-3 causal kernel: out[t] = x[t-3] + x[t].
  Tensor input({6, 1}, {1, 2, 3, 4, 5, 6});
  Tensor weight = Tensor::Ones({1, 2, 1});
  Tensor out = Conv1d(input, weight, Tensor(), PadMode::kCausal, 3);
  EXPECT_TRUE(AllClose(out, Tensor({6, 1}, {1, 2, 3, 5, 7, 9})));
}

TEST(Conv1dTest, BackwardInputMatchesFiniteDifference) {
  Rng rng(9);
  Tensor input = Tensor::Randn({6, 2}, &rng);
  Tensor weight = Tensor::Randn({3, 3, 2}, &rng);
  Tensor grad_out = Tensor::Randn({6, 3}, &rng);
  Tensor analytic =
      Conv1dBackwardInput(grad_out, weight, 6, PadMode::kSame, 1);
  const double eps = 1e-2;
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t c = 0; c < 2; ++c) {
      Tensor plus = input, minus = input;
      plus.at(t, c) += static_cast<float>(eps);
      minus.at(t, c) -= static_cast<float>(eps);
      const double fp =
          (Conv1d(plus, weight, Tensor(), PadMode::kSame) * grad_out).Sum();
      const double fm =
          (Conv1d(minus, weight, Tensor(), PadMode::kSame) * grad_out).Sum();
      EXPECT_NEAR(analytic.at(t, c), (fp - fm) / (2 * eps), 5e-2);
    }
  }
}

TEST(Conv1dTest, BackwardWeightMatchesFiniteDifference) {
  Rng rng(10);
  Tensor input = Tensor::Randn({5, 2}, &rng);
  Tensor weight = Tensor::Randn({2, 2, 2}, &rng);
  Tensor grad_out = Tensor::Randn({5, 2}, &rng);
  Tensor analytic =
      Conv1dBackwardWeight(grad_out, input, 2, PadMode::kCausal, 1);
  const double eps = 1e-2;
  for (int64_t o = 0; o < 2; ++o) {
    for (int64_t k = 0; k < 2; ++k) {
      for (int64_t c = 0; c < 2; ++c) {
        Tensor plus = weight, minus = weight;
        plus.at(o, k, c) += static_cast<float>(eps);
        minus.at(o, k, c) -= static_cast<float>(eps);
        const double fp =
            (Conv1d(input, plus, Tensor(), PadMode::kCausal) * grad_out).Sum();
        const double fm =
            (Conv1d(input, minus, Tensor(), PadMode::kCausal) * grad_out)
                .Sum();
        EXPECT_NEAR(analytic.at(o, k, c), (fp - fm) / (2 * eps), 5e-2);
      }
    }
  }
}

TEST(Conv1dTest, BackwardBiasIsColumnSum) {
  Tensor grad_out({3, 2}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(Conv1dBackwardBias(grad_out), Tensor({2}, {9, 12})));
}

TEST(CausalMaskTest, LowerTriangularStructure) {
  Tensor mask = CausalMask(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (j <= i) {
        EXPECT_EQ(mask.at(i, j), 0.0f);
      } else {
        EXPECT_EQ(mask.at(i, j), kMaskNegInf);
      }
    }
  }
}

}  // namespace
}  // namespace gaia
