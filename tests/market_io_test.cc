#include "data/market_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "data/dataset.h"
#include "util/fault_injector.h"
#include "util/retry.h"

namespace gaia::data {
namespace {

class MarketIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each discovered test concurrently, so a
    // shared fixed path races between test processes.
    dir_ = "/tmp/gaia_market_io_test_" + std::to_string(::getpid());
    std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str());
    MarketConfig cfg;
    cfg.num_shops = 40;
    cfg.history_months = 12;
    cfg.seed = 5;
    auto market = MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    market_ = std::make_unique<MarketData>(std::move(market).value());
  }

  void TearDown() override { std::system(("rm -rf " + dir_).c_str()); }

  void Overwrite(const std::string& file, const std::string& contents) {
    std::ofstream out(dir_ + "/" + file);
    out << contents;
  }

  std::string dir_;
  std::unique_ptr<MarketData> market_;
};

TEST_F(MarketIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const MarketData& a = *market_;
  const MarketData& b = loaded.value();
  ASSERT_EQ(a.shops.size(), b.shops.size());
  EXPECT_EQ(a.config.history_months, b.config.history_months);
  EXPECT_EQ(a.config.horizon_months, b.config.horizon_months);
  EXPECT_EQ(a.config.start_calendar_month, b.config.start_calendar_month);
  for (size_t i = 0; i < a.shops.size(); ++i) {
    EXPECT_EQ(a.shops[i].industry, b.shops[i].industry);
    EXPECT_EQ(a.shops[i].region, b.shops[i].region);
    EXPECT_EQ(a.shops[i].is_supplier, b.shops[i].is_supplier);
    EXPECT_EQ(a.shops[i].age_months, b.shops[i].age_months);
    EXPECT_EQ(a.shops[i].birth_month, b.shops[i].birth_month);
    for (size_t m = 0; m < a.shops[i].gmv.size(); ++m) {
      EXPECT_NEAR(a.shops[i].gmv[m], b.shops[i].gmv[m],
                  1e-6 * (1.0 + a.shops[i].gmv[m]));
    }
  }
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  // Same in-neighbour multiset for a few nodes.
  for (int32_t u = 0; u < 10; ++u) {
    auto na = a.graph.InNeighbors(u);
    auto nb = b.graph.InNeighbors(u);
    ASSERT_EQ(na.size(), nb.size());
  }
}

TEST_F(MarketIoTest, LoadedMarketFeedsDatasetPipeline) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_TRUE(loaded.ok());
  auto ds = ForecastDataset::Create(loaded.value(), DatasetOptions{});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_nodes(), market_->config.num_shops);
}

TEST_F(MarketIoTest, MissingDirectoryFails) {
  auto loaded = LoadMarketCsv("/tmp/definitely_missing_market_dir");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(MarketIoTest, MissingSingleFileIsNotFound) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  std::remove((dir_ + "/series.csv").c_str());
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(MarketIoTest, RejectsNonFiniteValues) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("series.csv", "shop,month,gmv,customers,orders\n0,0,nan,0,0\n");
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  Overwrite("series.csv", "shop,month,gmv,customers,orders\n0,0,1.0,inf,0\n");
  loaded = LoadMarketCsv(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MarketIoTest, RejectsDuplicateSeriesRows) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("series.csv",
            "shop,month,gmv,customers,orders\n"
            "0,0,1.0,2.0,3.0\n"
            "0,0,4.0,5.0,6.0\n");
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(MarketIoTest, RetryWrapperPassesThroughPermanentErrors) {
  // Malformed data is not retryable: exactly one attempt must be made.
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("series.csv", "shop,month,gmv,customers,orders\n0,0,abc,0,0\n");
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.sleep = false;
  auto loaded = LoadMarketCsvRetry(dir_, policy);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MarketIoTest, RetryWrapperRecoversFromTransientFaults) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();
  // Two guaranteed transient failures, then clean reads.
  util::FaultSpec spec;
  spec.site = "market.read";
  spec.kind = util::FaultKind::kIoError;
  spec.probability = 1.0;
  spec.max_fires = 2;
  faults.Arm(spec);
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep = false;
  auto loaded = LoadMarketCsvRetry(dir_, policy);
  faults.Reset();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(loaded.value().shops.size()),
            market_->config.num_shops);
}

TEST_F(MarketIoTest, RejectsBadShopId) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("shops.csv",
            "id,industry,region,is_supplier,age_months,birth_month\n"
            "999,0,0,0,4,0\n");
  EXPECT_FALSE(LoadMarketCsv(dir_).ok());
}

TEST_F(MarketIoTest, RejectsMalformedNumbers) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("series.csv", "shop,month,gmv,customers,orders\n0,0,abc,0,0\n");
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MarketIoTest, RejectsWrongFieldCount) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("edges.csv", "src,dst,type\n1,2\n");
  EXPECT_FALSE(LoadMarketCsv(dir_).ok());
}

TEST_F(MarketIoTest, RejectsBadEdgeType) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  Overwrite("edges.csv", "src,dst,type\n0,1,7\n");
  EXPECT_FALSE(LoadMarketCsv(dir_).ok());
}

TEST_F(MarketIoTest, RejectsDuplicateShops) {
  ASSERT_TRUE(SaveMarketCsv(*market_, dir_).ok());
  std::string rows = "id,industry,region,is_supplier,age_months,birth_month\n";
  for (int64_t i = 0; i < market_->config.num_shops; ++i) {
    rows += "0,0,0,0,4,0\n";  // all rows claim id 0
  }
  Overwrite("shops.csv", rows);
  auto loaded = LoadMarketCsv(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace gaia::data
