// Behaviour-level tests for individual baseline architectures, beyond the
// shared zoo contract: gating ranges, attention structure, graph usage and
// AR-highway effects.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/gman.h"
#include "baselines/graphsage.h"
#include "baselines/logtrans.h"
#include "baselines/lstm_forecaster.h"
#include "baselines/mtgnn.h"
#include "baselines/stgcn.h"
#include "data/market_simulator.h"

namespace gaia::baselines {
namespace {

class BaselineBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 40;
    cfg.history_months = 12;
    cfg.seed = 99;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    market_ = std::make_unique<data::MarketData>(std::move(market).value());
    auto ds = data::ForecastDataset::Create(*market_, data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<data::ForecastDataset>(std::move(ds).value());
  }
  std::unique_ptr<data::MarketData> market_;
  std::unique_ptr<data::ForecastDataset> dataset_;
};

// --- LogTrans ---------------------------------------------------------------

TEST_F(BaselineBehaviorTest, LogTransIsPureSequenceModel) {
  // Perturbing another shop's features must not change a shop's forecast —
  // LogTrans uses no graph.
  LogTransConfig cfg;
  cfg.channels = 6;
  cfg.num_blocks = 1;
  cfg.dropout = 0.0f;
  LogTrans model(cfg, dataset_->history_len(), dataset_->horizon(),
                 dataset_->temporal_dim(), dataset_->static_dim());
  Rng rng(1);
  auto pred_a = model.PredictNodes(*dataset_, {0}, false, &rng);
  // Rebuild a dataset where shop 1's GMV is scaled 10x (shop 0 untouched).
  data::MarketData mutated = *market_;
  for (double& v : mutated.shops[1].gmv) v *= 10.0;
  auto ds2 = data::ForecastDataset::Create(mutated, data::DatasetOptions{});
  ASSERT_TRUE(ds2.ok());
  auto pred_b = model.PredictNodes(ds2.value(), {0}, false, &rng);
  EXPECT_TRUE(AllClose(pred_a[0]->value, pred_b[0]->value, 1e-6f));
}

TEST_F(BaselineBehaviorTest, GraphModelsReactToNeighborChanges) {
  // GraphSAGE predictions for a shop change when a neighbour's series
  // changes (unlike LogTrans above).
  GraphSageConfig cfg;
  cfg.hidden = 8;
  GraphSage model(cfg, *dataset_);
  // Find a node with at least one in-neighbour and perturb that neighbour.
  int32_t center = -1, neighbor = -1;
  for (int32_t v = 0; v < dataset_->num_nodes(); ++v) {
    auto nbrs = dataset_->graph().InNeighbors(v);
    if (!nbrs.empty()) {
      center = v;
      neighbor = nbrs.front().node;
      break;
    }
  }
  ASSERT_GE(center, 0);
  Rng rng(2);
  auto pred_a = model.PredictNodes(*dataset_, {center}, false, &rng);
  data::MarketData mutated = *market_;
  for (double& v : mutated.shops[static_cast<size_t>(neighbor)].gmv) {
    v = v * 5.0 + 1000.0;
  }
  auto ds2 = data::ForecastDataset::Create(mutated, data::DatasetOptions{});
  ASSERT_TRUE(ds2.ok());
  auto pred_b = model.PredictNodes(ds2.value(), {center}, false, &rng);
  EXPECT_FALSE(AllClose(pred_a[0]->value, pred_b[0]->value, 1e-6f));
}

// --- LSTNet -----------------------------------------------------------------

TEST_F(BaselineBehaviorTest, LstNetArHighwayTracksRecentLevel) {
  // Scaling a shop's recent GMV must move the LSTNet forecast in the same
  // direction (the AR highway sees raw z).
  LstNet::Config cfg;
  cfg.channels = 6;
  cfg.hidden = 8;
  LstNet model(cfg, *dataset_);
  Rng rng(3);
  // Pick a shop with full history for a clean comparison.
  int32_t shop = 0;
  for (int32_t v = 0; v < dataset_->num_nodes(); ++v) {
    if (dataset_->series_length(v) ==
        static_cast<int>(dataset_->history_len())) {
      shop = v;
      break;
    }
  }
  auto base = model.PredictNodes(*dataset_, {shop}, false, &rng);
  data::MarketData mutated = *market_;
  for (double& v : mutated.shops[static_cast<size_t>(shop)].gmv) v *= 1.0;
  // Raise only the final observed months 3x.
  for (int m = mutated.config.history_months - 3;
       m < mutated.config.history_months; ++m) {
    mutated.shops[static_cast<size_t>(shop)].gmv[static_cast<size_t>(m)] *= 3.0;
  }
  auto ds2 = data::ForecastDataset::Create(mutated, data::DatasetOptions{});
  ASSERT_TRUE(ds2.ok());
  auto boosted = model.PredictNodes(ds2.value(), {shop}, false, &rng);
  EXPECT_FALSE(AllClose(base[0]->value, boosted[0]->value, 1e-6f));
}

// --- LSTM -------------------------------------------------------------------

TEST_F(BaselineBehaviorTest, LstmUsesStaticContext) {
  LstmConfig cfg;
  cfg.hidden = 8;
  LstmForecaster model(cfg, *dataset_);
  Rng rng(4);
  auto base = model.PredictNodes(*dataset_, {0}, false, &rng);
  // Change only the static features (different industry one-hot).
  data::MarketData mutated = *market_;
  mutated.shops[0].industry =
      (mutated.shops[0].industry + 1) % mutated.config.num_industries;
  auto ds2 = data::ForecastDataset::Create(mutated, data::DatasetOptions{});
  ASSERT_TRUE(ds2.ok());
  auto changed = model.PredictNodes(ds2.value(), {0}, false, &rng);
  EXPECT_FALSE(AllClose(base[0]->value, changed[0]->value, 1e-6f));
}

// --- MTGNN ------------------------------------------------------------------

TEST_F(BaselineBehaviorTest, MtgnnLearnedGraphRespondsToEmbeddingUpdates) {
  MtgnnConfig cfg;
  cfg.channels = 6;
  cfg.top_k = 2;
  cfg.node_embedding_dim = 4;
  Mtgnn model(cfg, *dataset_);
  auto before = model.LearnedNeighbors();
  // Manually rotate the embedding tables; the selected top-k must change
  // for at least some node.
  for (auto& [name, param] : model.NamedParameters()) {
    if (name == "emb1" || name == "emb2") {
      Rng rng(5);
      param->value = Tensor::Randn(param->value.shape(), &rng);
    }
  }
  auto after = model.LearnedNeighbors();
  bool any_changed = false;
  for (size_t u = 0; u < before.size(); ++u) {
    if (before[u] != after[u]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

// --- GMAN -------------------------------------------------------------------

TEST_F(BaselineBehaviorTest, GmanPredictsFiniteWithIsolatedNodes) {
  // A market where one shop is guaranteed isolated (no edges at all).
  data::MarketData isolated = *market_;
  auto empty_graph = graph::EsellerGraph::Create(
      static_cast<int64_t>(isolated.shops.size()), {});
  ASSERT_TRUE(empty_graph.ok());
  isolated.graph = std::move(empty_graph).value();
  auto ds = data::ForecastDataset::Create(isolated, data::DatasetOptions{});
  ASSERT_TRUE(ds.ok());
  GmanConfig cfg;
  cfg.channels = 6;
  Gman model(cfg, ds.value());
  Rng rng(6);
  auto preds = model.PredictNodes(ds.value(), {0, 1, 2}, false, &rng);
  for (const auto& p : preds) EXPECT_TRUE(p->value.AllFinite());
}

// --- STGCN ------------------------------------------------------------------

TEST_F(BaselineBehaviorTest, StgcnHandlesEdgelessGraph) {
  data::MarketData isolated = *market_;
  auto empty_graph = graph::EsellerGraph::Create(
      static_cast<int64_t>(isolated.shops.size()), {});
  ASSERT_TRUE(empty_graph.ok());
  isolated.graph = std::move(empty_graph).value();
  auto ds = data::ForecastDataset::Create(isolated, data::DatasetOptions{});
  ASSERT_TRUE(ds.ok());
  StgcnConfig cfg;
  cfg.channels = 6;
  Stgcn model(cfg, ds.value());
  Rng rng(7);
  auto preds = model.PredictNodes(ds.value(), {0}, false, &rng);
  EXPECT_TRUE(preds[0]->value.AllFinite());
  EXPECT_GE(preds[0]->value.Min(), 0.0f);
}

}  // namespace
}  // namespace gaia::baselines
