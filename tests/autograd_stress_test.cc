// Stress-level properties of the autograd engine: deep chains, wide fanout,
// shared subexpressions and repeated parameter reuse — the patterns the
// Gaia forward graph produces at scale.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace gaia::autograd {
namespace {

TEST(AutogradStressTest, DeepChainGradientIsExact) {
  // y = tanh(tanh(...tanh(x))), 60 deep; dy/dx = prod(1 - y_i^2).
  Var x = Parameter(Tensor({1}, {0.7f}));
  Var y = x;
  std::vector<float> activations;
  for (int depth = 0; depth < 60; ++depth) {
    y = Tanh(y);
    activations.push_back(y->value.at(0));
  }
  Backward(y);
  double expected = 1.0;
  for (float a : activations) expected *= 1.0 - static_cast<double>(a) * a;
  EXPECT_NEAR(x->grad.at(0), expected, 1e-6);
}

TEST(AutogradStressTest, WideFanoutAccumulates) {
  // loss = sum over 200 branches of (c_i * x); dx = sum c_i.
  Rng rng(1);
  Var x = Parameter(Tensor({4}, {1, 2, 3, 4}));
  std::vector<Var> branches;
  double coeff_sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    const float c = static_cast<float>(rng.Uniform(-1.0, 1.0));
    coeff_sum += c;
    branches.push_back(ScalarMul(x, c));
  }
  Backward(SumAll(AddN(branches)));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(x->grad.at(j), coeff_sum, 1e-4);
  }
}

TEST(AutogradStressTest, SharedSubexpressionCountedOnce) {
  // s = x * x reused twice: loss = sum(s) + sum(s) = 2 sum(x^2); dx = 4x.
  Var x = Parameter(Tensor({3}, {1, -2, 3}));
  Var s = Mul(x, x);
  Backward(Add(SumAll(s), SumAll(s)));
  EXPECT_TRUE(AllClose(x->grad, Tensor({3}, {4, -8, 12})));
}

TEST(AutogradStressTest, ParameterReusedAcrossStepsAccumulatesUntilZeroed) {
  Var w = Parameter(Tensor({2}, {1, 1}));
  for (int step = 1; step <= 3; ++step) {
    Backward(SumAll(w));
    EXPECT_FLOAT_EQ(w->grad.at(0), static_cast<float>(step));
  }
  w->ZeroGrad();
  Backward(SumAll(w));
  EXPECT_FLOAT_EQ(w->grad.at(0), 1.0f);
}

TEST(AutogradStressTest, BackwardWithExplicitSeed) {
  // Vector-Jacobian product: seed selects one output row.
  Var x = Parameter(Tensor({2, 2}, {1, 2, 3, 4}));
  Var y = Mul(x, x);  // elementwise square
  Tensor seed({2, 2});
  seed.at(1, 0) = 1.0f;  // only element (1,0) contributes
  Backward(y, seed);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x->grad.at(1, 0), 6.0f);  // 2 * 3
  EXPECT_FLOAT_EQ(x->grad.at(1, 1), 0.0f);
}

TEST(AutogradStressTest, MixedDeepGraphGradCheck) {
  // A miniature Gaia-like block: conv -> attention-ish matmul softmax ->
  // gated combine -> readout, all under one gradient check.
  Rng rng(7);
  std::vector<Var> params = {
      Parameter(Tensor::Randn({6, 3}, &rng, 0.5f)),   // input
      Parameter(Tensor::Randn({3, 2, 3}, &rng, 0.5f)),  // conv weight
      Parameter(Tensor::Randn({3}, &rng, 0.5f)),      // conv bias
      Parameter(Tensor::Randn({6}, &rng, 0.5f)),      // readout vector
  };
  auto build = [](const std::vector<Var>& p) {
    Var features = Conv1d(p[0], p[1], p[2], PadMode::kCausal);
    Var logits = ScalarMul(MatMul(features, Transpose(features)), 0.5f);
    logits = Add(logits, Constant(CausalMask(6)));
    Var attended = MatMul(SoftmaxRows(logits), features);
    Var gated = Mul(Relu(attended), Sigmoid(features));
    Var pooled = MatMul(Transpose(gated),
                        Reshape(p[3], {6, 1}));  // [3, 1]
    return SumAll(Mul(pooled, pooled));
  };
  auto result = CheckGradients(build, params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(AutogradStressTest, GraphReleaseKeepsParametersAlive) {
  // Building and dropping many graphs must not disturb the leaf.
  Var w = Parameter(Tensor({8}, {1, 2, 3, 4, 5, 6, 7, 8}));
  for (int i = 0; i < 50; ++i) {
    Var loss = MeanAll(Mul(w, w));
    Backward(loss);
  }
  EXPECT_EQ(w->value.at(7), 8.0f);
  EXPECT_TRUE(w->grad.AllFinite());
}

}  // namespace
}  // namespace gaia::autograd
