// Two test families guarding the thread-pool tentpole:
//  1. ThreadPool semantics — full coverage, inline fallbacks, nesting,
//     exception propagation — hammered enough to surface races under TSan.
//  2. Bitwise determinism — the whole point of the design: Gaia forward,
//     training and the ego path produce *identical* floats at 1, 2 and 8
//     threads, so thread count is a pure performance knob.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

using core::GaiaConfig;
using core::GaiaModel;
using core::TrainConfig;
using core::Trainer;
using util::ThreadPool;

// ---------------------------------------------------------------------------
// ThreadPool semantics
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 4321;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](int64_t i) { visits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, GrainStillCoversEveryIndex) {
  ThreadPool pool(3);
  constexpr int64_t kN = 1000;  // not a multiple of the grain
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](int64_t i) { visits[i].fetch_add(1); },
                   /*grain=*/64);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(-5, [&](int64_t) { calls.fetch_add(1); });
  pool.ParallelForRange(0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int64_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(100, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, SmallRangeRunsInlineEvenOnBigPool) {
  ThreadPool pool(8);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> calls{0};
  // n <= grain short-circuits to the caller: no dispatch overhead for the
  // sub-threshold kernels in tensor_ops.
  pool.ParallelFor(5, [&](int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    calls.fetch_add(1);
  }, /*grain=*/16);
  EXPECT_EQ(calls.load(), 5);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 32, kInner = 17;
  std::atomic<int64_t> inner_calls{0};
  pool.ParallelFor(kOuter, [&](int64_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested call must run inline on the worker: re-entering the pool
    // from a pool thread would deadlock a fixed-size pool.
    util::ParallelFor(kInner, [&](int64_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), kOuter * kInner);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(500,
                       [&](int64_t i) {
                         if (i == 137) throw std::runtime_error("body failed");
                       }),
      std::runtime_error);
  // The pool must stay fully usable after a failed loop.
  std::atomic<int64_t> visits{0};
  pool.ParallelFor(500, [&](int64_t) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 500);
}

TEST(ThreadPoolTest, ParallelForRangeChunksAreDisjointAndComplete) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1003, kGrain = 64;
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelForRange(kN, kGrain, [&](int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  int64_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, covered);  // contiguous, no gap, no overlap
    EXPECT_LE(end - begin, kGrain);
    EXPECT_GT(end, begin);
    covered = end;
  }
  EXPECT_EQ(covered, kN);
}

TEST(ThreadPoolTest, HammerManySmallLoops) {
  // Repeated dispatch through the same pool: shakes out wake-up and job
  // handoff races that a single big loop never hits.
  ThreadPool pool(4);
  for (int iter = 0; iter < 2000; ++iter) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(37, [&](int64_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 37 * 36 / 2);
  }
}

TEST(ThreadPoolTest, GlobalPoolResizeRoundTrips) {
  const int before = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3);
  std::atomic<int64_t> visits{0};
  util::ParallelFor(256, [&](int64_t) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 256);
  ThreadPool::SetGlobalThreads(before);
  EXPECT_EQ(ThreadPool::GlobalThreads(), before);
}

// ---------------------------------------------------------------------------
// Bitwise determinism across thread counts
// ---------------------------------------------------------------------------

data::ForecastDataset MakeDataset() {
  data::MarketConfig cfg;
  cfg.num_shops = 60;
  cfg.seed = 21;
  auto market = data::MarketSimulator(cfg).Generate();
  return std::move(data::ForecastDataset::Create(market.value(),
                                                 data::DatasetOptions{}))
      .value();
}

std::unique_ptr<GaiaModel> MakeModel(const data::ForecastDataset& dataset) {
  GaiaConfig cfg;
  cfg.channels = 8;
  cfg.tel_groups = 2;
  cfg.num_layers = 2;
  cfg.seed = 3;
  return std::move(GaiaModel::Create(cfg, dataset.history_len(),
                                     dataset.horizon(), dataset.temporal_dim(),
                                     dataset.static_dim()))
      .value();
}

std::vector<int32_t> AllNodes(const data::ForecastDataset& dataset) {
  std::vector<int32_t> nodes(dataset.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

std::vector<float> Flatten(const std::vector<autograd::Var>& preds) {
  std::vector<float> flat;
  for (const autograd::Var& p : preds) {
    const float* data = p->value.data();
    flat.insert(flat.end(), data, data + p->value.size());
  }
  return flat;
}

// EXPECT_EQ on floats is deliberate: the acceptance bar is bit-identical,
// not close.
void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, int threads) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i << " differs at " << threads
                          << " threads";
  }
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(DeterminismTest, FullGraphForwardIsBitwiseIdenticalAcrossThreadCounts) {
  data::ForecastDataset dataset = MakeDataset();
  const std::vector<int32_t> nodes = AllNodes(dataset);
  std::vector<float> reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    std::unique_ptr<GaiaModel> model = MakeModel(dataset);
    std::vector<float> got = Flatten(
        model->PredictNodes(dataset, nodes, /*training=*/false, nullptr));
    ASSERT_FALSE(got.empty());
    if (threads == 1) {
      reference = std::move(got);
    } else {
      ExpectBitwiseEqual(reference, got, threads);
    }
  }
}

TEST_F(DeterminismTest, TrainingIsBitwiseIdenticalAcrossThreadCounts) {
  data::ForecastDataset dataset = MakeDataset();
  const std::vector<int32_t> nodes = AllNodes(dataset);
  TrainConfig train_cfg;
  train_cfg.max_epochs = 4;
  train_cfg.eval_every = 2;
  train_cfg.patience = 10;

  std::vector<double> ref_train_losses, ref_val_losses;
  std::vector<float> ref_preds;
  for (int threads : {1, 2, 8}) {
    // The knob under test: TrainConfig::num_threads pins the global pool
    // when Fit starts.
    train_cfg.num_threads = threads;
    std::unique_ptr<GaiaModel> model = MakeModel(dataset);
    core::TrainResult result = Trainer(train_cfg).Fit(model.get(), dataset);
    std::vector<float> preds = Flatten(
        model->PredictNodes(dataset, nodes, /*training=*/false, nullptr));
    if (threads == 1) {
      ref_train_losses = result.train_loss_history;
      ref_val_losses = result.val_loss_history;
      ref_preds = std::move(preds);
      ASSERT_EQ(ref_train_losses.size(), 4u);
      continue;
    }
    ASSERT_EQ(result.train_loss_history.size(), ref_train_losses.size());
    for (size_t e = 0; e < ref_train_losses.size(); ++e) {
      // Losses are doubles reduced serially in index order: exact match.
      ASSERT_EQ(result.train_loss_history[e], ref_train_losses[e])
          << "train loss, epoch " << e << ", " << threads << " threads";
    }
    ASSERT_EQ(result.val_loss_history.size(), ref_val_losses.size());
    for (size_t e = 0; e < ref_val_losses.size(); ++e) {
      ASSERT_EQ(result.val_loss_history[e], ref_val_losses[e])
          << "val loss, eval " << e << ", " << threads << " threads";
    }
    ExpectBitwiseEqual(ref_preds, preds, threads);
  }
}

TEST_F(DeterminismTest, EgoPathIsBitwiseIdenticalAcrossThreadCounts) {
  data::ForecastDataset dataset = MakeDataset();
  const std::vector<int32_t> nodes = AllNodes(dataset);
  std::vector<float> reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    std::unique_ptr<GaiaModel> model = MakeModel(dataset);
    Rng rng(7);  // sampling consumes the rng serially, in request order
    std::vector<float> got = Flatten(model->PredictNodesViaEgo(
        dataset, nodes, /*num_hops=*/2, /*max_fanout=*/5, &rng));
    ASSERT_FALSE(got.empty());
    if (threads == 1) {
      reference = std::move(got);
    } else {
      ExpectBitwiseEqual(reference, got, threads);
    }
  }
}

}  // namespace
}  // namespace gaia
