// Sharded serving tier: micro-batch queue mechanics, exactly-once delivery
// under a multi-threaded hammer, bitwise equality with the unsharded server
// at any shard/thread count, RCU checkpoint swap (readers observe old or new
// weights, never a torn mix), checkpoint-store manifest adoption/rollback and
// the cross-process publish lock. Registered under the ctest label "shard";
// CI runs the suite under both ASan and TSan.
//
// Tests that arm the process-global FaultInjector reset it on exit; ctest
// runs each test in its own process, so armed faults never leak.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/gaia_model.h"
#include "data/market_simulator.h"
#include "obs/obs.h"
#include "serving/checkpoint_store.h"
#include "serving/model_server.h"
#include "serving/sharded_server.h"
#include "util/cancel.h"
#include "util/fault_injector.h"
#include "util/mpmc_queue.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

using serving::ModelServer;
using serving::ShardedServer;
using serving::ShardedServerConfig;

// ---------------------------------------------------------------------------
// MpmcQueue
// ---------------------------------------------------------------------------

TEST(MpmcQueueTest, PopsInFifoOrder) {
  util::MpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(std::move(i)));
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(MpmcQueueTest, BackpressureBoundsDepthAndDeliversEverything) {
  util::MpmcQueue<int> queue(2);
  std::thread producer([&] {
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(queue.Push(std::move(i)));
  });
  std::vector<int> received;
  while (received.size() < 20) {
    EXPECT_LE(queue.size(), 2u);  // never exceeds capacity
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    received.push_back(*item);
  }
  producer.join();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(MpmcQueueTest, CloseDrainsBufferedItemsThenEnds) {
  util::MpmcQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.TryPush(std::move(i)));
  queue.Close();
  for (int i = 0; i < 3; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value()) << "accepted item dropped at close";
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(queue.Pop().has_value());  // drained: end of stream
}

TEST(MpmcQueueTest, PushAfterCloseFailsAndLeavesItemWithCaller) {
  util::MpmcQueue<std::unique_ptr<int>> queue(4);
  queue.Close();
  auto item = std::make_unique<int>(42);
  EXPECT_FALSE(queue.Push(std::move(item)));
  // The rejected item must survive so the caller can answer it inline.
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 42);
}

TEST(MpmcQueueTest, PopUntilExpiresOnEmptyQueue) {
  util::MpmcQueue<int> queue(4);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(5);
  EXPECT_FALSE(queue.PopUntil(deadline).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

// ---------------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------------

class ShardedServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::MarketConfig cfg;
    cfg.num_shops = 60;
    cfg.history_months = 14;
    cfg.seed = 31;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());
  }

  /// Fresh small model; different `seed` -> different weights, so two seeds
  /// give two distinguishable generations for swap/torn-read tests.
  std::shared_ptr<core::GaiaModel> MakeModel(uint64_t seed = 1) {
    core::GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.num_layers = 1;
    cfg.seed = seed;
    auto model = core::GaiaModel::Create(
        cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    EXPECT_TRUE(model.ok());
    return std::shared_ptr<core::GaiaModel>(std::move(model).value());
  }

  std::vector<int32_t> AllShops() const {
    std::vector<int32_t> shops;
    for (int32_t s = 0; s < 60; ++s) shops.push_back(s);
    return shops;
  }

  static void ExpectBitwise(const ModelServer::Prediction& got,
                            const ModelServer::Prediction& want) {
    EXPECT_EQ(got.shop, want.shop);
    EXPECT_EQ(got.served_by, want.served_by);
    ASSERT_EQ(got.gmv.size(), want.gmv.size());
    for (size_t h = 0; h < got.gmv.size(); ++h) {
      // memcmp, not ==: bitwise identity is the contract (catches -0.0).
      EXPECT_EQ(std::memcmp(&got.gmv[h], &want.gmv[h], sizeof(double)), 0)
          << "shop " << got.shop << " horizon " << h << ": " << got.gmv[h]
          << " vs " << want.gmv[h];
    }
  }

  static std::string TempDir(const std::string& stem) {
    std::string dir = "/tmp/gaia_shard_" + stem + "_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
  }

  std::shared_ptr<data::ForecastDataset> dataset_;
};

// ---------------------------------------------------------------------------
// Bitwise equality with the unsharded server
// ---------------------------------------------------------------------------

TEST_F(ShardedServingTest, PredictMatchesUnshardedServer) {
  ModelServer reference(MakeModel(), dataset_, serving::ServerConfig{});
  ShardedServerConfig cfg;
  cfg.num_shards = 2;
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  for (int32_t shop : {0, 3, 17, 42, 59}) {
    ExpectBitwise(sharded.Predict(shop), reference.Predict(shop));
  }
}

TEST_F(ShardedServingTest, PredictBatchBitwiseEqualAtAnyShardAndThreadCount) {
  const std::vector<int32_t> shops = AllShops();
  ModelServer reference(MakeModel(), dataset_, serving::ServerConfig{});
  const std::vector<ModelServer::Prediction> want =
      reference.PredictBatch(shops);
  for (int num_shards : {1, 2, 4}) {
    for (int num_threads : {1, 2, 8}) {
      util::ThreadPool::SetGlobalThreads(num_threads);
      ShardedServerConfig cfg;
      cfg.num_shards = num_shards;
      cfg.max_batch = 4;
      ShardedServer sharded(MakeModel(), dataset_, cfg);
      const std::vector<ModelServer::Prediction> got =
          sharded.PredictBatch(shops);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                     " threads=" + std::to_string(num_threads));
        ExpectBitwise(got[i], want[i]);
      }
    }
  }
  util::ThreadPool::SetGlobalThreads(1);
}

TEST_F(ShardedServingTest, RandomizedInterleavingsStayBitwiseIdentical) {
  // Property test: whatever order concurrent clients issue requests in —
  // and therefore however the micro-batch windows slice them — every answer
  // equals the single-shard, single-caller reference for that shop.
  const std::vector<int32_t> shops = AllShops();
  ModelServer reference(MakeModel(), dataset_, serving::ServerConfig{});
  const std::vector<ModelServer::Prediction> want =
      reference.PredictBatch(shops);
  ShardedServerConfig cfg;
  cfg.num_shards = 4;
  cfg.max_batch = 3;
  cfg.max_wait_us = 100.0;
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<int32_t> order = shops;
      std::mt19937 rng(static_cast<uint32_t>(977 + c));
      std::shuffle(order.begin(), order.end(), rng);
      for (int32_t shop : order) {
        const ModelServer::Prediction got = sharded.Predict(shop);
        const ModelServer::Prediction& ref =
            want[static_cast<size_t>(shop)];
        if (got.gmv.size() != ref.gmv.size() ||
            std::memcmp(got.gmv.data(), ref.gmv.data(),
                        got.gmv.size() * sizeof(double)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(sharded.total_requests(),
            static_cast<int64_t>(kClients * shops.size()));
}

// ---------------------------------------------------------------------------
// Hammer: exactly-once delivery and window flush triggers
// ---------------------------------------------------------------------------

TEST_F(ShardedServingTest, HammerAnswersEveryRequestExactlyOnce) {
  ShardedServerConfig cfg;
  cfg.num_shards = 4;
  cfg.max_batch = 4;
  cfg.max_wait_us = 200.0;
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  constexpr int kClients = 8;
  constexpr int kPerClient = 40;
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> wrong_shop{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int32_t shop = static_cast<int32_t>((c * 13 + i * 7) % 60);
        const ModelServer::Prediction p = sharded.Predict(shop);
        if (p.shop != shop || p.gmv.empty()) wrong_shop.fetch_add(1);
        answered.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  // Every request answered exactly once: each blocking Predict returned,
  // and the tier's own count agrees (no duplicates, no drops).
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(wrong_shop.load(), 0);
  EXPECT_EQ(sharded.total_requests(), kClients * kPerClient);
  sharded.Stop();
  EXPECT_EQ(sharded.total_requests(), kClients * kPerClient);
}

TEST_F(ShardedServingTest, WindowFlushesOnMaxBatchLongBeforeMaxWait) {
  ShardedServerConfig cfg;
  cfg.num_shards = 1;  // one queue: all requests coalesce
  cfg.max_batch = 3;
  cfg.max_wait_us = 60e6;  // 60 s: a timeout flush would blow the alarm below
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  const auto start = std::chrono::steady_clock::now();
  // 6 concurrent requests = two full windows of 3. If the max_batch flush
  // were broken, each window would sit out the full 60 s wait.
  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      sharded.Predict(static_cast<int32_t>(c));
      answered.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(answered.load(), 6);
  EXPECT_LT(elapsed_s, 30.0) << "batch flush did not fire on max_batch";
}

TEST_F(ShardedServingTest, WindowFlushesOnMaxWaitWhenBatchNeverFills) {
  ShardedServerConfig cfg;
  cfg.num_shards = 1;
  cfg.max_batch = 100;     // unreachable with 2 requests
  cfg.max_wait_us = 2000;  // 2 ms window
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  const auto start = std::chrono::steady_clock::now();
  std::thread other([&] { sharded.Predict(1); });
  const ModelServer::Prediction p = sharded.Predict(2);
  other.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(p.shop, 2);
  EXPECT_FALSE(p.gmv.empty());
  // An under-filled window must flush on the wait budget, not hang until
  // more traffic arrives (there is none).
  EXPECT_LT(elapsed_s, 30.0) << "window did not flush on max_wait_us";
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation in the queue
// ---------------------------------------------------------------------------

TEST_F(ShardedServingTest, DeadlineConsumedInQueueDegradesToFallback) {
  ShardedServerConfig cfg;
  cfg.num_shards = 1;
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  // 100 ns budget: consumed before the window opens, always.
  const ModelServer::Prediction p = sharded.Predict(5, /*deadline_ms=*/1e-4);
  EXPECT_EQ(p.served_by, ModelServer::ServePath::kFallback);
  EXPECT_NE(p.degraded_reason.find("deadline_exceeded"), std::string::npos)
      << p.degraded_reason;
  EXPECT_NE(p.degraded_reason.find("queued"), std::string::npos)
      << p.degraded_reason;
  ASSERT_EQ(static_cast<int64_t>(p.gmv.size()), dataset_->horizon());
}

TEST_F(ShardedServingTest, CancelledWhileQueuedIsDroppedBeforeForward) {
  const uint64_t observed_before = obs::MetricsRegistry::Global().CounterValue(
      "gaia_cancel_observed_total");
  const uint64_t dropped_before = obs::MetricsRegistry::Global().CounterValue(
      "gaia_serve_cancelled_in_queue_total");
  ShardedServerConfig cfg;
  cfg.num_shards = 1;
  ShardedServer sharded(MakeModel(), dataset_, cfg);
  util::CancelToken token;
  token.Cancel();  // fired before the request ever reaches its window
  const ModelServer::Prediction p = sharded.Predict(7, 0.0, &token);
  EXPECT_EQ(p.served_by, ModelServer::ServePath::kFallback);
  EXPECT_EQ(p.degraded_reason, "cancelled while queued");
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                "gaia_cancel_observed_total"),
            observed_before);
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                "gaia_serve_cancelled_in_queue_total"),
            dropped_before);
  // The drop is per-request: the same shop served without a token is still
  // answered by the model, bitwise equal to the unsharded reference.
  ModelServer reference(MakeModel(), dataset_, serving::ServerConfig{});
  ExpectBitwise(sharded.Predict(7), reference.Predict(7));
}

// ---------------------------------------------------------------------------
// RCU checkpoint swap
// ---------------------------------------------------------------------------

TEST_F(ShardedServingTest, CheckpointSwapNeverTearsConcurrentReads) {
  const std::string dir = TempDir("swap");
  std::filesystem::create_directories(dir);
  const std::string ckpt_b = dir + "/gen_b.bin";
  std::shared_ptr<core::GaiaModel> model_a = MakeModel(1);
  std::shared_ptr<core::GaiaModel> model_b = MakeModel(99);
  ASSERT_TRUE(model_b->Save(ckpt_b).ok());

  // Per-shop references under each generation: serving is per-request
  // deterministic, so "old or new, never torn" is checkable bitwise.
  const std::vector<int32_t> shops = AllShops();
  ModelServer ref_a(model_a, dataset_, serving::ServerConfig{});
  ModelServer ref_b(model_b, dataset_, serving::ServerConfig{});
  const auto want_a = ref_a.PredictBatch(shops);
  const auto want_b = ref_b.PredictBatch(shops);

  ShardedServerConfig cfg;
  cfg.num_shards = 2;
  cfg.max_batch = 4;
  ShardedServer sharded(MakeModel(1), dataset_, cfg);
  EXPECT_EQ(sharded.epoch(), 0);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<uint32_t>(41 + c));
      while (!stop.load(std::memory_order_relaxed)) {
        const int32_t shop =
            static_cast<int32_t>(rng() % shops.size());
        const ModelServer::Prediction got = sharded.Predict(shop);
        const auto& a = want_a[static_cast<size_t>(shop)].gmv;
        const auto& b = want_b[static_cast<size_t>(shop)].gmv;
        const bool is_a = got.gmv.size() == a.size() &&
                          std::memcmp(got.gmv.data(), a.data(),
                                      a.size() * sizeof(double)) == 0;
        const bool is_b = got.gmv.size() == b.size() &&
                          std::memcmp(got.gmv.data(), b.data(),
                                      b.size() * sizeof(double)) == 0;
        if (!is_a && !is_b) torn.fetch_add(1);
      }
    });
  }
  // Publish the swap while the hammer runs: readers must keep answering
  // (old generation) until the flip, then answer with the new one.
  ASSERT_TRUE(sharded.LoadCheckpoint(ckpt_b).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(torn.load(), 0) << "a reader observed a torn generation";
  EXPECT_EQ(sharded.epoch(), 1);
  // Steady state after the flip: everything serves generation B.
  for (int32_t shop : {2, 21, 47}) {
    ExpectBitwise(sharded.Predict(shop),
                  want_b[static_cast<size_t>(shop)]);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServingTest, ChaosPublishServeStormOnlyServesRealGenerations) {
  // Randomized-seed chaos leg: checkpoint.read faults fire during a
  // concurrent publish+serve storm. Readers must only ever observe
  // generation A or generation B — and the robust counters stay monotonic.
  uint64_t chaos_seed = 7;
  if (const char* env = std::getenv("GAIA_FAULTS_SEED")) {
    chaos_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  const std::string dir = TempDir("chaos");
  serving::CheckpointStoreConfig store_cfg;
  store_cfg.dir = dir;
  store_cfg.keep_last = 3;
  serving::CheckpointStore store(store_cfg);
  std::shared_ptr<core::GaiaModel> model_a = MakeModel(1);
  std::shared_ptr<core::GaiaModel> model_b = MakeModel(99);
  ASSERT_TRUE(store.Publish(*model_a).ok());
  ASSERT_TRUE(store.Publish(*model_b).ok());

  const std::vector<int32_t> shops = AllShops();
  ModelServer ref_a(model_a, dataset_, serving::ServerConfig{});
  ModelServer ref_b(model_b, dataset_, serving::ServerConfig{});
  const auto want_a = ref_a.PredictBatch(shops);
  const auto want_b = ref_b.PredictBatch(shops);

  ShardedServerConfig cfg;
  cfg.num_shards = 2;
  ShardedServer sharded(MakeModel(1), dataset_, cfg);

  const uint64_t rollbacks_before =
      obs::MetricsRegistry::Global().CounterValue(
          "gaia_robust_checkpoint_rollbacks_total");

  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();
  faults.Reseed(chaos_seed);
  faults.Arm({"checkpoint.read", util::FaultKind::kUnavailable, 0.4, -1});

  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<uint32_t>(1234 + c));
      while (!stop.load(std::memory_order_relaxed)) {
        const int32_t shop = static_cast<int32_t>(rng() % shops.size());
        const ModelServer::Prediction got = sharded.Predict(shop);
        const auto& a = want_a[static_cast<size_t>(shop)].gmv;
        const auto& b = want_b[static_cast<size_t>(shop)].gmv;
        const bool is_a = std::memcmp(got.gmv.data(), a.data(),
                                      a.size() * sizeof(double)) == 0;
        const bool is_b = std::memcmp(got.gmv.data(), b.data(),
                                      b.size() * sizeof(double)) == 0;
        if (!is_a && !is_b) torn.fetch_add(1);
      }
    });
  }
  // The publisher keeps re-adopting the latest good checkpoint under fire;
  // failed loads must leave the serving generation untouched.
  int swaps_ok = 0;
  for (int round = 0; round < 10; ++round) {
    if (sharded.LoadCheckpoint(store).ok()) ++swaps_ok;
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  faults.Reset();

  EXPECT_EQ(torn.load(), 0) << "reader observed a torn/phantom generation";
  const uint64_t rollbacks_after =
      obs::MetricsRegistry::Global().CounterValue(
          "gaia_robust_checkpoint_rollbacks_total");
  EXPECT_GE(rollbacks_after, rollbacks_before) << "robust counter regressed";
  // With the injector disarmed the newest good checkpoint (B) adopts
  // cleanly and the tier settles on it.
  ASSERT_TRUE(sharded.LoadCheckpoint(store).ok());
  for (int32_t shop : {4, 33}) {
    ExpectBitwise(sharded.Predict(shop), want_b[static_cast<size_t>(shop)]);
  }
  EXPECT_GE(swaps_ok, 0);  // storm rounds may all fail; adoption above cannot
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// CheckpointStore manifest + publish lock
// ---------------------------------------------------------------------------

TEST_F(ShardedServingTest, ManifestAdoptionIsO1AndSurvivesRestart) {
  const std::string dir = TempDir("manifest");
  serving::CheckpointStoreConfig cfg;
  cfg.dir = dir;
  cfg.keep_last = 2;
  std::shared_ptr<core::GaiaModel> model = MakeModel(1);
  std::vector<std::string> published;
  {
    serving::CheckpointStore store(cfg);
    EXPECT_FALSE(store.adopted_from_manifest());  // empty dir: nothing yet
    for (int i = 0; i < 3; ++i) {
      auto path = store.Publish(*model);
      ASSERT_TRUE(path.ok());
      published.push_back(path.value());
    }
    ASSERT_EQ(store.history().size(), 2u);  // keep_last pruned the first
  }
  // "New process": a fresh store adopts the pruned history from the
  // manifest — O(1) read, no directory scan — and continues the sequence.
  serving::CheckpointStore restarted(cfg);
  EXPECT_TRUE(restarted.adopted_from_manifest());
  ASSERT_EQ(restarted.history().size(), 2u);
  EXPECT_EQ(restarted.history()[0], published[1]);
  EXPECT_EQ(restarted.history()[1], published[2]);
  auto next = restarted.Publish(*model);
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next.value(), published[2]) << "sequence number reused";
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServingTest, MissingManifestFallsBackToDirectoryScan) {
  const std::string dir = TempDir("scanfb");
  serving::CheckpointStoreConfig cfg;
  cfg.dir = dir;
  std::shared_ptr<core::GaiaModel> model = MakeModel(1);
  std::string published;
  {
    serving::CheckpointStore store(cfg);
    auto path = store.Publish(*model);
    ASSERT_TRUE(path.ok());
    published = path.value();
    std::remove(store.ManifestPath().c_str());
  }
  serving::CheckpointStore restarted(cfg);
  EXPECT_FALSE(restarted.adopted_from_manifest());
  ASSERT_EQ(restarted.history().size(), 1u);
  EXPECT_EQ(restarted.history()[0], published);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServingTest, CorruptManifestFallsBackToDirectoryScan) {
  const std::string dir = TempDir("badmanifest");
  serving::CheckpointStoreConfig cfg;
  cfg.dir = dir;
  std::shared_ptr<core::GaiaModel> model = MakeModel(1);
  {
    serving::CheckpointStore store(cfg);
    ASSERT_TRUE(store.Publish(*model).ok());
    std::ofstream out(store.ManifestPath(), std::ios::trunc);
    out << "{ not json at all";
  }
  serving::CheckpointStore restarted(cfg);
  EXPECT_FALSE(restarted.adopted_from_manifest());
  EXPECT_EQ(restarted.history().size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServingTest, ManifestRollsBackPastCorruptNewestCheckpoint) {
  const std::string dir = TempDir("rollback");
  serving::CheckpointStoreConfig cfg;
  cfg.dir = dir;
  std::shared_ptr<core::GaiaModel> model = MakeModel(1);
  std::string first, second;
  {
    serving::CheckpointStore store(cfg);
    auto a = store.Publish(*model);
    auto b = store.Publish(*model);
    ASSERT_TRUE(a.ok() && b.ok());
    first = a.value();
    second = b.value();
  }
  // Corrupt the newest on disk AFTER it entered the manifest: adoption
  // lists it, but LoadLatestGood must verify and roll back to the older.
  {
    std::fstream f(second, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    f.seekp(size / 2);
    char byte = 0x5A;
    f.write(&byte, 1);
  }
  serving::CheckpointStore restarted(cfg);
  EXPECT_TRUE(restarted.adopted_from_manifest());
  std::shared_ptr<core::GaiaModel> target = MakeModel(7);
  auto report = restarted.LoadLatestGood(target.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, first);
  EXPECT_EQ(report.value().rollbacks, 1);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServingTest, PublishLockExcludesLiveHolderAndBreaksStale) {
  const std::string dir = TempDir("lock");
  std::filesystem::create_directories(dir);
  {
    auto held = serving::PublishLock::Acquire(dir);
    ASSERT_TRUE(held.ok());
    // Second acquisition while the first is live (our own pid) must refuse
    // with a retryable status — the serve/retrain split's mutual exclusion.
    auto contended = serving::PublishLock::Acquire(dir);
    ASSERT_FALSE(contended.ok());
    EXPECT_EQ(contended.status().code(), StatusCode::kUnavailable);
  }
  // Holder destroyed -> lock released -> acquirable again.
  ASSERT_TRUE(serving::PublishLock::Acquire(dir).ok());
  // A lockfile left by a dead process (no such pid) is broken on acquire.
  {
    std::ofstream out(dir + "/store.lock", std::ios::trunc);
    out << 4194000 << "\n";  // near pid_max: almost surely not running
  }
  auto broken = serving::PublishLock::Acquire(dir);
  EXPECT_TRUE(broken.ok()) << broken.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServingTest, PublishRefusedWhileAnotherHolderIsLive) {
  const std::string dir = TempDir("lockpub");
  serving::CheckpointStoreConfig cfg;
  cfg.dir = dir;
  serving::CheckpointStore store(cfg);
  std::shared_ptr<core::GaiaModel> model = MakeModel(1);
  auto held = serving::PublishLock::Acquire(dir);
  ASSERT_TRUE(held.ok());
  auto refused = store.Publish(*model);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.history().empty()) << "refused publish touched history";
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// PredictBatch fan-out regression (doc/behaviour pin)
// ---------------------------------------------------------------------------

TEST_F(ShardedServingTest, PredictBatchFanoutRunsInlineWithOneThread) {
  // Pins the documented ServerConfig::num_threads semantics: the fan-out is
  // one outer ParallelFor over the requests on the *global* pool, so with
  // GAIA_NUM_THREADS=1 (a 1-thread pool) no worker jobs are dispatched and
  // the whole sweep runs inline on the calling thread.
  const obs::Level saved_level = obs::CurrentLevel();
  obs::SetLevel(obs::Level::kOn);
  util::ThreadPool::SetGlobalThreads(1);
  const uint64_t jobs_before =
      obs::MetricsRegistry::Global().CounterValue("gaia_pool_jobs_total");
  const uint64_t inline_before = obs::MetricsRegistry::Global().CounterValue(
      "gaia_pool_inline_chunks_total");
  ModelServer server(MakeModel(), dataset_, serving::ServerConfig{});
  server.PredictBatch({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(
      obs::MetricsRegistry::Global().CounterValue("gaia_pool_jobs_total"),
      jobs_before)
      << "1-thread PredictBatch dispatched pool jobs";
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                "gaia_pool_inline_chunks_total"),
            inline_before)
      << "1-thread PredictBatch did not run inline";
  obs::SetLevel(saved_level);
}

}  // namespace
}  // namespace gaia
