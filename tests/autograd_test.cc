#include "autograd/ops.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "autograd/grad_check.h"

namespace gaia::autograd {
namespace {

// ---------------------------------------------------------------------------
// Basic graph mechanics
// ---------------------------------------------------------------------------

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Var c = Constant(Tensor({2}, {1, 2}));
  EXPECT_FALSE(c->requires_grad);
  Var p = Parameter(Tensor({2}, {1, 2}));
  EXPECT_TRUE(p->requires_grad);
}

TEST(VariableTest, GradPropagationIsPrunedForConstants) {
  Var c = Constant(Tensor({2}, {1, 2}));
  Var d = Constant(Tensor({2}, {3, 4}));
  Var sum = Add(c, d);
  // No parameter upstream -> no tape kept.
  EXPECT_FALSE(sum->requires_grad);
  EXPECT_TRUE(sum->parents.empty());
}

TEST(VariableTest, BackwardAccumulatesIntoLeaves) {
  Var p = Parameter(Tensor({3}, {1, 2, 3}));
  Var loss = SumAll(Mul(p, p));  // sum of squares
  Backward(loss);
  EXPECT_TRUE(AllClose(p->grad, Tensor({3}, {2, 4, 6})));
  // Second backward pass accumulates.
  Var loss2 = SumAll(p);
  Backward(loss2);
  EXPECT_TRUE(AllClose(p->grad, Tensor({3}, {3, 5, 7})));
  p->ZeroGrad();
  EXPECT_TRUE(AllClose(p->grad, Tensor({3})));
}

TEST(VariableTest, DiamondGraphSumsGradients) {
  // loss = sum(p + p): gradient must be 2 everywhere.
  Var p = Parameter(Tensor({2}, {1, 1}));
  Var loss = SumAll(Add(p, p));
  Backward(loss);
  EXPECT_TRUE(AllClose(p->grad, Tensor({2}, {2, 2})));
}

TEST(VariableTest, ValueForwardIsCorrect) {
  Var a = Constant(Tensor({2}, {3, 4}));
  Var b = Constant(Tensor({2}, {1, 2}));
  EXPECT_TRUE(AllClose(Sub(a, b)->value, Tensor({2}, {2, 2})));
  EXPECT_TRUE(AllClose(Mul(a, b)->value, Tensor({2}, {3, 8})));
  EXPECT_TRUE(AllClose(Neg(a)->value, Tensor({2}, {-3, -4})));
}

// ---------------------------------------------------------------------------
// Gradient checks, one per op (property: analytic == numeric)
// ---------------------------------------------------------------------------

using BuildFn = std::function<Var(const std::vector<Var>&)>;

struct GradCase {
  std::string name;
  std::vector<std::vector<int64_t>> param_shapes;
  BuildFn build;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  Rng rng(13);
  std::vector<Var> params;
  for (const auto& shape : c.param_shapes) {
    params.push_back(Parameter(Tensor::Randn(shape, &rng, 0.5f)));
  }
  GradCheckResult result = CheckGradients(c.build, params);
  EXPECT_TRUE(result.ok) << c.name << ": " << result.detail
                         << " (max rel err " << result.max_rel_error << ")";
}

Tensor FixedTarget(const std::vector<int64_t>& shape) {
  Rng rng(99);
  return Tensor::Randn(shape, &rng);
}

std::vector<GradCase> MakeGradCases() {
  std::vector<GradCase> cases;
  cases.push_back({"add", {{3, 2}, {3, 2}}, [](const std::vector<Var>& p) {
                     return SumAll(Add(p[0], p[1]));
                   }});
  cases.push_back({"sub_mul", {{3, 2}, {3, 2}}, [](const std::vector<Var>& p) {
                     return SumAll(Mul(Sub(p[0], p[1]), p[1]));
                   }});
  cases.push_back({"scalar_mul", {{4}}, [](const std::vector<Var>& p) {
                     return SumAll(ScalarMul(p[0], 2.5f));
                   }});
  cases.push_back({"addn", {{2, 2}, {2, 2}, {2, 2}},
                   [](const std::vector<Var>& p) {
                     return SumAll(AddN({p[0], p[1], p[2]}));
                   }});
  cases.push_back({"scale_by_scalar", {{3, 3}, {1}},
                   [](const std::vector<Var>& p) {
                     return SumAll(Mul(ScaleByScalar(p[0], p[1]),
                                       ScaleByScalar(p[0], p[1])));
                   }});
  cases.push_back({"matmul", {{3, 4}, {4, 2}}, [](const std::vector<Var>& p) {
                     return SumAll(Mul(MatMul(p[0], p[1]),
                                       MatMul(p[0], p[1])));
                   }});
  cases.push_back({"transpose", {{3, 5}}, [](const std::vector<Var>& p) {
                     return SumAll(Mul(Transpose(p[0]), Transpose(p[0])));
                   }});
  cases.push_back({"dot", {{6}, {6}}, [](const std::vector<Var>& p) {
                     return Dot(p[0], p[1]);
                   }});
  cases.push_back({"relu", {{4, 4}}, [](const std::vector<Var>& p) {
                     // Shift away from the kink at 0 for stable numerics.
                     return SumAll(Relu(Add(p[0],
                                            Constant(Tensor::Full({4, 4},
                                                                  0.2f)))));
                   }});
  cases.push_back({"sigmoid", {{3, 3}}, [](const std::vector<Var>& p) {
                     return SumAll(Mul(Sigmoid(p[0]), Sigmoid(p[0])));
                   }});
  cases.push_back({"tanh", {{3, 3}}, [](const std::vector<Var>& p) {
                     return SumAll(Mul(Tanh(p[0]), Tanh(p[0])));
                   }});
  cases.push_back({"exp", {{3}}, [](const std::vector<Var>& p) {
                     return SumAll(Exp(p[0]));
                   }});
  cases.push_back({"div", {{4}, {4}}, [](const std::vector<Var>& p) {
                     // Keep denominators away from zero.
                     Var denom = Add(Mul(p[1], p[1]),
                                     Constant(Tensor::Full({4}, 1.0f)));
                     return SumAll(Div(p[0], denom));
                   }});
  cases.push_back({"log", {{4}}, [](const std::vector<Var>& p) {
                     Var positive = Add(Mul(p[0], p[0]),
                                        Constant(Tensor::Full({4}, 0.5f)));
                     return SumAll(Log(positive));
                   }});
  cases.push_back({"sqrt", {{4}}, [](const std::vector<Var>& p) {
                     Var positive = Add(Mul(p[0], p[0]),
                                        Constant(Tensor::Full({4}, 0.5f)));
                     return SumAll(Sqrt(positive));
                   }});
  cases.push_back({"softmax_rows", {{3, 5}}, [](const std::vector<Var>& p) {
                     Rng rng(7);
                     Var w = Constant(Tensor::Randn({3, 5}, &rng));
                     return SumAll(Mul(SoftmaxRows(p[0]), w));
                   }});
  cases.push_back({"softmax_masked", {{4, 4}}, [](const std::vector<Var>& p) {
                     Rng rng(8);
                     Var w = Constant(Tensor::Randn({4, 4}, &rng));
                     Var logits = Add(p[0], Constant(CausalMask(4)));
                     return SumAll(Mul(SoftmaxRows(logits), w));
                   }});
  cases.push_back({"softmax_1d", {{5}}, [](const std::vector<Var>& p) {
                     Rng rng(9);
                     Var w = Constant(Tensor::Randn({5}, &rng));
                     return Dot(Softmax1D(p[0]), w);
                   }});
  cases.push_back({"reshape", {{2, 6}}, [](const std::vector<Var>& p) {
                     return SumAll(Mul(Reshape(p[0], {3, 4}),
                                       Reshape(p[0], {3, 4})));
                   }});
  cases.push_back({"concat_cols", {{3, 2}, {3, 3}},
                   [](const std::vector<Var>& p) {
                     Var cat = ConcatCols({p[0], p[1]});
                     return SumAll(Mul(cat, cat));
                   }});
  cases.push_back({"concat_rows", {{2, 3}, {4, 3}},
                   [](const std::vector<Var>& p) {
                     Var cat = ConcatRows({p[0], p[1]});
                     return SumAll(Mul(cat, cat));
                   }});
  cases.push_back({"slice_cols", {{3, 6}}, [](const std::vector<Var>& p) {
                     Var s = SliceCols(p[0], 1, 3);
                     return SumAll(Mul(s, s));
                   }});
  cases.push_back({"slice_rows", {{6, 3}}, [](const std::vector<Var>& p) {
                     Var s = SliceRows(p[0], 2, 2);
                     return SumAll(Mul(s, s));
                   }});
  cases.push_back({"select_row", {{4, 3}}, [](const std::vector<Var>& p) {
                     Var r = SelectRow(p[0], 2);
                     return Dot(r, r);
                   }});
  cases.push_back({"stack_select_scalars", {{1}, {1}, {1}},
                   [](const std::vector<Var>& p) {
                     Var stacked = StackScalars({p[0], p[1], p[2]});
                     Var probs = Softmax1D(stacked);
                     return SelectScalar(probs, 1);
                   }});
  cases.push_back({"select_span", {{8}}, [](const std::vector<Var>& p) {
                     Var s = SelectSpan(p[0], 2, 4);
                     return Dot(s, s);
                   }});
  cases.push_back({"add_row_vector", {{4, 3}, {3}},
                   [](const std::vector<Var>& p) {
                     Var out = AddRowVector(p[0], p[1]);
                     return SumAll(Mul(out, out));
                   }});
  cases.push_back({"conv1d_same", {{6, 2}, {3, 3, 2}, {3}},
                   [](const std::vector<Var>& p) {
                     Var out = Conv1d(p[0], p[1], p[2], PadMode::kSame);
                     return SumAll(Mul(out, out));
                   }});
  cases.push_back({"conv1d_causal_dilated", {{8, 2}, {2, 2, 2}, {2}},
                   [](const std::vector<Var>& p) {
                     Var out = Conv1d(p[0], p[1], p[2], PadMode::kCausal, 2);
                     return SumAll(Mul(out, out));
                   }});
  cases.push_back({"conv1d_no_bias", {{5, 2}, {2, 3, 2}},
                   [](const std::vector<Var>& p) {
                     Var out = Conv1d(p[0], p[1], nullptr, PadMode::kCausal);
                     return SumAll(Mul(out, out));
                   }});
  cases.push_back({"layernorm", {{4, 6}, {6}, {6}},
                   [](const std::vector<Var>& p) {
                     Rng rng(11);
                     Var w = Constant(Tensor::Randn({4, 6}, &rng));
                     return SumAll(
                         Mul(LayerNormRows(p[0], p[1], p[2]), w));
                   }});
  cases.push_back({"mean_all", {{5, 2}}, [](const std::vector<Var>& p) {
                     return MeanAll(Mul(p[0], p[0]));
                   }});
  cases.push_back({"mse_loss", {{4}}, [](const std::vector<Var>& p) {
                     return MseLoss(p[0], FixedTarget({4}));
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(LossTest, MseValueIsMeanSquaredError) {
  Var pred = Parameter(Tensor({2}, {1, 3}));
  Tensor target({2}, {0, 1});
  Var loss = MseLoss(pred, target);
  EXPECT_FLOAT_EQ(loss->value.at(0), (1.0f + 4.0f) / 2.0f);
}

TEST(LossTest, MaeValueAndSubgradient) {
  Var pred = Parameter(Tensor({2}, {2, -1}));
  Tensor target({2}, {0, 0});
  Var loss = MaeLoss(pred, target);
  EXPECT_FLOAT_EQ(loss->value.at(0), 1.5f);
  Backward(loss);
  EXPECT_TRUE(AllClose(pred->grad, Tensor({2}, {0.5f, -0.5f})));
}

TEST(LossTest, PerfectPredictionHasZeroLossAndGrad) {
  Tensor target({3}, {1, 2, 3});
  Var pred = Parameter(target);
  Var loss = MseLoss(pred, target);
  EXPECT_EQ(loss->value.at(0), 0.0f);
  Backward(loss);
  EXPECT_TRUE(AllClose(pred->grad, Tensor({3})));
}

TEST(GradCheckUtilityTest, DetectsWrongGradient) {
  // A deliberately broken "op": forward x^2 but gradient of x^3 would be
  // caught. We simulate by comparing sum(x^2) against a build that uses a
  // different function after the analytic pass — instead, simply verify the
  // checker passes a correct graph and its error fields are small.
  Rng rng(3);
  std::vector<Var> params = {Parameter(Tensor::Randn({3}, &rng))};
  GradCheckResult result = CheckGradients(
      [](const std::vector<Var>& p) { return SumAll(Mul(p[0], p[0])); },
      params);
  EXPECT_TRUE(result.ok);
  EXPECT_LT(result.max_rel_error, 1e-2);
}

}  // namespace
}  // namespace gaia::autograd
