#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ts/arima.h"
#include "ts/metrics.h"
#include "util/rng.h"

namespace gaia::ts {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, HandComputedValues) {
  ForecastMetrics m = ComputeMetrics({3.0, 5.0}, {1.0, 5.0});
  EXPECT_DOUBLE_EQ(m.mae, 1.0);                   // (2 + 0) / 2
  EXPECT_DOUBLE_EQ(m.rmse, std::sqrt(2.0));       // sqrt((4 + 0) / 2)
  EXPECT_DOUBLE_EQ(m.mape, 1.0 + 0.0 == 1.0 ? (2.0 / 1.0 + 0.0) / 2.0 : 0.0);
  EXPECT_EQ(m.count, 2);
}

TEST(MetricsTest, WapeIsErrorMassOverActualMass) {
  // WAPE = (2 + 0 + 3) / (1 + 5 + 10).
  ForecastMetrics m = ComputeMetrics({3.0, 5.0, 13.0}, {1.0, 5.0, 10.0});
  EXPECT_DOUBLE_EQ(m.wape, 5.0 / 16.0);
  // WAPE is immune to the MAPE small-denominator blowup (denominator above
  // the floor but far below the error scale).
  ForecastMetrics tail = ComputeMetrics({1000.0, 1000.0}, {2.0, 1000.0});
  EXPECT_GT(tail.mape, 100.0);   // exploded: (998/2 + 0) / 2
  EXPECT_LT(tail.wape, 1.1);     // bounded by total actual mass
}

TEST(MetricsTest, PerfectForecastIsZeroError) {
  ForecastMetrics m = ComputeMetrics({2, 4, 8}, {2, 4, 8});
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
}

TEST(MetricsTest, MapeFloorExcludesTinyActuals) {
  MetricsAccumulator acc(/*mape_floor=*/10.0);
  acc.Add(5.0, 0.001);  // excluded from MAPE, included in MAE
  acc.Add(20.0, 10.0);  // included everywhere
  ForecastMetrics m = acc.Finalize();
  EXPECT_EQ(m.count, 2);
  EXPECT_EQ(m.mape_count, 1);
  EXPECT_DOUBLE_EQ(m.mape, 1.0);  // |20-10|/10
}

TEST(MetricsTest, RmseDominatedByOutliers) {
  ForecastMetrics small = ComputeMetrics({1, 1, 1, 1}, {0, 0, 0, 0});
  ForecastMetrics outlier = ComputeMetrics({4, 0, 0, 0}, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(small.mae, outlier.mae);     // same MAE = 1
  EXPECT_GT(outlier.rmse, small.rmse);          // RMSE punishes the spike
}

TEST(MetricsTest, MergeEqualsJointComputation) {
  MetricsAccumulator a, b, joint;
  const std::vector<double> preds = {1, 2, 3, 4};
  const std::vector<double> actuals = {2, 2, 5, 3};
  for (int i = 0; i < 2; ++i) a.Add(preds[i], actuals[i]);
  for (int i = 2; i < 4; ++i) b.Add(preds[i], actuals[i]);
  for (int i = 0; i < 4; ++i) joint.Add(preds[i], actuals[i]);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Finalize().mae, joint.Finalize().mae);
  EXPECT_DOUBLE_EQ(a.Finalize().rmse, joint.Finalize().rmse);
  EXPECT_DOUBLE_EQ(a.Finalize().mape, joint.Finalize().mape);
}

TEST(CorrelationTest, PerfectAndAnti) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> z = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(CrossCorrelationTest, DetectsKnownLag) {
  // b[t] = a[t - 3]: a leads b by 3 => corr(a_t, b_{t+3}) maximal.
  Rng rng(5);
  std::vector<double> a(40);
  for (auto& v : a) v = rng.Normal();
  std::vector<double> b(40, 0.0);
  for (size_t t = 3; t < b.size(); ++t) b[t] = a[t - 3];
  LagCorrelation best = BestLagCorrelation(a, b, 6);
  EXPECT_EQ(best.lag, 3);
  EXPECT_GT(best.correlation, 0.95);
}

TEST(CrossCorrelationTest, ShortOverlapReturnsZero) {
  EXPECT_DOUBLE_EQ(CrossCorrelationAtLag({1, 2}, {1, 2}, 1), 0.0);
}

// ---------------------------------------------------------------------------
// Differencing / integration
// ---------------------------------------------------------------------------

TEST(DifferenceTest, FirstAndSecondOrder) {
  std::vector<double> x = {1, 3, 6, 10};
  EXPECT_EQ(Difference(x, 1), (std::vector<double>{2, 3, 4}));
  EXPECT_EQ(Difference(x, 2), (std::vector<double>{1, 1}));
  EXPECT_EQ(Difference(x, 0), x);
}

TEST(IntegrateTest, InvertsDifferencing) {
  std::vector<double> x = {2, 5, 4, 8, 7, 11};
  for (int d = 0; d <= 2; ++d) {
    std::vector<double> history(x.begin(), x.end() - 2);
    std::vector<double> diffed_full = Difference(x, d);
    // The last 2 differenced values act as the "forecast".
    std::vector<double> fc(diffed_full.end() - 2, diffed_full.end());
    std::vector<double> restored = Integrate(fc, history, d);
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_NEAR(restored[0], x[x.size() - 2], 1e-9) << "d=" << d;
    EXPECT_NEAR(restored[1], x[x.size() - 1], 1e-9) << "d=" << d;
  }
}

// ---------------------------------------------------------------------------
// ARIMA
// ---------------------------------------------------------------------------

std::vector<double> SimulateAr2(double phi1, double phi2, double c, int n,
                                uint64_t seed, double noise = 0.5) {
  Rng rng(seed);
  std::vector<double> x = {c, c};
  for (int t = 2; t < n; ++t) {
    x.push_back(c + phi1 * x[static_cast<size_t>(t - 1)] +
                phi2 * x[static_cast<size_t>(t - 2)] +
                rng.Normal(0.0, noise));
  }
  return x;
}

TEST(ArimaTest, RecoversAr2Coefficients) {
  std::vector<double> x = SimulateAr2(0.6, -0.3, 2.0, 600, 7);
  auto fit = Arima::Fit(x, ArimaOrder{2, 0, 0});
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit.value().ar_coefficients()[0], 0.6, 0.1);
  EXPECT_NEAR(fit.value().ar_coefficients()[1], -0.3, 0.1);
}

TEST(ArimaTest, RejectsDegenerateOrders) {
  std::vector<double> x(50, 1.0);
  EXPECT_FALSE(Arima::Fit(x, ArimaOrder{0, 0, 0}).ok());
  EXPECT_FALSE(Arima::Fit(x, ArimaOrder{-1, 0, 0}).ok());
}

TEST(ArimaTest, RejectsShortSeries) {
  std::vector<double> x = {1, 2, 3, 4};
  auto fit = Arima::Fit(x, ArimaOrder{2, 0, 2});
  EXPECT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArimaTest, ForecastLinearTrendWithDifferencing) {
  // x_t = 3t + noise: ARIMA(1,1,0) should extrapolate the slope.
  Rng rng(11);
  std::vector<double> x;
  for (int t = 0; t < 80; ++t) x.push_back(3.0 * t + rng.Normal(0.0, 0.2));
  auto fit = Arima::Fit(x, ArimaOrder{1, 1, 0});
  ASSERT_TRUE(fit.ok());
  std::vector<double> forecast = fit.value().Forecast(3);
  for (int h = 0; h < 3; ++h) {
    EXPECT_NEAR(forecast[static_cast<size_t>(h)], 3.0 * (80 + h), 3.0);
  }
}

TEST(ArimaTest, ForecastStationarySeriesNearMean) {
  std::vector<double> x = SimulateAr2(0.5, 0.0, 5.0, 300, 13, 0.3);
  auto fit = Arima::Fit(x, ArimaOrder{1, 0, 1});
  ASSERT_TRUE(fit.ok());
  const double mean = 5.0 / (1.0 - 0.5);
  std::vector<double> forecast = fit.value().Forecast(12);
  // Long-horizon forecast reverts toward the unconditional mean.
  EXPECT_NEAR(forecast.back(), mean, 1.5);
}

TEST(ArimaTest, AicPrefersTrueOrderFamily) {
  std::vector<double> x = SimulateAr2(0.7, -0.2, 1.0, 500, 17);
  auto best = AutoArima(x, 2, 1, 2);
  ASSERT_TRUE(best.ok());
  // The selected model should fit far better than white-noise MA(1).
  auto ma1 = Arima::Fit(x, ArimaOrder{0, 0, 1});
  ASSERT_TRUE(ma1.ok());
  EXPECT_LT(best.value().aic(), ma1.value().aic());
}

TEST(ArimaTest, ToStringMentionsOrder) {
  std::vector<double> x = SimulateAr2(0.5, 0.1, 0.0, 100, 19);
  auto fit = Arima::Fit(x, ArimaOrder{2, 0, 1});
  ASSERT_TRUE(fit.ok());
  EXPECT_NE(fit.value().ToString().find("ARIMA(2,0,1)"), std::string::npos);
}

TEST(ForecastWithFallbackTest, EmptySeriesGivesZeros) {
  std::vector<double> forecast = ForecastWithFallback({}, 3);
  EXPECT_EQ(forecast, (std::vector<double>{0, 0, 0}));
}

TEST(ForecastWithFallbackTest, ShortSeriesUsesRecentMean) {
  std::vector<double> forecast = ForecastWithFallback({10, 20, 30}, 2);
  EXPECT_EQ(forecast.size(), 2u);
  EXPECT_NEAR(forecast[0], 20.0, 1e-9);
  EXPECT_NEAR(forecast[1], 20.0, 1e-9);
}

TEST(ForecastWithFallbackTest, LongSeriesProducesFiniteSaneValues) {
  std::vector<double> x = SimulateAr2(0.6, -0.1, 100.0, 60, 23, 5.0);
  std::vector<double> forecast = ForecastWithFallback(x, 3);
  const double max_obs = *std::max_element(x.begin(), x.end());
  for (double v : forecast) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::fabs(v), 10.0 * max_obs);
  }
}

// Property sweep: fallback never explodes across many random short series.
class FallbackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FallbackPropertyTest, BoundedForecastForAnyHistoryLength) {
  const int length = GetParam();
  Rng rng(static_cast<uint64_t>(length) * 31 + 1);
  std::vector<double> x;
  for (int t = 0; t < length; ++t) {
    x.push_back(std::max(0.0, 1000.0 * (1.0 + rng.Normal(0.0, 0.5))));
  }
  std::vector<double> forecast = ForecastWithFallback(x, 3);
  ASSERT_EQ(forecast.size(), 3u);
  for (double v : forecast) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::fabs(v), 1e6);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FallbackPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12, 16,
                                           20, 24, 30, 40));

// Order-grid property sweep: every (p, d, q) in the paper's search grid
// either fails cleanly or yields finite coefficients and forecasts.
class ArimaOrderPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ArimaOrderPropertyTest, FitIsCleanOrFiniteForecast) {
  const auto [p, d, q] = GetParam();
  std::vector<double> series = SimulateAr2(0.5, -0.2, 10.0, 120, 29, 1.0);
  auto fit = Arima::Fit(series, ArimaOrder{p, d, q});
  if (p == 0 && q == 0) {
    EXPECT_FALSE(fit.ok());
    return;
  }
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit.value().ar_coefficients().size(), static_cast<size_t>(p));
  EXPECT_EQ(fit.value().ma_coefficients().size(), static_cast<size_t>(q));
  for (double v : fit.value().Forecast(6)) {
    EXPECT_TRUE(std::isfinite(v)) << "p=" << p << " d=" << d << " q=" << q;
  }
  EXPECT_TRUE(std::isfinite(fit.value().aic()));
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ArimaOrderPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),   // p <= max(p) = 2
                       ::testing::Values(0, 1),      // d
                       ::testing::Values(0, 1, 2)),  // q <= max(q) = 2
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "d" +
             std::to_string(std::get<1>(info.param)) + "q" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace gaia::ts
