#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace gaia {
namespace {

double benchmark_sink_ = 0.0;

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kIoError,
        StatusCode::kNotImplemented, StatusCode::kInternal,
        StatusCode::kDataLoss, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::IoError("disk"); }
Status PropagatingHelper() {
  GAIA_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  Status s = PropagatingHelper();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// GAIA_CHECK
// ---------------------------------------------------------------------------

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ GAIA_CHECK(1 == 2) << "custom context"; },
               "GAIA_CHECK failed.*custom context");
}

TEST(CheckDeathTest, BinaryCheckPrintsOperands) {
  int a = 3, b = 4;
  EXPECT_DEATH({ GAIA_CHECK_EQ(a, b); }, "3 vs 4");
}

TEST(CheckTest, PassingCheckIsSilent) {
  GAIA_CHECK(true) << "never evaluated";
  GAIA_CHECK_LE(1, 2);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint32(), b.NextUint32());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint32() != b.NextUint32()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(6);
  std::set<uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(7);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ParetoRespectsMinimumAndSkew) {
  Rng rng(8);
  int small = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Pareto(1.1, 4.0);
    EXPECT_GE(x, 4.0);
    if (x < 8.0) ++small;
  }
  // Heavy right skew: majority of mass near the minimum.
  EXPECT_GT(small, 1000);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitStreamsAreIndependentlyDeterministic) {
  Rng a(11), b(11);
  Rng child_a = a.Split();
  Rng child_b = b.Split();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child_a.NextUint32(), child_b.NextUint32());
  }
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "Method"});
  table.AddRow({"1", "Gaia"});
  table.AddRow({"22", "x"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| A  | Method |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | x      |"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "GAIA_CHECK failed");
}

TEST(TablePrinterTest, FormatCountInsertsSeparators) {
  EXPECT_EQ(TablePrinter::FormatCount(0), "0");
  EXPECT_EQ(TablePrinter::FormatCount(999), "999");
  EXPECT_EQ(TablePrinter::FormatCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FormatCount(1234567.4), "1,234,567");
  EXPECT_EQ(TablePrinter::FormatCount(-56789), "-56,789");
}

TEST(TablePrinterTest, FormatDoublePrecision) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 1), "2.0");
}

// ---------------------------------------------------------------------------
// Robustness primitives: status codes, CRC32, fault injection, retry
// ---------------------------------------------------------------------------

TEST(StatusTest, RobustnessCodesRoundTrip) {
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_NE(Status::DataLoss("bits").ToString().find("DataLoss"),
            std::string::npos);
  EXPECT_NE(Status::Unavailable("down").ToString().find("Unavailable"),
            std::string::npos);
  EXPECT_NE(
      Status::DeadlineExceeded("slow").ToString().find("DeadlineExceeded"),
      std::string::npos);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_NE(Status::Cancelled("token fired").ToString().find("Cancelled"),
            std::string::npos);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::IoError("disk gone");
  EXPECT_DEATH(r.value(), "Result::value\\(\\) on error");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status SumPositives(int a, int b, int* out) {
  GAIA_ASSIGN_OR_RETURN(int av, ParsePositive(a));
  GAIA_ASSIGN_OR_RETURN(int bv, ParsePositive(b));
  *out = av + bv;
  return Status::OK();
}

TEST(StatusTest, AssignOrReturnUnwrapsAndPropagates) {
  int out = 0;
  EXPECT_TRUE(SumPositives(2, 3, &out).ok());
  EXPECT_EQ(out, 5);
  Status bad = SumPositives(2, -1, &out);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 5);  // untouched after the early return
}

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(util::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = util::Crc32(data.data(), data.size());
  const uint32_t first = util::Crc32(data.data(), 10);
  const uint32_t incremental =
      util::Crc32(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(incremental, one_shot);
  EXPECT_NE(one_shot, util::Crc32("different", 9));
}

TEST(FaultInjectorTest, DisabledByDefaultAndAfterReset) {
  util::FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.Sample("anything").has_value());
  util::FaultSpec spec;
  spec.site = "s";
  injector.Arm(spec);
  EXPECT_TRUE(injector.enabled());
  injector.Reset();
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.total_fired(), 0);
}

TEST(FaultInjectorTest, MaxFiresBoundsDeterministically) {
  util::FaultInjector injector;
  util::FaultSpec spec;
  spec.site = "ckpt";
  spec.kind = util::FaultKind::kCorrupt;
  spec.probability = 1.0;
  spec.max_fires = 3;
  injector.Arm(spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.Sample("ckpt").has_value()) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(injector.fired_count("ckpt"), 3);
  EXPECT_EQ(injector.fired_count("elsewhere"), 0);
  EXPECT_EQ(injector.total_fired(), 3);
}

TEST(FaultInjectorTest, ProbabilityStreamIsSeedReproducible) {
  auto run = [](uint64_t seed) {
    util::FaultInjector injector;
    injector.Reseed(seed);
    util::FaultSpec spec;
    spec.site = "fwd";
    spec.probability = 0.5;
    injector.Arm(spec);
    std::vector<bool> hits;
    for (int i = 0; i < 64; ++i) hits.push_back(injector.Sample("fwd").has_value());
    return hits;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultInjectorTest, ArmFromStringParsesRules) {
  util::FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmFromString(
                      "checkpoint.read:corrupt:1.0:2;serving.forward:nan:1.0")
                  .ok());
  EXPECT_EQ(injector.Sample("checkpoint.read"), util::FaultKind::kCorrupt);
  EXPECT_EQ(injector.Sample("serving.forward"), util::FaultKind::kNan);
  EXPECT_FALSE(injector.Sample("market.read").has_value());
  EXPECT_FALSE(injector.ArmFromString("no-colon").ok());
  EXPECT_FALSE(injector.ArmFromString("site:badkind:1.0").ok());
  EXPECT_FALSE(injector.ArmFromString("site:io:2.5").ok());
}

TEST(FaultInjectorTest, FaultStatusMapsKinds) {
  EXPECT_EQ(util::FaultStatus(util::FaultKind::kIoError, "s").code(),
            StatusCode::kIoError);
  EXPECT_EQ(util::FaultStatus(util::FaultKind::kUnavailable, "s").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(util::FaultStatus(util::FaultKind::kDeadline, "s").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(util::FaultStatus(util::FaultKind::kCorrupt, "s").code(),
            StatusCode::kDataLoss);
}

TEST(RetryTest, RetryablePredicateSplitsTransientFromPermanent) {
  EXPECT_TRUE(util::IsRetryableStatus(Status::IoError("x")));
  EXPECT_TRUE(util::IsRetryableStatus(Status::Unavailable("x")));
  EXPECT_TRUE(util::IsRetryableStatus(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(util::IsRetryableStatus(Status::DataLoss("x")));
  EXPECT_FALSE(util::IsRetryableStatus(Status::InvalidArgument("x")));
  EXPECT_FALSE(util::IsRetryableStatus(Status::OK()));
}

TEST(RetryTest, BackoffGrowsAndCaps) {
  util::RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 35.0;
  policy.jitter_fraction = 0.0;
  Rng rng(0);
  EXPECT_DOUBLE_EQ(util::BackoffMs(policy, 0, &rng), 10.0);
  EXPECT_DOUBLE_EQ(util::BackoffMs(policy, 1, &rng), 20.0);
  EXPECT_DOUBLE_EQ(util::BackoffMs(policy, 2, &rng), 35.0);  // capped
  EXPECT_DOUBLE_EQ(util::BackoffMs(policy, 3, &rng), 35.0);
}

TEST(RetryTest, JitterIsDeterministicPerSeed) {
  util::RetryPolicy policy;
  policy.jitter_fraction = 0.5;
  Rng a(42), b(42), c(43);
  const double with_a = util::BackoffMs(policy, 1, &a);
  EXPECT_DOUBLE_EQ(with_a, util::BackoffMs(policy, 1, &b));
  EXPECT_GE(with_a, 1.0);  // 2ms nominal, ±50%
  EXPECT_LE(with_a, 3.0);
  EXPECT_NE(with_a, util::BackoffMs(policy, 1, &c));
}

TEST(RetryTest, RecoversFromTransientFailures) {
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.sleep = false;
  int calls = 0;
  util::RetryStats stats;
  Status status = util::RetryCall(
      policy,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("warming up") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_GT(stats.total_backoff_ms, 0.0);
}

TEST(RetryTest, DoesNotRetryPermanentFailures) {
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep = false;
  int calls = 0;
  Status status = util::RetryCall(policy, [&] {
    ++calls;
    return Status::DataLoss("corrupt");
  });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExhaustsBudgetAndReturnsLastStatus) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep = false;
  int calls = 0;
  Status status = util::RetryCall(policy, [&] {
    ++calls;
    return Status::IoError("flaky #" + std::to_string(calls));
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("#3"), std::string::npos);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ResultFlavourReturnsValue) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep = false;
  int calls = 0;
  auto result = util::RetryResult<int>(policy, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("not yet");
    return 41 + 1;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 2);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  benchmark_sink_ = sink;  // keep the loop observable
  const double before_restart = watch.ElapsedSeconds();
  EXPECT_GT(before_restart, 0.0);
  // Elapsed time is monotone non-decreasing.
  EXPECT_GE(watch.ElapsedSeconds(), before_restart);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before_restart + 1.0);
}

}  // namespace
}  // namespace gaia
