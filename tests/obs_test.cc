// Observability layer tests: lock-free metric correctness under ParallelFor,
// exporter golden output, TraceSpan nesting/parenting, level gating (the
// disabled path must be a no-op), and the guarantee that turning
// observability on does not change model numerics.

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Level;
using obs::MetricsRegistry;
using obs::SpanRecord;
using obs::TraceBuffer;
using obs::TraceSpan;

/// Saves and restores the process observability level and pool size so
/// tests compose with the suite running under GAIA_OBS=1 or any pool size.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = obs::CurrentLevel();
    saved_threads_ = util::ThreadPool::GlobalThreads();
  }
  void TearDown() override {
    obs::SetLevel(saved_level_);
    util::ThreadPool::SetGlobalThreads(saved_threads_);
  }
  Level saved_level_ = Level::kOff;
  int saved_threads_ = 1;
};

// ---------------------------------------------------------------------------
// Metric primitives under concurrency
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterIsExactUnderParallelFor) {
  util::ThreadPool::SetGlobalThreads(8);
  Counter counter;
  constexpr int64_t kN = 100000;
  util::ParallelFor(kN, [&](int64_t) { counter.Increment(); });
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kN));
  counter.Increment(42);
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kN) + 42);
}

TEST_F(ObsTest, GaugeAddNeverLosesUpdates) {
  util::ThreadPool::SetGlobalThreads(8);
  Gauge gauge;
  constexpr int64_t kN = 50000;
  util::ParallelFor(kN, [&](int64_t) { gauge.Add(1.0); });
  // Integer-valued doubles accumulate exactly regardless of order.
  EXPECT_EQ(gauge.value(), static_cast<double>(kN));
  gauge.Set(-3.5);
  EXPECT_EQ(gauge.value(), -3.5);
}

TEST_F(ObsTest, HistogramCountsAndSumAreExactUnderParallelFor) {
  util::ThreadPool::SetGlobalThreads(8);
  Histogram hist({1.0, 10.0, 100.0});
  constexpr int64_t kN = 30000;
  // One third in each finite bucket; values are integers so the CAS-summed
  // total is exact in double arithmetic.
  util::ParallelFor(kN, [&](int64_t i) {
    hist.Observe(static_cast<double>(i % 3 == 0 ? 1 : (i % 3 == 1 ? 5 : 50)));
  });
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kN));
  EXPECT_EQ(hist.bucket_count(0), static_cast<uint64_t>(kN / 3));  // <= 1
  EXPECT_EQ(hist.bucket_count(1), static_cast<uint64_t>(kN / 3));  // <= 10
  EXPECT_EQ(hist.bucket_count(2), static_cast<uint64_t>(kN / 3));  // <= 100
  EXPECT_EQ(hist.bucket_count(3), 0u);                             // +Inf
  EXPECT_EQ(hist.sum(), static_cast<double>(kN / 3) * (1.0 + 5.0 + 50.0));
  hist.Observe(1e9);
  EXPECT_EQ(hist.bucket_count(3), 1u);
}

TEST_F(ObsTest, RegistryReturnsStableReferencesAndResets) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("gaia_test_total", "help");
  Counter& b = registry.GetCounter("gaia_test_total");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  registry.ResetAll();
  EXPECT_EQ(b.value(), 0u);
}

TEST_F(ObsTest, CounterValueReadsWithoutRegistering) {
  MetricsRegistry registry;
  // Unregistered names read 0 — and stay unregistered (no export entry).
  EXPECT_EQ(registry.CounterValue("gaia_test_never_touched_total"), 0u);
  EXPECT_EQ(registry.ExportPrometheus().find("gaia_test_never_touched"),
            std::string::npos);
  registry.GetCounter("gaia_test_value_total").Increment(11);
  EXPECT_EQ(registry.CounterValue("gaia_test_value_total"), 11u);
}

// The bench harness brackets every attribution pass with ResetAll() while
// instrumented workloads may still be observing from pool threads; a reset
// racing a writer must neither crash nor corrupt later readings.
TEST_F(ObsTest, ResetAllIsSafeUnderConcurrentWriters) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("gaia_test_reset_total");
  Gauge& gauge = registry.GetGauge("gaia_test_reset_gauge");
  Histogram& hist =
      registry.GetHistogram("gaia_test_reset_seconds", {1.0, 10.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Increment();
        gauge.Add(1.0);
        hist.Observe(5.0);
      }
    });
  }
  for (int i = 0; i < 200; ++i) registry.ResetAll();
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  // Quiesced: one more reset must leave everything exactly zero.
  registry.ResetAll();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0.0);
  for (size_t i = 0; i <= hist.bounds().size(); ++i) {
    EXPECT_EQ(hist.bucket_count(i), 0u) << "bucket " << i;
  }
}

// Histogram::Reset racing Observe() must keep the histogram usable: after
// the writers quiesce, a final reset-then-observe round is exact.
TEST_F(ObsTest, HistogramResetUnderConcurrentWritersStaysConsistent) {
  Histogram hist({1.0, 10.0, 100.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        hist.Observe(0.5);
        hist.Observe(50.0);
      }
    });
  }
  for (int i = 0; i < 200; ++i) hist.Reset();
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  hist.Reset();
  constexpr int kFinal = 100;
  for (int i = 0; i < kFinal; ++i) hist.Observe(5.0);
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kFinal));
  EXPECT_EQ(hist.bucket_count(0), 0u);
  EXPECT_EQ(hist.bucket_count(1), static_cast<uint64_t>(kFinal));  // <= 10
  EXPECT_EQ(hist.bucket_count(2), 0u);
  EXPECT_EQ(hist.bucket_count(3), 0u);  // +Inf
  EXPECT_EQ(hist.sum(), 5.0 * kFinal);
}

// ---------------------------------------------------------------------------
// Exporters (golden output)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PrometheusExportMatchesGolden) {
  MetricsRegistry registry;
  registry.GetCounter("gaia_requests_total", "Requests served").Increment(3);
  registry.GetGauge("gaia_loss").Set(0.5);
  Histogram& hist = registry.GetHistogram("gaia_latency_seconds", {0.1, 1.0});
  hist.Observe(0.05);
  hist.Observe(0.05);
  hist.Observe(0.5);
  hist.Observe(5.0);
  const std::string expected =
      "# TYPE gaia_latency_seconds histogram\n"
      "gaia_latency_seconds_bucket{le=\"0.1\"} 2\n"
      "gaia_latency_seconds_bucket{le=\"1\"} 3\n"
      "gaia_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "gaia_latency_seconds_sum 5.6\n"
      "gaia_latency_seconds_count 4\n"
      "# TYPE gaia_loss gauge\n"
      "gaia_loss 0.5\n"
      "# HELP gaia_requests_total Requests served\n"
      "# TYPE gaia_requests_total counter\n"
      "gaia_requests_total 3\n";
  EXPECT_EQ(registry.ExportPrometheus(), expected);
}

TEST_F(ObsTest, JsonExportMatchesGolden) {
  MetricsRegistry registry;
  registry.GetCounter("gaia_requests_total").Increment(3);
  registry.GetGauge("gaia_loss").Set(0.5);
  Histogram& hist = registry.GetHistogram("gaia_latency_seconds", {0.1, 1.0});
  hist.Observe(0.05);
  hist.Observe(5.0);
  const std::string expected =
      "{\"counters\":{\"gaia_requests_total\":3},"
      "\"gauges\":{\"gaia_loss\":0.5},"
      "\"histograms\":{\"gaia_latency_seconds\":"
      "{\"bounds\":[0.1,1],\"counts\":[1,0,1],\"count\":2,\"sum\":5.05}}}";
  EXPECT_EQ(registry.ExportJson(), expected);
}

// ---------------------------------------------------------------------------
// Prometheus text-format edge cases (exposition format 0.0.4)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PrometheusHelpEscapesBackslashAndNewline) {
  MetricsRegistry registry;
  registry.GetCounter("gaia_weird_total", "line1\nline2 has a \\ slash")
      .Increment();
  const std::string out = registry.ExportPrometheus();
  // HELP text must escape backslash and newline per the exposition format;
  // the literal newline must NOT appear inside the HELP line.
  EXPECT_NE(out.find("# HELP gaia_weird_total line1\\nline2 has a \\\\ slash"),
            std::string::npos)
      << out;
}

TEST_F(ObsTest, PrometheusSanitizesInvalidMetricNames) {
  MetricsRegistry registry;
  registry.GetCounter("gaia.dotted-name", "").Increment(2);
  registry.GetCounter("0starts_with_digit", "").Increment(1);
  const std::string out = registry.ExportPrometheus();
  // Invalid chars map to '_' at export time; a leading digit is escaped too.
  EXPECT_NE(out.find("gaia_dotted_name 2"), std::string::npos) << out;
  EXPECT_NE(out.find("_starts_with_digit 1"), std::string::npos) << out;
  EXPECT_EQ(out.find("gaia.dotted-name"), std::string::npos) << out;
}

TEST_F(ObsTest, PrometheusWellFormedNamesAreByteIdentical) {
  // Sanitization must be a no-op for names already matching the grammar:
  // the golden-export byte contract depends on it.
  MetricsRegistry registry;
  registry.GetCounter("gaia_ok_total", "fine").Increment();
  const std::string out = registry.ExportPrometheus();
  EXPECT_EQ(out,
            "# HELP gaia_ok_total fine\n"
            "# TYPE gaia_ok_total counter\n"
            "gaia_ok_total 1\n");
}

TEST_F(ObsTest, PrometheusHistogramInfBucketEqualsCount) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("gaia_h_seconds", {0.5});
  hist.Observe(-1.0);  // below every bound: lands in the first bucket
  hist.Observe(0.25);
  hist.Observe(100.0);  // above every bound: only +Inf catches it
  const std::string out = registry.ExportPrometheus();
  // The +Inf cumulative bucket must equal _count, and _sum is the exact
  // running total including out-of-range observations.
  EXPECT_NE(out.find("gaia_h_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("gaia_h_seconds_count 3"), std::string::npos) << out;
  EXPECT_NE(out.find("gaia_h_seconds_sum 99.25"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Empty-process exports (regression: tools --empty must emit valid docs)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, EmptyTraceBufferDumpsWellFormedChromeTrace) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  std::ostringstream os;
  buffer.DumpChromeTrace(os);
  const std::string json = os.str();
  // Zero spans must still produce a complete document (trace_dump --empty).
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find(",]"), std::string::npos) << "trailing comma: " << json;
}

TEST_F(ObsTest, EmptyRegistryExportsAreWellFormed) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ExportPrometheus(), "");
  EXPECT_EQ(registry.ExportJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST_F(ObsTest, NestedSpansRecordParentChildRelationship) {
  obs::SetLevel(Level::kOn);
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  {
    TraceSpan outer("test.outer");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan inner("test.inner");
      ASSERT_TRUE(inner.active());
      EXPECT_NE(TraceSpan::CurrentSpanId(), 0u);
    }
  }
  EXPECT_EQ(TraceSpan::CurrentSpanId(), 0u);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes (and records) first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.dur_ns, outer.dur_ns);
}

TEST_F(ObsTest, SpansInParallelForParentPerThread) {
  obs::SetLevel(Level::kOn);
  util::ThreadPool::SetGlobalThreads(4);
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  {
    TraceSpan outer("test.batch");
    util::ParallelFor(64, [&](int64_t) { TraceSpan span("test.item"); });
  }
  uint64_t outer_id = 0;
  int items = 0;
  for (const SpanRecord& span : buffer.Snapshot()) {
    if (std::string(span.name) == "test.batch") outer_id = span.id;
  }
  ASSERT_NE(outer_id, 0u);
  for (const SpanRecord& span : buffer.Snapshot()) {
    if (std::string(span.name) != "test.item") continue;
    ++items;
    // Items on the calling thread nest under the batch span; items on
    // worker threads are top-level in their lane (parent 0). Either way
    // they never chain to each other.
    EXPECT_TRUE(span.parent_id == outer_id || span.parent_id == 0u)
        << "item parented to " << span.parent_id;
  }
  EXPECT_EQ(items, 64);
  const auto stats = buffer.AggregateByName();
  EXPECT_EQ(stats.at("test.item").count, 64u);
  EXPECT_EQ(stats.at("test.batch").count, 1u);
}

TEST_F(ObsTest, RingWrapsKeepingNewestAndExactAggregates) {
  obs::SetLevel(Level::kOn);
  TraceBuffer buffer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord record;
    record.name = "test.wrap";
    record.start_ns = static_cast<uint64_t>(i);
    record.dur_ns = 1000000;  // 1ms
    record.id = static_cast<uint64_t>(i + 1);
    buffer.Record(record);
  }
  EXPECT_EQ(buffer.dropped(), 6u);
  EXPECT_EQ(buffer.total_recorded(), 10u);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-to-newest: records 6..9 survive.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_ns, 6 + i);
  }
  // The aggregate saw all ten spans, wrap or not.
  EXPECT_EQ(buffer.AggregateByName().at("test.wrap").count, 10u);
  EXPECT_NEAR(buffer.AggregateByName().at("test.wrap").total_ms, 10.0, 1e-9);
}

TEST_F(ObsTest, ChromeTraceDumpIsWellFormed) {
  obs::SetLevel(Level::kOn);
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  {
    TraceSpan outer("test.dump");
    TraceSpan inner("test.dump_inner");
  }
  std::ostringstream os;
  buffer.DumpChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.dump\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// Level gating / disabled mode
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  obs::SetLevel(Level::kOff);
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  {
    TraceSpan span("test.disabled");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(TraceSpan::CurrentSpanId(), 0u);
    GAIA_OBS_SPAN("test.disabled_macro");
    GAIA_OBS_SPAN_DETAIL("test.disabled_detail");
  }
  EXPECT_EQ(buffer.Snapshot().size(), 0u);
  EXPECT_EQ(buffer.total_recorded(), 0u);
  EXPECT_FALSE(obs::Enabled());
  EXPECT_FALSE(obs::DetailEnabled());
}

TEST_F(ObsTest, DetailSpansOnlyRecordAtDetailLevel) {
  TraceBuffer& buffer = TraceBuffer::Global();
  obs::SetLevel(Level::kOn);
  buffer.Clear();
  { TraceSpan span("test.detail", Level::kDetail); }
  EXPECT_EQ(buffer.Snapshot().size(), 0u);
  obs::SetLevel(Level::kDetail);
  { TraceSpan span("test.detail", Level::kDetail); }
  EXPECT_EQ(buffer.Snapshot().size(), 1u);
}

// ---------------------------------------------------------------------------
// Observability must not perturb model numerics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ForwardIsBitwiseIdenticalWithObservabilityOnAndOff) {
  data::MarketConfig market_cfg;
  market_cfg.num_shops = 40;
  market_cfg.seed = 17;
  auto market = data::MarketSimulator(market_cfg).Generate();
  auto dataset = std::move(data::ForecastDataset::Create(
                               market.value(), data::DatasetOptions{}))
                     .value();
  std::vector<int32_t> nodes(dataset.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);

  auto run = [&]() {
    core::GaiaConfig cfg;
    cfg.channels = 8;
    cfg.tel_groups = 2;
    cfg.seed = 3;
    auto model = std::move(core::GaiaModel::Create(
                               cfg, dataset.history_len(), dataset.horizon(),
                               dataset.temporal_dim(), dataset.static_dim()))
                     .value();
    std::vector<float> flat;
    for (const autograd::Var& p :
         model->PredictNodes(dataset, nodes, /*training=*/false, nullptr)) {
      const float* data = p->value.data();
      flat.insert(flat.end(), data, data + p->value.size());
    }
    return flat;
  };

  obs::SetLevel(Level::kOff);
  const std::vector<float> off = run();
  obs::SetLevel(Level::kDetail);  // maximum instrumentation
  const std::vector<float> detail = run();
  ASSERT_EQ(off.size(), detail.size());
  for (size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i], detail[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace gaia
