// Golden-regression layer: recomputes the fixed-seed fixture outputs from
// tests/golden_common.h and compares them against the committed reference
// files in tests/golden/. A failure here means the numerics changed — either
// a bug, or an intentional change that must be re-blessed by running
// tools/golden_dump and committing the refreshed files (see docs/TESTING.md).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tests/golden_common.h"

#ifndef GAIA_GOLDEN_DIR
#error "GAIA_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace gaia {
namespace {

constexpr float kTolerance = 1e-6f;

TEST(GoldenTest, OutputsMatchCommittedReferences) {
  const std::vector<golden::NamedTensor> computed =
      golden::ComputeGoldenOutputs();
  ASSERT_FALSE(computed.empty());
  for (const golden::NamedTensor& fresh : computed) {
    SCOPED_TRACE(fresh.name);
    const std::string path =
        std::string(GAIA_GOLDEN_DIR) + "/" + fresh.name + ".txt";
    Tensor reference;
    ASSERT_TRUE(golden::ReadTensorFile(path, &reference))
        << "missing or unparsable golden file " << path
        << " — regenerate with ./build/tools/golden_dump";
    ASSERT_EQ(reference.shape(), fresh.value.shape());
    float max_diff = 0.0f;
    for (int64_t i = 0; i < reference.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::fabs(reference.data()[i] - fresh.value.data()[i]));
    }
    EXPECT_LE(max_diff, kTolerance)
        << fresh.name << " drifted from its committed golden by " << max_diff;
  }
}

// The fixture itself must be reproducible within a process — otherwise a
// golden mismatch could be blamed on the fixture instead of the model.
TEST(GoldenTest, FixtureIsReproducible) {
  const std::vector<golden::NamedTensor> a = golden::ComputeGoldenOutputs();
  const std::vector<golden::NamedTensor> b = golden::ComputeGoldenOutputs();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].name);
    ASSERT_EQ(a[i].name, b[i].name);
    ASSERT_TRUE(a[i].value.SameShape(b[i].value));
    for (int64_t j = 0; j < a[i].value.size(); ++j) {
      ASSERT_EQ(a[i].value.data()[j], b[i].value.data()[j]);
    }
  }
}

}  // namespace
}  // namespace gaia
