// Scenario / chaos test layer: adversarial market regimes and the
// drift-triggered retraining loop they exercise end to end.
//
// Three families live here:
//  * RegimeScriptTest    — the spec grammar and its seeded determinism;
//  * RegimeMarketTest    — statistical invariants of shocked markets
//                          (bitwise no-op when off, bitwise reproducible
//                          when on, shock magnitudes within tolerance);
//  * DriftScenarioTest   — the closed loop: a scripted regime onset makes
//                          gaia_drift_score spike, the MonthlyScheduler
//                          trigger fires an early retrain, cooldown
//                          suppresses the next one, and serving answers
//                          every probe request throughout;
//  * QuantileBandTest    — calibrated p10/p50/p90 bands on (degraded)
//                          serving answers, identical across shard counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/probabilistic_gaia.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "data/regime.h"
#include "obs/metrics.h"
#include "serving/checkpoint_store.h"
#include "serving/model_server.h"
#include "serving/monthly_scheduler.h"
#include "serving/sharded_server.h"
#include "util/fault_injector.h"

namespace gaia {
namespace {

std::string TempPath(const std::string& stem) {
  return "/tmp/gaia_scenario_" + stem + "_" + std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// RegimeScript: spec grammar
// ---------------------------------------------------------------------------

TEST(RegimeScriptTest, SpecRoundTripsThroughParse) {
  const std::string spec =
      "seed:123;demand_shock:month=8,magnitude=-0.5;"
      "supplier_failure:month=6,fraction=0.25,magnitude=0.80000000000000004;"
      "festival_shift:delta=1;coldstart_flood:month=10,fraction=0.2";
  auto script = data::RegimeScript::Parse(spec);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script.value().seed(), 123u);
  ASSERT_EQ(script.value().events().size(), 4u);
  // ToString is the canonical form; parsing it again is a fixed point.
  const std::string canonical = script.value().ToString();
  auto reparsed = data::RegimeScript::Parse(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().ToString(), canonical);
  // Field-level spot checks survive the round trip.
  const auto& events = reparsed.value().events();
  EXPECT_EQ(events[0].kind, data::RegimeEventKind::kDemandShock);
  EXPECT_EQ(events[0].month, 8);
  EXPECT_DOUBLE_EQ(events[0].magnitude, -0.5);
  EXPECT_EQ(events[1].kind, data::RegimeEventKind::kSupplierFailure);
  EXPECT_DOUBLE_EQ(events[1].fraction, 0.25);
  EXPECT_EQ(events[2].delta, 1);
  EXPECT_EQ(events[3].month, 10);
}

TEST(RegimeScriptTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(data::RegimeScript::Parse("earthquake:month=3").ok());
  EXPECT_FALSE(data::RegimeScript::Parse("demand_shock:depth=3").ok());
  EXPECT_FALSE(data::RegimeScript::Parse("demand_shock:month=abc").ok());
  EXPECT_FALSE(
      data::RegimeScript::Parse("demand_shock:magnitude=nope").ok());
  EXPECT_FALSE(data::RegimeScript::Parse("seed:notanumber").ok());
  // Range checks: a demand wipe-out and out-of-[0,1] fractions are invalid.
  EXPECT_FALSE(
      data::RegimeScript::Parse("demand_shock:magnitude=-1.5").ok());
  EXPECT_FALSE(
      data::RegimeScript::Parse("supplier_failure:fraction=1.5").ok());
  EXPECT_FALSE(
      data::RegimeScript::Parse("supplier_failure:magnitude=2").ok());
  EXPECT_FALSE(
      data::RegimeScript::Parse("coldstart_flood:fraction=-0.1").ok());
  // The empty spec is the empty script, not an error.
  auto empty = data::RegimeScript::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(RegimeScriptTest, RandomScriptIsSeedDeterministic) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    data::RegimeScript a = data::RegimeScript::Random(seed, 15);
    data::RegimeScript b = data::RegimeScript::Random(seed, 15);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    EXPECT_EQ(a.seed(), seed);
    EXPECT_GE(a.events().size(), 1u);
    EXPECT_LE(a.events().size(), 3u);
    // The spec replays through Parse — the chaos CI leg depends on this.
    auto reparsed = data::RegimeScript::Parse(a.ToString());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(reparsed.value().ToString(), a.ToString());
  }
  EXPECT_NE(data::RegimeScript::Random(1, 15).ToString(),
            data::RegimeScript::Random(2, 15).ToString());
}

// ---------------------------------------------------------------------------
// Regime-shocked markets: statistical invariants
// ---------------------------------------------------------------------------

class RegimeMarketTest : public ::testing::Test {
 protected:
  data::MarketConfig BaseConfig() const {
    data::MarketConfig cfg;
    cfg.num_shops = 80;
    cfg.history_months = 12;
    cfg.seed = 29;
    return cfg;
  }
  data::MarketData Generate(const data::RegimeScript& regime) const {
    auto market = data::MarketSimulator(BaseConfig(), regime).Generate();
    EXPECT_TRUE(market.ok()) << market.status().ToString();
    return std::move(market).value();
  }
  data::RegimeScript MustParse(const std::string& spec) const {
    auto script = data::RegimeScript::Parse(spec);
    EXPECT_TRUE(script.ok()) << script.status().ToString();
    return std::move(script).value();
  }
};

void ExpectShopsBitwiseEqual(const std::vector<data::Shop>& a,
                             const std::vector<data::Shop>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].birth_month, b[v].birth_month) << "shop " << v;
    EXPECT_EQ(a[v].age_months, b[v].age_months) << "shop " << v;
    ASSERT_EQ(a[v].gmv.size(), b[v].gmv.size());
    for (size_t m = 0; m < a[v].gmv.size(); ++m) {
      // Bitwise: EXPECT_EQ on doubles, not EXPECT_NEAR.
      EXPECT_EQ(a[v].gmv[m], b[v].gmv[m]) << "shop " << v << " month " << m;
      EXPECT_EQ(a[v].orders[m], b[v].orders[m]);
      EXPECT_EQ(a[v].customers[m], b[v].customers[m]);
    }
  }
}

TEST_F(RegimeMarketTest, EmptyRegimeIsBitwiseNoOp) {
  auto plain = data::MarketSimulator(BaseConfig()).Generate();
  ASSERT_TRUE(plain.ok());
  data::MarketData shocked = Generate(data::RegimeScript());
  ExpectShopsBitwiseEqual(plain.value().shops, shocked.shops);
  EXPECT_EQ(plain.value().graph.num_edges(), shocked.graph.num_edges());
  EXPECT_EQ(plain.value().supply_links.size(), shocked.supply_links.size());
}

TEST_F(RegimeMarketTest, SeededRegimeIsBitwiseReproducible) {
  const auto script = MustParse(
      "seed:9;demand_shock:month=5,magnitude=0.4;"
      "supplier_failure:month=3,fraction=0.3,magnitude=0.7;"
      "coldstart_flood:month=8,fraction=0.2");
  data::MarketData a = Generate(script);
  data::MarketData b = Generate(script);
  ExpectShopsBitwiseEqual(a.shops, b.shops);
}

TEST_F(RegimeMarketTest, DemandShockScalesVolumeFromShockMonth) {
  const int shock_month = 6;
  const double magnitude = -0.5;
  data::MarketData base = Generate(data::RegimeScript());
  data::MarketData shocked =
      Generate(MustParse("seed:1;demand_shock:month=6,magnitude=-0.5"));
  ASSERT_EQ(base.shops.size(), shocked.shops.size());
  for (size_t v = 0; v < base.shops.size(); ++v) {
    const auto& b = base.shops[v];
    const auto& s = shocked.shops[v];
    for (size_t m = 0; m < b.gmv.size(); ++m) {
      if (static_cast<int>(m) < shock_month) {
        EXPECT_EQ(s.gmv[m], b.gmv[m]) << "pre-shock month " << m;
      } else {
        // The step is exactly multiplicative: (1 + magnitude) per month.
        EXPECT_NEAR(s.gmv[m], b.gmv[m] * (1.0 + magnitude),
                    1e-9 * (1.0 + std::abs(b.gmv[m])))
            << "shop " << v << " month " << m;
      }
    }
  }
}

TEST_F(RegimeMarketTest, SupplierFailureCascadesOneHopDownstream) {
  const int month = 4;
  data::MarketData base = Generate(data::RegimeScript());
  data::MarketData shocked = Generate(
      MustParse("seed:3;supplier_failure:month=4,fraction=0.5,magnitude=0.8"));
  size_t suppliers = 0;
  for (const auto& shop : base.shops) suppliers += shop.is_supplier ? 1 : 0;
  const auto expected_failed =
      static_cast<size_t>(std::ceil(0.5 * static_cast<double>(suppliers)));

  size_t failed = 0, cascaded = 0;
  for (size_t v = 0; v < base.shops.size(); ++v) {
    const auto& b = base.shops[v];
    const auto& s = shocked.shops[v];
    // Classify the shop by its post-month scale factor.
    double ratio = 1.0;
    for (size_t m = static_cast<size_t>(month); m < b.gmv.size(); ++m) {
      if (b.gmv[m] > 0.0) {
        ratio = s.gmv[m] / b.gmv[m];
        break;
      }
    }
    if (std::abs(ratio - 0.2) < 1e-9) {
      ++failed;
      EXPECT_TRUE(b.is_supplier) << "only suppliers take the full hit";
    } else if (std::abs(ratio - 0.6) < 1e-9) {
      ++cascaded;  // one hop downstream at half strength: 1 - 0.8/2
    } else {
      EXPECT_NEAR(ratio, 1.0, 1e-9) << "shop " << v
                                    << " saw an unexpected factor " << ratio;
    }
    // Pre-failure months are untouched for everyone.
    for (int m = 0; m < month; ++m) {
      EXPECT_EQ(s.gmv[static_cast<size_t>(m)],
                b.gmv[static_cast<size_t>(m)]);
    }
  }
  EXPECT_EQ(failed, expected_failed);
  EXPECT_GT(cascaded, 0u) << "the failure must propagate along supply links";
}

TEST_F(RegimeMarketTest, FestivalShiftMovesTheSpikeCalendarMonth) {
  data::MarketData base = Generate(data::RegimeScript());
  data::MarketData shifted = Generate(MustParse("festival_shift:delta=1"));
  EXPECT_EQ(base.config.festival_calendar_month, 10);
  EXPECT_EQ(shifted.config.festival_calendar_month, 11);
  // Same RNG stream, different spike month. For *retailers* the festival is
  // a purely additive per-month term: months whose calendar is neither the
  // old nor the new festival are bitwise identical, the old festival month
  // deflates, the new one inflates. (Suppliers aggregate downstream demand
  // over their lead window, so the shift legitimately moves their other
  // months too — they are excluded from the bitwise check.)
  double base_old = 0.0, shifted_old = 0.0;
  double base_new = 0.0, shifted_new = 0.0;
  for (size_t v = 0; v < base.shops.size(); ++v) {
    const auto& b = base.shops[v];
    const auto& s = shifted.shops[v];
    if (b.is_supplier) continue;
    for (size_t m = 0; m < b.gmv.size(); ++m) {
      const int cal = base.CalendarMonth(static_cast<int>(m));
      if (cal == 10) {
        base_old += b.gmv[m];
        shifted_old += s.gmv[m];
      } else if (cal == 11) {
        base_new += b.gmv[m];
        shifted_new += s.gmv[m];
      } else {
        EXPECT_EQ(s.gmv[m], b.gmv[m]) << "non-festival month " << m;
      }
    }
  }
  EXPECT_LT(shifted_old, base_old);
  EXPECT_GT(shifted_new, base_new);
}

TEST_F(RegimeMarketTest, ColdstartFloodRebirthsSeededShopFraction) {
  const int flood_month = 8;
  data::MarketData base = Generate(data::RegimeScript());
  data::MarketData shocked =
      Generate(MustParse("seed:4;coldstart_flood:month=8,fraction=0.25"));
  size_t flooded = 0;
  for (size_t v = 0; v < base.shops.size(); ++v) {
    const auto& b = base.shops[v];
    const auto& s = shocked.shops[v];
    if (s.birth_month == b.birth_month) {
      // Untouched shop (not picked, or already younger than the flood).
      for (size_t m = 0; m < b.gmv.size(); ++m) {
        EXPECT_EQ(s.gmv[m], b.gmv[m]);
      }
      continue;
    }
    ++flooded;
    EXPECT_LT(b.birth_month, flood_month) << "only older shops re-birth";
    EXPECT_EQ(s.birth_month, flood_month);
    EXPECT_EQ(s.age_months, base.config.history_months - flood_month);
    for (int m = 0; m < flood_month; ++m) {
      EXPECT_EQ(s.gmv[static_cast<size_t>(m)], 0.0);
      EXPECT_EQ(s.orders[static_cast<size_t>(m)], 0.0);
      EXPECT_EQ(s.customers[static_cast<size_t>(m)], 0.0);
    }
    // Post-flood history is untouched.
    for (size_t m = static_cast<size_t>(flood_month); m < b.gmv.size();
         ++m) {
      EXPECT_EQ(s.gmv[m], b.gmv[m]);
    }
  }
  EXPECT_GT(flooded, 0u);
  EXPECT_LE(flooded, static_cast<size_t>(
                         std::floor(0.25 * base.shops.size())));
  // The shocked market still makes a valid dataset (cold-start shops have
  // >= 1 observed month by construction).
  auto ds = data::ForecastDataset::Create(shocked, data::DatasetOptions{});
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
}

TEST_F(RegimeMarketTest, AppendingAnEventKeepsEarlierVictimsStable) {
  // Per-event RNG streams are split in event order, so extending a script
  // never changes which shops an earlier event hit.
  data::MarketData only_flood =
      Generate(MustParse("seed:6;coldstart_flood:month=6,fraction=0.2"));
  data::MarketData flood_then_shock = Generate(MustParse(
      "seed:6;coldstart_flood:month=6,fraction=0.2;"
      "demand_shock:month=0,magnitude=1.0"));
  ASSERT_EQ(only_flood.shops.size(), flood_then_shock.shops.size());
  for (size_t v = 0; v < only_flood.shops.size(); ++v) {
    EXPECT_EQ(only_flood.shops[v].birth_month,
              flood_then_shock.shops[v].birth_month)
        << "appending demand_shock changed flood victim set at shop " << v;
  }
}

// ---------------------------------------------------------------------------
// Drift-triggered retraining: the closed loop under a scripted regime onset
// ---------------------------------------------------------------------------

class DriftScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().Reset(); }
  void TearDown() override { util::FaultInjector::Global().Reset(); }

  /// Scheduler config shared by the chaos scenarios: small market, short
  /// retrains, checkpoint store, and a demand-collapse regime that arrives
  /// at `onset` (clean baseline cycles before it).
  serving::MonthlyScheduler::Config ChaosConfig(const std::string& dir,
                                                int onset,
                                                double threshold) const {
    serving::MonthlyScheduler::Config cfg;
    cfg.market.num_shops = 120;
    cfg.market.history_months = 12;
    cfg.market.seed = 17;
    // Flatten the calendar so clean-cycle MAE is stable: with the festival
    // spike and seasonality on, the forecast window sweeping across the
    // spike dominates cycle-to-cycle MAE and would drown the regime signal.
    cfg.market.festival_boost = 0.0;
    cfg.market.seasonal_amplitude = 0.0;
    cfg.offline.model.channels = 8;
    cfg.offline.model.tel_groups = 2;
    cfg.offline.model.num_layers = 1;
    cfg.offline.train.max_epochs = 4;
    cfg.offline.train.eval_every = 4;
    cfg.server.checkpoint_retry.sleep = false;
    cfg.num_cycles = 4;
    cfg.checkpoint_dir = dir;
    auto regime = data::RegimeScript::Parse(
        "seed:5;demand_shock:month=0,magnitude=4.0");
    EXPECT_TRUE(regime.ok());
    cfg.regime = regime.value();
    cfg.regime_from_cycle = onset;
    cfg.drift_trigger_threshold = threshold;
    cfg.drift_retrain_cooldown_cycles = 2;
    return cfg;
  }

  std::vector<serving::MonthlyScheduler::CycleReport> Run(
      const serving::MonthlyScheduler::Config& cfg) {
    auto reports = serving::MonthlyScheduler(cfg).Run();
    EXPECT_TRUE(reports.ok()) << reports.status().ToString();
    return std::move(reports).value();
  }
};

TEST_F(DriftScenarioTest, RegimeOnsetFiresTriggerAndCooldownSuppresses) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t fired_before =
      registry.CounterValue("gaia_drift_retrains_total");
  const uint64_t suppressed_before =
      registry.CounterValue("gaia_drift_retrains_suppressed_total");

  const std::string dir = TempPath("chaos");
  std::system(("rm -rf " + dir).c_str());
  auto reports = Run(ChaosConfig(dir, /*onset=*/2, /*threshold=*/0.5));
  ASSERT_EQ(reports.size(), 4u);
  const auto& r2 = reports[2];
  const auto& r3 = reports[3];

  // Clean baseline cycles: no trigger activity before the regime arrives.
  for (int c : {0, 1}) {
    EXPECT_FALSE(reports[static_cast<size_t>(c)].drift_triggered)
        << "cycle " << c;
    EXPECT_TRUE(reports[static_cast<size_t>(c)].healthy);
  }

  // Onset cycle: the 5x demand collapse blows the drift score past the
  // threshold, the early retrain fires and its weights are adopted.
  EXPECT_GT(r2.drift_score, 0.5) << "demand shock must register as drift";
  EXPECT_TRUE(r2.drift_triggered);
  EXPECT_FALSE(r2.drift_suppressed);
  EXPECT_TRUE(r2.drift_retrained);
  EXPECT_GT(r2.post_retrain_mae, 0.0);
  EXPECT_TRUE(r2.healthy) << r2.error.ToString();

  // Availability invariant: the probe hammered the incumbent server while
  // the retrain ran, and every single request came back with a full
  // forecast — Predict never fails mid-retrain.
  EXPECT_GT(r2.during_retrain_requests, 0);
  EXPECT_EQ(r2.during_retrain_answered, r2.during_retrain_requests);

  // The shocked regime persists; the next trigger lands inside the
  // cooldown window and is suppressed instead of retraining again.
  EXPECT_TRUE(r3.drift_triggered)
      << "score " << r3.drift_score << " baseline " << r3.drift_baseline_mae;
  EXPECT_TRUE(r3.drift_suppressed);
  EXPECT_FALSE(r3.drift_retrained);
  EXPECT_EQ(r3.during_retrain_requests, 0);

  // Counters moved exactly once each, and every cycle kept serving.
  EXPECT_EQ(registry.CounterValue("gaia_drift_retrains_total"),
            fired_before + 1);
  EXPECT_EQ(registry.CounterValue("gaia_drift_retrains_suppressed_total"),
            suppressed_before + 1);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.served) << "cycle " << report.cycle;
  }

  // The whole chaos run replays bitwise from the same config (the regime
  // seed is baked into the spec, every other draw is seeded too).
  const std::string dir2 = TempPath("chaos_replay");
  std::system(("rm -rf " + dir2).c_str());
  auto replay = Run(ChaosConfig(dir2, 2, 0.5));
  ASSERT_EQ(replay.size(), reports.size());
  for (size_t c = 0; c < reports.size(); ++c) {
    EXPECT_EQ(replay[c].online.overall.mae, reports[c].online.overall.mae)
        << "cycle " << c;
    EXPECT_EQ(replay[c].drift_score, reports[c].drift_score);
    EXPECT_EQ(replay[c].post_retrain_mae, reports[c].post_retrain_mae);
    EXPECT_EQ(replay[c].drift_triggered, reports[c].drift_triggered);
    EXPECT_EQ(replay[c].drift_suppressed, reports[c].drift_suppressed);
    EXPECT_EQ(replay[c].drift_retrained, reports[c].drift_retrained);
  }

  std::system(("rm -rf " + dir + " " + dir2).c_str());
}

TEST_F(DriftScenarioTest, DisabledTriggerLeavesScheduleUntouched) {
  const std::string dir_on = TempPath("trig_on");
  const std::string dir_off = TempPath("trig_off");
  std::system(("rm -rf " + dir_on + " " + dir_off).c_str());

  auto enabled = Run(ChaosConfig(dir_on, 2, /*threshold=*/0.5));
  auto disabled = Run(ChaosConfig(dir_off, 2, /*threshold=*/0.0));
  ASSERT_EQ(enabled.size(), 4u);
  ASSERT_EQ(disabled.size(), 4u);

  for (const auto& report : disabled) {
    EXPECT_FALSE(report.drift_triggered);
    EXPECT_FALSE(report.drift_suppressed);
    EXPECT_FALSE(report.drift_retrained);
    EXPECT_EQ(report.during_retrain_requests, 0);
    EXPECT_TRUE(report.served);
  }
  // Threshold 0 is bitwise identical to the trigger never having existed:
  // up to and including the onset cycle's *measurement*, both runs agree
  // exactly (the retrain only changes what later cycles serve).
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(disabled[c].online.overall.mae, enabled[c].online.overall.mae)
        << "cycle " << c;
    EXPECT_EQ(disabled[c].drift_score, enabled[c].drift_score);
    EXPECT_EQ(disabled[c].drift_baseline_mae, enabled[c].drift_baseline_mae);
  }
  std::system(("rm -rf " + dir_on + " " + dir_off).c_str());
}

TEST_F(DriftScenarioTest, RolledBackCycleNeverEntersDriftWindow) {
  // Cycle 1's checkpoint publish corrupts (skip=1 spends cycle 0's write
  // first); the cycle serves cycle 0's weights and rolls back. Its MAE
  // reflects stale weights — the regression this pins is that it must NOT
  // poison the drift baseline of the cycles after it.
  auto& faults = util::FaultInjector::Global();
  ASSERT_TRUE(
      faults.ArmFromString("checkpoint.write:corrupt:1.0:1:1").ok());

  const std::string dir = TempPath("rollback");
  std::system(("rm -rf " + dir).c_str());
  serving::MonthlyScheduler::Config cfg;
  cfg.market.num_shops = 40;
  cfg.market.history_months = 12;
  cfg.market.seed = 17;
  cfg.offline.model.channels = 8;
  cfg.offline.model.tel_groups = 2;
  cfg.offline.model.num_layers = 1;
  cfg.offline.train.max_epochs = 2;
  cfg.offline.train.eval_every = 2;
  cfg.server.checkpoint_retry.sleep = false;
  cfg.num_cycles = 4;
  cfg.checkpoint_dir = dir;
  auto reports = serving::MonthlyScheduler(cfg).Run();
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports.value().size(), 4u);
  const auto& r = reports.value();

  EXPECT_EQ(faults.fired_count("checkpoint.write"), 1);
  EXPECT_TRUE(r[0].healthy);
  EXPECT_TRUE(r[1].rolled_back) << r[1].error.ToString();
  EXPECT_FALSE(r[1].healthy);
  EXPECT_TRUE(r[1].served);
  EXPECT_TRUE(r[2].healthy);

  // Exact window sequence: the rolled-back cycle is scored (against mae0)
  // but skipped by the window, so cycle 2's baseline is still mae0 alone
  // and cycle 3's is mean(mae0, mae2) — mae1 appears nowhere.
  EXPECT_DOUBLE_EQ(r[1].drift_baseline_mae, r[0].online.overall.mae);
  EXPECT_DOUBLE_EQ(r[2].drift_baseline_mae, r[0].online.overall.mae);
  EXPECT_DOUBLE_EQ(
      r[3].drift_baseline_mae,
      (r[0].online.overall.mae + r[2].online.overall.mae) / 2.0);

  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------------
// Quantile bands: calibrated uncertainty on (degraded) serving answers
// ---------------------------------------------------------------------------

class QuantileBandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    data::MarketConfig cfg;
    cfg.num_shops = 50;
    cfg.history_months = 12;
    cfg.seed = 11;
    auto market = data::MarketSimulator(cfg).Generate();
    ASSERT_TRUE(market.ok());
    auto ds = data::ForecastDataset::Create(market.value(),
                                            data::DatasetOptions{});
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_shared<data::ForecastDataset>(std::move(ds).value());

    core::GaiaConfig model_cfg;
    model_cfg.channels = 8;
    model_cfg.tel_groups = 2;
    model_cfg.num_layers = 1;
    auto model = core::GaiaModel::Create(
        model_cfg, dataset_->history_len(), dataset_->horizon(),
        dataset_->temporal_dim(), dataset_->static_dim());
    ASSERT_TRUE(model.ok());
    model_ = std::shared_ptr<core::GaiaModel>(std::move(model).value());
  }
  void TearDown() override { util::FaultInjector::Global().Reset(); }

  /// A synthetic table with constant normalized sigma: bands become a pure
  /// function of the dataset's per-shop scale, which the assertions can pin
  /// exactly without a trained probabilistic model.
  core::QuantileBandTable FlatTable(double sigma, double scale) const {
    core::QuantileBandTable table;
    table.scale = scale;
    table.sigma.assign(
        static_cast<size_t>(dataset_->num_nodes()),
        std::vector<double>(static_cast<size_t>(dataset_->horizon()),
                            sigma));
    return table;
  }

  std::shared_ptr<data::ForecastDataset> dataset_;
  std::shared_ptr<core::GaiaModel> model_;
};

TEST_F(QuantileBandTest, CalibratedBandsCoverHeldOutTargets) {
  core::ProbabilisticGaia::Config cfg;
  cfg.channels = 8;
  cfg.tel_groups = 2;
  cfg.num_layers = 1;
  auto model = core::ProbabilisticGaia::Create(
      cfg, dataset_->history_len(), dataset_->horizon(),
      dataset_->temporal_dim(), dataset_->static_dim());
  ASSERT_TRUE(model.ok());
  core::TrainConfig tc;
  tc.max_epochs = 25;
  tc.eval_every = 25;
  tc.patience = 100;
  core::Trainer(tc).Fit(model.value().get(), *dataset_);

  auto table = core::CalibrateQuantileBands(
      model.value().get(), *dataset_, dataset_->val_nodes(), 0.8);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_GT(table.value().scale, 0.0);
  EXPECT_FALSE(table.value().empty());

  // Split-conformal guarantee: empirical coverage on held-out test nodes
  // lands near the calibrated 0.8 (finite-sample slack both ways).
  const auto& nodes = dataset_->test_nodes();
  auto dists = model.value()->PredictDistribution(*dataset_, nodes);
  int covered = 0, total = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Tensor& target = dataset_->target(nodes[i]);
    for (int64_t h = 0; h < target.size(); ++h) {
      const double width =
          table.value().scale * dists[i].stddev.at(h);
      covered += std::abs(target.at(h) - dists[i].mean.at(h)) <= width;
      ++total;
    }
  }
  const double coverage = static_cast<double>(covered) / total;
  EXPECT_GE(coverage, 0.6) << "bands are too narrow";
  EXPECT_LE(coverage, 0.99) << "bands are vacuously wide";

  // Degenerate inputs are rejected, not mis-calibrated.
  EXPECT_FALSE(core::CalibrateQuantileBands(model.value().get(), *dataset_,
                                            {}, 0.8)
                   .ok());
  EXPECT_FALSE(core::CalibrateQuantileBands(model.value().get(), *dataset_,
                                            dataset_->val_nodes(), 1.5)
                   .ok());
}

TEST_F(QuantileBandTest, ServerWrapsPointForecastInBands) {
  serving::ModelServer plain(model_, dataset_, serving::ServerConfig{});
  serving::ModelServer banded(model_, dataset_, serving::ServerConfig{});
  banded.EnableQuantileBands(FlatTable(/*sigma=*/0.1, /*scale=*/2.0));
  EXPECT_FALSE(plain.quantile_bands_enabled());
  EXPECT_TRUE(banded.quantile_bands_enabled());

  for (int32_t shop : {0, 7, 23}) {
    auto without = plain.Predict(shop);
    auto with = banded.Predict(shop);
    // Bands never perturb the point forecast.
    ASSERT_EQ(with.gmv.size(), without.gmv.size());
    for (size_t h = 0; h < with.gmv.size(); ++h) {
      EXPECT_EQ(with.gmv[h], without.gmv[h]);
    }
    EXPECT_TRUE(without.p50.empty());
    ASSERT_EQ(with.p50.size(), with.gmv.size());
    ASSERT_EQ(with.p10.size(), with.gmv.size());
    ASSERT_EQ(with.p90.size(), with.gmv.size());
    const double width = 2.0 * 0.1 * dataset_->Denormalize(shop, 1.0);
    for (size_t h = 0; h < with.gmv.size(); ++h) {
      EXPECT_EQ(with.p50[h], with.gmv[h]);
      EXPECT_LE(with.p10[h], with.p50[h]);
      EXPECT_GE(with.p90[h], with.p50[h]);
      // Exact width: scale * sigma, denormalized; p10 floors at zero.
      EXPECT_DOUBLE_EQ(with.p90[h], with.gmv[h] + width);
      EXPECT_DOUBLE_EQ(with.p10[h], std::max(with.gmv[h] - width, 0.0));
    }
  }
}

TEST_F(QuantileBandTest, DegradedAnswersCarryInflatedBands) {
  auto& faults = util::FaultInjector::Global();
  serving::ModelServer healthy(model_, dataset_, serving::ServerConfig{});
  healthy.EnableQuantileBands(FlatTable(0.1, 2.0));
  auto model_answer = healthy.Predict(5);
  ASSERT_EQ(model_answer.served_by,
            serving::ModelServer::ServePath::kModel);

  ASSERT_TRUE(faults.ArmFromString("serving.forward:nan:1.0").ok());
  serving::ModelServer degraded(model_, dataset_, serving::ServerConfig{});
  degraded.EnableQuantileBands(FlatTable(0.1, 2.0));
  auto fallback_answer = degraded.Predict(5);
  ASSERT_EQ(fallback_answer.served_by,
            serving::ModelServer::ServePath::kFallback);
  faults.Reset();

  // A fallback answer is honest about being a fallback: same sigma table,
  // width inflated by exactly degraded_inflation (1.5 by default).
  ASSERT_EQ(fallback_answer.p90.size(), model_answer.p90.size());
  for (size_t h = 0; h < model_answer.p90.size(); ++h) {
    const double model_width = model_answer.p90[h] - model_answer.p50[h];
    const double fallback_width =
        fallback_answer.p90[h] - fallback_answer.p50[h];
    // The widths are computed as (p50 + width) - p50 around different p50s,
    // so compare with a tight relative tolerance rather than bitwise.
    EXPECT_NEAR(fallback_width, 1.5 * model_width, 1e-9 * model_width);
  }
}

TEST_F(QuantileBandTest, ShardedBandsMatchUnshardedBitwise) {
  core::QuantileBandTable table = FlatTable(0.15, 1.7);
  serving::ModelServer reference(model_, dataset_, serving::ServerConfig{});
  reference.EnableQuantileBands(table);

  serving::ShardedServerConfig sharded_cfg;
  sharded_cfg.num_shards = 2;
  serving::ShardedServer sharded(model_, dataset_, sharded_cfg);
  sharded.EnableQuantileBands(table);

  std::vector<int32_t> shops;
  for (int32_t v = 0; v < 20; ++v) shops.push_back(v);
  auto expected = reference.PredictBatch(shops);
  auto actual = sharded.PredictBatch(shops);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < shops.size(); ++i) {
    ASSERT_EQ(actual[i].p10.size(), expected[i].p10.size()) << "shop " << i;
    for (size_t h = 0; h < expected[i].p10.size(); ++h) {
      EXPECT_EQ(actual[i].p10[h], expected[i].p10[h]);
      EXPECT_EQ(actual[i].p50[h], expected[i].p50[h]);
      EXPECT_EQ(actual[i].p90[h], expected[i].p90[h]);
    }
  }
  sharded.Stop();
}

}  // namespace
}  // namespace gaia
