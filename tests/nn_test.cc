#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "autograd/grad_check.h"
#include "nn/init.h"

namespace gaia::nn {
namespace {

namespace ag = autograd;
using ag::Var;

// ---------------------------------------------------------------------------
// Module registry / checkpointing
// ---------------------------------------------------------------------------

class TinyModule : public Module {
 public:
  explicit TinyModule(Rng* rng) {
    child_ = AddModule("child", std::make_shared<Linear>(3, 2, rng));
    scale_ = AddParameter("scale", Tensor::Ones({1}));
  }
  std::shared_ptr<Linear> child_;
  Var scale_;
};

TEST(ModuleTest, CollectsParametersRecursively) {
  Rng rng(1);
  TinyModule module(&rng);
  auto named = module.NamedParameters();
  ASSERT_EQ(named.size(), 3u);  // own scale first, then child weight+bias
  EXPECT_EQ(named[0].first, "scale");
  EXPECT_EQ(named[1].first, "child.weight");
  EXPECT_EQ(named[2].first, "child.bias");
  EXPECT_EQ(module.ParameterCount(), 3 * 2 + 2 + 1);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(2);
  TinyModule module(&rng);
  for (const Var& p : module.Parameters()) {
    p->AccumulateGrad(Tensor::Ones(p->value.shape()));
  }
  module.ZeroGrad();
  for (const Var& p : module.Parameters()) {
    EXPECT_EQ(p->grad.Sum(), 0.0);
  }
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(3);
  TinyModule a(&rng);
  const std::string path = "/tmp/gaia_nn_test_checkpoint.bin";
  ASSERT_TRUE(a.Save(path).ok());

  Rng rng2(99);  // different init
  TinyModule b(&rng2);
  ASSERT_FALSE(AllClose(a.child_->Parameters()[0]->value,
                        b.child_->Parameters()[0]->value));
  ASSERT_TRUE(b.Load(path).ok());
  for (size_t i = 0; i < a.Parameters().size(); ++i) {
    EXPECT_TRUE(AllClose(a.Parameters()[i]->value, b.Parameters()[i]->value,
                         0.0f));
  }
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsMissingFile) {
  Rng rng(4);
  TinyModule module(&rng);
  EXPECT_FALSE(module.Load("/tmp/definitely_missing_gaia_ckpt.bin").ok());
}

TEST(ModuleTest, LoadRejectsStructureMismatch) {
  Rng rng(5);
  TinyModule a(&rng);
  const std::string path = "/tmp/gaia_nn_test_mismatch.bin";
  ASSERT_TRUE(a.Save(path).ok());
  Linear other(3, 2, &rng);
  Status status = other.Load(path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Init
// ---------------------------------------------------------------------------

TEST(InitTest, GlorotBounds) {
  Rng rng(6);
  Tensor w = GlorotUniform({50, 50}, 50, 50, &rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  EXPECT_GE(w.Min(), -bound);
  EXPECT_LE(w.Max(), bound);
  // Not degenerate.
  EXPECT_GT(w.Norm(), 0.1);
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(7);
  Tensor w = HeNormal({200, 200}, 200, &rng);
  const double var = w.Norm() * w.Norm() / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

// ---------------------------------------------------------------------------
// Layers
// ---------------------------------------------------------------------------

TEST(LinearTest, ShapeAndBias) {
  Rng rng(8);
  Linear layer(4, 3, &rng);
  Var x = ag::Constant(Tensor::Ones({2, 4}));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->value.dim(0), 2);
  EXPECT_EQ(y->value.dim(1), 3);
  // Both rows identical for identical inputs.
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(y->value.at(0, j), y->value.at(1, j));
  }
}

TEST(LinearTest, NoBiasHasSingleParameter) {
  Rng rng(9);
  Linear layer(4, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(10);
  auto layer = std::make_shared<Linear>(3, 2, &rng);
  auto build = [&](const std::vector<Var>&) {
    Var x = ag::Constant(Tensor::Full({2, 3}, 0.5f));
    return ag::SumAll(layer->Forward(x));
  };
  ag::GradCheckResult result =
      ag::CheckGradients(build, layer->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Conv1dLayerTest, PreservesLength) {
  Rng rng(11);
  Conv1dLayer layer(4, 6, 3, PadMode::kSame, &rng);
  Var x = ag::Constant(Tensor::Randn({10, 4}, &rng));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->value.dim(0), 10);
  EXPECT_EQ(y->value.dim(1), 6);
}

TEST(DropoutTest, InactiveWhenEvaluating) {
  Dropout dropout(0.5f);
  Rng rng(12);
  Var x = ag::Constant(Tensor::Ones({4, 4}));
  Var y = dropout.Forward(x, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(y->value, x->value));
}

TEST(DropoutTest, ScalesKeptUnitsWhenTraining) {
  Dropout dropout(0.5f);
  Rng rng(13);
  Var x = ag::Constant(Tensor::Ones({40, 40}));
  Var y = dropout.Forward(x, /*training=*/true, &rng);
  int zeros = 0, doubled = 0;
  for (int64_t i = 0; i < y->value.size(); ++i) {
    const float v = y->value.data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
      ++doubled;
    }
  }
  EXPECT_GT(zeros, 600);
  EXPECT_GT(doubled, 600);
}

TEST(EmbeddingTest, LookupReturnsRow) {
  Rng rng(14);
  Embedding emb(5, 3, &rng);
  Var row = emb.Forward(2);
  EXPECT_EQ(row->value.dim(0), 3);
  const Tensor& table = emb.Parameters()[0]->value;
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(row->value.at(j), table.at(2, j));
  }
}

TEST(EmbeddingDeathTest, OutOfRangeIdAborts) {
  Rng rng(15);
  Embedding emb(5, 3, &rng);
  EXPECT_DEATH(emb.Forward(5), "GAIA_CHECK failed");
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm(6);
  Rng rng(16);
  Var x = ag::Constant(Tensor::Randn({3, 6}, &rng, 4.0f));
  Var y = norm.Forward(x);
  for (int64_t i = 0; i < 3; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 6; ++j) mean += y->value.at(i, j);
    mean /= 6.0;
    for (int64_t j = 0; j < 6; ++j) {
      const double d = y->value.at(i, j) - mean;
      var += d * d;
    }
    var /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LstmCellTest, StateShapesAndBoundedActivations) {
  Rng rng(17);
  LstmCell cell(4, 6, &rng);
  auto state = cell.InitialState();
  EXPECT_EQ(state.h->value.dim(0), 6);
  Var x = ag::Constant(Tensor::Randn({4}, &rng));
  for (int step = 0; step < 5; ++step) {
    state = cell.Forward(x, state);
  }
  // h = o * tanh(c) is bounded in (-1, 1).
  EXPECT_LT(state.h->value.Max(), 1.0f);
  EXPECT_GT(state.h->value.Min(), -1.0f);
  EXPECT_TRUE(state.c->value.AllFinite());
}

TEST(LstmCellTest, GradientsFlowThroughSteps) {
  Rng rng(18);
  auto cell = std::make_shared<LstmCell>(2, 3, &rng);
  auto build = [&](const std::vector<Var>&) {
    Var x = ag::Constant(Tensor::Full({2}, 0.3f));
    auto state = cell->InitialState();
    state = cell->Forward(x, state);
    state = cell->Forward(x, state);
    return ag::SumAll(state.h);
  };
  ag::GradCheckResult result = ag::CheckGradients(build, cell->Parameters());
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SelfAttentionTest, OutputShapeAndMaskEffect) {
  Rng rng(19);
  SelfAttention attn(8, 2, &rng);
  Var x = ag::Constant(Tensor::Randn({6, 8}, &rng));
  Var unmasked = attn.Forward(x, Tensor());
  Var masked = attn.Forward(x, CausalMask(6));
  EXPECT_EQ(unmasked->value.dim(0), 6);
  EXPECT_EQ(unmasked->value.dim(1), 8);
  // Mask changes the result (future positions carry information here).
  EXPECT_FALSE(AllClose(unmasked->value, masked->value));
}

TEST(SelfAttentionTest, CausalMaskBlocksFutureLeakage) {
  Rng rng(20);
  SelfAttention attn(4, 1, &rng);
  Tensor base_in = Tensor::Randn({5, 4}, &rng);
  Var y_base = attn.Forward(ag::Constant(base_in), CausalMask(5));
  Tensor perturbed = base_in;
  perturbed.at(4, 2) += 7.0f;  // change only the last timestep
  Var y_pert = attn.Forward(ag::Constant(perturbed), CausalMask(5));
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(y_base->value.at(t, c), y_pert->value.at(t, c))
          << "future leaked into t=" << t;
    }
  }
}

TEST(MlpTest, OutBiasInitSeedsOutput) {
  Rng rng(21);
  Mlp mlp(3, 4, 2, &rng, /*out_bias_init=*/1.0f);
  // fc2 bias is parameter index 3 (fc1 w, fc1 b, fc2 w, fc2 b).
  EXPECT_FLOAT_EQ(mlp.Parameters()[3]->value.at(0), 1.0f);
  Var y = mlp.Forward(ag::Constant(Tensor({1, 3})));
  EXPECT_EQ(y->value.dim(1), 2);
}

}  // namespace
}  // namespace gaia::nn
