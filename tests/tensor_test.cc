#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gaia {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.ndim(), 0);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(t.at(i, j), 0.0f);
  }
}

TEST(TensorTest, ConstructFromData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorDeathTest, ShapeDataMismatchAborts) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0f, 2.0f}), "GAIA_CHECK failed");
}

TEST(TensorTest, FullAndOnes) {
  EXPECT_EQ(Tensor::Full({3}, 2.5f).at(1), 2.5f);
  EXPECT_EQ(Tensor::Ones({2, 2}).at(1, 1), 1.0f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor eye = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, RandnIsDeterministicGivenSeed) {
  Rng a(4), b(4);
  Tensor x = Tensor::Randn({4, 4}, &a);
  Tensor y = Tensor::Randn({4, 4}, &b);
  EXPECT_TRUE(AllClose(x, y, 0.0f));
}

TEST(TensorTest, RandUniformRespectsBounds) {
  Rng rng(5);
  Tensor t = Tensor::RandUniform({100}, &rng, -0.25f, 0.25f);
  EXPECT_GE(t.Min(), -0.25f);
  EXPECT_LT(t.Max(), 0.25f);
}

TEST(TensorTest, ThreeDimIndexing) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.at(1, 2, 3), 9.0f);
  EXPECT_EQ(t.data()[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(TensorDeathTest, OutOfBoundsAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.at(2, 0), "GAIA_CHECK failed");
  EXPECT_DEATH(t.at(0, -1), "GAIA_CHECK failed");
  EXPECT_DEATH(t.at(5), "GAIA_CHECK failed");  // wrong arity
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.at(0, 0), 1.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorDeathTest, ReshapeSizeMismatchAborts) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "GAIA_CHECK failed");
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({24, 32}).ShapeString(), "[24, 32]");
  EXPECT_EQ(Tensor({5}).ShapeString(), "[5]");
}

TEST(TensorTest, FillScaleAccumulate) {
  Tensor t({2, 2});
  t.Fill(2.0f);
  t.Scale(3.0f);
  EXPECT_EQ(t.at(1, 1), 6.0f);
  Tensor u = Tensor::Ones({2, 2});
  t.Accumulate(u);
  EXPECT_EQ(t.at(0, 0), 7.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(t.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 2.5);
  EXPECT_EQ(t.Max(), 4.0f);
  EXPECT_EQ(t.Min(), 1.0f);
  EXPECT_NEAR(t.Norm(), std::sqrt(30.0), 1e-9);
}

TEST(TensorTest, AllFiniteDetectsNanAndInf) {
  Tensor t({2}, {1.0f, 2.0f});
  EXPECT_TRUE(t.AllFinite());
  t.at(0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.AllFinite());
  t.at(0) = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  EXPECT_TRUE(AllClose(a + b, Tensor({2}, {4, 7})));
  EXPECT_TRUE(AllClose(b - a, Tensor({2}, {2, 3})));
  EXPECT_TRUE(AllClose(a * b, Tensor({2}, {3, 10})));
  EXPECT_TRUE(AllClose(b / a, Tensor({2}, {3, 2.5f})));
}

TEST(TensorTest, ScalarArithmetic) {
  Tensor a({2}, {1, 2});
  EXPECT_TRUE(AllClose(a + 1.0f, Tensor({2}, {2, 3})));
  EXPECT_TRUE(AllClose(a - 1.0f, Tensor({2}, {0, 1})));
  EXPECT_TRUE(AllClose(a * 2.0f, Tensor({2}, {2, 4})));
  EXPECT_TRUE(AllClose(2.0f * a, Tensor({2}, {2, 4})));
}

TEST(TensorDeathTest, ShapeMismatchedArithmeticAborts) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_DEATH(a + b, "GAIA_CHECK failed");
}

TEST(TensorTest, AllCloseToleratesSmallDifferences) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(AllClose(a, b, 1e-5f));
  EXPECT_FALSE(AllClose(a, b, 1e-7f));
  EXPECT_FALSE(AllClose(a, Tensor({3})));
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t({100});
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace gaia
