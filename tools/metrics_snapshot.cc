// Machine-readable per-phase timing snapshot: runs a fixed-seed train +
// serve workload with observability on and emits one JSON document with
// span aggregates (FFL / TEL / ITA-GCN / backward / PredictBatch), thread-
// pool utilization and the raw metrics registry. This is the seed of the
// perf trajectory: every later optimisation PR reports against the same
// schema (see docs/OBSERVABILITY.md).
//
//   ./build/tools/metrics_snapshot                 # JSON to stdout
//   ./build/tools/metrics_snapshot --out snap.json --threads 4
//
// Flags: --out <path>  --threads <n>  --epochs <n>  --shops <n>  --seed <n>
//        --empty (skip the workload; the snapshot of an idle process must
//        still be a valid JSON document with an empty "phases" object)

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "obs/obs.h"
#include "serving/model_server.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

struct Options {
  std::string out;  // empty = stdout
  int threads = 0;  // 0 = leave the global pool alone
  int epochs = 3;
  int64_t shops = 80;
  uint64_t seed = 7;
  bool empty = false;  // no workload: prove the empty snapshot is valid
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      GAIA_CHECK_LT(i + 1, argc) << "missing value for " << arg;
      return argv[++i];
    };
    if (arg == "--out") {
      options.out = next();
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--epochs") {
      options.epochs = std::atoi(next());
    } else if (arg == "--shops") {
      options.shops = std::atoll(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--empty") {
      options.empty = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return options;
}

void RunWorkload(const Options& options) {
  data::MarketConfig market_cfg;
  market_cfg.num_shops = options.shops;
  market_cfg.seed = options.seed;
  auto market = data::MarketSimulator(market_cfg).Generate();
  GAIA_CHECK(market.ok()) << market.status().ToString();
  auto dataset = std::make_shared<data::ForecastDataset>(
      std::move(data::ForecastDataset::Create(market.value(),
                                              data::DatasetOptions{}))
          .value());

  core::GaiaConfig model_cfg;
  model_cfg.channels = 8;
  model_cfg.tel_groups = 2;
  model_cfg.seed = options.seed;
  auto model_result = core::GaiaModel::Create(
      model_cfg, dataset->history_len(), dataset->horizon(),
      dataset->temporal_dim(), dataset->static_dim());
  GAIA_CHECK(model_result.ok()) << model_result.status().ToString();
  std::shared_ptr<core::GaiaModel> model = std::move(model_result).value();

  core::TrainConfig train_cfg;
  train_cfg.max_epochs = options.epochs;
  train_cfg.eval_every = 1;
  train_cfg.seed = options.seed;
  core::Trainer(train_cfg).Fit(model.get(), *dataset);

  serving::ServerConfig server_cfg;
  server_cfg.seed = options.seed;
  serving::ModelServer server(model, dataset, server_cfg);
  server.PredictBatch(dataset->test_nodes());
}

std::string FormatMs(double ms) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << ms;
  return os.str();
}

}  // namespace
}  // namespace gaia

int main(int argc, char** argv) {
  using namespace gaia;
  const Options options = ParseArgs(argc, argv);

  // The snapshot controls its own observability state: phase-level capture
  // on, previous process state wiped, so the aggregates describe exactly
  // this workload.
  obs::SetLevel(obs::Level::kOn);
  obs::MetricsRegistry::Global().ResetAll();
  obs::TraceBuffer::Global().Clear();
  if (options.threads > 0) {
    util::ThreadPool::SetGlobalThreads(options.threads);
  }
  const int threads = util::ThreadPool::GlobalThreads();

  Stopwatch wall;
  if (!options.empty) RunWorkload(options);
  const double wall_seconds = wall.ElapsedSeconds();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const double busy_seconds =
      static_cast<double>(
          registry.GetCounter("gaia_pool_busy_ns_total").value()) *
      1e-9;
  const uint64_t jobs = registry.GetCounter("gaia_pool_jobs_total").value();
  const uint64_t chunks = registry.GetCounter("gaia_pool_chunks_total").value();
  const uint64_t inline_chunks =
      registry.GetCounter("gaia_pool_inline_chunks_total").value();
  // Busy time only counts chunks run through worker dispatch; with a
  // one-thread pool everything inlines (visible as inline_chunks) and
  // utilization reads 0 by design.
  const double utilization =
      wall_seconds > 0.0
          ? busy_seconds / (wall_seconds * static_cast<double>(threads))
          : 0.0;

  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\n";
  os << "  \"schema\": \"gaia.metrics_snapshot/1\",\n";
  os << "  \"config\": {\"threads\": " << threads
     << ", \"shops\": " << options.shops << ", \"epochs\": " << options.epochs
     << ", \"seed\": " << options.seed << "},\n";
  os << "  \"wall_seconds\": " << wall_seconds << ",\n";
  os << "  \"phases\": {\n";
  const auto stats = obs::TraceBuffer::Global().AggregateByName();
  bool first = true;
  for (const auto& [name, stat] : stats) {
    if (!first) os << ",\n";
    first = false;
    os << "    \"" << name << "\": {\"count\": " << stat.count
       << ", \"total_ms\": " << FormatMs(stat.total_ms)
       << ", \"mean_ms\": "
       << FormatMs(stat.count > 0 ? stat.total_ms /
                                        static_cast<double>(stat.count)
                                  : 0.0)
       << ", \"max_ms\": " << FormatMs(stat.max_ms) << "}";
  }
  os << "\n  },\n";
  os << "  \"thread_pool\": {\"threads\": " << threads
     << ", \"jobs\": " << jobs << ", \"chunks\": " << chunks
     << ", \"inline_chunks\": " << inline_chunks
     << ", \"busy_seconds\": " << busy_seconds
     << ", \"utilization\": " << utilization << "},\n";
  os << "  \"metrics\": " << registry.ExportJson() << "\n";
  os << "}\n";

  if (options.out.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream file(options.out);
    GAIA_CHECK(file.good()) << "cannot open " << options.out;
    file << os.str();
    std::cerr << "wrote " << options.out << "\n";
  }
  return 0;
}
