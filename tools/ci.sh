#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml for offline use: a Release build
# running the full suite, then an ASan+UBSan build running the labelled
# concurrency/golden subset.
#
#   tools/ci.sh            # both jobs
#   tools/ci.sh release    # release job only
#   tools/ci.sh sanitize   # sanitizer job only
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-all}"
jobs=$(nproc)

if [[ "$job" == "release" || "$job" == "all" ]]; then
  echo "=== Release build + full test suite ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  ctest --test-dir build --output-on-failure -j"$jobs"
fi

if [[ "$job" == "sanitize" || "$job" == "all" ]]; then
  echo "=== ASan+UBSan build + concurrency/golden tests ==="
  cmake -B build-asan -S . -DGAIA_SANITIZE=ON
  cmake --build build-asan -j"$jobs"
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -L "concurrency|golden"
fi
