#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml for offline use: a Release build
# running the full suite, an observability pass (same build, GAIA_OBS=1 +
# metrics_snapshot JSON validation), a robustness pass (fault-injection suite
# + randomized-seed chaos serve/train and a sharded chaos storm under
# GAIA_FAULTS), a perf pass (kernel-equivalence tests, then a bench/harness
# small-scale run gated by tools/bench_compare including the packed-vs-naive
# MatMul pair check; see docs/BENCHMARKING.md and docs/PERFORMANCE.md), a
# sharded-serving pass
# (shard-labelled concurrency tests + multi-shard CLI smoke + throughput
# scaling check), a distributed-training pass (dist-labelled tests including
# the randomized worker-kill chaos case, a fault-free multi-worker CLI smoke
# that must skip zero steps, and a GAIA_FAULTS chaos train whose checkpoint
# must still evaluate), an admin-plane pass (admin-labelled tests + a live
# serve with --admin-port driven over HTTP: /healthz flip, /metrics scrape,
# /requestz, /quitz shutdown, plus the tools' --empty dumps), a scenario
# pass (scenario-labelled regime/drift chaos tests + a randomized adversarial
# regime with an echoed GAIA_REGIME_SEED that the full simulate/train/serve
# pipeline must survive), an ASan+UBSan build running the labelled
# robust/concurrency/golden/obs/cancel/shard/dist/admin/scenario subset, then
# a TSan build running the concurrency/robust/cancel/shard/dist/admin/
# scenario subset (the concurrency tentpoles' race check).
#
#   tools/ci.sh            # all jobs
#   tools/ci.sh release    # release job only
#   tools/ci.sh obs        # observability job only (reuses build/)
#   tools/ci.sh robust     # robustness job only (reuses build/)
#   tools/ci.sh perf       # perf job only (reuses build/)
#   tools/ci.sh shard      # sharded-serving job only (reuses build/)
#   tools/ci.sh dist       # distributed-training job only (reuses build/)
#   tools/ci.sh admin      # admin-plane job only (reuses build/)
#   tools/ci.sh scenario   # scenario/chaos regime job only (reuses build/)
#   tools/ci.sh sanitize   # ASan+UBSan job only
#   tools/ci.sh tsan       # TSan job only
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-all}"
jobs=$(nproc)

if [[ "$job" == "release" || "$job" == "all" ]]; then
  echo "=== Release build + full test suite ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  ctest --test-dir build --output-on-failure -j"$jobs"
fi

if [[ "$job" == "obs" || "$job" == "all" ]]; then
  echo "=== Observability enabled: full suite under GAIA_OBS=1 + snapshot check ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # Determinism and goldens must hold with instrumentation recording.
  GAIA_OBS=1 ctest --test-dir build --output-on-failure -j"$jobs"
  # metrics_snapshot must emit valid JSON with the documented per-phase keys.
  ./build/tools/metrics_snapshot --epochs 2 --shops 50 --threads 2 \
    > build/metrics_snapshot.json
  python3 - build/metrics_snapshot.json <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "gaia.metrics_snapshot/1", snap.get("schema")
for phase in ("ffl.forward", "tel.forward", "ita_gcn.forward",
              "autograd.backward", "server.predict_batch"):
    assert phase in snap["phases"], f"missing phase: {phase}"
    assert snap["phases"][phase]["count"] > 0, f"empty phase: {phase}"
assert "utilization" in snap["thread_pool"]
assert "counters" in snap["metrics"] and "histograms" in snap["metrics"]
print("metrics_snapshot.json OK:", len(snap["phases"]), "phases")
EOF
fi

if [[ "$job" == "robust" || "$job" == "all" ]]; then
  echo "=== Robustness: fault-injection suite + randomized chaos serve ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # Deterministic fault matrix: checkpoint corruption, rollback, degradation.
  ctest --test-dir build --output-on-failure -L robust -j"$jobs"
  # Randomized chaos replay of the serve pipeline. The seed is echoed so any
  # failure reproduces exactly (GAIA_FAULTS_SEED=<seed> tools/ci.sh robust).
  # Bounded-count rules (prob 1.0, max fires) stay within the retry budgets;
  # probabilistic rules land on the degradation ladder, which never fails a
  # request — so the run must exit 0 at any seed.
  chaos_dir=$(mktemp -d)
  ./build/tools/gaia_cli simulate --out "$chaos_dir/market" --shops 80 \
    --history 18 --seed 7
  ./build/tools/gaia_cli train --market "$chaos_dir/market" \
    --checkpoint "$chaos_dir/ckpt.bin" --epochs 3 --channels 8 --layers 1
  seed="${GAIA_FAULTS_SEED:-$RANDOM}"
  echo "chaos serve with GAIA_FAULTS_SEED=$seed"
  GAIA_FAULTS_SEED="$seed" \
  GAIA_FAULTS="market.read:io:1.0:1;checkpoint.read:unavailable:1.0:2;serving.forward:nan:0.2;serving.forward:unavailable:0.1;graph.ego_extract:corrupt:0.1" \
    ./build/tools/gaia_cli serve --market "$chaos_dir/market" \
    --checkpoint "$chaos_dir/ckpt.bin" --requests 200 --channels 8 --layers 1
  # Chaos train: probabilistic faults on the training-loop sites skip the
  # faulted epochs' optimizer steps but must still publish a checkpoint that
  # verifies (the evaluate run below loads it, so a corrupt file fails).
  echo "chaos train with GAIA_FAULTS_SEED=$seed"
  GAIA_FAULTS_SEED="$seed" \
  GAIA_FAULTS="train.optimizer_step:unavailable:0.3;train.grad_exchange:unavailable:0.2" \
    ./build/tools/gaia_cli train --market "$chaos_dir/market" \
    --checkpoint "$chaos_dir/ckpt_chaos.bin" --epochs 4 --channels 8 --layers 1
  ./build/tools/gaia_cli evaluate --market "$chaos_dir/market" \
    --checkpoint "$chaos_dir/ckpt_chaos.bin" --channels 8 --layers 1
  # Sharded chaos: the same randomized seed drives checkpoint.read faults
  # and forward-path faults while 4 client threads hammer a 4-shard tier.
  # The RCU generation swap and the retry/degradation ladder must keep every
  # request answered, so this too must exit 0 at any seed.
  echo "chaos sharded serve with GAIA_FAULTS_SEED=$seed"
  GAIA_FAULTS_SEED="$seed" \
  GAIA_FAULTS="checkpoint.read:unavailable:1.0:2;serving.forward:nan:0.2;serving.forward:unavailable:0.1" \
    ./build/tools/gaia_cli serve --market "$chaos_dir/market" \
    --checkpoint "$chaos_dir/ckpt.bin" --requests 200 --channels 8 --layers 1 \
    --shards 4 --clients 4
  # Randomized-seed replay of the shard suite's publish/serve chaos storm
  # (the in-process CheckpointStore + ShardedServer torn-read property).
  GAIA_FAULTS_SEED="$seed" ctest --test-dir build --output-on-failure \
    -L shard -j"$jobs"
  rm -rf "$chaos_dir"
fi

if [[ "$job" == "perf" || "$job" == "all" ]]; then
  echo "=== Perf: kernel equivalence + bench/harness run + bench_compare gate ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # Kernel-equivalence leg: before trusting any bench win, prove the packed
  # MatMul is bitwise-identical to the naive kernel and the arena's
  # disabled-fallback path is bit-exact (tests/tensor_arena_test, label
  # perf). A fast wrong kernel must never pass this job.
  ctest --test-dir build --output-on-failure -L perf -j"$jobs"
  # The comparator gates itself first: verdict logic on synthetic documents.
  tools/bench_compare --self-test
  # Small-scale run of all five measured layers; the artifact stays at the
  # repo root for upload/inspection.
  ./build/bench/perf_suite --reps 5 --warmup 1 --json BENCH_perf.json
  # An identical self-compare must pass at the strict default thresholds...
  tools/bench_compare BENCH_perf.json BENCH_perf.json
  # ...and a doctored copy with every median doubled must fail — proves the
  # gate actually trips before we rely on it.
  python3 - BENCH_perf.json build/BENCH_doctored.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for case in doc["cases"]:
    case["wall_ns"]["median"] *= 2.0
json.dump(doc, open(sys.argv[2], "w"))
EOF
  if tools/bench_compare BENCH_perf.json build/BENCH_doctored.json; then
    echo "bench_compare failed to flag a 2x slowdown" >&2
    exit 1
  fi
  # Cross-machine gate against the checked-in baseline, plus the within-run
  # packed-vs-naive pair: the blocked kernel must beat the naive one in the
  # same process on the same operands, which holds across machines (unlike
  # the baseline medians). On >=4-core hosts the blocked kernel also gets
  # the parallel row-block fan-out, so the bar rises to 1.5x; single-core
  # runners only have the cache/register win, so the bar is 1.05x.
  if [[ "$jobs" -ge 4 ]]; then pair_factor=1.5; else pair_factor=1.05; fi
  echo "kernel pair gate: packed must beat naive by ${pair_factor}x ($jobs cores)"
  tools/bench_compare bench/baselines/small.json BENCH_perf.json \
    --rel-tol 1.5 --mad-mult 8 --min-ns 500000 --missing-ok \
    --require-faster "tensor.matmul_naive_256:tensor.matmul_packed_256:${pair_factor}"
fi

if [[ "$job" == "shard" || "$job" == "all" ]]; then
  echo "=== Sharded serving: shard tests + multi-shard CLI smoke + scaling ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # The queue/window/RCU/chaos concurrency suite (tests/sharded_serving_test).
  ctest --test-dir build --output-on-failure -L shard -j"$jobs"
  # End-to-end smoke: concurrent clients against a 4-shard tier over a real
  # trained checkpoint.
  shard_dir=$(mktemp -d)
  ./build/tools/gaia_cli simulate --out "$shard_dir/market" --shops 80 \
    --history 18 --seed 7
  ./build/tools/gaia_cli train --market "$shard_dir/market" \
    --checkpoint "$shard_dir/ckpt.bin" --epochs 3 --channels 8 --layers 1
  ./build/tools/gaia_cli serve --market "$shard_dir/market" \
    --checkpoint "$shard_dir/ckpt.bin" --requests 200 --channels 8 --layers 1 \
    --shards 4 --clients 4
  rm -rf "$shard_dir"
  # Throughput vs shard count; the >=2x-at-4-shards bar is enforced only on
  # multi-core hosts (single-core runners are legitimately flat).
  ./build/bench/serve_throughput --reps 3 --warmup 1 --check-scaling
fi

if [[ "$job" == "dist" || "$job" == "all" ]]; then
  echo "=== Distributed training: dist tests + multi-worker smoke + chaos ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # Ring determinism, N=1 bitwise equality with the in-process Trainer, and
  # the randomized SIGKILL-a-worker chaos case (the test echoes its
  # GAIA_CHAOS_SEED so any failure reproduces exactly).
  ctest --test-dir build --output-on-failure -L dist -j"$jobs"
  dist_dir=$(mktemp -d)
  ./build/tools/gaia_cli simulate --out "$dist_dir/market" --shops 80 \
    --history 18 --seed 7
  # Fault-free multi-worker smoke: with nothing armed, every round must step
  # and every worker must survive.
  ./build/tools/gaia_cli train --market "$dist_dir/market" \
    --checkpoint "$dist_dir/ckpt2.bin" --epochs 4 --channels 8 --layers 1 \
    --workers 2 | tee "$dist_dir/smoke.txt"
  grep -q "0 steps skipped, 0 workers lost" "$dist_dir/smoke.txt"
  # Chaos leg: gradient hops and exchanges fault at a randomized seed; the
  # failure ladder (retry -> skip-step -> degrade) must still publish a
  # checkpoint good enough for evaluate to load, so this exits 0 at any seed.
  seed="${GAIA_FAULTS_SEED:-$RANDOM}"
  echo "dist chaos train with GAIA_FAULTS_SEED=$seed"
  GAIA_FAULTS_SEED="$seed" \
  GAIA_FAULTS="dist.allreduce_send:unavailable:0.2;train.grad_exchange:unavailable:0.2" \
    ./build/tools/gaia_cli train --market "$dist_dir/market" \
    --checkpoint "$dist_dir/ckpt_chaos.bin" --epochs 4 --channels 8 \
    --layers 1 --workers 3
  ./build/tools/gaia_cli evaluate --market "$dist_dir/market" \
    --checkpoint "$dist_dir/ckpt_chaos.bin" --channels 8 --layers 1
  rm -rf "$dist_dir"
fi

if [[ "$job" == "admin" || "$job" == "all" ]]; then
  echo "=== Admin plane: admin tests + live endpoint smoke over HTTP ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # EventLog ring, endpoint routing, /metrics byte-identity and request-id
  # correlation (tests/admin_server_test, label admin).
  ctest --test-dir build --output-on-failure -L admin -j"$jobs"
  # End-to-end smoke: a real serve with --admin-port, driven over HTTP.
  admin_dir=$(mktemp -d)
  ./build/tools/gaia_cli simulate --out "$admin_dir/market" --shops 80 \
    --history 18 --seed 7
  ./build/tools/gaia_cli train --market "$admin_dir/market" \
    --checkpoint "$admin_dir/ckpt.bin" --epochs 3 --channels 8 --layers 1
  # --admin-wait 1 parks the process after the replay until GET /quitz, so
  # the scrapes below observe the finished run's counters and event log.
  ./build/tools/gaia_cli serve --market "$admin_dir/market" \
    --checkpoint "$admin_dir/ckpt.bin" --requests 50 --channels 8 --layers 1 \
    --shards 2 --admin-port 0 --admin-wait 1 2> "$admin_dir/admin.log" &
  serve_pid=$!
  # The ephemeral port is announced on stderr once the listener is up.
  port=""
  for _ in $(seq 1 50); do
    port=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$admin_dir/admin.log" | head -1)
    [[ -n "$port" ]] && break
    sleep 0.2
  done
  [[ -n "$port" ]] || { echo "admin port never announced" >&2; exit 1; }
  python3 - "$port" <<'EOF'
import json, sys, time, urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"

def get(path):
    try:
        with urllib.request.urlopen(base + path, timeout=5) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

# /healthz flips to 200 once the checkpoint generation is adopted.
for _ in range(100):
    status, _ = get("/healthz")
    if status == 200:
        break
    time.sleep(0.2)
assert status == 200, f"/healthz never turned healthy: {status}"

status, body = get("/metrics")
assert status == 200
assert "gaia_serve_requests_total" in body, body[:400]
assert "gaia_admin_requests_total" in body, body[:400]

status, body = get("/requestz?n=10")
assert status == 200
doc = json.loads(body)
assert doc["total_appended"] >= 50, doc["total_appended"]
assert len(doc["events"]) > 0 and "request_id" in doc["events"][0]

status, body = get("/statusz")
assert status == 200
doc = json.loads(body)
assert doc["checks"]["checkpoint_loaded"] is True
assert "checkpoint_crc32" in doc["info"]

assert get("/quitz")[0] == 200
print("admin endpoints OK on port", port)
EOF
  wait "$serve_pid"
  # The --empty tool paths: an idle process must still dump valid documents.
  ./build/tools/metrics_snapshot --empty > "$admin_dir/empty_snap.json"
  ./build/tools/trace_dump --empty --out "$admin_dir/empty_trace.json"
  python3 - "$admin_dir/empty_snap.json" "$admin_dir/empty_trace.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["phases"] == {}, snap["phases"]
trace = json.load(open(sys.argv[2]))
assert trace["traceEvents"] == [], trace["traceEvents"]
print("empty-process dumps OK")
EOF
  rm -rf "$admin_dir"
fi

if [[ "$job" == "scenario" || "$job" == "all" ]]; then
  echo "=== Scenario: adversarial regimes + drift-triggered retraining ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$jobs"
  # The scripted scenario suite: regime grammar/determinism, shocked-market
  # invariants, the drift trigger + cooldown closed loop, quantile bands.
  ctest --test-dir build --output-on-failure -L scenario -j"$jobs"
  # Randomized-regime chaos: a random adversarial script (demand shocks,
  # supplier cascades, festival shifts, cold-start floods) drawn from an
  # echoed seed must survive the full simulate -> train -> serve pipeline.
  # Any failure replays exactly with GAIA_REGIME_SEED=<seed> tools/ci.sh
  # scenario — the CLI prints the regime spec it resolved the seed to.
  scen_dir=$(mktemp -d)
  seed="${GAIA_REGIME_SEED:-$RANDOM}"
  echo "regime chaos with GAIA_REGIME_SEED=$seed"
  GAIA_REGIME_SEED="$seed" ./build/tools/gaia_cli simulate \
    --out "$scen_dir/market" --shops 80 --history 18 --seed 7 \
    --regime random
  ./build/tools/gaia_cli train --market "$scen_dir/market" \
    --checkpoint "$scen_dir/ckpt.bin" --epochs 3 --channels 8 --layers 1
  ./build/tools/gaia_cli serve --market "$scen_dir/market" \
    --checkpoint "$scen_dir/ckpt.bin" --requests 100 --channels 8 --layers 1
  # Scripted-regime determinism: the same spec twice must produce
  # byte-identical market files.
  regime_spec="seed:11;demand_shock:month=9,magnitude=-0.5;coldstart_flood:month=12,fraction=0.2"
  ./build/tools/gaia_cli simulate --out "$scen_dir/market_a" --shops 80 \
    --history 18 --seed 7 --regime "$regime_spec"
  ./build/tools/gaia_cli simulate --out "$scen_dir/market_b" --shops 80 \
    --history 18 --seed 7 --regime "$regime_spec"
  diff -r "$scen_dir/market_a" "$scen_dir/market_b"
  rm -rf "$scen_dir"
fi

if [[ "$job" == "sanitize" || "$job" == "all" ]]; then
  echo "=== ASan+UBSan build + robust/concurrency/golden/obs/cancel/shard/dist/admin/scenario tests ==="
  cmake -B build-asan -S . -DGAIA_SANITIZE=ON
  cmake --build build-asan -j"$jobs"
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 GAIA_OBS=1 \
    ctest --test-dir build-asan --output-on-failure \
    -L "robust|concurrency|golden|obs|cancel|shard|dist|admin|scenario"
fi

if [[ "$job" == "tsan" || "$job" == "all" ]]; then
  echo "=== TSan build + concurrency/robust/cancel/shard/dist/admin/scenario tests ==="
  cmake -B build-tsan -S . -DGAIA_SANITIZE=thread
  cmake --build build-tsan -j"$jobs"
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure \
    -L "concurrency|robust|cancel|shard|dist|admin|scenario"
fi
