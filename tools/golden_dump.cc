// Regenerates the golden-regression reference files:
//
//   ./build/tools/golden_dump [output_dir]     (default: tests/golden)
//
// Run from the repo root after an *intentional* numerical change, eyeball the
// diff, and commit the updated files together with the change that caused
// them. tests/golden_test.cc fails loudly when outputs drift without this
// ritual.

#include <cstdio>
#include <string>
#include <vector>

#include "tests/golden_common.h"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "tests/golden";
  const std::vector<gaia::golden::NamedTensor> goldens =
      gaia::golden::ComputeGoldenOutputs();
  int failures = 0;
  for (const gaia::golden::NamedTensor& golden : goldens) {
    const std::string path = out_dir + "/" + golden.name + ".txt";
    if (gaia::golden::WriteTensorFile(path, golden.value)) {
      std::printf("wrote %-20s %s -> %s\n", golden.name.c_str(),
                  golden.value.ShapeString().c_str(), path.c_str());
    } else {
      std::fprintf(stderr, "FAILED to write %s (does %s exist?)\n",
                   path.c_str(), out_dir.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
