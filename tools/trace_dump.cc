// Captures a Chrome trace_event JSON profile of one training step plus one
// serving batch at detail level: open the output in chrome://tracing or
// https://ui.perfetto.dev to see the span hierarchy (model.forward_graph >
// ita_gcn.forward > ita_gcn.attend > cau.attend ...) across pool threads.
//
//   ./build/tools/trace_dump --out /tmp/gaia_trace.json --threads 4
//
// Flags: --out <path>  --threads <n>  --shops <n>  --seed <n>  --phase-only
//        --empty (skip the workload; dump the empty ring as valid JSON)

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "obs/obs.h"
#include "serving/model_server.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

struct Options {
  std::string out = "gaia_trace.json";
  int threads = 0;
  int64_t shops = 80;
  uint64_t seed = 7;
  bool phase_only = false;  // kOn instead of kDetail
  bool empty = false;       // no workload: prove the empty dump is valid
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      GAIA_CHECK_LT(i + 1, argc) << "missing value for " << arg;
      return argv[++i];
    };
    if (arg == "--out") {
      options.out = next();
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--shops") {
      options.shops = std::atoll(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--phase-only") {
      options.phase_only = true;
    } else if (arg == "--empty") {
      options.empty = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return options;
}

}  // namespace
}  // namespace gaia

int main(int argc, char** argv) {
  using namespace gaia;
  namespace ag = autograd;
  const Options options = ParseArgs(argc, argv);

  obs::SetLevel(options.phase_only ? obs::Level::kOn : obs::Level::kDetail);
  obs::TraceBuffer::Global().Clear();
  if (options.threads > 0) {
    util::ThreadPool::SetGlobalThreads(options.threads);
  }

  if (!options.empty) {
    data::MarketConfig market_cfg;
    market_cfg.num_shops = options.shops;
    market_cfg.seed = options.seed;
    auto market = data::MarketSimulator(market_cfg).Generate();
    GAIA_CHECK(market.ok()) << market.status().ToString();
    auto dataset = std::make_shared<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());

    core::GaiaConfig model_cfg;
    model_cfg.channels = 8;
    model_cfg.tel_groups = 2;
    model_cfg.seed = options.seed;
    auto model_result = core::GaiaModel::Create(
        model_cfg, dataset->history_len(), dataset->horizon(),
        dataset->temporal_dim(), dataset->static_dim());
    GAIA_CHECK(model_result.ok()) << model_result.status().ToString();
    std::shared_ptr<core::GaiaModel> model = std::move(model_result).value();

    // One training step (forward + loss + backward) ...
    Rng rng(options.seed);
    ag::Var loss = model->TrainingLoss(*dataset, dataset->train_nodes(),
                                       /*training=*/true, &rng);
    model->ZeroGrad();
    ag::Backward(loss);

    // ... and one serving sweep over the test shops.
    serving::ServerConfig server_cfg;
    server_cfg.seed = options.seed;
    serving::ModelServer server(model, dataset, server_cfg);
    server.PredictBatch(dataset->test_nodes());
  }

  // With --empty the ring has zero spans; DumpChromeTrace must still emit a
  // well-formed Chrome trace document (pinned by ObsTest regressions).
  std::ofstream file(options.out);
  GAIA_CHECK(file.good()) << "cannot open " << options.out;
  obs::TraceBuffer::Global().DumpChromeTrace(file);
  const obs::TraceBuffer& buffer = obs::TraceBuffer::Global();
  std::cerr << "wrote " << options.out << ": "
            << (buffer.total_recorded() - buffer.dropped())
            << " spans retained, " << buffer.dropped()
            << " dropped (ring capacity "
            << obs::TraceBuffer::kDefaultCapacity << ")\n";
  return 0;
}
