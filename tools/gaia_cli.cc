// gaia_cli — command-line workflow around the library:
//
//   gaia_cli simulate --out DIR [--shops N] [--seed S] [--history T]
//       [--regime SPEC|random] [--regime-seed R]
//       Generate a synthetic market and write it as CSVs. --regime layers a
//       scripted adversarial regime (demand shocks, supplier-failure
//       cascades, festival shifts, cold-start floods; see
//       data::RegimeScript) onto the market; "random" draws a script from
//       the regime seed (--regime-seed, else GAIA_REGIME_SEED, else the
//       market seed). The resolved spec is echoed to stderr as
//       "regime: ..." so any shocked market — e.g. one that failed a
//       scenario test — can be re-dumped exactly for offline repro.
//   gaia_cli train --market DIR --checkpoint FILE [--epochs N]
//       [--channels C] [--layers L] [--metrics-out FILE]
//       [--workers N] [--min-workers M] [--store DIR]
//       Train Gaia on a market directory and publish a checkpoint.
//       --workers N trains data-parallel across N worker processes with a
//       deterministic ring all-reduce and a supervising failure ladder
//       (heartbeat -> retry -> skip-step -> degrade; see
//       docs/ROBUSTNESS.md). Results are bitwise reproducible at fixed N,
//       and N=1 matches the in-process trainer exactly. --store DIR also
//       adopts the verified checkpoint into a CheckpointStore there.
//       (train-worker is the hidden worker-process mode DistTrainer
//       spawns; it is not part of the user-facing surface.)
//   gaia_cli evaluate --market DIR --checkpoint FILE [--channels C]
//       [--layers L]
//       Evaluate a published checkpoint on the market's test split.
//   gaia_cli serve --market DIR --checkpoint FILE [--requests N]
//       [--deadline-ms D] [--shards K] [--clients C] [--max-batch B]
//       [--max-wait-us W] [--metrics-out FILE]
//       [--admin-port P] [--admin-wait 1]
//       Replay N online requests through the model server and report
//       latency statistics. --deadline-ms arms a per-request budget: an
//       overrunning forward is aborted mid-flight (cooperative cancel) and
//       the request degrades to the fallback forecaster. --shards K routes
//       the replay through the sharded serving tier (K shard workers,
//       micro-batching; see docs/ARCHITECTURE.md) with --clients C
//       concurrent client threads hammering it; forecasts are bitwise
//       identical to the unsharded path.
//
// --metrics-out FILE writes the Prometheus metrics export to FILE at exit
// (chaos/CI runs keep an inspectable artifact). It forces the observability
// level to at least "on" so the dump is populated even without GAIA_OBS.
//
// --admin-port P (train and serve) starts the embedded admin HTTP server on
// 127.0.0.1:P (0 = ephemeral; the bound port is echoed to stderr as
// "admin: listening on ..."). It exposes /metrics, /metrics.json, /healthz,
// /readyz, /statusz, /tracez and /requestz (docs/OBSERVABILITY.md, "Live
// endpoints"); /healthz answers 503 until the checkpoint generation is
// adopted, then 200. It forces the observability level on and enables the
// request EventLog. --admin-wait 1 parks the process after the replay until
// GET /quitz arrives (CI scrapes the endpoints, then releases it).
//
// Exit code 0 on success; a diagnostic on stderr otherwise.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/market_io.h"
#include "data/market_simulator.h"
#include "dist/dist_trainer.h"
#include "dist/worker.h"
#include "obs/admin_server.h"
#include "obs/obs.h"
#include "serving/model_server.h"
#include "serving/sharded_server.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace gaia::cli {
namespace {

/// Minimal --flag value parser; flags are all optional strings.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_[key] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

/// Scoped --metrics-out support: forces the observability level on at
/// construction (so instruments are populated without GAIA_OBS) and writes
/// the Prometheus export on destruction — every return path, including
/// failures, leaves the artifact for chaos/CI inspection. Write errors are
/// diagnostics only; they never change the command's exit code.
class MetricsDump {
 public:
  explicit MetricsDump(const Args& args)
      : path_(args.Get("metrics-out", "")) {
    if (!path_.empty() && !obs::Enabled()) obs::SetLevel(obs::Level::kOn);
  }

  ~MetricsDump() {
    if (path_.empty()) return;
    std::ofstream file(path_);
    if (file.good()) {
      file << obs::MetricsRegistry::Global().ExportPrometheus();
    }
    if (!file.good()) {
      std::cerr << "warning: could not write metrics to " << path_ << "\n";
    } else {
      std::cerr << "metrics written to " << path_ << "\n";
    }
  }

 private:
  std::string path_;
};

/// Scoped --admin-port support: starts the embedded obs::AdminServer before
/// the heavy lifting, so /healthz is already reachable (answering 503) while
/// the dataset and checkpoint load; MarkReady() flips it to 200 once the
/// serving generation is adopted. Forces the observability level on and
/// enables the request EventLog, mirroring MetricsDump's contract. The
/// caller must destroy (or not outlive) the objects its info lambdas close
/// over — Serve/Train stop the plane before their servers go out of scope.
class AdminPlane {
 public:
  explicit AdminPlane(const Args& args) : enabled_(args.Has("admin-port")) {
    if (!enabled_) return;
    if (!obs::Enabled()) obs::SetLevel(obs::Level::kOn);
    obs::EventLog::Global().SetEnabled(true);
    obs::AdminServerOptions opts;
    opts.port = static_cast<int>(args.GetInt("admin-port", 0));
    server_.AddCheck("checkpoint_loaded", [this](std::string* detail) {
      if (ready_.load(std::memory_order_acquire)) return true;
      if (detail != nullptr) *detail = "no serving generation adopted yet";
      return false;
    });
    std::string error;
    if (!server_.Start(opts, &error)) {
      failed_ = "admin server: " + error;
      enabled_ = false;
      return;
    }
    std::cerr << "admin: listening on http://127.0.0.1:" << server_.port()
              << "\n";
  }

  ~AdminPlane() { Stop(); }

  bool enabled() const { return enabled_; }
  /// Non-empty when --admin-port was given but the server could not start.
  const std::string& failed() const { return failed_; }

  /// Marks the serving generation adopted: /healthz flips 503 -> 200.
  void MarkReady() { ready_.store(true, std::memory_order_release); }

  /// /statusz info: checkpoint path + CRC32 of its bytes (computed once,
  /// here, so the info lambda captures a plain string).
  void NoteCheckpoint(const std::string& path) {
    if (!enabled_) return;
    std::string crc = "unreadable";
    std::ifstream file(path, std::ios::binary);
    if (file.good()) {
      std::ostringstream bytes;
      bytes << file.rdbuf();
      const std::string data = bytes.str();
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x",
                    util::Crc32(data.data(), data.size()));
      crc = buf;
    }
    server_.AddInfo("checkpoint", [path] { return path; });
    server_.AddInfo("checkpoint_crc32", [crc] { return crc; });
  }

  void AddInfo(const std::string& key, obs::AdminServer::Info info) {
    if (enabled_) server_.AddInfo(key, std::move(info));
  }

  /// Parks until GET /quitz when --admin-wait is set (CI drives the
  /// endpoints, then releases the process).
  void MaybeWait(const Args& args) {
    if (!enabled_ || args.GetInt("admin-wait", 0) == 0) return;
    std::cerr << "admin: waiting for GET /quitz\n";
    server_.WaitForQuit();
  }

  void Stop() {
    if (enabled_) server_.Stop();
    enabled_ = false;
  }

 private:
  bool enabled_ = false;
  std::string failed_;
  std::atomic<bool> ready_{false};
  obs::AdminServer server_;
};

Result<data::ForecastDataset> LoadDataset(const std::string& dir) {
  // Transient I/O (including injected market.read faults) is retried with
  // backoff; malformed data fails on the first attempt.
  auto market = data::LoadMarketCsvRetry(dir, util::RetryPolicy{});
  if (!market.ok()) return market.status();
  return data::ForecastDataset::Create(market.value(),
                                       data::DatasetOptions{});
}

Result<std::unique_ptr<core::GaiaModel>> BuildModel(
    const data::ForecastDataset& dataset, const Args& args) {
  core::GaiaConfig cfg;
  cfg.channels = args.GetInt("channels", 16);
  cfg.num_layers = args.GetInt("layers", 2);
  cfg.tel_groups = 4;
  while (cfg.tel_groups > 1 && cfg.channels % cfg.tel_groups != 0) {
    --cfg.tel_groups;
  }
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  return core::GaiaModel::Create(cfg, dataset.history_len(),
                                 dataset.horizon(), dataset.temporal_dim(),
                                 dataset.static_dim());
}

void PrintReport(const core::EvaluationReport& report) {
  TablePrinter table({"Slice", "MAE", "RMSE", "MAPE"});
  for (size_t h = 0; h < report.per_month.size(); ++h) {
    const auto& m = report.per_month[h];
    table.AddRow({"month +" + std::to_string(h + 1),
                  TablePrinter::FormatCount(m.mae),
                  TablePrinter::FormatCount(m.rmse),
                  TablePrinter::FormatDouble(m.mape, 4)});
  }
  table.AddSeparator();
  table.AddRow({"overall", TablePrinter::FormatCount(report.overall.mae),
                TablePrinter::FormatCount(report.overall.rmse),
                TablePrinter::FormatDouble(report.overall.mape, 4)});
  table.Print(std::cout);
}

int Simulate(const Args& args) {
  if (!args.Has("out")) return Fail("simulate requires --out DIR");
  data::MarketConfig cfg;
  cfg.num_shops = args.GetInt("shops", 300);
  cfg.history_months = static_cast<int>(args.GetInt("history", 24));
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  // Adversarial regime: --regime SPEC layers scripted shocks onto the
  // market ("random" draws a script from the regime seed). Seed precedence:
  // --regime-seed, then GAIA_REGIME_SEED, then the market seed. The
  // resolved spec + seed are echoed to stderr so any run — in particular a
  // failing chaos CI leg — can be replayed exactly.
  data::RegimeScript regime;
  if (args.Has("regime")) {
    uint64_t regime_seed = cfg.seed;
    bool seed_overridden = false;
    if (const char* env = std::getenv("GAIA_REGIME_SEED")) {
      regime_seed = std::strtoull(env, nullptr, 10);
      seed_overridden = true;
    }
    if (args.Has("regime-seed")) {
      regime_seed = static_cast<uint64_t>(args.GetInt("regime-seed", 0));
      seed_overridden = true;
    }
    const std::string spec = args.Get("regime", "");
    if (spec == "random") {
      regime = data::RegimeScript::Random(regime_seed, cfg.total_months());
    } else {
      auto parsed = data::RegimeScript::Parse(spec);
      if (!parsed.ok()) return Fail(parsed.status().ToString());
      regime = std::move(parsed).value();
      // An explicit seed beats the spec's own seed: clause; otherwise the
      // spec stays authoritative (it round-trips through ToString).
      if (seed_overridden) regime.set_seed(regime_seed);
    }
    std::cerr << "regime: " << regime.ToString()
              << " (GAIA_REGIME_SEED=" << regime.seed() << ")\n";
  }
  auto market = data::MarketSimulator(cfg, regime).Generate();
  if (!market.ok()) return Fail(market.status().ToString());
  const std::string dir = args.Get("out", "");
  Status saved = data::SaveMarketCsv(market.value(), dir);
  if (!saved.ok()) return Fail(saved.ToString());
  std::cout << "wrote market to " << dir << ": "
            << market.value().graph.ToString() << "\n";
  return 0;
}

int Train(const Args& args) {
  if (!args.Has("market") || !args.Has("checkpoint")) {
    return Fail("train requires --market DIR and --checkpoint FILE");
  }
  MetricsDump metrics_dump(args);
  // Training exposes the same admin plane (health stays 503 until the
  // checkpoint is written, /metrics shows dist aggregation live).
  AdminPlane admin(args);
  if (!admin.failed().empty()) return Fail(admin.failed());
  auto dataset = LoadDataset(args.Get("market", ""));
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  auto model = BuildModel(dataset.value(), args);
  if (!model.ok()) return Fail(model.status().ToString());
  core::TrainConfig tc;
  tc.max_epochs = static_cast<int>(args.GetInt("epochs", 100));
  tc.verbose = args.Has("verbose");
  const int workers = static_cast<int>(args.GetInt("workers", 0));
  if (workers > 0) {
    // Multi-process data-parallel path: DistTrainer spawns N train-worker
    // replicas of this binary and supervises them; the checkpoint is
    // written and CRC-verified by the lowest surviving rank.
    dist::DistTrainerConfig dc;
    dc.num_workers = workers;
    dc.min_workers = static_cast<int>(args.GetInt("min-workers", 1));
    dc.market_dir = args.Get("market", "");
    dc.checkpoint_path = args.Get("checkpoint", "");
    dc.store_dir = args.Get("store", "");
    dc.channels = args.GetInt("channels", 16);
    dc.num_layers = args.GetInt("layers", 2);
    dc.model_seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    dc.train = tc;
    auto dist_result = dist::DistTrainer(dc).Fit();
    if (!dist_result.ok()) return Fail(dist_result.status().ToString());
    const dist::DistTrainResult& dr = dist_result.value();
    std::cout << "trained " << dr.epochs_run << " epochs across "
              << dr.workers_started << " workers in "
              << TablePrinter::FormatDouble(dr.seconds, 1)
              << "s, best val MSE "
              << TablePrinter::FormatDouble(dr.best_val_loss, 4) << ", "
              << dr.skipped_steps << " steps skipped, " << dr.workers_lost
              << " workers lost" << (dr.degraded ? " (degraded)" : "")
              << "\n";
    std::cout << "checkpoint written to " << dr.checkpoint_path << "\n";
    admin.NoteCheckpoint(dr.checkpoint_path);
    admin.MarkReady();
    Status loaded = model.value()->Load(dr.checkpoint_path);
    if (!loaded.ok()) return Fail(loaded.ToString());
    PrintReport(core::Evaluator::Evaluate(
        model.value().get(), dataset.value(), dataset.value().test_nodes()));
    admin.MaybeWait(args);
    return 0;
  }
  core::TrainResult result =
      core::Trainer(tc).Fit(model.value().get(), dataset.value());
  std::cout << "trained " << result.epochs_run << " epochs in "
            << TablePrinter::FormatDouble(result.seconds, 1)
            << "s, best val MSE "
            << TablePrinter::FormatDouble(result.best_val_loss, 4) << "\n";
  Status saved = model.value()->Save(args.Get("checkpoint", ""));
  if (!saved.ok()) return Fail(saved.ToString());
  std::cout << "checkpoint written to " << args.Get("checkpoint", "") << "\n";
  admin.NoteCheckpoint(args.Get("checkpoint", ""));
  admin.MarkReady();
  PrintReport(core::Evaluator::Evaluate(model.value().get(), dataset.value(),
                                        dataset.value().test_nodes()));
  admin.MaybeWait(args);
  return 0;
}

int Evaluate(const Args& args) {
  if (!args.Has("market") || !args.Has("checkpoint")) {
    return Fail("evaluate requires --market DIR and --checkpoint FILE");
  }
  auto dataset = LoadDataset(args.Get("market", ""));
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  auto model = BuildModel(dataset.value(), args);
  if (!model.ok()) return Fail(model.status().ToString());
  Status loaded = model.value()->Load(args.Get("checkpoint", ""));
  if (!loaded.ok()) return Fail(loaded.ToString());
  PrintReport(core::Evaluator::Evaluate(model.value().get(), dataset.value(),
                                        dataset.value().test_nodes()));
  return 0;
}

int Serve(const Args& args) {
  if (!args.Has("market") || !args.Has("checkpoint")) {
    return Fail("serve requires --market DIR and --checkpoint FILE");
  }
  MetricsDump metrics_dump(args);
  // The admin plane comes up first: /healthz is reachable (503) while the
  // dataset and checkpoint load, and flips to 200 at adoption.
  AdminPlane admin(args);
  if (!admin.failed().empty()) return Fail(admin.failed());
  auto dataset_result = LoadDataset(args.Get("market", ""));
  if (!dataset_result.ok()) return Fail(dataset_result.status().ToString());
  auto dataset = std::make_shared<data::ForecastDataset>(
      std::move(dataset_result).value());
  auto model = BuildModel(*dataset, args);
  if (!model.ok()) return Fail(model.status().ToString());
  serving::ServerConfig server_cfg;
  // Per-request latency budget: overruns abort the forward mid-flight (a
  // cooperative CancelToken) and degrade to the fallback forecaster.
  server_cfg.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  const int64_t requests = args.GetInt("requests", 50);
  const auto& shops = dataset->test_nodes();
  const int shards = static_cast<int>(args.GetInt("shards", 0));
  if (shards > 0) {
    // Sharded tier: K shard workers behind micro-batch queues, hammered by
    // C concurrent client threads replaying the same request stream.
    serving::ShardedServerConfig sharded_cfg;
    sharded_cfg.num_shards = shards;
    sharded_cfg.max_batch = static_cast<int>(args.GetInt("max-batch", 8));
    sharded_cfg.max_wait_us = args.GetDouble("max-wait-us", 200.0);
    sharded_cfg.server = server_cfg;
    serving::ShardedServer server(
        std::shared_ptr<core::GaiaModel>(std::move(model).value()), dataset,
        sharded_cfg);
    Status loaded = server.LoadCheckpoint(args.Get("checkpoint", ""));
    if (!loaded.ok()) return Fail(loaded.ToString());
    admin.NoteCheckpoint(args.Get("checkpoint", ""));
    admin.AddInfo("serving_mode", [shards] {
      return "sharded(" + std::to_string(shards) + ")";
    });
    admin.MarkReady();
    const int clients =
        std::max<int>(1, static_cast<int>(args.GetInt("clients", 4)));
    std::vector<std::thread> client_threads;
    client_threads.reserve(static_cast<size_t>(clients));
    std::atomic<int64_t> next{0};
    Stopwatch watch;
    for (int c = 0; c < clients; ++c) {
      client_threads.emplace_back([&] {
        int64_t i;
        while ((i = next.fetch_add(1)) < requests) {
          server.Predict(shops[static_cast<size_t>(i) % shops.size()]);
        }
      });
    }
    for (auto& t : client_threads) t.join();
    const double elapsed_ms = watch.ElapsedMillis();
    std::cout << "served " << server.total_requests() << " requests across "
              << shards << " shards (" << clients << " clients) in "
              << TablePrinter::FormatDouble(elapsed_ms, 1) << " ms, "
              << server.fallback_requests() << " degraded to fallback\n";
    // Park here with the tier still live so /metrics and /requestz reflect
    // the replay; the plane must stop before `server` goes out of scope.
    admin.MaybeWait(args);
    admin.Stop();
    server.Stop();
    return 0;
  }
  serving::ModelServer server(
      std::shared_ptr<core::GaiaModel>(std::move(model).value()), dataset,
      server_cfg);
  // The server's hot-swap path retries transient checkpoint I/O and is
  // verify-then-swap, so a flaky read never serves half-loaded weights.
  Status loaded = server.LoadCheckpoint(args.Get("checkpoint", ""));
  if (!loaded.ok()) return Fail(loaded.ToString());
  admin.NoteCheckpoint(args.Get("checkpoint", ""));
  admin.AddInfo("serving_mode", [] { return std::string("single"); });
  admin.MarkReady();
  for (int64_t i = 0; i < requests; ++i) {
    server.Predict(shops[static_cast<size_t>(i) % shops.size()]);
  }
  std::cout << "served " << server.total_requests() << " requests, mean "
            << TablePrinter::FormatDouble(
                   server.total_latency_ms() / server.total_requests(), 2)
            << " ms each, " << server.fallback_requests()
            << " degraded to fallback\n";
  admin.MaybeWait(args);
  admin.Stop();
  return 0;
}

/// Hidden worker-process mode: DistTrainer spawns `gaia_cli train-worker`
/// with the pipe fds and an argv-serialized TrainConfig (floats travel as
/// hexfloats, so the worker's config is bit-exact).
int TrainWorker(const Args& args) {
  dist::WorkerOptions opts;
  opts.rank = static_cast<int>(args.GetInt("rank", 0));
  opts.world = static_cast<int>(args.GetInt("world", 1));
  opts.read_fd = static_cast<int>(args.GetInt("read-fd", -1));
  opts.write_fd = static_cast<int>(args.GetInt("write-fd", -1));
  opts.market_dir = args.Get("market", "");
  opts.channels = args.GetInt("channels", 16);
  opts.num_layers = args.GetInt("layers", 2);
  opts.model_seed = static_cast<uint64_t>(args.GetInt("model-seed", 1));
  opts.heartbeat_ms = args.GetDouble("heartbeat-ms", 100.0);
  opts.recv_timeout_ms = args.GetDouble("recv-timeout-ms", 30000.0);
  opts.outcome_timeout_ms = args.GetDouble("outcome-timeout-ms", 120000.0);
  core::TrainConfig& tc = opts.train;
  tc.max_epochs = static_cast<int>(args.GetInt("epochs", 100));
  tc.learning_rate = static_cast<float>(args.GetDouble("lr", 3e-3));
  tc.grad_clip = static_cast<float>(args.GetDouble("grad-clip", 5.0));
  tc.patience = static_cast<int>(args.GetInt("patience", 12));
  tc.eval_every = static_cast<int>(args.GetInt("eval-every", 5));
  tc.batch_nodes = args.GetInt("batch-nodes", 0);
  tc.cosine_lr_decay = args.GetInt("cosine", 1) != 0;
  tc.seed = static_cast<uint64_t>(args.GetInt("seed", 99));
  if (opts.read_fd < 0 || opts.write_fd < 0 || opts.market_dir.empty()) {
    return Fail("train-worker requires --read-fd, --write-fd and --market");
  }
  return dist::RunTrainWorker(opts);
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: gaia_cli {simulate|train|evaluate|serve} "
                 "[--flag value ...]\n";
    return 1;
  }
  const std::string command = argv[1];
  Args args(argc, argv);
  if (command == "simulate") return Simulate(args);
  if (command == "train") return Train(args);
  if (command == "train-worker") return TrainWorker(args);
  if (command == "evaluate") return Evaluate(args);
  if (command == "serve") return Serve(args);
  return Fail("unknown command: " + command);
}

}  // namespace
}  // namespace gaia::cli

int main(int argc, char** argv) { return gaia::cli::Main(argc, argv); }
