// Design-choice ablations beyond the paper's Table II (E7 in DESIGN.md):
//  - TEL kernel-group count K (multi-scale receptive fields),
//  - ITA-GCN depth L,
//  - the causal attention mask on/off.
// Each variant is trained with identical budget; reports overall test MAPE.

#include <iostream>

#include "bench/bench_common.h"
#include "core/gaia_model.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

core::EvaluationReport RunVariant(const data::ForecastDataset& dataset,
                                  const core::TrainConfig& train_cfg,
                                  core::GaiaConfig cfg,
                                  const std::string& label) {
  auto model = core::GaiaModel::Create(cfg, dataset.history_len(),
                                       dataset.horizon(),
                                       dataset.temporal_dim(),
                                       dataset.static_dim());
  GAIA_CHECK(model.ok()) << model.status().ToString();
  core::EvaluationReport report =
      TrainAndEvaluate(model.value().get(), dataset, train_cfg);
  report.method = label;
  return report;
}

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Design-choice ablation sweeps (E7) ===\n";
  std::cout << "scale=" << scale.name << " shops=" << scale.num_shops
            << " seed=" << scale.seed << "\n\n";

  auto dataset = BuildDataset(scale);
  core::TrainConfig train_cfg = MakeTrainConfig(scale);

  core::GaiaConfig base;
  base.channels = scale.channels;
  base.seed = scale.seed;

  TablePrinter table({"Variant", "MAE", "RMSE", "MAPE"});
  auto add = [&](const core::EvaluationReport& report) {
    table.AddRow({report.method, TablePrinter::FormatCount(report.overall.mae),
                  TablePrinter::FormatCount(report.overall.rmse),
                  TablePrinter::FormatDouble(report.overall.mape, 4)});
  };

  // K sweep (channels must divide evenly; 16 supports K in {1, 2, 4}).
  for (int64_t k : {1, 2, 4}) {
    core::GaiaConfig cfg = base;
    cfg.tel_groups = k;
    add(RunVariant(*dataset, train_cfg, cfg,
                   "TEL groups K=" + std::to_string(k)));
  }
  table.AddSeparator();
  // L sweep.
  for (int64_t l : {1, 2, 3}) {
    core::GaiaConfig cfg = base;
    cfg.num_layers = l;
    add(RunVariant(*dataset, train_cfg, cfg,
                   "ITA layers L=" + std::to_string(l)));
  }
  table.AddSeparator();
  // Causal mask.
  {
    core::GaiaConfig cfg = base;
    add(RunVariant(*dataset, train_cfg, cfg, "causal mask ON (default)"));
    cfg.causal_mask = false;
    add(RunVariant(*dataset, train_cfg, cfg, "causal mask OFF"));
  }

  table.Print(std::cout);
  std::cout << "\nNotes: K>1 should beat K=1 (multi-scale patterns);"
               " L=2 is the paper's setting; removing the causal mask lets"
               " attention overfit within-window noise.\n";
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
