// Extended comparison (ours, beyond Table I): the related-work baselines the
// paper cites but does not benchmark — LSTM, LSTNet and classical
// Holt-Winters smoothing — against ARIMA and Gaia, under the same protocol.

#include <iostream>

#include "baselines/arima_forecaster.h"
#include "baselines/zoo.h"
#include "bench/bench_common.h"
#include "core/evaluator.h"
#include "ts/holt_winters.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

core::EvaluationReport EvaluateHoltWinters(
    const data::ForecastDataset& dataset,
    const std::vector<int32_t>& nodes) {
  std::vector<std::vector<double>> forecasts;
  forecasts.reserve(nodes.size());
  const int horizon = static_cast<int>(dataset.horizon());
  for (int32_t v : nodes) {
    const std::vector<double> history =
        baselines::ArimaForecaster::RawHistory(dataset, v);
    auto fit = ts::AutoHoltWinters(history, /*season_length=*/12);
    if (fit.ok()) {
      forecasts.push_back(fit.value().Forecast(horizon));
    } else {
      // Degenerate histories: recent-mean fallback, like the ARIMA path.
      const size_t window = std::min<size_t>(history.size(), 3);
      double mean = 0.0;
      for (size_t i = history.size() - window; i < history.size(); ++i) {
        mean += history[i];
      }
      mean = window > 0 ? mean / static_cast<double>(window) : 0.0;
      forecasts.emplace_back(static_cast<size_t>(horizon), mean);
    }
  }
  return core::Evaluator::FromPredictions("Holt-Winters", dataset, nodes,
                                          forecasts);
}

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Extended comparison: related-work baselines (ours) ===\n";
  std::cout << "scale=" << scale.name << " shops=" << scale.num_shops
            << " seed=" << scale.seed << "\n\n";

  auto dataset = BuildDataset(scale);
  const core::TrainConfig train_cfg = MakeTrainConfig(scale);

  std::vector<core::EvaluationReport> reports;
  baselines::ArimaForecaster arima;
  reports.push_back(arima.Evaluate(*dataset, dataset->test_nodes()));
  reports.push_back(EvaluateHoltWinters(*dataset, dataset->test_nodes()));
  for (const char* name : {"LSTM", "LSTNet", "Gaia"}) {
    auto model =
        baselines::CreateModel(name, *dataset, scale.channels, scale.seed);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    reports.push_back(
        TrainAndEvaluate(model.value().get(), *dataset, train_cfg));
  }

  TablePrinter table({"Method", "MAE", "RMSE", "MAPE"});
  for (const auto& report : reports) {
    table.AddRow({report.method,
                  TablePrinter::FormatCount(report.overall.mae),
                  TablePrinter::FormatCount(report.overall.rmse),
                  TablePrinter::FormatDouble(report.overall.mape, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: graph-aware Gaia should beat all per-shop"
               " sequence models; Holt-Winters should beat ARIMA on seasonal"
               " shops (it models the 12-month cycle directly).\n";
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
