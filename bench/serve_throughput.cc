// Sharded serving throughput driver: QPS and tail wall time vs shard count
// through serving::ShardedServer, with the standard harness flags plus
//
//   --check-scaling   exit non-zero unless 4 shards deliver >= 2x the QPS
//                     of 1 shard. Only enforced on multi-core hosts: shard
//                     workers are real threads, so a single-core runner is
//                     legitimately flat and the check degrades to a report.
//
//   ./build/bench/serve_throughput --json BENCH_serve.json
//   ./build/bench/serve_throughput --check-scaling --reps 5
//
// The gaia.bench/1 JSON is the same document bench/perf_suite embeds, so
// tools/bench_compare gates these cases in CI like every other layer.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/suites.h"

namespace {

using gaia::bench::harness::CaseResult;

/// Median QPS of a named case (0 when absent or unmeasured).
double CaseQps(const std::vector<CaseResult>& results,
               const std::string& name) {
  for (const CaseResult& result : results) {
    if (result.name != name || result.items_per_rep <= 0) continue;
    const double median_ns = result.wall_ns.median;
    if (median_ns <= 0.0) return 0.0;
    return static_cast<double>(result.items_per_rep) * 1e9 / median_ns;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gaia::bench::harness;
  // Peel off --check-scaling before the shared parser (it rejects flags it
  // does not know).
  bool check_scaling = false;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-scaling") == 0) {
      check_scaling = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  DriverOptions options;
  if (!ParseDriverFlags(static_cast<int>(passthrough.size()),
                        passthrough.data(), &options)) {
    return 2;
  }
  Harness harness(options.run);
  RegisterServeThroughputCases(harness);
  const int exit_code = RunDriver(harness, options);
  if (exit_code != 0 || options.list || !check_scaling) return exit_code;

  const double qps_1 = CaseQps(harness.results(), "serve.sharded_qps_1");
  const double qps_4 = CaseQps(harness.results(), "serve.sharded_qps_4");
  if (qps_1 <= 0.0 || qps_4 <= 0.0) {
    std::fprintf(stderr,
                 "check-scaling: QPS cases missing from this run "
                 "(--filter too narrow?)\n");
    return 1;
  }
  const double speedup = qps_4 / qps_1;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("check-scaling: %.0f -> %.0f QPS (%.2fx) at 4 shards, %u "
              "core(s)\n",
              qps_1, qps_4, speedup, cores);
  if (cores < 4) {
    // Shard workers are OS threads; without cores to run them, flat is the
    // correct answer, not a regression.
    std::printf("check-scaling: single/low-core host, threshold waived\n");
    return 0;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "check-scaling: FAIL — expected >= 2x QPS at 4 shards vs "
                 "1, got %.2fx\n",
                 speedup);
    return 1;
  }
  return 0;
}
