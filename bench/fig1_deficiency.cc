// Reproduces Fig. 1(a): the temporal-deficiency problem. Prints the
// distribution of observed GMV-series lengths across shops; the shape to
// check is a heavy right-skew — most shops have short histories.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/evaluator.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Fig. 1(a) reproduction: temporal deficiency ===\n";
  std::cout << "scale=" << scale.name << " shops=" << scale.num_shops
            << " seed=" << scale.seed << "\n\n";

  auto dataset = BuildDataset(scale);
  const int t_max = static_cast<int>(dataset->history_len());
  std::vector<int64_t> histogram(static_cast<size_t>(t_max) + 1, 0);
  for (int32_t v = 0; v < dataset->num_nodes(); ++v) {
    ++histogram[static_cast<size_t>(dataset->series_length(v))];
  }
  const int64_t max_count = *std::max_element(histogram.begin(),
                                              histogram.end());

  TablePrinter table({"Series length (months)", "Shops", "Histogram"});
  int64_t new_shops = 0, old_shops = 0;
  for (int len = 0; len <= t_max; ++len) {
    const int64_t count = histogram[static_cast<size_t>(len)];
    if (count == 0) continue;
    if (len < core::Evaluator::kNewShopThreshold) {
      new_shops += count;
    } else {
      old_shops += count;
    }
    const auto bar_len =
        static_cast<size_t>(40.0 * static_cast<double>(count) /
                            static_cast<double>(max_count));
    table.AddRow({std::to_string(len), std::to_string(count),
                  std::string(bar_len, '#')});
  }
  table.Print(std::cout);

  const double new_fraction =
      static_cast<double>(new_shops) /
      static_cast<double>(new_shops + old_shops);
  std::cout << "\nNew shops (T < " << core::Evaluator::kNewShopThreshold
            << "): " << new_shops << " ("
            << TablePrinter::FormatDouble(100.0 * new_fraction, 1)
            << "%), old shops: " << old_shops << "\n";
  std::cout << "Shape check: distribution is right-skewed ("
            << (new_fraction > 0.4 ? "yes" : "no")
            << ", paper Fig. 1a shows most shops have short series)\n";
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
