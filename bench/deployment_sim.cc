// Reproduces §VI (Fig. 5): the hybrid offline/online deployment.
//  1. Offline pipeline: trains Gaia on the e-seller graph and publishes a
//     checkpoint (the monthly scheduled job).
//  2. Model server: loads the checkpoint and serves real-time ego-subgraph
//     predictions for "newcoming" (test) e-sellers.
//  3. Reports the online MAPE improvement over the deployed LogTrans
//     baseline (paper: 0.117 -> 0.083, +29.1%) and inference time vs the
//     number of clients (paper: scales linearly).
//
// After the narrative tables, the serving hot path is re-measured on the
// bench/harness runner (warmup + repetitions, median/p95/MAD, per-case
// span/allocation attribution); `--json PATH` writes the gaia.bench/1
// artifact for tools/bench_compare. All harness flags are accepted (see
// docs/BENCHMARKING.md); `--skip-narrative` runs only the harness section.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/logtrans.h"
#include "baselines/zoo.h"
#include "bench/bench_common.h"
#include "bench/harness/suites.h"
#include "core/evaluator.h"
#include "serving/model_server.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Deployment simulation (paper SVI, Fig. 5) ===\n";
  std::cout << "scale=" << scale.name << " shops=" << scale.num_shops
            << " seed=" << scale.seed << "\n\n";

  auto dataset_owned = BuildDataset(scale);
  auto dataset = std::shared_ptr<const data::ForecastDataset>(
      std::move(dataset_owned));
  core::TrainConfig train_cfg = MakeTrainConfig(scale);

  // --- offline: scheduled training + checkpoint publication ------------------
  const std::string checkpoint = "/tmp/gaia_deployment_checkpoint.bin";
  serving::OfflineTrainingPipeline::Config offline_cfg;
  offline_cfg.model.channels = scale.channels;
  offline_cfg.model.seed = scale.seed;
  offline_cfg.train = train_cfg;
  offline_cfg.checkpoint_path = checkpoint;
  serving::OfflineTrainingPipeline pipeline(offline_cfg);
  serving::OfflineTrainingPipeline::RunReport offline_report;
  auto trained = pipeline.Run(*dataset, &offline_report);
  if (!trained.ok()) {
    std::cerr << trained.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Offline pipeline: trained " << offline_report.train.epochs_run
            << " epochs in "
            << TablePrinter::FormatDouble(offline_report.train.seconds, 1)
            << "s, published checkpoint " << checkpoint << "\n";

  // --- online: model server over ego subgraphs --------------------------------
  serving::ServerConfig server_cfg;
  serving::ModelServer server(trained.value(), dataset, server_cfg);
  Status load = server.LoadCheckpoint(checkpoint);
  std::cout << "Model server checkpoint reload: " << load.ToString() << "\n\n";

  const std::vector<int32_t>& clients = dataset->test_nodes();
  std::vector<std::vector<double>> gaia_preds;
  gaia_preds.reserve(clients.size());
  for (int32_t shop : clients) {
    gaia_preds.push_back(server.Predict(shop).gmv);
  }
  core::EvaluationReport online_gaia = core::Evaluator::FromPredictions(
      "Gaia (online)", *dataset, clients, gaia_preds);

  // Deployed baseline for comparison.
  auto logtrans =
      baselines::CreateModel("LogTrans", *dataset, scale.channels, scale.seed);
  core::EvaluationReport online_logtrans =
      TrainAndEvaluate(logtrans.value().get(), *dataset, train_cfg);

  const double improvement =
      100.0 * (online_logtrans.overall.mape - online_gaia.overall.mape) /
      online_logtrans.overall.mape;
  std::cout << "Online MAPE: LogTrans "
            << TablePrinter::FormatDouble(online_logtrans.overall.mape, 4)
            << " -> Gaia "
            << TablePrinter::FormatDouble(online_gaia.overall.mape, 4)
            << "  (improvement "
            << TablePrinter::FormatDouble(improvement, 1)
            << "%, paper reports +29.1%: 0.117 -> 0.083)\n\n";

  // --- latency scaling ----------------------------------------------------------
  std::cout << "Inference time vs number of clients (paper: ~10 min for 2M"
               " e-sellers, linear scaling):\n";
  TablePrinter latency({"Clients", "Total (ms)", "Per-client (ms)"});
  std::vector<int> batch_sizes = {8, 16, 32, 64};
  double first_per_client = 0.0, last_per_client = 0.0;
  for (int batch : batch_sizes) {
    std::vector<int32_t> shops;
    for (int i = 0; i < batch; ++i) {
      shops.push_back(clients[static_cast<size_t>(i) % clients.size()]);
    }
    Stopwatch watch;
    server.PredictBatch(shops);
    const double total_ms = watch.ElapsedMillis();
    const double per_client = total_ms / batch;
    if (batch == batch_sizes.front()) first_per_client = per_client;
    if (batch == batch_sizes.back()) last_per_client = per_client;
    latency.AddRow({std::to_string(batch),
                    TablePrinter::FormatDouble(total_ms, 1),
                    TablePrinter::FormatDouble(per_client, 2)});
  }
  latency.Print(std::cout);
  const double drift =
      first_per_client > 0.0
          ? last_per_client / first_per_client
          : 0.0;
  std::cout << "Per-client cost ratio (64 vs 8 clients) = "
            << TablePrinter::FormatDouble(drift, 2)
            << " (close to 1.0 = linear scaling, matches paper)\n";
  std::remove("/tmp/gaia_deployment_checkpoint.bin");
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main(int argc, char** argv) {
  using namespace gaia::bench::harness;
  DriverOptions options;
  bool skip_narrative = false;
  // Peel off --skip-narrative before the shared harness flags.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--skip-narrative") {
      skip_narrative = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!ParseDriverFlags(static_cast<int>(args.size()), args.data(),
                        &options)) {
    return 2;
  }
  if (!skip_narrative && !options.list) {
    const int code = gaia::bench::Run();
    if (code != 0) return code;
  }
  std::cout << "\n=== Serving hot path (bench/harness) ===\n";
  Harness harness(options.run);
  RegisterDeploymentCases(harness);
  return RunDriver(harness, options);
}
