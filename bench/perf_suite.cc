// The continuous-perf entry point: registers all five measured layers —
// tensor kernels, thread-pool scaling, end-to-end serving, deadline-abort
// serving, sharded-tier throughput — on the bench/harness runner and (with
// --json) writes the
// gaia.bench/1 artifact that tools/bench_compare gates CI against (see
// docs/BENCHMARKING.md).
//
//   ./build/bench/perf_suite --json BENCH_perf.json      # the CI invocation
//   ./build/bench/perf_suite --filter deployment         # one layer only
//   ./build/bench/perf_suite --list
//
// The scaling sweep is trimmed to 1/2/4 threads here: CI runners rarely
// have 8 cores, and the full sweep stays available in
// bench/parallel_scaling. Deployment cases pin the pool back to the
// process default, so suite order does not leak thread counts.

#include "bench/harness/suites.h"

int main(int argc, char** argv) {
  using namespace gaia::bench::harness;
  DriverOptions options;
  if (!ParseDriverFlags(argc, argv, &options)) return 2;
  Harness harness(options.run);
  RegisterTensorCases(harness);
  RegisterScalingCases(harness, {1, 2, 4});
  RegisterDeploymentCases(harness);
  RegisterCancelCases(harness);
  RegisterServeThroughputCases(harness);
  return RunDriver(harness, options);
}
