// Reproduces the operational loop of paper Fig. 5: the monthly-scheduled
// pipeline re-extracts features and relations from a fresh market snapshot,
// retrains Gaia offline, publishes a checkpoint, and the online server
// hot-swaps and serves that month's requests. Shape to check: the pipeline
// keeps working as the graph changes month over month, with stable online
// error and latency.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "serving/monthly_scheduler.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Fig. 5 reproduction: monthly offline/online schedule ===\n";
  std::cout << "scale=" << scale.name << " seed=" << scale.seed << "\n\n";

  serving::MonthlyScheduler::Config cfg;
  cfg.market = MakeMarketConfig(scale);
  cfg.market.num_shops = scale.num_shops / 2;  // per-cycle retrain budget
  cfg.offline.model.channels = scale.channels;
  cfg.offline.model.seed = scale.seed;
  cfg.offline.train = MakeTrainConfig(scale);
  cfg.offline.train.max_epochs = scale.train_epochs / 3;
  cfg.offline.checkpoint_path = "/tmp/gaia_fig5_checkpoint.bin";
  cfg.num_cycles = 3;

  serving::MonthlyScheduler scheduler(cfg);
  auto reports = scheduler.Run();
  if (!reports.ok()) {
    std::cerr << reports.status().ToString() << "\n";
    return 1;
  }

  static const char* kNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                 "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  TablePrinter table({"Cycle", "Window start", "Graph edges", "Train epochs",
                      "Online MAPE", "Mean latency (ms)"});
  for (const auto& report : reports.value()) {
    table.AddRow({std::to_string(report.cycle),
                  kNames[report.calendar_start_month],
                  std::to_string(report.graph_edges),
                  std::to_string(report.train.epochs_run),
                  TablePrinter::FormatDouble(report.online.overall.mape, 4),
                  TablePrinter::FormatDouble(report.mean_latency_ms, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nEach cycle retrains on a changed e-seller graph and the\n"
               "server hot-swaps the published checkpoint — the paper's\n"
               "offline periodical training -> online real-time prediction\n"
               "loop.\n";
  std::remove("/tmp/gaia_fig5_checkpoint.bin");
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
