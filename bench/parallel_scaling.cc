// Thread-scaling benchmarks for the parallel forward/training paths: the
// same fixed workload is timed with the global pool pinned to 1/2/4/8
// workers. Forecast values are bitwise identical across the sweep (see
// tests/parallel_determinism_test.cc); only wall time may change.
//
//   ./build/bench/parallel_scaling --benchmark_min_time=1x

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "autograd/variable.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "obs/obs.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gaia {
namespace {

namespace ag = autograd;

// Same market as bench/micro_ops.cc so numbers are comparable across files.
struct ScalingFixture {
  ScalingFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_unique<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
    all_nodes.resize(dataset->num_nodes());
    std::iota(all_nodes.begin(), all_nodes.end(), 0);
  }
  std::unique_ptr<data::ForecastDataset> dataset;
  std::unique_ptr<core::GaiaModel> model;
  std::vector<int32_t> all_nodes;
};

ScalingFixture& Fixture() {
  static ScalingFixture* fixture = new ScalingFixture();
  return *fixture;
}

// Full-graph Gaia forward over every shop: the headline number for the
// >= 2x-at-4-threads acceptance check.
void BM_GaiaForwardGraph(benchmark::State& state) {
  auto& fx = Fixture();
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.model->PredictNodes(*fx.dataset, fx.all_nodes, /*training=*/false,
                               nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.all_nodes.size()));
}
BENCHMARK(BM_GaiaForwardGraph)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One full training step: forward + loss + backward over the whole graph.
// Backward stays serial, so this shows the Amdahl ceiling on training.
void BM_GaiaTrainStep(benchmark::State& state) {
  auto& fx = Fixture();
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  Rng rng(11);
  for (auto _ : state) {
    ag::Var loss = fx.model->TrainingLoss(*fx.dataset, fx.all_nodes,
                                          /*training=*/true, &rng);
    fx.model->ZeroGrad();
    ag::Backward(loss);
    benchmark::DoNotOptimize(loss->value.data());
  }
}
BENCHMARK(BM_GaiaTrainStep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Ego-batch inference (the serving sweep shape): extraction is serial by
// design (rng order), the per-shop forwards fan out.
void BM_EgoBatchForward(benchmark::State& state) {
  auto& fx = Fixture();
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rng rng(13);  // re-seeded so every iteration samples identical egos
    benchmark::DoNotOptimize(fx.model->PredictNodesViaEgo(
        *fx.dataset, fx.all_nodes, /*num_hops=*/2, /*max_fanout=*/10, &rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.all_nodes.size()));
}
BENCHMARK(BM_EgoBatchForward)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Raw tensor kernel above the parallel grain threshold.
void BM_MatMulThreads(benchmark::State& state) {
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  Rng rng(1);
  const int64_t n = 256;
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace gaia

// Custom main so a GAIA_OBS=1 run can correlate the thread sweep with the
// internal phase spans: after the benchmarks, the by-name span aggregate and
// pool counters are printed (see docs/OBSERVABILITY.md). With GAIA_OBS unset
// the instrumentation stays off and timings are unperturbed.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (gaia::obs::Enabled()) {
    std::printf("\n-- span aggregate (all thread counts pooled) --\n");
    std::printf("%-24s %10s %14s %12s\n", "phase", "count", "total_ms",
                "mean_ms");
    for (const auto& [name, stat] :
         gaia::obs::TraceBuffer::Global().AggregateByName()) {
      std::printf("%-24s %10llu %14.3f %12.4f\n", name.c_str(),
                  static_cast<unsigned long long>(stat.count), stat.total_ms,
                  stat.total_ms / static_cast<double>(stat.count));
    }
    std::printf("\n%s\n",
                gaia::obs::MetricsRegistry::Global().ExportPrometheus().c_str());
  }
  return 0;
}
