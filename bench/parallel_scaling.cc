// Thread-scaling benchmarks for the parallel forward/training paths: the
// same fixed workload is timed with the global pool pinned to 1/2/4/8
// workers, on the bench/harness runner. Forecast values are bitwise
// identical across the sweep (tests/parallel_determinism_test.cc); only
// wall time may change.
//
//   ./build/bench/parallel_scaling
//   ./build/bench/parallel_scaling --json scaling.json --filter forward
//
// With GAIA_OBS=1 the by-name span aggregate and the Prometheus export are
// printed after the table, pooling every thread count — a quick view of
// where wall-time goes as the sweep widens. In that mode the per-case
// attribution pass is skipped (it resets the registry and trace ring
// between cases, which would wipe the run-wide aggregate this dump reads).

#include <cstdio>

#include "bench/harness/suites.h"
#include "obs/obs.h"

int main(int argc, char** argv) {
  using namespace gaia::bench::harness;
  DriverOptions options;
  if (!ParseDriverFlags(argc, argv, &options)) return 2;
  if (gaia::obs::Enabled()) options.run.attribution = false;
  Harness harness(options.run);
  RegisterScalingCases(harness);
  const int code = RunDriver(harness, options);
  if (code == 0 && gaia::obs::Enabled()) {
    std::printf("\n-- span aggregate (all thread counts pooled) --\n");
    std::printf("%-24s %10s %14s %12s\n", "phase", "count", "total_ms",
                "mean_ms");
    for (const auto& [name, stat] :
         gaia::obs::TraceBuffer::Global().AggregateByName()) {
      std::printf("%-24s %10llu %14.3f %12.4f\n", name.c_str(),
                  static_cast<unsigned long long>(stat.count), stat.total_ms,
                  stat.total_ms / static_cast<double>(stat.count));
    }
    std::printf("\n%s\n",
                gaia::obs::MetricsRegistry::Global().ExportPrometheus().c_str());
  }
  return code;
}
