// Thread-scaling layer of the perf suite: the fixed workloads formerly in
// the google-benchmark bench/parallel_scaling driver, swept over pool
// sizes. Forecast values are bitwise identical across the sweep (see
// tests/parallel_determinism_test.cc); only wall time may change.

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "bench/harness/suites.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gaia::bench::harness {

namespace {

// Same market as the tensor suite so numbers are comparable across layers.
struct ScalingFixture {
  ScalingFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_unique<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
    all_nodes.resize(dataset->num_nodes());
    std::iota(all_nodes.begin(), all_nodes.end(), 0);
  }
  std::unique_ptr<data::ForecastDataset> dataset;
  std::unique_ptr<core::GaiaModel> model;
  std::vector<int32_t> all_nodes;
};

ScalingFixture& Fixture() {
  static ScalingFixture* fixture = new ScalingFixture();
  return *fixture;
}

}  // namespace

void RegisterScalingCases(Harness& harness, std::vector<int> thread_counts) {
  for (int threads : thread_counts) {
    const std::string suffix = "_t" + std::to_string(threads);
    CaseOptions options{{"scaling"}, 0, -1, -1};

    // Full-graph Gaia forward over every shop: the headline number for the
    // >= 2x-at-4-threads scaling claim (flat on single-core hosts).
    options.items_per_rep = 200;  // shops
    harness.AddCase(
        "scaling.forward_graph" + suffix,
        [threads] {
          auto& fx = Fixture();
          util::ThreadPool::SetGlobalThreads(threads);
          KeepAlive(fx.model->PredictNodes(*fx.dataset, fx.all_nodes,
                                           /*training=*/false, nullptr));
        },
        options);

    // Ego-batch inference (the serving sweep shape): extraction is serial
    // by design (rng order), the per-shop forwards fan out.
    harness.AddCase(
        "scaling.ego_batch" + suffix,
        [threads] {
          auto& fx = Fixture();
          util::ThreadPool::SetGlobalThreads(threads);
          Rng rng(13);  // re-seeded so every repetition samples identical egos
          KeepAlive(fx.model->PredictNodesViaEgo(*fx.dataset, fx.all_nodes,
                                                 /*num_hops=*/2,
                                                 /*max_fanout=*/10, &rng));
        },
        options);

    // One full training step: forward + loss + backward over the whole
    // graph. Backward stays serial, so this shows the Amdahl ceiling.
    options.items_per_rep = 0;
    harness.AddCase(
        "scaling.train_step" + suffix,
        [threads] {
          auto& fx = Fixture();
          util::ThreadPool::SetGlobalThreads(threads);
          Rng rng(11);
          autograd::Var loss = fx.model->TrainingLoss(
              *fx.dataset, fx.all_nodes, /*training=*/true, &rng);
          fx.model->ZeroGrad();
          autograd::Backward(loss);
          KeepAlive(loss->value.data());
        },
        options);

    // Raw tensor kernel above the parallel grain threshold.
    options.items_per_rep = int64_t{256} * 256 * 256;  // multiply-adds
    harness.AddCase(
        "scaling.matmul256" + suffix,
        [threads] {
          util::ThreadPool::SetGlobalThreads(threads);
          static Rng rng(1);
          static const Tensor a = Tensor::Randn({256, 256}, &rng);
          static const Tensor b = Tensor::Randn({256, 256}, &rng);
          KeepAlive(MatMul(a, b));
        },
        options);
  }
}

}  // namespace gaia::bench::harness
