// Tensor-kernel layer of the perf suite: the hot kernels under Gaia (the
// cases formerly in the google-benchmark bench/micro_ops driver). Small
// kernels run an inner batch per repetition so one repetition stays well
// above timer resolution; items_per_rep reflects the batch.

#include <memory>
#include <string>

#include "bench/harness/suites.h"
#include "core/cau.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "graph/eseller_graph.h"
#include "tensor/tensor_ops.h"
#include "util/arena.h"
#include "util/rng.h"

namespace gaia::bench::harness {

namespace {

/// Shared 200-shop market for the graph/inference cases — the same fixture
/// shape the scaling and deployment suites use, so numbers are comparable
/// across layers.
struct InferenceFixture {
  InferenceFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_unique<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
  }
  std::unique_ptr<data::ForecastDataset> dataset;
  std::unique_ptr<core::GaiaModel> model;
};

InferenceFixture& Fixture() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

}  // namespace

void RegisterTensorCases(Harness& harness) {
  const CaseOptions tensor_tag{{"tensor"}, 0, -1, -1};

  for (int64_t n : {int64_t{24}, int64_t{64}, int64_t{128}}) {
    const int inner = n <= 24 ? 32 : (n <= 64 ? 4 : 1);
    Rng rng(1);
    auto a = std::make_shared<Tensor>(Tensor::Randn({n, n}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::Randn({n, n}, &rng));
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner * n * n * n;  // multiply-adds
    harness.AddCase(
        "tensor.matmul_" + std::to_string(n),
        [a, b, inner] {
          for (int i = 0; i < inner; ++i) KeepAlive(MatMul(*a, *b));
        },
        options);
  }

  // Packed-vs-naive pair at a shape squarely in the packed regime. The CI
  // perf job requires matmul_packed_256 to beat matmul_naive_256 within the
  // same run (tools/ci.sh perf), so the blocked kernel can never silently
  // regress back to memory-bound behavior.
  {
    const int64_t n = 256;
    Rng rng(11);
    auto a = std::make_shared<Tensor>(Tensor::Randn({n, n}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::Randn({n, n}, &rng));
    CaseOptions options = tensor_tag;
    options.items_per_rep = n * n * n;  // multiply-adds
    harness.AddCase(
        "tensor.matmul_packed_256",
        [a, b] { KeepAlive(MatMulPacked(*a, *b)); }, options);
    harness.AddCase(
        "tensor.matmul_naive_256",
        [a, b] { KeepAlive(MatMulNaive(*a, *b)); }, options);
  }

  // Arena hot path: churn Tensor temporaries inside a scope the way a
  // forward pass does. Steady state every iteration is a cache hit, so this
  // case prices the allocator itself (pop + memset), not the system heap.
  {
    const int inner = 64;
    Rng rng(12);
    auto x = std::make_shared<Tensor>(Tensor::Randn({64, 64}, &rng));
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner;  // temporaries per repetition
    harness.AddCase(
        "tensor.arena_churn",
        [x, inner] {
          util::ArenaScope scope;
          for (int i = 0; i < inner; ++i) {
            Tensor tmp(x->shape());
            tmp.Accumulate(*x);
            KeepAlive(std::move(tmp));
          }
        },
        options);
  }

  for (int64_t c : {int64_t{16}, int64_t{32}}) {
    const int inner = c <= 16 ? 16 : 8;
    const int64_t t_len = 24;
    Rng rng(2);
    auto input = std::make_shared<Tensor>(Tensor::Randn({t_len, c}, &rng));
    auto weight = std::make_shared<Tensor>(Tensor::Randn({c, 3, c}, &rng));
    auto bias = std::make_shared<Tensor>(Tensor::Randn({c}, &rng));
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner;
    harness.AddCase(
        "tensor.conv1d_" + std::to_string(c),
        [input, weight, bias, inner] {
          for (int i = 0; i < inner; ++i) {
            KeepAlive(Conv1d(*input, *weight, *bias, PadMode::kCausal, 1));
          }
        },
        options);
  }

  for (int64_t t_len : {int64_t{24}, int64_t{96}}) {
    const int inner = t_len <= 24 ? 64 : 8;
    Rng rng(3);
    auto logits =
        std::make_shared<Tensor>(Tensor::Randn({t_len, t_len}, &rng));
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner;
    harness.AddCase(
        "tensor.softmax_rows_" + std::to_string(t_len),
        [logits, inner] {
          for (int i = 0; i < inner; ++i) KeepAlive(SoftmaxRows(*logits));
        },
        options);
  }

  for (int64_t c : {int64_t{16}, int64_t{32}}) {
    const int inner = c <= 16 ? 8 : 4;
    const int64_t t_len = 24;
    auto rng = std::make_shared<Rng>(4);
    auto cau = std::make_shared<core::ConvAttentionUnit>(c, rng.get());
    auto h_u = std::make_shared<autograd::Var>(
        autograd::Constant(Tensor::Randn({t_len, c}, rng.get())));
    auto h_v = std::make_shared<autograd::Var>(
        autograd::Constant(Tensor::Randn({t_len, c}, rng.get())));
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner;
    harness.AddCase(
        "tensor.cau_forward_" + std::to_string(c),
        [cau, h_u, h_v, inner] {
          for (int i = 0; i < inner; ++i) KeepAlive(cau->Forward(*h_u, *h_v));
        },
        options);
  }

  {
    const int inner = 32;
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner;  // subgraphs extracted
    harness.AddCase(
        "tensor.ego_extraction",
        [inner] {
          auto& fx = Fixture();
          Rng rng(5);  // reseeded per repetition: identical subgraph sample
          int32_t shop = 0;
          for (int i = 0; i < inner; ++i) {
            KeepAlive(
                graph::ExtractEgoSubgraph(fx.dataset->graph(), shop, 2, 10,
                                          &rng));
            shop = (shop + 1) %
                   static_cast<int32_t>(fx.dataset->num_nodes());
          }
        },
        options);
  }

  {
    const int inner = 4;
    CaseOptions options = tensor_tag;
    options.items_per_rep = inner;  // shops predicted
    harness.AddCase(
        "tensor.single_shop_inference",
        [inner] {
          auto& fx = Fixture();
          Rng rng(6);
          int32_t shop = 0;
          for (int i = 0; i < inner; ++i) {
            auto ego = graph::ExtractEgoSubgraph(fx.dataset->graph(), shop, 2,
                                                 10, &rng);
            KeepAlive(fx.model->PredictEgo(*fx.dataset, ego).value());
            shop = (shop + 1) %
                   static_cast<int32_t>(fx.dataset->num_nodes());
          }
        },
        options);
  }
}

}  // namespace gaia::bench::harness
