#include "bench/harness/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gaia::bench::harness {

double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::min(1.0, std::max(0.0, q));
  const double position = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(position);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

RobustStats ComputeStats(std::vector<double> samples) {
  RobustStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.count = static_cast<int>(samples.size());
  stats.min = samples.front();
  stats.max = samples.back();
  stats.median = SortedQuantile(samples, 0.5);
  stats.p95 = SortedQuantile(samples, 0.95);
  stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (double v : samples) deviations.push_back(std::fabs(v - stats.median));
  std::sort(deviations.begin(), deviations.end());
  stats.mad = SortedQuantile(deviations, 0.5);
  return stats;
}

}  // namespace gaia::bench::harness
