// Sharded-serving layer of the perf suite: concurrent-client QPS through
// serving::ShardedServer at 1, 2 and 4 shards, plus the micro-batch
// coalescing path exercised by a burst of same-shard requests. Behind
// bench/serve_throughput and folded into bench/perf_suite so the CI perf
// gate (tools/bench_compare) tracks the tier's throughput.
//
// Each repetition pushes a fixed request stream through a *persistent*
// sharded server (construction/teardown is measured separately as
// serve.sharded_spinup) from kClients concurrent client threads, so the
// measured wall time is the end-to-end answer rate the tier sustains —
// queue hop, micro-batch window and forward included. items_per_rep is the
// request count, so gaia.bench/1 carries QPS directly.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/suites.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "serving/sharded_server.h"
#include "util/thread_pool.h"

namespace gaia::bench::harness {

namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerRep = 64;

/// Same 200-shop market as the deployment suite; one persistent
/// ShardedServer per benchmarked shard count. The servers pin the pool to
/// the process default once (shard workers serve inline, so pool size only
/// matters for any unsharded comparison running in the same process).
struct ServeThroughputFixture {
  ServeThroughputFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_shared<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
    const std::vector<int32_t>& clients = dataset->test_nodes();
    stream.reserve(kRequestsPerRep);
    for (int i = 0; i < kRequestsPerRep; ++i) {
      stream.push_back(clients[static_cast<size_t>(i) % clients.size()]);
    }
  }

  serving::ShardedServer& ServerFor(int shards) {
    auto it = servers.find(shards);
    if (it != servers.end()) return *it->second;
    serving::ShardedServerConfig cfg;
    cfg.num_shards = shards;
    cfg.max_batch = 8;
    cfg.max_wait_us = 100.0;
    auto server =
        std::make_unique<serving::ShardedServer>(model, dataset, cfg);
    auto* raw = server.get();
    servers.emplace(shards, std::move(server));
    return *raw;
  }

  std::shared_ptr<data::ForecastDataset> dataset;
  std::shared_ptr<core::GaiaModel> model;
  std::vector<int32_t> stream;
  std::map<int, std::unique_ptr<serving::ShardedServer>> servers;
};

ServeThroughputFixture& Fixture() {
  static ServeThroughputFixture* fixture = new ServeThroughputFixture();
  return *fixture;
}

/// One repetition: kClients threads drain the shared request stream.
void HammerOnce(serving::ShardedServer& server,
                const std::vector<int32_t>& stream) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      size_t i;
      while ((i = next.fetch_add(1)) < stream.size()) {
        KeepAlive(server.Predict(stream[i]));
      }
    });
  }
  for (auto& t : clients) t.join();
}

}  // namespace

void RegisterServeThroughputCases(Harness& harness) {
  for (int shards : {1, 2, 4}) {
    CaseOptions options{{"serve_throughput"}, kRequestsPerRep, -1, -1};
    harness.AddCase(
        "serve.sharded_qps_" + std::to_string(shards),
        [shards] {
          auto& fx = Fixture();
          HammerOnce(fx.ServerFor(shards), fx.stream);
        },
        options);
  }
  {
    // Single-caller batch through the sharded tier: the coalescing path the
    // monthly sweep uses, directly comparable to deployment.predict_batch_32.
    CaseOptions options{{"serve_throughput"}, 32, -1, -1};
    harness.AddCase(
        "serve.sharded_batch_32",
        [] {
          auto& fx = Fixture();
          std::vector<int32_t> batch(fx.stream.begin(),
                                     fx.stream.begin() + 32);
          KeepAlive(fx.ServerFor(4).PredictBatch(batch));
        },
        options);
  }
  {
    // Tier spin-up/teardown: K worker threads + queues + one generation.
    CaseOptions options{{"serve_throughput"}, 0, -1, -1};
    harness.AddCase(
        "serve.sharded_spinup_4",
        [] {
          auto& fx = Fixture();
          serving::ShardedServerConfig cfg;
          cfg.num_shards = 4;
          serving::ShardedServer server(fx.model, fx.dataset, cfg);
          KeepAlive(server.Predict(fx.stream.front()));
        },
        options);
  }
}

}  // namespace gaia::bench::harness
