// Cancellation layer of the perf suite: how much wall clock a cooperative
// mid-flight abort saves over the legacy check-after-forward deadline. Each
// deadline level is measured twice on otherwise identical servers — one with
// cooperative_cancel (the token fires mid-forward and the request unwinds at
// the next chunk boundary), one with the post-hoc check (the forward always
// runs to completion before the overrun is noticed). The per-pair gap IS the
// latency saved; tight budgets show the largest win, a generous budget shows
// the armed-but-unfired token costing nothing.

#include <memory>
#include <vector>

#include "bench/harness/suites.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "serving/model_server.h"
#include "util/thread_pool.h"

namespace gaia::bench::harness {

namespace {

// Same 200-shop market as the deployment suite; the servers pin the pool
// back to the process default so a preceding scaling sweep cannot leak its
// last thread count into these numbers.
struct CancelFixture {
  CancelFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_shared<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
    serving::ServerConfig coop_cfg;
    coop_cfg.num_threads = util::ThreadPool::DefaultThreads();
    cooperative = std::make_unique<serving::ModelServer>(model, dataset,
                                                         coop_cfg);
    serving::ServerConfig posthoc_cfg = coop_cfg;
    posthoc_cfg.cooperative_cancel = false;
    posthoc = std::make_unique<serving::ModelServer>(model, dataset,
                                                     posthoc_cfg);
    const std::vector<int32_t>& clients = dataset->test_nodes();
    shops.reserve(8);
    for (int i = 0; i < 8; ++i) {
      shops.push_back(clients[static_cast<size_t>(i) % clients.size()]);
    }
  }

  std::shared_ptr<data::ForecastDataset> dataset;
  std::shared_ptr<core::GaiaModel> model;
  std::unique_ptr<serving::ModelServer> cooperative;
  std::unique_ptr<serving::ModelServer> posthoc;
  std::vector<int32_t> shops;
};

CancelFixture& Fixture() {
  static CancelFixture* fixture = new CancelFixture();
  return *fixture;
}

void AddDeadlinePair(Harness& harness, const char* level, double deadline_ms) {
  const int inner = 8;
  CaseOptions options{{"cancel"}, inner, -1, -1};
  harness.AddCase(
      std::string("cancel.serve_deadline_abort.") + level,
      [inner, deadline_ms] {
        auto& fx = Fixture();
        for (int i = 0; i < inner; ++i) {
          KeepAlive(fx.cooperative->Predict(
              fx.shops[static_cast<size_t>(i) % fx.shops.size()],
              deadline_ms));
        }
      },
      options);
  harness.AddCase(
      std::string("cancel.serve_deadline_posthoc.") + level,
      [inner, deadline_ms] {
        auto& fx = Fixture();
        for (int i = 0; i < inner; ++i) {
          KeepAlive(fx.posthoc->Predict(
              fx.shops[static_cast<size_t>(i) % fx.shops.size()],
              deadline_ms));
        }
      },
      options);
}

}  // namespace

void RegisterCancelCases(Harness& harness) {
  // Three budget levels against a single-shop forward that costs on the
  // order of a millisecond at this scale: one the forward always overruns
  // immediately, one it overruns partway through, one it never hits.
  AddDeadlinePair(harness, "tight_50us", 0.05);
  AddDeadlinePair(harness, "mid_500us", 0.5);
  AddDeadlinePair(harness, "loose_50ms", 50.0);
}

}  // namespace gaia::bench::harness
