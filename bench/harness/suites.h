#ifndef GAIA_BENCH_HARNESS_SUITES_H_
#define GAIA_BENCH_HARNESS_SUITES_H_

#include <vector>

#include "bench/harness/harness.h"

namespace gaia::bench::harness {

/// The three measured layers of the perf trajectory (docs/BENCHMARKING.md).
/// Each Register* call appends its cases to `harness`; drivers pick the
/// subset they care about, bench/perf_suite registers all of them.

/// Hot tensor/graph kernels: MatMul, Conv1d, SoftmaxRows, the CAU attention,
/// ego-subgraph extraction and single-shop inference. Tag: "tensor".
void RegisterTensorCases(Harness& harness);

/// Fixed Gaia workloads (full-graph forward, ego-batch forward, training
/// step, 256x256 MatMul) swept over pool sizes. Leaves the global pool at
/// the last swept size. Tag: "scaling".
void RegisterScalingCases(Harness& harness,
                          std::vector<int> thread_counts = {1, 2, 4, 8});

/// End-to-end serving: single predictions, a 32-shop batch and the
/// checkpoint save/hot-swap round trip through ModelServer. Tag:
/// "deployment".
void RegisterDeploymentCases(Harness& harness);

/// Deadline-budgeted serving: cooperative mid-flight abort vs the legacy
/// check-after-forward path at three deadline levels; the per-pair gap is
/// the wall clock the cancellation tentpole saves. Tag: "cancel".
void RegisterCancelCases(Harness& harness);

/// Sharded serving tier: concurrent-client QPS at 1/2/4 shards, the
/// coalesced batch path and tier spin-up. items_per_rep carries the request
/// count so the JSON reports throughput. Tag: "serve_throughput".
void RegisterServeThroughputCases(Harness& harness);

/// Prevents the optimizer from discarding a benchmark result.
template <typename T>
inline void KeepAlive(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

}  // namespace gaia::bench::harness

#endif  // GAIA_BENCH_HARNESS_SUITES_H_
