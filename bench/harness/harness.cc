#include "bench/harness/harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <locale>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/metrics.h"
#include "util/table_printer.h"

namespace gaia::bench::harness {

namespace {

/// Counters copied into CaseResult::counters after the attribution run.
/// Missing/never-registered names read 0, so the JSON schema is stable
/// across cases that exercise different subsystems.
constexpr const char* kAttributedCounters[] = {
    "gaia_pool_jobs_total",          "gaia_pool_chunks_total",
    "gaia_pool_inline_chunks_total", "gaia_pool_busy_ns_total",
    "gaia_alloc_tensors_total",      "gaia_alloc_bytes_total",
};

int64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<int64_t>(usage.ru_maxrss);  // KiB on Linux
  }
#endif
  return 0;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << v;
  return os.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void Harness::AddCase(std::string name, std::function<void()> body,
                      CaseOptions options) {
  cases_.push_back(
      Case{std::move(name), std::move(body), std::move(options)});
}

std::vector<std::string> Harness::CaseNames() const {
  std::vector<std::string> names;
  for (const Case& c : cases_) {
    if (options_.filter.empty() ||
        c.name.find(options_.filter) != std::string::npos) {
      names.push_back(c.name);
    }
  }
  return names;
}

CaseResult Harness::RunCase(const Case& benchmark_case) {
  CaseResult result;
  result.name = benchmark_case.name;
  result.tags = benchmark_case.options.tags;
  result.items_per_rep = benchmark_case.options.items_per_rep;

  const int warmup = benchmark_case.options.warmup >= 0
                         ? benchmark_case.options.warmup
                         : options_.warmup;
  const int reps = std::max(
      1, benchmark_case.options.reps >= 0 ? benchmark_case.options.reps
                                          : options_.reps);

  // Timed repetitions run at the ambient observability level (normally
  // off), so the statistics below never include instrumentation cost.
  for (int i = 0; i < warmup; ++i) benchmark_case.body();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const uint64_t start = NowNs();
    benchmark_case.body();
    samples.push_back(static_cast<double>(NowNs() - start));
  }
  result.wall_ns = ComputeStats(std::move(samples));

  if (options_.attribution) {
    // One extra untimed run with phase-level observability forced on. The
    // registry and trace ring are wiped before and after, so the aggregates
    // attribute to exactly this case — and the next case starts clean.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    const obs::Level ambient = obs::CurrentLevel();
    obs::SetLevel(obs::Level::kOn);
    registry.ResetAll();
    obs::TraceBuffer::Global().Clear();
    benchmark_case.body();
    result.spans = obs::TraceBuffer::Global().AggregateByName();
    for (const char* name : kAttributedCounters) {
      result.counters[name] = registry.CounterValue(name);
    }
    obs::SetLevel(ambient);
    registry.ResetAll();
    obs::TraceBuffer::Global().Clear();
  }

  result.peak_rss_kb = PeakRssKb();
  return result;
}

const std::vector<CaseResult>& Harness::Run(std::ostream& os) {
  results_.clear();
  TablePrinter table(
      {"Case", "Reps", "Median", "p95", "MAD", "Min", "Items/s"});
  for (const Case& benchmark_case : cases_) {
    if (!options_.filter.empty() &&
        benchmark_case.name.find(options_.filter) == std::string::npos) {
      continue;
    }
    std::cerr << "[bench] " << benchmark_case.name << "...\n";
    CaseResult result = RunCase(benchmark_case);
    const RobustStats& wall = result.wall_ns;
    std::string items_per_s = "-";
    if (result.items_per_rep > 0 && wall.median > 0.0) {
      items_per_s = TablePrinter::FormatCount(
          static_cast<double>(result.items_per_rep) / (wall.median * 1e-9));
    }
    table.AddRow({result.name, std::to_string(wall.count),
                  FormatNs(wall.median), FormatNs(wall.p95),
                  FormatNs(wall.mad), FormatNs(wall.min), items_per_s});
    results_.push_back(std::move(result));
  }
  table.Print(os);
  return results_;
}

std::string Harness::FormatNs(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns * 1e-3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns * 1e-6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns * 1e-9);
  }
  return buf;
}

std::string Harness::ResultsToJson(const std::vector<CaseResult>& results,
                                   const RunOptions& options) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\n";
  os << "  \"schema\": \"gaia.bench/1\",\n";
  os << "  \"config\": {\"warmup\": " << options.warmup
     << ", \"reps\": " << options.reps << ", \"attribution\": "
     << (options.attribution ? "true" : "false") << "},\n";
  os << "  \"cases\": [";
  bool first_case = true;
  for (const CaseResult& result : results) {
    if (!first_case) os << ",";
    first_case = false;
    os << "\n    {\n";
    os << "      \"name\": \"" << JsonEscape(result.name) << "\",\n";
    os << "      \"tags\": [";
    for (size_t i = 0; i < result.tags.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << JsonEscape(result.tags[i]) << "\"";
    }
    os << "],\n";
    os << "      \"items_per_rep\": " << result.items_per_rep << ",\n";
    const RobustStats& w = result.wall_ns;
    os << "      \"wall_ns\": {\"count\": " << w.count
       << ", \"min\": " << FormatDouble(w.min)
       << ", \"median\": " << FormatDouble(w.median)
       << ", \"p95\": " << FormatDouble(w.p95)
       << ", \"max\": " << FormatDouble(w.max)
       << ", \"mean\": " << FormatDouble(w.mean)
       << ", \"mad\": " << FormatDouble(w.mad) << "},\n";
    os << "      \"spans\": {";
    bool first = true;
    for (const auto& [name, stat] : result.spans) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << JsonEscape(name) << "\": {\"count\": " << stat.count
         << ", \"total_ms\": " << FormatDouble(stat.total_ms)
         << ", \"max_ms\": " << FormatDouble(stat.max_ms) << "}";
    }
    os << "},\n";
    os << "      \"counters\": {";
    first = true;
    for (const auto& [name, value] : result.counters) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << JsonEscape(name) << "\": " << value;
    }
    os << "},\n";
    os << "      \"peak_rss_kb\": " << result.peak_rss_kb << "\n";
    os << "    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool Harness::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file.good()) {
    std::cerr << "bench harness: cannot open " << path << "\n";
    return false;
  }
  file << ToJson();
  file.close();
  if (!file.good()) {
    std::cerr << "bench harness: write to " << path << " failed\n";
    return false;
  }
  std::cerr << "wrote " << path << "\n";
  return true;
}

bool ParseDriverFlags(int argc, char** argv, DriverOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char** value) {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return false;
      }
      *value = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (arg == "--json") {
      if (!next(&value)) return false;
      options->json_path = value;
    } else if (arg == "--reps") {
      if (!next(&value)) return false;
      options->run.reps = std::atoi(value);
    } else if (arg == "--warmup") {
      if (!next(&value)) return false;
      options->run.warmup = std::atoi(value);
    } else if (arg == "--filter") {
      if (!next(&value)) return false;
      options->run.filter = value;
    } else if (arg == "--no-attribution") {
      options->run.attribution = false;
    } else if (arg == "--list") {
      options->list = true;
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nusage: [--json PATH] [--reps N] [--warmup N] "
                   "[--filter SUBSTR] [--no-attribution] [--list]\n";
      return false;
    }
  }
  return true;
}

int RunDriver(Harness& harness, const DriverOptions& options) {
  if (options.list) {
    for (const std::string& name : harness.CaseNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  harness.Run(std::cout);
  if (!options.json_path.empty() && !harness.WriteJson(options.json_path)) {
    return 1;
  }
  return 0;
}

}  // namespace gaia::bench::harness
