// Deployment layer of the perf suite: the end-to-end serve path behind
// bench/deployment_sim — single ego-subgraph predictions, the monthly
// batch sweep shape, and the checkpoint save + verify-then-swap reload that
// the scheduler runs every cycle.

#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/harness/suites.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "serving/model_server.h"
#include "util/thread_pool.h"

namespace gaia::bench::harness {

namespace {

// Same 200-shop market as the other suites. The model is untrained —
// weights do not change the serve-path cost — and the server pins the pool
// back to the process default so a preceding scaling sweep cannot leak its
// last thread count into the serving numbers.
struct DeploymentFixture {
  DeploymentFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_shared<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
    serving::ServerConfig server_cfg;
    server_cfg.num_threads = util::ThreadPool::DefaultThreads();
    server = std::make_unique<serving::ModelServer>(model, dataset,
                                                    server_cfg);
    checkpoint_path = "/tmp/gaia_bench_ckpt_" +
                      std::to_string(static_cast<long>(::getpid())) + ".bin";
    batch.reserve(32);
    const std::vector<int32_t>& clients = dataset->test_nodes();
    for (int i = 0; i < 32; ++i) {
      batch.push_back(clients[static_cast<size_t>(i) % clients.size()]);
    }
  }
  ~DeploymentFixture() { std::remove(checkpoint_path.c_str()); }

  std::shared_ptr<data::ForecastDataset> dataset;
  std::shared_ptr<core::GaiaModel> model;
  std::unique_ptr<serving::ModelServer> server;
  std::vector<int32_t> batch;
  std::string checkpoint_path;
};

DeploymentFixture& Fixture() {
  static DeploymentFixture* fixture = new DeploymentFixture();
  return *fixture;
}

}  // namespace

void RegisterDeploymentCases(Harness& harness) {
  {
    const int inner = 8;
    CaseOptions options{{"deployment"}, inner, -1, -1};
    harness.AddCase(
        "deployment.predict_single",
        [inner] {
          auto& fx = Fixture();
          for (int i = 0; i < inner; ++i) {
            KeepAlive(fx.server->Predict(
                fx.batch[static_cast<size_t>(i) % fx.batch.size()]));
          }
        },
        options);
  }

  {
    CaseOptions options{{"deployment"}, 32, -1, -1};
    harness.AddCase(
        "deployment.predict_batch_32",
        [] {
          auto& fx = Fixture();
          KeepAlive(fx.server->PredictBatch(fx.batch));
        },
        options);
  }

  {
    CaseOptions options{{"deployment"}, 0, -1, -1};
    harness.AddCase(
        "deployment.checkpoint_save_load",
        [] {
          auto& fx = Fixture();
          KeepAlive(fx.model->Save(fx.checkpoint_path));
          KeepAlive(fx.server->LoadCheckpoint(fx.checkpoint_path));
        },
        options);
  }
}

}  // namespace gaia::bench::harness
