#ifndef GAIA_BENCH_HARNESS_HARNESS_H_
#define GAIA_BENCH_HARNESS_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "bench/harness/stats.h"
#include "obs/trace.h"

namespace gaia::bench::harness {

/// \brief Per-case registration options.
struct CaseOptions {
  /// Free-form grouping labels ("tensor", "scaling", "deployment") carried
  /// into the JSON so downstream tooling can slice by layer.
  std::vector<std::string> tags;
  /// Work items one repetition processes (matrix FLOP count, shops served);
  /// 0 = no throughput column. Purely descriptive.
  int64_t items_per_rep = 0;
  /// Per-case overrides of the harness-wide warmup/reps (-1 = inherit).
  int warmup = -1;
  int reps = -1;
};

/// \brief One measured case: robust wall-time statistics plus the
/// observability attribution captured in a separate obs-enabled pass.
struct CaseResult {
  std::string name;
  std::vector<std::string> tags;
  int64_t items_per_rep = 0;
  /// Wall time per repetition, nanoseconds. Median/MAD are the headline
  /// numbers; tools/bench_compare gates on them.
  RobustStats wall_ns;
  /// Exact by-name span aggregates from TraceBuffer for ONE obs-enabled
  /// run of the body (not summed over the timed repetitions).
  std::map<std::string, obs::SpanStats> spans;
  /// Counter values (pool dispatch, tensor allocations) from the same
  /// attribution run. Keys are the metric names from docs/OBSERVABILITY.md.
  std::map<std::string, uint64_t> counters;
  /// Process peak RSS in KiB sampled after the case ran. The kernel
  /// high-water mark is monotone across the process, so this only
  /// attributes growth to the first case that caused it.
  int64_t peak_rss_kb = 0;
};

/// \brief Harness-wide run configuration (shared driver flags map onto it).
struct RunOptions {
  int warmup = 2;  ///< untimed repetitions before measurement
  int reps = 9;    ///< timed repetitions (odd keeps the median a sample)
  std::string filter;       ///< substring filter on case names; empty = all
  bool attribution = true;  ///< run the obs-enabled attribution pass
};

/// \brief Case registry + runner behind every bench driver.
///
/// Each case is measured as `warmup` untimed runs, then `reps` timed runs
/// summarized with robust statistics, then (unless disabled) one more run
/// with observability forced to kOn that yields exact span aggregates and
/// allocation/pool counters for attribution. Between cases the metrics
/// registry is ResetAll()-ed and the trace ring cleared, so every case's
/// attribution describes that case alone. Timed repetitions run at the
/// process's ambient observability level (default off), so enabling
/// attribution never perturbs the reported wall times.
class Harness {
 public:
  explicit Harness(RunOptions options = RunOptions{})
      : options_(std::move(options)) {}

  /// Registers a case. `body` must be re-runnable; expensive fixtures
  /// belong in function-local statics or suite-level setup, not the body.
  void AddCase(std::string name, std::function<void()> body,
               CaseOptions options = CaseOptions{});

  /// Runs every case matching the filter, printing a human-readable table
  /// to `os` as results land. Returns the collected results.
  const std::vector<CaseResult>& Run(std::ostream& os);

  const std::vector<CaseResult>& results() const { return results_; }
  const RunOptions& options() const { return options_; }
  /// Registered case names after filtering (for --list).
  std::vector<std::string> CaseNames() const;

  /// Serializes results as a `gaia.bench/1` JSON document. Static so tests
  /// can golden-check the exact bytes for hand-built results.
  static std::string ResultsToJson(const std::vector<CaseResult>& results,
                                   const RunOptions& options);
  std::string ToJson() const { return ResultsToJson(results_, options_); }
  /// Writes ToJson() to `path` (stderr diagnostic + false on I/O failure).
  bool WriteJson(const std::string& path) const;

  /// "123.4us"-style rendering used by the table (exposed for drivers).
  static std::string FormatNs(double ns);

 private:
  struct Case {
    std::string name;
    std::function<void()> body;
    CaseOptions options;
  };

  CaseResult RunCase(const Case& benchmark_case);

  RunOptions options_;
  std::vector<Case> cases_;
  std::vector<CaseResult> results_;
};

/// \brief Flags shared by every harness driver:
///   --json PATH   write gaia.bench/1 JSON (in addition to the table)
///   --reps N --warmup N --filter SUBSTR --no-attribution --list
struct DriverOptions {
  RunOptions run;
  std::string json_path;
  bool list = false;
};

/// Parses the shared flags (unknown flags fail with a usage message on
/// stderr). Returns false when the driver should exit with status 2.
bool ParseDriverFlags(int argc, char** argv, DriverOptions* options);

/// Runs a populated harness per the driver options: --list prints case
/// names, otherwise runs all cases, prints the table to stdout, and writes
/// the JSON artifact when requested. Returns the process exit code.
int RunDriver(Harness& harness, const DriverOptions& options);

}  // namespace gaia::bench::harness

#endif  // GAIA_BENCH_HARNESS_HARNESS_H_
