#ifndef GAIA_BENCH_HARNESS_STATS_H_
#define GAIA_BENCH_HARNESS_STATS_H_

#include <vector>

namespace gaia::bench::harness {

/// \brief Robust summary of one case's per-repetition wall times.
///
/// Benchmark samples are contaminated by one-sided noise (scheduler
/// preemption, page faults), so the headline statistics are the median and
/// the MAD (median absolute deviation from the median) rather than mean and
/// stddev: a single slow repetition moves neither. p95 is kept to expose
/// the tail that the median deliberately hides.
struct RobustStats {
  int count = 0;
  double min = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double mad = 0.0;  ///< median(|x_i - median|), same unit as the samples
};

/// Computes the summary over `samples` (any unit; the harness feeds
/// nanoseconds). Empty input returns all-zero stats; the input vector is
/// copied so callers keep their sample order.
RobustStats ComputeStats(std::vector<double> samples);

/// Linear-interpolated quantile of a *sorted* sample vector, q in [0, 1].
/// Exposed for tests; ComputeStats uses it for the median and p95.
double SortedQuantile(const std::vector<double>& sorted, double q);

}  // namespace gaia::bench::harness

#endif  // GAIA_BENCH_HARNESS_STATS_H_
