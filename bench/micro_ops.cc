// Microbenchmarks for the hot kernels under Gaia — tensor contractions,
// temporal convolution, the CAU attention, ego-subgraph extraction and
// end-to-end single-shop inference — on the bench/harness runner
// (warmup + repetitions, median/p95/MAD, per-case span and allocation
// attribution; see docs/BENCHMARKING.md).
//
//   ./build/bench/micro_ops                         # human table
//   ./build/bench/micro_ops --json BENCH_micro.json # + gaia.bench/1 JSON
//   ./build/bench/micro_ops --filter matmul --reps 15

#include "bench/harness/suites.h"

int main(int argc, char** argv) {
  using namespace gaia::bench::harness;
  DriverOptions options;
  if (!ParseDriverFlags(argc, argv, &options)) return 2;
  Harness harness(options.run);
  RegisterTensorCases(harness);
  return RunDriver(harness, options);
}
