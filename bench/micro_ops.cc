// Google-benchmark microbenchmarks (E8): the hot kernels under Gaia —
// tensor contractions, temporal convolution, the CAU attention, ego-subgraph
// extraction and end-to-end single-shop inference.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/cau.h"
#include "core/gaia_model.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "graph/eseller_graph.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace gaia {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(24)->Arg(64)->Arg(128);

void BM_Conv1d(benchmark::State& state) {
  const int64_t t_len = 24, c = state.range(0);
  Rng rng(2);
  Tensor input = Tensor::Randn({t_len, c}, &rng);
  Tensor weight = Tensor::Randn({c, 3, c}, &rng);
  Tensor bias = Tensor::Randn({c}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Conv1d(input, weight, bias, PadMode::kCausal, 1));
  }
}
BENCHMARK(BM_Conv1d)->Arg(16)->Arg(32);

void BM_SoftmaxRows(benchmark::State& state) {
  const int64_t t_len = state.range(0);
  Rng rng(3);
  Tensor logits = Tensor::Randn({t_len, t_len}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(logits));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(24)->Arg(96);

void BM_CauForward(benchmark::State& state) {
  const int64_t t_len = 24, c = state.range(0);
  Rng rng(4);
  core::ConvAttentionUnit cau(c, &rng);
  autograd::Var h_u = autograd::Constant(Tensor::Randn({t_len, c}, &rng));
  autograd::Var h_v = autograd::Constant(Tensor::Randn({t_len, c}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cau.Forward(h_u, h_v));
  }
}
BENCHMARK(BM_CauForward)->Arg(16)->Arg(32);

struct InferenceFixture {
  InferenceFixture() {
    data::MarketConfig cfg;
    cfg.num_shops = 200;
    cfg.seed = 9;
    auto market = data::MarketSimulator(cfg).Generate();
    dataset = std::make_unique<data::ForecastDataset>(
        std::move(data::ForecastDataset::Create(market.value(),
                                                data::DatasetOptions{}))
            .value());
    core::GaiaConfig gaia_cfg;
    gaia_cfg.channels = 16;
    model = std::move(core::GaiaModel::Create(
                          gaia_cfg, dataset->history_len(), dataset->horizon(),
                          dataset->temporal_dim(), dataset->static_dim()))
                .value();
  }
  std::unique_ptr<data::ForecastDataset> dataset;
  std::unique_ptr<core::GaiaModel> model;
};

InferenceFixture& Fixture() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

void BM_EgoExtraction(benchmark::State& state) {
  auto& fx = Fixture();
  Rng rng(5);
  int32_t shop = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ExtractEgoSubgraph(
        fx.dataset->graph(), shop, 2, 10, &rng));
    shop = (shop + 1) % static_cast<int32_t>(fx.dataset->num_nodes());
  }
}
BENCHMARK(BM_EgoExtraction);

void BM_SingleShopInference(benchmark::State& state) {
  auto& fx = Fixture();
  Rng rng(6);
  int32_t shop = 0;
  for (auto _ : state) {
    auto ego = graph::ExtractEgoSubgraph(fx.dataset->graph(), shop, 2, 10,
                                         &rng);
    benchmark::DoNotOptimize(fx.model->PredictEgo(*fx.dataset, ego));
    shop = (shop + 1) % static_cast<int32_t>(fx.dataset->num_nodes());
  }
}
BENCHMARK(BM_SingleShopInference);

}  // namespace
}  // namespace gaia

BENCHMARK_MAIN();
