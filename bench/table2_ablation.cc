// Reproduces Table II: ablation of Gaia's three components. Each variant
// replaces one component per the paper: w/o ITA -> traditional dense
// self-attention with uniform neighbour weights; w/o FFL -> plain
// concat + shared linear fusion; w/o TEL -> one {4 x C; C} kernel.
// Shape to check: every ablation hurts the full model.

#include <iostream>

#include "baselines/zoo.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

int Run() {
  const BenchScale base_scale = GetBenchScale();
  const int reps = GetBenchReps();
  std::cout << "=== Table II reproduction: ablation study ===\n";
  std::cout << "scale=" << base_scale.name << " shops="
            << base_scale.num_shops << " seed=" << base_scale.seed
            << " reps=" << reps << "\n\n";

  const data::MarketConfig market_cfg = MakeMarketConfig(base_scale);

  const std::vector<std::string> variants = {"Gaia", "Gaia w/o ITA",
                                             "Gaia w/o FFL", "Gaia w/o TEL"};
  std::vector<std::vector<core::EvaluationReport>> per_variant(
      variants.size());
  for (int rep = 0; rep < reps; ++rep) {
    BenchScale scale = base_scale;
    scale.seed = base_scale.seed + 1000 * static_cast<uint64_t>(rep);
    auto dataset = BuildDataset(scale);
    const core::TrainConfig train_cfg = MakeTrainConfig(scale);
    for (size_t i = 0; i < variants.size(); ++i) {
      auto model = baselines::CreateModel(variants[i], *dataset,
                                          scale.channels, scale.seed);
      if (!model.ok()) {
        std::cerr << model.status().ToString() << "\n";
        return 1;
      }
      per_variant[i].push_back(
          TrainAndEvaluate(model.value().get(), *dataset, train_cfg));
    }
  }
  std::vector<core::EvaluationReport> reports;
  for (const auto& rep_reports : per_variant) {
    reports.push_back(AverageReports(rep_reports));
  }

  // Paper layout: one block per forecast month.
  TablePrinter table({"Dataset", "Method", "MAE", "RMSE", "MAPE"});
  for (int h = 0; h < market_cfg.horizon_months; ++h) {
    const std::string month = HorizonMonthName(market_cfg, h);
    for (const auto& report : reports) {
      const auto& m = report.per_month[static_cast<size_t>(h)];
      table.AddRow({month, report.method, TablePrinter::FormatCount(m.mae),
                    TablePrinter::FormatCount(m.rmse),
                    TablePrinter::FormatDouble(m.mape, 4)});
    }
    if (h + 1 < market_cfg.horizon_months) table.AddSeparator();
  }
  std::cout << "Measured:\n";
  table.Print(std::cout);

  const double full = reports[0].overall.mape;
  std::cout << "\nShape check (overall MAPE):\n";
  bool all_hurt = true;
  for (size_t i = 1; i < reports.size(); ++i) {
    const double delta = reports[i].overall.mape - full;
    std::cout << "  " << reports[i].method << ": "
              << TablePrinter::FormatDouble(reports[i].overall.mape, 4)
              << " (delta " << TablePrinter::FormatDouble(delta, 4) << ")\n";
    all_hurt = all_hurt && delta > 0.0;
  }
  std::cout << (all_hurt ? "All ablations hurt -> matches paper Table II\n"
                         : "Not every ablation hurt at this scale/seed\n");
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
