// Reproduces Table I: performance comparison of all 9 methods on the
// Oct/Nov/Dec forecast months, reporting MAE / RMSE / MAPE per month.
//
// The absolute numbers differ from the paper (synthetic market vs. 3M-shop
// Alipay data); the qualitative shape to check is the ordering:
// Gaia < MTGNN < other STGNNs / GNNs < pure time-series methods on error.

#include <iostream>

#include "baselines/arima_forecaster.h"
#include "baselines/zoo.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

void AddReportRow(TablePrinter* table, const core::EvaluationReport& report) {
  std::vector<std::string> row = {report.method};
  for (const auto& m : report.per_month) {
    row.push_back(TablePrinter::FormatCount(m.mae));
    row.push_back(TablePrinter::FormatCount(m.rmse));
    row.push_back(TablePrinter::FormatDouble(m.mape, 4));
  }
  table->AddRow(std::move(row));
}

int Run() {
  const BenchScale base_scale = GetBenchScale();
  const int reps = GetBenchReps();
  std::cout << "=== Table I reproduction: method comparison ===\n";
  std::cout << "scale=" << base_scale.name << " shops="
            << base_scale.num_shops << " seed=" << base_scale.seed
            << " reps=" << reps << "\n\n";

  const data::MarketConfig market_cfg = MakeMarketConfig(base_scale);

  std::vector<std::string> header = {"Method"};
  for (int h = 0; h < market_cfg.horizon_months; ++h) {
    const std::string month = HorizonMonthName(market_cfg, h);
    header.push_back(month + " MAE");
    header.push_back(month + " RMSE");
    header.push_back(month + " MAPE");
  }
  TablePrinter table(header);

  // Per-method reports across repetitions; row order = Table I order.
  std::vector<std::string> methods = {"ARIMA"};
  for (const std::string& name : baselines::TrainableModelNames()) {
    methods.push_back(name);
  }
  std::vector<std::vector<core::EvaluationReport>> per_method(methods.size());
  size_t test_shops = 0;
  for (int rep = 0; rep < reps; ++rep) {
    BenchScale scale = base_scale;
    scale.seed = base_scale.seed + 1000 * static_cast<uint64_t>(rep);
    auto dataset = BuildDataset(scale);
    const core::TrainConfig train_cfg = MakeTrainConfig(scale);
    test_shops = dataset->test_nodes().size();
    baselines::ArimaForecaster arima;
    per_method[0].push_back(arima.Evaluate(*dataset, dataset->test_nodes()));
    for (size_t i = 1; i < methods.size(); ++i) {
      auto model = baselines::CreateModel(methods[i], *dataset,
                                          scale.channels, scale.seed);
      if (!model.ok()) {
        std::cerr << "failed to build " << methods[i] << ": "
                  << model.status().ToString() << "\n";
        return 1;
      }
      per_method[i].push_back(
          TrainAndEvaluate(model.value().get(), *dataset, train_cfg));
    }
  }

  double gaia_mape = 0.0, best_baseline_mape = 1e9;
  for (size_t i = 0; i < methods.size(); ++i) {
    core::EvaluationReport averaged = AverageReports(per_method[i]);
    AddReportRow(&table, averaged);
    if (methods[i] == "Gaia") {
      gaia_mape = averaged.overall.mape;
    } else {
      best_baseline_mape =
          std::min(best_baseline_mape, averaged.overall.mape);
    }
  }

  std::cout << "Measured (synthetic market, test split of " << test_shops
            << " shops, averaged over " << reps << " market(s)):\n";
  table.Print(std::cout);

  std::cout << "\nPaper-reported Table I (Alipay production data):\n";
  TablePrinter paper(header);
  for (const PaperRow& row : PaperTable1()) {
    std::vector<std::string> cells = {row.method};
    for (int h = 0; h < 3; ++h) {
      cells.push_back(TablePrinter::FormatCount(row.mae[h]));
      cells.push_back(TablePrinter::FormatCount(row.rmse[h]));
      cells.push_back(TablePrinter::FormatDouble(row.mape[h], 4));
    }
    paper.AddRow(std::move(cells));
  }
  paper.Print(std::cout);

  std::cout << "\nShape check: Gaia overall MAPE "
            << TablePrinter::FormatDouble(gaia_mape, 4)
            << " vs best baseline "
            << TablePrinter::FormatDouble(best_baseline_mape, 4) << " -> "
            << (gaia_mape < best_baseline_mape ? "Gaia wins (matches paper)"
                                               : "Gaia does NOT win")
            << "\n";
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
