// Reproduces Fig. 4: case study of the ITA module on a trained Gaia model.
//  (a) Intra attention: across (i, j) timestamp pairs of individual shops,
//      the learned attention weight should be high where local GMV shapes
//      are similar — i.e. negatively correlated with shape distance.
//  (b) Inter attention: ASCII heat map of the [T, T] attention between a
//      centre shop and one supply-chain neighbour, plus the average
//      attention lag (how many months into the neighbour's past the centre
//      looks), which should be positive when suppliers lead retailers.

#include <cmath>
#include <iostream>
#include <vector>

#include "baselines/zoo.h"
#include "bench/bench_common.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "ts/metrics.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

/// L2 distance between length-3 windows of the series ending at i and j.
double LocalShapeDistance(const Tensor& z, int64_t i, int64_t j) {
  double acc = 0.0;
  for (int64_t k = 0; k < 3; ++k) {
    const int64_t a = std::max<int64_t>(i - k, 0);
    const int64_t b = std::max<int64_t>(j - k, 0);
    const double d = z.at(a) - z.at(b);
    acc += d * d;
  }
  return std::sqrt(acc);
}

void PrintHeatmap(const Tensor& attention) {
  static const char kShades[] = " .:-=+*#%@";
  const int64_t t_len = attention.dim(0);
  float max_val = 1e-9f;
  for (int64_t i = 0; i < t_len; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      max_val = std::max(max_val, attention.at(i, j));
    }
  }
  std::cout << "      (columns: neighbour months 0.." << t_len - 1 << ")\n";
  for (int64_t i = 0; i < t_len; ++i) {
    std::cout << "  t=" << (i < 10 ? " " : "") << i << " |";
    for (int64_t j = 0; j < t_len; ++j) {
      if (j > i) {
        std::cout << ' ';
        continue;
      }
      const int shade = static_cast<int>(9.0f * attention.at(i, j) / max_val);
      std::cout << kShades[std::min(shade, 9)];
    }
    std::cout << "|\n";
  }
}

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Fig. 4 reproduction: ITA case study ===\n";
  std::cout << "scale=" << scale.name << " shops=" << scale.num_shops
            << " seed=" << scale.seed << "\n\n";

  auto dataset = BuildDataset(scale);
  core::TrainConfig train_cfg = MakeTrainConfig(scale);

  auto created =
      baselines::CreateModel("Gaia", *dataset, scale.channels, scale.seed);
  if (!created.ok()) {
    std::cerr << created.status().ToString() << "\n";
    return 1;
  }
  auto* model = dynamic_cast<core::GaiaModel*>(created.value().get());
  core::Trainer(train_cfg).Fit(model, *dataset);

  core::ItaProbe probe = model->CollectAttention(*dataset);

  // --- (a) intra attention vs local shape distance -------------------------
  std::vector<double> weights, distances;
  for (const auto& record : probe.intra) {
    const Tensor& z = dataset->z(record.u);
    const int64_t t_len = record.attention.dim(0);
    for (int64_t i = 2; i < t_len; ++i) {
      for (int64_t j = 0; j < i; ++j) {
        weights.push_back(record.attention.at(i, j));
        distances.push_back(LocalShapeDistance(z, i, j));
      }
    }
  }
  const double corr = ts::PearsonCorrelation(weights, distances);
  std::cout << "(a) Intra attention vs local shape distance over "
            << weights.size() << " timestamp pairs:\n";
  std::cout << "    Pearson correlation = "
            << TablePrinter::FormatDouble(corr, 4) << "\n";
  std::cout << "    Shape check: negative correlation (similar patterns get"
               " high attention) -> "
            << (corr < 0.0 ? "yes (matches paper Fig. 4a)" : "no") << "\n\n";

  // --- (b) inter attention heat map on a supply-chain edge -----------------
  const core::EdgeAttentionRecord* chosen = nullptr;
  for (const auto& record : probe.inter) {
    for (const auto& nb : dataset->graph().InNeighbors(record.u)) {
      if (nb.node == record.v &&
          nb.type == graph::EdgeType::kSupplyChain &&
          dataset->series_length(record.u) ==
              static_cast<int>(dataset->history_len()) &&
          dataset->series_length(record.v) ==
              static_cast<int>(dataset->history_len())) {
        chosen = &record;
        break;
      }
    }
    if (chosen != nullptr) break;
  }
  if (chosen == nullptr && !probe.inter.empty()) chosen = &probe.inter.front();
  if (chosen == nullptr) {
    std::cout << "(b) no inter edges in graph; skipping heat map\n";
    return 0;
  }
  std::cout << "(b) Inter attention heat map, centre shop " << chosen->u
            << " <- neighbour " << chosen->v << " (supply-chain edge):\n";
  PrintHeatmap(chosen->attention);

  // Average lag the centre looks into the neighbour's past.
  double lag_sum = 0.0, weight_sum = 0.0;
  const int64_t t_len = chosen->attention.dim(0);
  for (int64_t i = 0; i < t_len; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      lag_sum += chosen->attention.at(i, j) * static_cast<double>(i - j);
      weight_sum += chosen->attention.at(i, j);
    }
  }
  std::cout << "    Mean attention lag = "
            << TablePrinter::FormatDouble(lag_sum / weight_sum, 2)
            << " months (positive = centre attends to the neighbour's past,"
               " consistent with supplier lead)\n";
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
