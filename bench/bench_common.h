#ifndef GAIA_BENCH_BENCH_COMMON_H_
#define GAIA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/forecast_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"

namespace gaia::bench {

/// \brief Workload scale shared by all experiment drivers.
///
/// Controlled by the GAIA_BENCH_SCALE environment variable: "small"
/// (default, minutes on one core) or "full" (larger market, more epochs,
/// smoother curves). Every driver prints the scale and seed it used.
struct BenchScale {
  std::string name;
  int64_t num_shops;
  int train_epochs;
  int64_t channels;
  uint64_t seed;
};

/// Reads GAIA_BENCH_SCALE (and GAIA_BENCH_SEED) from the environment.
BenchScale GetBenchScale();

/// Number of independent market repetitions (GAIA_BENCH_REPS, default 1).
/// Rep r uses market seed scale.seed + 1000 * r; headline tables report the
/// across-rep average to damp market-to-market variance.
int GetBenchReps();

/// Element-wise average of per-rep evaluation reports (same method).
core::EvaluationReport AverageReports(
    const std::vector<core::EvaluationReport>& reports);

/// Market config used by the paper-reproduction drivers at this scale.
data::MarketConfig MakeMarketConfig(const BenchScale& scale);

/// Training config used for every trainable model at this scale.
core::TrainConfig MakeTrainConfig(const BenchScale& scale);

/// Builds market + dataset, aborting on (programmer) config errors.
std::unique_ptr<data::ForecastDataset> BuildDataset(const BenchScale& scale);

/// Trains `model` and evaluates it on the dataset's test split; prints a
/// one-line progress note to stderr.
core::EvaluationReport TrainAndEvaluate(core::ForecastModel* model,
                                        const data::ForecastDataset& dataset,
                                        const core::TrainConfig& config);

/// Month label of horizon step h given the dataset calendar (Oct/Nov/Dec for
/// the default configuration).
std::string HorizonMonthName(const data::MarketConfig& config, int h);

/// Paper-reported Table I values for qualitative side-by-side printing.
struct PaperRow {
  std::string method;
  double mae[3];
  double rmse[3];
  double mape[3];
};
const std::vector<PaperRow>& PaperTable1();

}  // namespace gaia::bench

#endif  // GAIA_BENCH_BENCH_COMMON_H_
