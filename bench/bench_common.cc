#include "bench/bench_common.h"

#include <cstdlib>
#include <iostream>

#include "util/check.h"
#include "util/stopwatch.h"

namespace gaia::bench {

BenchScale GetBenchScale() {
  const char* env = std::getenv("GAIA_BENCH_SCALE");
  const std::string which = env != nullptr ? env : "small";
  uint64_t seed = 42;
  if (const char* seed_env = std::getenv("GAIA_BENCH_SEED")) {
    seed = static_cast<uint64_t>(std::strtoull(seed_env, nullptr, 10));
  }
  if (which == "full") {
    return BenchScale{"full", 700, 250, 32, seed};
  }
  return BenchScale{"small", 300, 150, 32, seed};
}

int GetBenchReps() {
  if (const char* env = std::getenv("GAIA_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1) return reps;
  }
  return 1;
}

namespace {

ts::ForecastMetrics AverageMetrics(
    const std::vector<const ts::ForecastMetrics*>& parts) {
  ts::ForecastMetrics out;
  for (const ts::ForecastMetrics* m : parts) {
    out.mae += m->mae;
    out.rmse += m->rmse;
    out.mape += m->mape;
    out.count += m->count;
    out.mape_count += m->mape_count;
  }
  const auto n = static_cast<double>(parts.size());
  out.mae /= n;
  out.rmse /= n;
  out.mape /= n;
  return out;
}

}  // namespace

core::EvaluationReport AverageReports(
    const std::vector<core::EvaluationReport>& reports) {
  GAIA_CHECK(!reports.empty());
  core::EvaluationReport out;
  out.method = reports.front().method;
  const size_t months = reports.front().per_month.size();
  for (size_t h = 0; h < months; ++h) {
    std::vector<const ts::ForecastMetrics*> parts;
    for (const auto& r : reports) parts.push_back(&r.per_month[h]);
    out.per_month.push_back(AverageMetrics(parts));
  }
  auto collect = [&](auto member) {
    std::vector<const ts::ForecastMetrics*> parts;
    for (const auto& r : reports) parts.push_back(&(r.*member));
    return AverageMetrics(parts);
  };
  out.overall = collect(&core::EvaluationReport::overall);
  out.new_shop = collect(&core::EvaluationReport::new_shop);
  out.old_shop = collect(&core::EvaluationReport::old_shop);
  return out;
}

data::MarketConfig MakeMarketConfig(const BenchScale& scale) {
  data::MarketConfig cfg;
  cfg.num_shops = scale.num_shops;
  cfg.history_months = 24;
  cfg.horizon_months = 3;
  cfg.seed = scale.seed;
  return cfg;
}

core::TrainConfig MakeTrainConfig(const BenchScale& scale) {
  core::TrainConfig cfg;
  cfg.max_epochs = scale.train_epochs;
  cfg.learning_rate = 3e-3f;
  cfg.eval_every = 5;
  cfg.patience = 10;
  cfg.seed = scale.seed + 1;
  return cfg;
}

std::unique_ptr<data::ForecastDataset> BuildDataset(const BenchScale& scale) {
  auto market = data::MarketSimulator(MakeMarketConfig(scale)).Generate();
  GAIA_CHECK(market.ok()) << market.status().ToString();
  data::DatasetOptions options;
  options.split_seed = scale.seed + 2;
  auto dataset = data::ForecastDataset::Create(market.value(), options);
  GAIA_CHECK(dataset.ok()) << dataset.status().ToString();
  return std::make_unique<data::ForecastDataset>(std::move(dataset).value());
}

core::EvaluationReport TrainAndEvaluate(core::ForecastModel* model,
                                        const data::ForecastDataset& dataset,
                                        const core::TrainConfig& config) {
  Stopwatch watch;
  core::TrainResult result = core::Trainer(config).Fit(model, dataset);
  core::EvaluationReport report =
      core::Evaluator::Evaluate(model, dataset, dataset.test_nodes());
  std::cerr << "[bench] " << model->name() << ": " << result.epochs_run
            << " epochs, val=" << result.best_val_loss << ", "
            << watch.ElapsedSeconds() << "s\n";
  return report;
}

std::string HorizonMonthName(const data::MarketConfig& config, int h) {
  static const char* kNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                 "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  const int cal =
      (config.start_calendar_month + config.history_months + h) % 12;
  return kNames[cal];
}

const std::vector<PaperRow>& PaperTable1() {
  static const std::vector<PaperRow>* kTable = new std::vector<PaperRow>{
      {"ARIMA",
       {39493, 40329, 38148},
       {139405, 142378, 104654},
       {0.2145, 0.2427, 0.2010}},
      {"LogTrans",
       {43337, 42895, 41884},
       {550485, 532192, 550884},
       {0.1293, 0.1165, 0.1041}},
      {"GAT",
       {42119, 39961, 37952},
       {472615, 441983, 452788},
       {0.1557, 0.1462, 0.1258}},
      {"GraphSage",
       {40195, 38417, 37278},
       {503052, 472788, 482840},
       {0.1386, 0.1314, 0.1168}},
      {"Geniepath",
       {40472, 38543, 36753},
       {480509, 457190, 466391},
       {0.1475, 0.1380, 0.1189}},
      {"STGCN",
       {42413, 39099, 36368},
       {544015, 514525, 522495},
       {0.1389, 0.1261, 0.1042}},
      {"GMAN",
       {39889, 37467, 34240},
       {412678, 400293, 402699},
       {0.1391, 0.1298, 0.1101}},
      {"MTGNN",
       {28721, 26346, 24357},
       {158596, 141067, 167072},
       {0.1089, 0.0992, 0.0871}},
      {"Gaia",
       {24064, 22467, 20473},
       {112516, 95518, 95051},
       {0.0909, 0.0860, 0.0771}},
  };
  return *kTable;
}

}  // namespace gaia::bench
