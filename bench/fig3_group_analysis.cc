// Reproduces Fig. 3: effectiveness of the e-seller graph. Compares Gaia
// against the strongest non-graph baseline (LogTrans) separately on the
// "New Shop Group" (series length < 10) and "Old Shop Group" (>= 10).
// Shape to check: Gaia improves over LogTrans in both groups, with a larger
// relative margin on new shops (the temporal-deficiency population).

#include <iostream>

#include "baselines/zoo.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace gaia::bench {
namespace {

double Improvement(double baseline, double ours) {
  return baseline > 0.0 ? 100.0 * (baseline - ours) / ours : 0.0;
}

int Run() {
  const BenchScale scale = GetBenchScale();
  std::cout << "=== Fig. 3 reproduction: graph effectiveness by shop age ===\n";
  std::cout << "scale=" << scale.name << " shops=" << scale.num_shops
            << " seed=" << scale.seed << "\n\n";

  auto dataset = BuildDataset(scale);
  const core::TrainConfig train_cfg = MakeTrainConfig(scale);

  core::EvaluationReport reports[2];
  const char* names[2] = {"LogTrans", "Gaia"};
  for (int i = 0; i < 2; ++i) {
    auto model =
        baselines::CreateModel(names[i], *dataset, scale.channels, scale.seed);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    reports[i] = TrainAndEvaluate(model.value().get(), *dataset, train_cfg);
  }

  TablePrinter table({"Group", "Method", "MAE", "MAPE"});
  for (int g = 0; g < 2; ++g) {
    const char* group = g == 0 ? "New Shop (T<10)" : "Old Shop (T>=10)";
    for (int i = 0; i < 2; ++i) {
      const auto& m = g == 0 ? reports[i].new_shop : reports[i].old_shop;
      table.AddRow({group, names[i], TablePrinter::FormatCount(m.mae),
                    TablePrinter::FormatDouble(m.mape, 4)});
    }
    if (g == 0) table.AddSeparator();
  }
  table.Print(std::cout);

  const double new_mae_gain =
      Improvement(reports[0].new_shop.mae, reports[1].new_shop.mae);
  const double old_mae_gain =
      Improvement(reports[0].old_shop.mae, reports[1].old_shop.mae);
  const double new_mape_gain =
      Improvement(reports[0].new_shop.mape, reports[1].new_shop.mape);
  const double old_mape_gain =
      Improvement(reports[0].old_shop.mape, reports[1].old_shop.mape);

  std::cout << "\nGaia improvement over LogTrans (paper: +215.8% MAE / +58.8%"
               " MAPE on new shops vs +88.5% / +41.0% on old shops):\n";
  std::cout << "  New Shop Group: MAE +"
            << TablePrinter::FormatDouble(new_mae_gain, 1) << "%, MAPE +"
            << TablePrinter::FormatDouble(new_mape_gain, 1) << "%\n";
  std::cout << "  Old Shop Group: MAE +"
            << TablePrinter::FormatDouble(old_mae_gain, 1) << "%, MAPE +"
            << TablePrinter::FormatDouble(old_mape_gain, 1) << "%\n";
  std::cout << "Shape check: larger margin on new shops -> "
            << (new_mape_gain > old_mape_gain ? "yes (matches paper)" : "no")
            << "\n";
  return 0;
}

}  // namespace
}  // namespace gaia::bench

int main() { return gaia::bench::Run(); }
