#ifndef GAIA_OPTIM_OPTIMIZER_H_
#define GAIA_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace gaia::optim {

using autograd::Var;

/// \brief Base class for gradient-descent optimizers over a fixed parameter
/// list. Parameters are updated in place; the autograd graph references the
/// same leaf nodes across steps.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// \brief Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba, 2015) — the optimizer the paper trains with.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return step_count_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Rescales gradients in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Var>& params, double max_norm);

/// \brief Patience-based early stopping on a validation metric (lower is
/// better). Typical loop: if (stopper.Update(val_loss)) break;
class EarlyStopping {
 public:
  explicit EarlyStopping(int patience, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {}

  /// Records a new validation value; returns true when training should stop.
  bool Update(double value);

  double best() const { return best_; }
  int bad_epochs() const { return bad_epochs_; }

 private:
  int patience_;
  double min_delta_;
  double best_ = 1e300;
  int bad_epochs_ = 0;
};

}  // namespace gaia::optim

#endif  // GAIA_OPTIM_OPTIMIZER_H_
