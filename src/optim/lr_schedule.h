#ifndef GAIA_OPTIM_LR_SCHEDULE_H_
#define GAIA_OPTIM_LR_SCHEDULE_H_

#include <memory>

namespace gaia::optim {

/// \brief Learning-rate schedule: maps (step, total_steps) to a rate.
/// Steps are 0-based; schedules must be monotone-safe for total_steps <= 1.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  virtual float LearningRate(int step, int total_steps) const = 0;
};

/// Fixed learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LearningRate(int /*step*/, int /*total_steps*/) const override {
    return lr_;
  }

 private:
  float lr_;
};

/// Half-cosine decay from `peak` to `floor` across the run — the default
/// trainer schedule (damps late-training oscillation in attention models).
class CosineDecayLr : public LrSchedule {
 public:
  CosineDecayLr(float peak, float floor) : peak_(peak), floor_(floor) {}
  float LearningRate(int step, int total_steps) const override;

 private:
  float peak_;
  float floor_;
};

/// Multiplies the rate by `factor` every `period` steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float initial, float factor, int period)
      : initial_(initial), factor_(factor), period_(period) {}
  float LearningRate(int step, int total_steps) const override;

 private:
  float initial_;
  float factor_;
  int period_;
};

/// Linear warmup over the first `warmup_steps`, then delegates.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(std::shared_ptr<LrSchedule> inner, int warmup_steps)
      : inner_(std::move(inner)), warmup_steps_(warmup_steps) {}
  float LearningRate(int step, int total_steps) const override;

 private:
  std::shared_ptr<LrSchedule> inner_;
  int warmup_steps_;
};

}  // namespace gaia::optim

#endif  // GAIA_OPTIM_LR_SCHEDULE_H_
