#include "optim/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace gaia::optim {

void Optimizer::ZeroGrad() {
  for (const Var& p : params_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const Var& p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (p->grad.empty()) continue;
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[i];
      for (int64_t j = 0; j < vel.size(); ++j) {
        vel.data()[j] = momentum_ * vel.data()[j] + p->grad.data()[j];
        p->value.data()[j] -= lr_ * vel.data()[j];
      }
    } else {
      for (int64_t j = 0; j < p->value.size(); ++j) {
        p->value.data()[j] -= lr_ * p->grad.data()[j];
      }
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (p->grad.empty()) continue;
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad.data()[j];
      if (weight_decay_ > 0.0f) g += weight_decay_ * p->value.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * g;
      v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * g * g;
      p->value.data()[j] -=
          alpha * m.data()[j] / (std::sqrt(v.data()[j]) + eps_);
    }
  }
}

double ClipGradNorm(const std::vector<Var>& params, double max_norm) {
  GAIA_CHECK_GT(max_norm, 0.0);
  double sum_sq = 0.0;
  for (const Var& p : params) {
    if (p->grad.empty()) continue;
    for (int64_t j = 0; j < p->grad.size(); ++j) {
      const double g = p->grad.data()[j];
      sum_sq += g * g;
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const Var& p : params) {
      if (!p->grad.empty()) p->grad.Scale(scale);
    }
  }
  return norm;
}

bool EarlyStopping::Update(double value) {
  if (value < best_ - min_delta_) {
    best_ = value;
    bad_epochs_ = 0;
    return false;
  }
  ++bad_epochs_;
  return bad_epochs_ >= patience_;
}

}  // namespace gaia::optim
