#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

namespace gaia::optim {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

float CosineDecayLr::LearningRate(int step, int total_steps) const {
  if (total_steps <= 1) return peak_;
  const double progress = std::clamp(
      static_cast<double>(step) / (total_steps - 1), 0.0, 1.0);
  const double amplitude = peak_ - floor_;
  return static_cast<float>(floor_ +
                            amplitude * 0.5 * (1.0 + std::cos(progress * kPi)));
}

float StepDecayLr::LearningRate(int step, int /*total_steps*/) const {
  if (period_ <= 0) return initial_;
  const int drops = step / period_;
  return initial_ * static_cast<float>(std::pow(factor_, drops));
}

float WarmupLr::LearningRate(int step, int total_steps) const {
  const float target = inner_->LearningRate(step, total_steps);
  if (warmup_steps_ <= 0 || step >= warmup_steps_) return target;
  return target * static_cast<float>(step + 1) /
         static_cast<float>(warmup_steps_);
}

}  // namespace gaia::optim
