#ifndef GAIA_NN_INIT_H_
#define GAIA_NN_INIT_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace gaia::nn {

/// Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
Tensor GlorotUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng* rng);

/// He/Kaiming normal initialization: N(0, sqrt(2/fan_in)).
Tensor HeNormal(std::vector<int64_t> shape, int64_t fan_in, Rng* rng);

/// Glorot init for a dense weight [in, out].
Tensor LinearInit(int64_t in, int64_t out, Rng* rng);

/// Glorot init for a conv1d weight [c_out, kernel, c_in].
Tensor Conv1dInit(int64_t c_out, int64_t kernel, int64_t c_in, Rng* rng);

}  // namespace gaia::nn

#endif  // GAIA_NN_INIT_H_
