#include "nn/init.h"

#include <cmath>

#include "util/check.h"

namespace gaia::nn {

Tensor GlorotUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng* rng) {
  GAIA_CHECK_GT(fan_in + fan_out, 0);
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(std::move(shape), rng, -a, a);
}

Tensor HeNormal(std::vector<int64_t> shape, int64_t fan_in, Rng* rng) {
  GAIA_CHECK_GT(fan_in, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Randn(std::move(shape), rng, stddev);
}

Tensor LinearInit(int64_t in, int64_t out, Rng* rng) {
  return GlorotUniform({in, out}, in, out, rng);
}

Tensor Conv1dInit(int64_t c_out, int64_t kernel, int64_t c_in, Rng* rng) {
  return GlorotUniform({c_out, kernel, c_in}, kernel * c_in, kernel * c_out,
                       rng);
}

}  // namespace gaia::nn
