#ifndef GAIA_NN_LAYERS_H_
#define GAIA_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace gaia::nn {

/// \brief Dense affine layer: y = x W + b for x of shape [R, in].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  Var Forward(const Var& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Var weight_;
  Var bias_;  // null when use_bias == false
};

/// \brief 1-D convolution layer over [T, Cin] sequences (length preserving).
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int64_t c_in, int64_t c_out, int64_t kernel, PadMode mode,
              Rng* rng, int64_t dilation = 1, bool use_bias = true);

  Var Forward(const Var& x) const;

  int64_t kernel() const { return kernel_; }
  int64_t dilation() const { return dilation_; }

 private:
  int64_t kernel_;
  PadMode mode_;
  int64_t dilation_;
  Var weight_;
  Var bias_;  // null when use_bias == false
};

/// \brief Inverted dropout. Active only when `training` is true; scales kept
/// activations by 1/(1-p) so evaluation needs no rescaling.
class Dropout : public Module {
 public:
  explicit Dropout(float p) : p_(p) {}

  Var Forward(const Var& x, bool training, Rng* rng) const;

 private:
  float p_;
};

/// \brief Embedding table: integer id -> dense row vector.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng);

  /// Returns the embedding row for `id` as a 1-D var of shape [dim].
  Var Forward(int64_t id) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Var table_;
};

/// \brief Per-row layer normalization with learned affine transform.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features);

  Var Forward(const Var& x) const;

 private:
  Var gamma_;
  Var beta_;
};

/// \brief Single LSTM step. State vectors are 1-D of size `hidden`.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  struct State {
    Var h;  ///< hidden state [hidden]
    Var c;  ///< cell state [hidden]
  };

  /// Zero-initialized state.
  State InitialState() const;

  /// One recurrence step on input x of shape [input_size].
  State Forward(const Var& x, const State& state) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Var w_ih_;  ///< [input, 4*hidden] gate order: i, f, g, o
  Var w_hh_;  ///< [hidden, 4*hidden]
  Var bias_;  ///< [4*hidden]
};

/// \brief Single GRU step (Cho et al., 2014). State is 1-D of size `hidden`.
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  /// Zero-initialized hidden state.
  Var InitialState() const;

  /// One recurrence step on input x of shape [input_size].
  Var Forward(const Var& x, const Var& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Var w_ih_;  ///< [input, 3*hidden] gate order: r, z, n
  Var w_hh_;  ///< [hidden, 3*hidden]
  Var bias_;  ///< [3*hidden]
};

/// \brief Multi-head scaled-dot-product self attention over a [T, C]
/// sequence with dense Q/K/V projections and an optional additive mask.
/// Used by the GMAN baseline and as the "traditional self-attention" in the
/// Gaia w/o-ITA ablation.
class SelfAttention : public Module {
 public:
  SelfAttention(int64_t dim, int64_t num_heads, Rng* rng);

  /// `mask` is an additive [T, T] tensor (0 / kMaskNegInf) or empty.
  Var Forward(const Var& x, const Tensor& mask) const;

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::shared_ptr<Linear> proj_q_;
  std::shared_ptr<Linear> proj_k_;
  std::shared_ptr<Linear> proj_v_;
  std::shared_ptr<Linear> proj_out_;
};

/// \brief Two-layer MLP with ReLU, the default prediction/readout head for
/// baseline models.
class Mlp : public Module {
 public:
  /// `out_bias_init` seeds the output bias; heads feeding a final ReLU over
  /// non-negative targets should pass a positive value to avoid dead units.
  Mlp(int64_t in, int64_t hidden, int64_t out, Rng* rng,
      float out_bias_init = 0.0f);

  Var Forward(const Var& x) const;

 private:
  std::shared_ptr<Linear> fc1_;
  std::shared_ptr<Linear> fc2_;
};

}  // namespace gaia::nn

#endif  // GAIA_NN_LAYERS_H_
