#ifndef GAIA_NN_MODULE_H_
#define GAIA_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace gaia::nn {

using autograd::Var;

/// \brief Base class for neural network building blocks.
///
/// A Module owns named parameters (persistent autograd leaves) and named
/// child modules. Parameter collection is recursive, which is what the
/// optimizers and the checkpoint (de)serializer consume.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children, depth-first.
  std::vector<Var> Parameters() const;

  /// Parameters paired with hierarchical names ("layer1.weight", ...).
  std::vector<std::pair<std::string, Var>> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Serializes all parameters to a binary checkpoint (format v2): a
  /// versioned header (magic, format version, parameter count, finiteness
  /// flag), per-tensor CRC32s and a whole-file CRC32. The file is published
  /// atomically — written to a temp file and renamed — so readers never see
  /// a torn write. Fault site: "checkpoint.write".
  Status Save(const std::string& path) const;

  /// Restores parameters from a checkpoint written by Save. Names and shapes
  /// must match exactly. Verifies magic, version, CRCs and parameter
  /// finiteness *before* touching any parameter: on any error
  /// (StatusCode::kDataLoss for corruption/truncation/non-finite data) the
  /// module is left exactly as it was — a failed Load never half-applies.
  /// Fault site: "checkpoint.read".
  Status Load(const std::string& path);

  /// File-level integrity check (magic, format version, whole-file CRC32,
  /// finiteness flag) without needing a module instance and without
  /// consulting fault-injection sites — used by serving::CheckpointStore to
  /// vet a freshly published file. Does not validate names/shapes against
  /// any particular module; Load does that.
  static Status VerifyCheckpoint(const std::string& path);

 protected:
  /// Registers a trainable parameter initialized with `init`.
  Var AddParameter(std::string name, Tensor init);

  /// Registers (and returns) a child module.
  template <typename M>
  std::shared_ptr<M> AddModule(std::string name, std::shared_ptr<M> module) {
    children_.emplace_back(std::move(name), module);
    return module;
  }

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Var>>* out) const;

  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

}  // namespace gaia::nn

#endif  // GAIA_NN_MODULE_H_
