#ifndef GAIA_NN_MODULE_H_
#define GAIA_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace gaia::nn {

using autograd::Var;

/// \brief Base class for neural network building blocks.
///
/// A Module owns named parameters (persistent autograd leaves) and named
/// child modules. Parameter collection is recursive, which is what the
/// optimizers and the checkpoint (de)serializer consume.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children, depth-first.
  std::vector<Var> Parameters() const;

  /// Parameters paired with hierarchical names ("layer1.weight", ...).
  std::vector<std::pair<std::string, Var>> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Serializes all parameters to a flat binary checkpoint.
  Status Save(const std::string& path) const;

  /// Restores parameters from a checkpoint written by Save. Names and shapes
  /// must match exactly.
  Status Load(const std::string& path);

 protected:
  /// Registers a trainable parameter initialized with `init`.
  Var AddParameter(std::string name, Tensor init);

  /// Registers (and returns) a child module.
  template <typename M>
  std::shared_ptr<M> AddModule(std::string name, std::shared_ptr<M> module) {
    children_.emplace_back(std::move(name), module);
    return module;
  }

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Var>>* out) const;

  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

}  // namespace gaia::nn

#endif  // GAIA_NN_MODULE_H_
