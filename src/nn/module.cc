#include "nn/module.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injector.h"

namespace gaia::nn {

std::vector<Var> Module::Parameters() const {
  std::vector<Var> out;
  for (const auto& [name, var] : NamedParameters()) out.push_back(var);
  return out;
}

std::vector<std::pair<std::string, Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Var>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Var>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Var& p : Parameters()) count += p->value.size();
  return count;
}

void Module::ZeroGrad() {
  for (const Var& p : Parameters()) p->ZeroGrad();
}

Var Module::AddParameter(std::string name, Tensor init) {
  Var param = autograd::Parameter(std::move(init));
  params_.emplace_back(std::move(name), param);
  return param;
}

namespace {

// Checkpoint format v2, little-endian host order (single-machine
// checkpoints; the serving simulation round-trips on the same host):
//   u64 magic "GAIACP02" | u32 version | u64 param count | u32 flags
//   per parameter: u64 name_len, name bytes, u64 ndim, i64 dims...,
//                  raw float data, u32 CRC32 of the float bytes
//   trailer: u32 CRC32 of everything before the trailer
// flags bit 0: every parameter value was finite at save time.
constexpr uint64_t kMagicV1 = 0x4741494143503031ULL;  // "GAIACP01"
constexpr uint64_t kMagicV2 = 0x4741494143503032ULL;  // "GAIACP02"
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kFlagAllFinite = 1u << 0;

void Append(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendScalar(std::string* buf, T value) {
  Append(buf, &value, sizeof(value));
}

/// Bounds-checked sequential reader over the in-memory checkpoint image.
class BufferReader {
 public:
  BufferReader(const std::string& buf, std::string path)
      : buf_(buf), path_(std::move(path)) {}

  Status Read(void* out, size_t n) {
    if (pos_ + n > buf_.size()) {
      return Status::DataLoss("truncated checkpoint: " + path_);
    }
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadScalar(T* out) {
    return Read(out, sizeof(T));
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& buf_;
  std::string path_;
  size_t pos_ = 0;
};

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const size_t read = std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) return Status::IoError("short read: " + path);
  return Status::OK();
}

/// Deterministic single-byte corruption used by the "corrupt" fault kind:
/// flipping a mid-payload byte models bit rot / a torn write that both the
/// whole-file and the per-tensor CRC must catch.
void FlipMiddleByte(std::string* buf) {
  if (buf->empty()) return;
  (*buf)[buf->size() / 2] = static_cast<char>((*buf)[buf->size() / 2] ^ 0x5A);
}

}  // namespace

Status Module::Save(const std::string& path) const {
  util::FaultInjector& faults = util::FaultInjector::Global();
  std::optional<util::FaultKind> fault;
  if (faults.enabled()) fault = faults.Sample("checkpoint.write");
  if (fault && *fault != util::FaultKind::kCorrupt &&
      *fault != util::FaultKind::kNan) {
    return util::FaultStatus(*fault, "checkpoint.write");
  }

  const auto named = NamedParameters();
  std::string buf;
  uint32_t flags = kFlagAllFinite;
  for (const auto& [name, var] : named) {
    const float* data = var->value.data();
    for (int64_t i = 0; i < var->value.size(); ++i) {
      if (!std::isfinite(data[i])) {
        flags &= ~kFlagAllFinite;
        break;
      }
    }
  }
  AppendScalar(&buf, kMagicV2);
  AppendScalar(&buf, kFormatVersion);
  AppendScalar(&buf, static_cast<uint64_t>(named.size()));
  AppendScalar(&buf, flags);
  for (const auto& [name, var] : named) {
    AppendScalar(&buf, static_cast<uint64_t>(name.size()));
    Append(&buf, name.data(), name.size());
    AppendScalar(&buf, static_cast<uint64_t>(var->value.shape().size()));
    for (int64_t d : var->value.shape()) AppendScalar(&buf, d);
    const size_t bytes = sizeof(float) * static_cast<size_t>(var->value.size());
    Append(&buf, var->value.data(), bytes);
    AppendScalar(&buf, util::Crc32(var->value.data(), bytes));
  }
  AppendScalar(&buf, util::Crc32(buf.data(), buf.size()));

  if (fault && *fault == util::FaultKind::kCorrupt) FlipMiddleByte(&buf);

  // Atomic publish: write the full image to a temp file, then rename over
  // the target. Readers either see the old checkpoint or the complete new
  // one, never a partial write.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + tmp);
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot publish checkpoint: " + path);
  }
  return Status::OK();
}

Status Module::Load(const std::string& path) {
  util::FaultInjector& faults = util::FaultInjector::Global();
  std::optional<util::FaultKind> fault;
  if (faults.enabled()) fault = faults.Sample("checkpoint.read");
  if (fault && *fault != util::FaultKind::kCorrupt) {
    return util::FaultStatus(*fault, "checkpoint.read");
  }

  std::string buf;
  GAIA_RETURN_NOT_OK(ReadFile(path, &buf));
  if (fault && *fault == util::FaultKind::kCorrupt) FlipMiddleByte(&buf);

  // Whole-file integrity first: everything after this parses trusted bytes.
  if (buf.size() < sizeof(uint64_t) + 2 * sizeof(uint32_t)) {
    return Status::DataLoss("truncated checkpoint: " + path);
  }
  uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, buf.data() + buf.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (util::Crc32(buf.data(), buf.size() - sizeof(uint32_t)) !=
      stored_file_crc) {
    return Status::DataLoss("checkpoint CRC mismatch (torn write?): " + path);
  }

  BufferReader reader(buf, path);
  uint64_t magic = 0;
  uint32_t version = 0, flags = 0;
  uint64_t count = 0;
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&magic));
  if (magic == kMagicV1) {
    return Status::DataLoss("unsupported checkpoint format v1 (resave): " +
                            path);
  }
  if (magic != kMagicV2) {
    return Status::DataLoss("bad checkpoint magic: " + path);
  }
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&version));
  if (version != kFormatVersion) {
    return Status::DataLoss("unsupported checkpoint format version " +
                            std::to_string(version) + ": " + path);
  }
  auto named = NamedParameters();
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&count));
  if (count != named.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&flags));
  if ((flags & kFlagAllFinite) == 0) {
    return Status::DataLoss("checkpoint carries non-finite parameters: " +
                            path);
  }

  // Two-phase apply: parse and verify every tensor into staging first, so a
  // mid-file error can never leave the module half-loaded.
  std::vector<std::vector<float>> staged(named.size());
  for (size_t p = 0; p < named.size(); ++p) {
    const auto& [expected_name, var] = named[p];
    uint64_t name_len = 0;
    GAIA_RETURN_NOT_OK(reader.ReadScalar(&name_len));
    if (name_len > buf.size()) {
      return Status::DataLoss("truncated checkpoint: " + path);
    }
    std::string name(name_len, '\0');
    GAIA_RETURN_NOT_OK(reader.Read(name.data(), name_len));
    if (name != expected_name) {
      return Status::InvalidArgument("checkpoint name mismatch: expected " +
                                     expected_name + " got " + name);
    }
    uint64_t ndim = 0;
    GAIA_RETURN_NOT_OK(reader.ReadScalar(&ndim));
    if (ndim > 16) return Status::DataLoss("absurd tensor rank: " + path);
    std::vector<int64_t> shape(ndim);
    for (uint64_t i = 0; i < ndim; ++i) {
      GAIA_RETURN_NOT_OK(reader.ReadScalar(&shape[i]));
    }
    if (shape != var->value.shape()) {
      return Status::InvalidArgument("checkpoint shape mismatch for " + name);
    }
    const size_t bytes = sizeof(float) * static_cast<size_t>(var->value.size());
    staged[p].resize(static_cast<size_t>(var->value.size()));
    GAIA_RETURN_NOT_OK(reader.Read(staged[p].data(), bytes));
    uint32_t stored_tensor_crc = 0;
    GAIA_RETURN_NOT_OK(reader.ReadScalar(&stored_tensor_crc));
    if (util::Crc32(staged[p].data(), bytes) != stored_tensor_crc) {
      return Status::DataLoss("tensor CRC mismatch for " + name + ": " + path);
    }
    for (float v : staged[p]) {
      if (!std::isfinite(v)) {
        return Status::DataLoss("non-finite value in " + name + ": " + path);
      }
    }
  }
  if (reader.pos() != buf.size() - sizeof(uint32_t)) {
    return Status::DataLoss("trailing garbage in checkpoint: " + path);
  }

  for (size_t p = 0; p < named.size(); ++p) {
    std::memcpy(named[p].second->value.data(), staged[p].data(),
                sizeof(float) * staged[p].size());
  }
  return Status::OK();
}

Status Module::VerifyCheckpoint(const std::string& path) {
  std::string buf;
  GAIA_RETURN_NOT_OK(ReadFile(path, &buf));
  if (buf.size() < sizeof(uint64_t) + 3 * sizeof(uint32_t) +
                       sizeof(uint64_t)) {
    return Status::DataLoss("truncated checkpoint: " + path);
  }
  uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, buf.data() + buf.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (util::Crc32(buf.data(), buf.size() - sizeof(uint32_t)) !=
      stored_file_crc) {
    return Status::DataLoss("checkpoint CRC mismatch (torn write?): " + path);
  }
  BufferReader reader(buf, path);
  uint64_t magic = 0, count = 0;
  uint32_t version = 0, flags = 0;
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&magic));
  if (magic != kMagicV2) {
    return Status::DataLoss("bad checkpoint magic: " + path);
  }
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&version));
  if (version != kFormatVersion) {
    return Status::DataLoss("unsupported checkpoint format version " +
                            std::to_string(version) + ": " + path);
  }
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&count));
  GAIA_RETURN_NOT_OK(reader.ReadScalar(&flags));
  if ((flags & kFlagAllFinite) == 0) {
    return Status::DataLoss("checkpoint carries non-finite parameters: " +
                            path);
  }
  return Status::OK();
}

}  // namespace gaia::nn
