#include "nn/module.h"

#include <cstdint>
#include <cstdio>

#include "util/check.h"

namespace gaia::nn {

std::vector<Var> Module::Parameters() const {
  std::vector<Var> out;
  for (const auto& [name, var] : NamedParameters()) out.push_back(var);
  return out;
}

std::vector<std::pair<std::string, Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Var>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Var>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Var& p : Parameters()) count += p->value.size();
  return count;
}

void Module::ZeroGrad() {
  for (const Var& p : Parameters()) p->ZeroGrad();
}

Var Module::AddParameter(std::string name, Tensor init) {
  Var param = autograd::Parameter(std::move(init));
  params_.emplace_back(std::move(name), param);
  return param;
}

namespace {

// Checkpoint format: magic, count, then per parameter: name length, name,
// ndim, dims..., raw float data. Little-endian host order (single-machine
// checkpoints; the serving simulation round-trips on the same host).
constexpr uint64_t kMagic = 0x4741494143503031ULL;  // "GAIACP01"

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

Status Module::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  auto named = NamedParameters();
  uint64_t count = named.size();
  bool ok = WriteBytes(f, &kMagic, sizeof(kMagic)) &&
            WriteBytes(f, &count, sizeof(count));
  for (const auto& [name, var] : named) {
    if (!ok) break;
    uint64_t name_len = name.size();
    uint64_t ndim = var->value.shape().size();
    ok = WriteBytes(f, &name_len, sizeof(name_len)) &&
         WriteBytes(f, name.data(), name.size()) &&
         WriteBytes(f, &ndim, sizeof(ndim));
    for (int64_t d : var->value.shape()) {
      ok = ok && WriteBytes(f, &d, sizeof(d));
    }
    ok = ok && WriteBytes(f, var->value.data(),
                          sizeof(float) * static_cast<size_t>(var->value.size()));
  }
  std::fclose(f);
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

Status Module::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  uint64_t magic = 0, count = 0;
  if (!ReadBytes(f, &magic, sizeof(magic)) || magic != kMagic) {
    std::fclose(f);
    return Status::IoError("bad checkpoint magic: " + path);
  }
  auto named = NamedParameters();
  if (!ReadBytes(f, &count, sizeof(count)) || count != named.size()) {
    std::fclose(f);
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  for (auto& [expected_name, var] : named) {
    uint64_t name_len = 0;
    if (!ReadBytes(f, &name_len, sizeof(name_len))) break;
    std::string name(name_len, '\0');
    if (!ReadBytes(f, name.data(), name_len)) break;
    if (name != expected_name) {
      std::fclose(f);
      return Status::InvalidArgument("checkpoint name mismatch: expected " +
                                     expected_name + " got " + name);
    }
    uint64_t ndim = 0;
    if (!ReadBytes(f, &ndim, sizeof(ndim))) break;
    std::vector<int64_t> shape(ndim);
    bool ok = true;
    for (uint64_t i = 0; i < ndim; ++i) {
      ok = ok && ReadBytes(f, &shape[i], sizeof(int64_t));
    }
    if (!ok || shape != var->value.shape()) {
      std::fclose(f);
      return Status::InvalidArgument("checkpoint shape mismatch for " + name);
    }
    if (!ReadBytes(f, var->value.data(),
                   sizeof(float) * static_cast<size_t>(var->value.size()))) {
      std::fclose(f);
      return Status::IoError("short read for " + name);
    }
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace gaia::nn
