#include "nn/layers.h"

#include <cmath>

#include "nn/init.h"
#include "util/check.h"

namespace gaia::nn {

using autograd::Var;
namespace ag = autograd;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter("weight", LinearInit(in_features, out_features, rng));
  if (use_bias) {
    bias_ = AddParameter("bias", Tensor({out_features}));
  }
}

Var Linear::Forward(const Var& x) const {
  GAIA_CHECK_EQ(x->value.ndim(), 2);
  GAIA_CHECK_EQ(x->value.dim(1), in_features_);
  Var out = ag::MatMul(x, weight_);
  if (bias_) out = ag::AddRowVector(out, bias_);
  return out;
}

Conv1dLayer::Conv1dLayer(int64_t c_in, int64_t c_out, int64_t kernel,
                         PadMode mode, Rng* rng, int64_t dilation,
                         bool use_bias)
    : kernel_(kernel), mode_(mode), dilation_(dilation) {
  weight_ = AddParameter("weight", Conv1dInit(c_out, kernel, c_in, rng));
  if (use_bias) {
    bias_ = AddParameter("bias", Tensor({c_out}));
  }
}

Var Conv1dLayer::Forward(const Var& x) const {
  return ag::Conv1d(x, weight_, bias_, mode_, dilation_);
}

Var Dropout::Forward(const Var& x, bool training, Rng* rng) const {
  if (!training || p_ <= 0.0f) return x;
  GAIA_CHECK(rng != nullptr);
  const float keep = 1.0f - p_;
  Tensor mask(x->value.shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return ag::Mul(x, ag::Constant(std::move(mask)));
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng* rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  table_ = AddParameter(
      "table", Tensor::Randn({num_embeddings, dim}, rng,
                             1.0f / std::sqrt(static_cast<float>(dim))));
}

Var Embedding::Forward(int64_t id) const {
  GAIA_CHECK_GE(id, 0);
  GAIA_CHECK_LT(id, num_embeddings_);
  return ag::SelectRow(table_, id);
}

LayerNorm::LayerNorm(int64_t features) {
  gamma_ = AddParameter("gamma", Tensor::Ones({features}));
  beta_ = AddParameter("beta", Tensor({features}));
}

Var LayerNorm::Forward(const Var& x) const {
  return ag::LayerNormRows(x, gamma_, beta_);
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = AddParameter("w_ih", LinearInit(input_size, 4 * hidden_size, rng));
  w_hh_ = AddParameter("w_hh", LinearInit(hidden_size, 4 * hidden_size, rng));
  Tensor b({4 * hidden_size});
  // Forget-gate bias starts at 1 so early training does not forget.
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) b.at(i) = 1.0f;
  bias_ = AddParameter("bias", std::move(b));
}

LstmCell::State LstmCell::InitialState() const {
  return State{ag::Constant(Tensor({hidden_size_})),
               ag::Constant(Tensor({hidden_size_}))};
}

LstmCell::State LstmCell::Forward(const Var& x, const State& state) const {
  GAIA_CHECK_EQ(x->value.ndim(), 1);
  GAIA_CHECK_EQ(x->value.dim(0), input_size_);
  // gates = x W_ih + h W_hh + b, computed with row-matrix reshapes.
  Var xr = ag::Reshape(x, {1, input_size_});
  Var hr = ag::Reshape(state.h, {1, hidden_size_});
  Var gates = ag::AddRowVector(
      ag::Add(ag::MatMul(xr, w_ih_), ag::MatMul(hr, w_hh_)), bias_);
  gates = ag::Reshape(gates, {4 * hidden_size_});
  Var i_gate = ag::Sigmoid(ag::SelectSpan(gates, 0, hidden_size_));
  Var f_gate = ag::Sigmoid(ag::SelectSpan(gates, hidden_size_, hidden_size_));
  Var g_gate = ag::Tanh(ag::SelectSpan(gates, 2 * hidden_size_, hidden_size_));
  Var o_gate = ag::Sigmoid(ag::SelectSpan(gates, 3 * hidden_size_, hidden_size_));
  Var c_next = ag::Add(ag::Mul(f_gate, state.c), ag::Mul(i_gate, g_gate));
  Var h_next = ag::Mul(o_gate, ag::Tanh(c_next));
  return State{h_next, c_next};
}

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = AddParameter("w_ih", LinearInit(input_size, 3 * hidden_size, rng));
  w_hh_ = AddParameter("w_hh", LinearInit(hidden_size, 3 * hidden_size, rng));
  bias_ = AddParameter("bias", Tensor({3 * hidden_size}));
}

Var GruCell::InitialState() const {
  return ag::Constant(Tensor({hidden_size_}));
}

Var GruCell::Forward(const Var& x, const Var& h) const {
  GAIA_CHECK_EQ(x->value.dim(0), input_size_);
  GAIA_CHECK_EQ(h->value.dim(0), hidden_size_);
  Var xr = ag::Reshape(x, {1, input_size_});
  Var hr = ag::Reshape(h, {1, hidden_size_});
  Var gx = ag::Reshape(ag::AddRowVector(ag::MatMul(xr, w_ih_), bias_),
                       {3 * hidden_size_});
  Var gh = ag::Reshape(ag::MatMul(hr, w_hh_), {3 * hidden_size_});
  Var r = ag::Sigmoid(ag::Add(ag::SelectSpan(gx, 0, hidden_size_),
                              ag::SelectSpan(gh, 0, hidden_size_)));
  Var z = ag::Sigmoid(
      ag::Add(ag::SelectSpan(gx, hidden_size_, hidden_size_),
              ag::SelectSpan(gh, hidden_size_, hidden_size_)));
  // Candidate state gates the recurrent contribution with r.
  Var n = ag::Tanh(ag::Add(
      ag::SelectSpan(gx, 2 * hidden_size_, hidden_size_),
      ag::Mul(r, ag::SelectSpan(gh, 2 * hidden_size_, hidden_size_))));
  // h' = (1 - z) * n + z * h
  Var ones = ag::Constant(Tensor::Ones({hidden_size_}));
  return ag::Add(ag::Mul(ag::Sub(ones, z), n), ag::Mul(z, h));
}

SelfAttention::SelfAttention(int64_t dim, int64_t num_heads, Rng* rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  GAIA_CHECK_EQ(head_dim_ * num_heads_, dim_)
      << "dim must be divisible by num_heads";
  proj_q_ = AddModule("q", std::make_shared<Linear>(dim, dim, rng));
  proj_k_ = AddModule("k", std::make_shared<Linear>(dim, dim, rng));
  proj_v_ = AddModule("v", std::make_shared<Linear>(dim, dim, rng));
  proj_out_ = AddModule("out", std::make_shared<Linear>(dim, dim, rng));
}

Var SelfAttention::Forward(const Var& x, const Tensor& mask) const {
  GAIA_CHECK_EQ(x->value.ndim(), 2);
  GAIA_CHECK_EQ(x->value.dim(1), dim_);
  const int64_t t_len = x->value.dim(0);
  if (!mask.empty()) {
    GAIA_CHECK_EQ(mask.dim(0), t_len);
    GAIA_CHECK_EQ(mask.dim(1), t_len);
  }
  Var q = proj_q_->Forward(x);
  Var k = proj_k_->Forward(x);
  Var v = proj_v_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Var> heads;
  heads.reserve(num_heads_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    Var qh = ag::SliceCols(q, h * head_dim_, head_dim_);
    Var kh = ag::SliceCols(k, h * head_dim_, head_dim_);
    Var vh = ag::SliceCols(v, h * head_dim_, head_dim_);
    Var logits = ag::ScalarMul(ag::MatMul(qh, ag::Transpose(kh)), scale);
    if (!mask.empty()) logits = ag::Add(logits, ag::Constant(mask));
    Var attn = ag::SoftmaxRows(logits);
    heads.push_back(ag::MatMul(attn, vh));
  }
  return proj_out_->Forward(ag::ConcatCols(heads));
}

Mlp::Mlp(int64_t in, int64_t hidden, int64_t out, Rng* rng,
         float out_bias_init) {
  fc1_ = AddModule("fc1", std::make_shared<Linear>(in, hidden, rng));
  fc2_ = AddModule("fc2", std::make_shared<Linear>(hidden, out, rng));
  if (out_bias_init != 0.0f) {
    // fc2's bias is its second registered parameter.
    fc2_->Parameters()[1]->value.Fill(out_bias_init);
  }
}

Var Mlp::Forward(const Var& x) const {
  return fc2_->Forward(ag::Relu(fc1_->Forward(x)));
}

}  // namespace gaia::nn
