#include "obs/event_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace gaia::obs {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void JsonEscapeInto(const char* s, size_t max_len, std::string* out) {
  for (size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
    char c = s[i];
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

EventLog::EventLog(size_t capacity)
    : capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
    for (size_t w = 0; w < kWords; ++w) {
      slots_[i].words[w].store(0, std::memory_order_relaxed);
    }
  }
}

EventLog::~EventLog() { delete[] slots_; }

void EventLog::Append(const EventRecord& record) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  EventRecord stamped = record;
  if (stamped.ts_ns == 0) stamped.ts_ns = NowNs();

  uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  // Seqlock publish: odd while writing, 2*idx+2 (even, slot-unique) when
  // stable.  Readers that race with us see an odd or mismatched seq and skip.
  slot.seq.store(2 * idx + 1, std::memory_order_release);
  uint64_t words[kWords];
  std::memcpy(words, &stamped, sizeof(stamped));
  for (size_t w = 0; w < kWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(2 * idx + 2, std::memory_order_release);
}

std::vector<EventRecord> EventLog::Recent(size_t n) const {
  std::vector<EventRecord> newest_first;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t span = std::min<uint64_t>(head, capacity_);
  for (uint64_t back = 0; back < span && newest_first.size() < n; ++back) {
    const uint64_t idx = head - 1 - back;
    const Slot& slot = slots_[idx & mask_];
    const uint64_t want = 2 * idx + 2;
    uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 != want) continue;  // torn, overwritten, or never written
    uint64_t words[kWords];
    for (size_t w = 0; w < kWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s2 != want) continue;
    EventRecord record;
    std::memcpy(&record, words, sizeof(record));
    newest_first.push_back(record);
  }
  // Oldest-first reads better in /requestz and dumps.
  return std::vector<EventRecord>(newest_first.rbegin(), newest_first.rend());
}

void AppendRecordJson(const EventRecord& record, std::string* out) {
  *out += "{\"request_id\":\"";
  *out += std::to_string(record.request_id);
  *out += "\",\"ts_ns\":";
  *out += std::to_string(record.ts_ns);
  *out += ",\"shop\":";
  *out += std::to_string(record.shop);
  *out += ",\"shard\":";
  *out += std::to_string(record.shard);
  *out += ",\"served_by\":\"";
  *out += (record.served_by == 0 ? "model" : "fallback");
  *out += "\",\"cancelled\":";
  *out += (record.cancelled != 0 ? "true" : "false");
  *out += ",\"queue_wait_ms\":";
  AppendDouble(record.queue_wait_ms, out);
  *out += ",\"latency_ms\":";
  AppendDouble(record.latency_ms, out);
  *out += ",\"reason\":\"";
  JsonEscapeInto(record.reason, sizeof(record.reason), out);
  *out += "\"}";
}

std::string EventLog::RecentJson(size_t n) const {
  const std::vector<EventRecord> records = Recent(n);
  std::string out = "{\"total_appended\":";
  out += std::to_string(total_appended());
  out += ",\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"events\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    AppendRecordJson(records[i], &out);
  }
  out += "]}";
  return out;
}

uint64_t EventLog::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  return head > capacity_ ? head - capacity_ : 0;
}

void EventLog::Clear() {
  head_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
}

EventLog& EventLog::Global() {
  static EventLog* log = [] {
    EventLog* l = new EventLog(kDefaultCapacity);
    const char* env = std::getenv("GAIA_EVENTLOG");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      l->SetEnabled(true);
    }
    return l;
  }();
  return *log;
}

uint64_t NextRequestId() {
  static std::atomic<uint64_t> sequence{0};
  // +1 so the first id is SplitMix64(1), never the all-zero sentinel.
  return SplitMix64(sequence.fetch_add(1, std::memory_order_relaxed) + 1);
}

}  // namespace gaia::obs
