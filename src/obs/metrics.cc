#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace gaia::obs {

namespace {

Level LevelFromEnv() {
  const char* env = std::getenv("GAIA_OBS");
  if (env == nullptr || *env == '\0') return Level::kOff;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
    return Level::kOff;
  }
  if (std::strcmp(env, "2") == 0 || std::strcmp(env, "detail") == 0 ||
      std::strcmp(env, "trace") == 0) {
    return Level::kDetail;
  }
  return Level::kOn;  // "1", "on", or anything else truthy
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

/// Formats a double the way Prometheus clients do: shortest round-trip-ish
/// representation without locale surprises.
std::string FormatDouble(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << v;
  return os.str();
}

/// Minimal JSON string escaping for metric names (which we control, but the
/// exporter should never emit malformed JSON regardless).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus text-format HELP escaping: backslash and newline must be
/// escaped so a multi-line help string cannot break the exposition framing.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus metric names are restricted to [a-zA-Z_:][a-zA-Z0-9_:]*; any
/// other byte is replaced with '_' at export time so a stray registration
/// can never produce an unscrapable page. Well-formed names pass through
/// untouched (the export stays byte-identical for every gaia_* metric).
std::string SanitizeName(const std::string& s) {
  if (s.empty()) return "_";
  std::string out = s;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out;
}

}  // namespace

Level CurrentLevel() {
  return static_cast<Level>(LevelStorage().load(std::memory_order_relaxed));
}

void SetLevel(Level level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t desired = Encode(Decode(observed) + delta);
    if (bits_.compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void Gauge::Max(double v) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  for (;;) {
    if (Decode(observed) >= v) return;
    if (bits_.compare_exchange_weak(observed, Encode(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + v;
    uint64_t desired;
    std::memcpy(&desired, &next, sizeof(desired));
    if (sum_bits_.compare_exchange_weak(observed, desired,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBuckets() {
  return ExponentialBuckets(1e-6, 2.0, 24);  // 1us .. ~8.4s
}

double Histogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr) {
    entry.counter = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.histogram == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBuckets();
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    entry.help = help;
  }
  return *entry.histogram;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  for (const auto& [raw_name, entry] : metrics_) {
    const std::string name = SanitizeName(raw_name);
    if (!entry.help.empty()) {
      os << "# HELP " << name << " " << EscapeHelp(entry.help) << "\n";
    }
    if (entry.counter != nullptr) {
      os << "# TYPE " << name << " counter\n";
      os << name << " " << entry.counter->value() << "\n";
    }
    if (entry.gauge != nullptr) {
      os << "# TYPE " << name << " gauge\n";
      os << name << " " << FormatDouble(entry.gauge->value()) << "\n";
    }
    if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      os << "# TYPE " << name << " histogram\n";
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.bucket_count(i);
        os << name << "_bucket{le=\"" << FormatDouble(h.bounds()[i]) << "\"} "
           << cumulative << "\n";
      }
      cumulative += h.bucket_count(h.bounds().size());
      os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      os << name << "_sum " << FormatDouble(h.sum()) << "\n";
      os << name << "_count " << h.count() << "\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  auto emit_section = [&os](const char* title, auto member, auto emit_value,
                            const std::map<std::string, Entry>& metrics) {
    os << "\"" << title << "\":{";
    bool first = true;
    for (const auto& [name, entry] : metrics) {
      if ((entry.*member) == nullptr) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(name) << "\":";
      emit_value(*(entry.*member));
    }
    os << "}";
  };
  os << "{";
  emit_section(
      "counters", &Entry::counter,
      [&os](const Counter& c) { os << c.value(); }, metrics_);
  os << ",";
  emit_section(
      "gauges", &Entry::gauge,
      [&os](const Gauge& g) { os << FormatDouble(g.value()); }, metrics_);
  os << ",";
  emit_section(
      "histograms", &Entry::histogram,
      [&os](const Histogram& h) {
        os << "{\"bounds\":[";
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) os << ",";
          os << FormatDouble(h.bounds()[i]);
        }
        os << "],\"counts\":[";
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) os << ",";
          os << h.bucket_count(i);
        }
        os << "],\"count\":" << h.count()
           << ",\"sum\":" << FormatDouble(h.sum()) << "}";
      },
      metrics_);
  os << "}";
  return os.str();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.gauge == nullptr) return 0.0;
  return it->second.gauge->value();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSamples()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> samples;
  samples.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    if (entry.counter != nullptr) {
      samples.emplace_back(name, entry.counter->value());
    }
  }
  return samples;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

}  // namespace gaia::obs
