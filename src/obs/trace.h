#ifndef GAIA_OBS_TRACE_H_
#define GAIA_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gaia::obs {

/// \brief One completed span. `name` must be a string literal (spans are
/// recorded on hot paths; no allocation happens per span).
struct SpanRecord {
  const char* name = nullptr;
  uint64_t start_ns = 0;   ///< steady-clock ns since TraceBuffer epoch
  uint64_t dur_ns = 0;
  uint64_t id = 0;         ///< unique per span, process-wide
  uint64_t parent_id = 0;  ///< 0 = top-level on its thread
  uint32_t tid = 0;        ///< dense per-thread id (0 = first seen thread)
};

/// Aggregate wall-time statistics for one span name.
struct SpanStats {
  uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

/// \brief Fixed-capacity ring of completed spans plus a by-name aggregate.
///
/// The ring keeps the most recent `capacity` spans for Chrome-trace dumps
/// and wraps silently (dropped() counts overwritten records); the aggregate
/// map counts *every* span ever recorded, so per-phase totals from
/// AggregateByName() stay exact even after the ring wraps. Record() takes a
/// short mutex — tracing is a profiling tool, not a steady-state cost: with
/// the level at kOff, TraceSpan construction is a single relaxed load and
/// nothing here is touched.
class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static TraceBuffer& Global();
  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  void Record(const SpanRecord& record);

  /// Oldest-to-newest snapshot of the retained ring contents.
  std::vector<SpanRecord> Snapshot() const;
  /// Spans overwritten after the ring wrapped.
  uint64_t dropped() const;
  /// Spans recorded since construction / last Clear (ring + overwritten).
  uint64_t total_recorded() const;

  /// Exact per-name statistics over every recorded span.
  std::map<std::string, SpanStats> AggregateByName() const;

  /// Chrome trace_event JSON (open in chrome://tracing or Perfetto):
  /// complete ("ph":"X") events with microsecond timestamps, one lane per
  /// pool thread, span ids threaded through the args for parent lookup.
  void DumpChromeTrace(std::ostream& os) const;

  /// Drops all retained spans and aggregates.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t capacity_;
  uint64_t next_slot_ = 0;  // total records ever; slot = next_slot_ % capacity
  std::map<std::string, SpanStats> aggregate_;
};

/// \brief RAII wall-time scope recorded into TraceBuffer::Global().
///
/// Parenting is tracked through a thread-local span stack, so nested spans
/// — including spans opened inside ParallelFor bodies on worker threads —
/// form a per-thread hierarchy. Construction is a no-op (one relaxed atomic
/// load) unless CurrentLevel() >= `min_level`; instrumentation never
/// touches the data it measures, so determinism guarantees are unaffected.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Level min_level = Level::kOn);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is live (level was high enough at construction).
  bool active() const { return active_; }
  /// Id of the innermost active span on this thread (0 = none).
  static uint64_t CurrentSpanId();

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  bool active_ = false;
};

namespace internal_trace {
/// Steady-clock ns since the process trace epoch (first use).
uint64_t NowNs();
/// Dense id for the calling thread (0 = first thread observed).
uint32_t ThreadId();
}  // namespace internal_trace

}  // namespace gaia::obs

// Convenience macros: a phase-level span and a high-frequency detail span.
// Compile to nothing when GAIA_OBS_DISABLE is defined (the CMake
// -DGAIA_OBS_DISABLE=ON kill switch); otherwise cost one relaxed load when
// the runtime level is kOff.
#ifdef GAIA_OBS_DISABLE
#define GAIA_OBS_SPAN(name) ((void)0)
#define GAIA_OBS_SPAN_DETAIL(name) ((void)0)
#else
#define GAIA_OBS_CONCAT_INNER_(a, b) a##b
#define GAIA_OBS_CONCAT_(a, b) GAIA_OBS_CONCAT_INNER_(a, b)
#define GAIA_OBS_SPAN(name) \
  ::gaia::obs::TraceSpan GAIA_OBS_CONCAT_(gaia_obs_span_, __LINE__)(name)
#define GAIA_OBS_SPAN_DETAIL(name)                                      \
  ::gaia::obs::TraceSpan GAIA_OBS_CONCAT_(gaia_obs_span_, __LINE__)(    \
      name, ::gaia::obs::Level::kDetail)
#endif

#endif  // GAIA_OBS_TRACE_H_
