#ifndef GAIA_OBS_OBS_H_
#define GAIA_OBS_OBS_H_

/// \file Umbrella header for the observability layer: include this from
/// instrumentation sites. See docs/OBSERVABILITY.md for the metric/span
/// naming conventions and the operator workflow (GAIA_OBS levels, exporters,
/// Chrome traces, the live admin endpoints, tools/metrics_snapshot and
/// tools/trace_dump).

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#endif  // GAIA_OBS_OBS_H_
