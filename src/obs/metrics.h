#ifndef GAIA_OBS_METRICS_H_
#define GAIA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gaia::obs {

/// \brief Runtime observability level for the whole process.
///
/// kOff (default) keeps every instrumentation site down to a single relaxed
/// atomic load; kOn records phase-level spans and metrics; kDetail adds the
/// per-node/per-edge spans (CAU attends, pool chunks) that make Chrome
/// traces dense but cost a ring-buffer write per event.
enum class Level : int { kOff = 0, kOn = 1, kDetail = 2 };

/// Current level. Initialized once from the GAIA_OBS environment variable
/// ("" or "0" = off, "1"/"on" = on, "2"/"detail" = detail); overridable at
/// runtime with SetLevel. The load is relaxed — flipping the level while
/// parallel work is in flight is safe but takes effect per-site.
Level CurrentLevel();
void SetLevel(Level level);

/// True when phase-level instrumentation should record (level >= kOn).
inline bool Enabled() { return CurrentLevel() >= Level::kOn; }
/// True when high-frequency instrumentation should record (level >= kDetail).
inline bool DetailEnabled() { return CurrentLevel() >= Level::kDetail; }

/// \brief Monotonically increasing event count. Lock-free; safe to bump
/// from any thread, including ParallelFor bodies.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (doubles). Add() is a CAS loop
/// so concurrent adders never lose updates.
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double delta);
  /// Raises the gauge to `v` if below it (CAS loop, lock-free). High-water
  /// marks (gaia_arena_high_water) use this so concurrent observers never
  /// regress the mark.
  void Max(double v);
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// \brief Fixed-bucket histogram (Prometheus classic layout): cumulative
/// counts per upper bound plus a +Inf overflow bucket, total count and sum.
/// Observe() is lock-free: one binary search over the immutable bounds and
/// two relaxed atomic adds, so it is safe inside ParallelFor bodies and
/// cannot perturb the deterministic kernels it measures.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bounds; an implicit +Inf bucket
  /// is appended. The default layout suits latencies in seconds.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// 2^k-style layout: start, start*factor, ... (count bounds).
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                int count);
  /// Default latency layout: 1us .. ~8.6s in x2 steps (24 buckets).
  static std::vector<double> DefaultLatencyBuckets();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double, CAS-accumulated
};

/// \brief Process-wide registry mapping metric names to instances.
///
/// Registration takes a mutex; hot paths should hold the returned reference
/// (references are stable for the registry's lifetime — metrics are
/// heap-allocated and never removed). Names follow the Prometheus
/// convention documented in docs/OBSERVABILITY.md:
/// `gaia_<area>_<what>[_<unit>][_total]`.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the named counter, creating it on first use. `help` is kept
  /// from the first registration.
  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  /// On first use creates the histogram with `bounds` (empty = default
  /// latency buckets); later calls ignore `bounds` and return the original.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {},
                          const std::string& help = "");

  /// Prometheus text exposition format (# HELP / # TYPE / samples), metrics
  /// sorted by name; histograms emit cumulative `_bucket{le=...}`, `_sum`,
  /// `_count` series.
  std::string ExportPrometheus() const;
  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {"bounds": [...], "counts": [...], "count": n, "sum": s}}}.
  std::string ExportJson() const;

  /// Read-only snapshot of a counter's current value without creating it:
  /// returns 0 when `name` is unregistered. The bench harness uses this to
  /// attribute pool/allocation counters to a case without registering
  /// instruments the workload itself never touched.
  uint64_t CounterValue(const std::string& name) const;

  /// Read-only snapshot of a gauge's current value without creating it;
  /// returns 0.0 when `name` is unregistered. /statusz uses this to report
  /// arena high-water marks without registering them itself.
  double GaugeValue(const std::string& name) const;

  /// Name/value snapshot of every registered counter, sorted by name. The
  /// dist worker diffs two snapshots to ship per-epoch deltas upstream.
  std::vector<std::pair<std::string, uint64_t>> CounterSamples() const;

  /// Zeroes every registered metric (tools and tests isolate runs with
  /// this); registrations themselves are kept.
  void ResetAll();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::string help;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  // ordered => sorted exports
};

}  // namespace gaia::obs

#endif  // GAIA_OBS_METRICS_H_
