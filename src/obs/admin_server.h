#ifndef GAIA_OBS_ADMIN_SERVER_H_
#define GAIA_OBS_ADMIN_SERVER_H_

// Embedded admin HTTP server: the live operational plane for a running
// Gaia process.  A tiny blocking-accept HTTP/1.0 server (POSIX sockets, one
// acceptor thread + a small handler pool, std-only) that exposes the
// in-process observability state over localhost:
//
//   GET /metrics       Prometheus text format — the exact bytes of
//                      MetricsRegistry::ExportPrometheus()
//   GET /metrics.json  MetricsRegistry::ExportJson()
//   GET /healthz       200 "ok" when every registered check passes,
//                      503 listing the failing checks otherwise
//   GET /readyz        alias of /healthz (same check set)
//   GET /statusz       JSON: pid, uptime, obs level, arena stats, event-log
//                      totals, check results, and caller-provided info keys
//                      (serving generation, checkpoint CRC, build info)
//   GET /tracez        JSON per-span-name aggregates from TraceBuffer
//   GET /requestz?n=K  last K records from the request EventLog
//   GET /quitz         200 and wakes WaitForQuit() (clean remote shutdown)
//
// The server only *reads* process state; it never feeds the numeric path,
// so enabling it cannot change any forecast byte.  It is off by default —
// nothing listens unless Start() is called (gaia_cli --admin-port).
//
// This header sits in src/obs below src/util, so errors are reported via a
// bool + std::string rather than util::Status.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gaia::obs {

struct AdminServerOptions {
  // Loopback by default: the admin plane is an operator tool, not a public
  // endpoint.
  std::string bind_address = "127.0.0.1";
  // 0 = pick an ephemeral port (tests); port() reports the bound port.
  int port = 0;
  int handler_threads = 2;
  int backlog = 16;
};

class AdminServer {
 public:
  // A health check: returns true when healthy; on failure may describe why
  // via `detail`.  Checks run on handler threads, so they must be
  // thread-safe and fast (atomic flag reads, not RPCs).
  using Check = std::function<bool(std::string* detail)>;
  // An info provider for /statusz: returns a human-readable value.
  using Info = std::function<std::string()>;

  AdminServer() = default;
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds, listens and spawns the acceptor + handler threads.  Returns false
  // (with `*error` set, if given) on socket failures; false if already
  // started.
  bool Start(const AdminServerOptions& options, std::string* error = nullptr);

  // Stops accepting, drains handler threads and closes the listen socket.
  // Idempotent; also called from the destructor.
  void Stop();

  // Port actually bound (resolves port 0); 0 when not started.
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Registers a named health check / info key.  Call before or after
  // Start(); registration is mutex-protected.
  void AddCheck(const std::string& name, Check check);
  void AddInfo(const std::string& key, Info info);

  // Blocks until GET /quitz arrives or `timeout_ms` elapses (< 0 = forever).
  // Returns true if quit was requested.  Lets `gaia_cli serve --admin-wait`
  // park the process until an operator or CI script releases it.
  bool WaitForQuit(double timeout_ms = -1.0);

  // The exact body /metrics serves — exposed so tests can assert
  // byte-identity between a socket scrape and the in-process exporter.
  static std::string MetricsBody();

 private:
  struct Route {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  void AcceptLoop();
  void HandlerLoop();
  void HandleConnection(int fd);
  Route Dispatch(const std::string& path, const std::string& query);
  Route HealthRoute();
  Route StatusRoute();

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  // Accepted connections waiting for a handler thread.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
  bool queue_closed_ = false;

  std::mutex reg_mu_;
  std::vector<std::pair<std::string, Check>> checks_;
  std::vector<std::pair<std::string, Info>> info_;

  std::mutex quit_mu_;
  std::condition_variable quit_cv_;
  bool quit_requested_ = false;

  uint64_t start_ns_ = 0;
};

}  // namespace gaia::obs

#endif  // GAIA_OBS_ADMIN_SERVER_H_
