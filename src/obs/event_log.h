#ifndef GAIA_OBS_EVENT_LOG_H_
#define GAIA_OBS_EVENT_LOG_H_

// Request-scoped event log: a bounded lock-free ring of structured records
// that acts as a black-box flight recorder for the serving tier.  Every
// served (or cancelled) request appends one EventRecord carrying its
// splitmix64-derived request id, the shop, how it was served, queue wait and
// latency — so a live /requestz scrape (or a post-mortem JSON dump) can
// answer "why did request X degrade?" without logs or a debugger.
//
// Like the rest of src/obs this header depends on the C++ standard library
// only.  The ring is written with plain atomics (a seqlock per slot), so it
// is safe to append from many serving threads while an admin handler reads —
// readers simply discard slots that were mid-write.  Appends never touch the
// numeric path: enabling or disabling the log cannot change any forecast.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace gaia::obs {

// Per-request correlation state threaded through the serving call chain.
// Created at the edge (ShardedServer::Submit or a direct Predict call) and
// passed down so the final EventRecord carries queue time and shard routing.
struct RequestContext {
  uint64_t request_id = 0;
  double queue_wait_ms = 0.0;
  int32_t shard = -1;
};

// One structured record per request.  Fixed-size and trivially copyable so a
// slot is just a run of atomic words; the reason string is truncated to fit.
struct EventRecord {
  uint64_t request_id = 0;
  uint64_t ts_ns = 0;       // steady-clock stamp at append time
  int32_t shop = -1;
  int32_t shard = -1;       // -1 for unsharded serving
  uint32_t served_by = 0;   // 0 = model, 1 = fallback
  uint32_t cancelled = 0;   // 1 if the request was cancelled before serving
  double queue_wait_ms = 0.0;
  double latency_ms = 0.0;
  char reason[40] = {};     // degraded_reason, truncated; empty if clean
};
static_assert(sizeof(EventRecord) % sizeof(uint64_t) == 0,
              "EventRecord must pack into whole 64-bit words");
static_assert(std::is_trivially_copyable<EventRecord>::value,
              "EventRecord slots are copied word-by-word");

// Bounded ring of EventRecords.  Writers claim a monotonically increasing
// slot index with fetch_add and publish via a per-slot sequence number
// (odd = write in progress, even = stable); readers validate the sequence
// on both sides of the copy and drop torn slots.  All slot state is atomic,
// so the structure is race-free by construction (and TSan-clean).
class EventLog {
 public:
  // Capacity is rounded up to a power of two; Global() uses kDefaultCapacity.
  static constexpr size_t kDefaultCapacity = 4096;

  explicit EventLog(size_t capacity = kDefaultCapacity);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Appends one record if the log is enabled; a single relaxed load when off.
  void Append(const EventRecord& record);

  // Most recent `n` stable records, oldest first.  Torn or overwritten slots
  // are skipped, so fewer than `n` records may come back under heavy writes.
  std::vector<EventRecord> Recent(size_t n) const;

  // JSON array of Recent(n).  request_id is emitted as a decimal *string*
  // ("request_id":"1234...") because 64-bit ids overflow doubles in most
  // JSON consumers.
  std::string RecentJson(size_t n) const;

  // Total appends since construction/Clear, and how many of those have been
  // overwritten (total - capacity, clamped at zero).
  uint64_t total_appended() const {
    return head_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

  // Runtime gate.  Global() seeds this from GAIA_EVENTLOG=1; the CLI admin
  // plane and tests flip it explicitly.
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Resets head and invalidates all slots.  Test-only convenience; not safe
  // against concurrent appends.
  void Clear();

  // Process-wide log used by the serving tier and the admin server.
  static EventLog& Global();

 private:
  static constexpr size_t kWords = sizeof(EventRecord) / sizeof(uint64_t);

  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::atomic<uint64_t> words[kWords];
  };

  size_t capacity_;          // power of two
  size_t mask_;
  Slot* slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<bool> enabled_{false};
};

// Fresh request id: splitmix64 of a process-wide counter, so ids are unique
// within a process and well-mixed (usable directly as log-search keys).
uint64_t NextRequestId();

// Serializes one record as a JSON object (shared by RecentJson and tests).
void AppendRecordJson(const EventRecord& record, std::string* out);

}  // namespace gaia::obs

#endif  // GAIA_OBS_EVENT_LOG_H_
