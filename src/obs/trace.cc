#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>

namespace gaia::obs {

namespace internal_trace {

namespace {
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

}  // namespace internal_trace

namespace {

std::atomic<uint64_t> g_next_span_id{1};

/// Innermost active span id on this thread; parent of the next span opened.
thread_local uint64_t tl_current_span = 0;

}  // namespace

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_slot_ % capacity_] = record;
  }
  ++next_slot_;
  SpanStats& stats = aggregate_[record.name];
  ++stats.count;
  const double ms = static_cast<double>(record.dur_ns) * 1e-6;
  stats.total_ms += ms;
  if (ms > stats.max_ms) stats.max_ms = ms;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_slot_ <= capacity_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  const size_t head = next_slot_ % capacity_;  // oldest retained record
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(head));
  return out;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_slot_ > capacity_ ? next_slot_ - capacity_ : 0;
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_slot_;
}

std::map<std::string, SpanStats> TraceBuffer::AggregateByName() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregate_;
}

void TraceBuffer::DumpChromeTrace(std::ostream& os) const {
  const std::vector<SpanRecord> spans = Snapshot();
  // Complete events; timestamps and durations are decimal microseconds.
  auto micros = [](uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << span.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << span.tid << ",\"ts\":" << micros(span.start_ns)
       << ",\"dur\":" << micros(span.dur_ns)
       << ",\"args\":{\"id\":" << span.id
       << ",\"parent\":" << span.parent_id << "}}";
  }
  os << "]}";
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  aggregate_.clear();
}

TraceSpan::TraceSpan(const char* name, Level min_level) {
  if (CurrentLevel() < min_level) return;
  active_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = tl_current_span;
  tl_current_span = id_;
  start_ns_ = internal_trace::NowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.dur_ns = internal_trace::NowNs() - start_ns_;
  record.id = id_;
  record.parent_id = parent_id_;
  record.tid = internal_trace::ThreadId();
  tl_current_span = parent_id_;
  TraceBuffer::Global().Record(record);
}

uint64_t TraceSpan::CurrentSpanId() { return tl_current_span; }

}  // namespace gaia::obs
