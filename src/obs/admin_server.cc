#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gaia::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

// Best-effort full write; the peer may close early, which is fine.
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

// Parses "n=K" style query parameters; returns fallback when absent/bad.
size_t QueryParamN(const std::string& query, size_t fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string kv = query.substr(pos, amp - pos);
    if (kv.size() > 2 && kv.compare(0, 2, "n=") == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(kv.c_str() + 2, &end, 10);
      if (end != kv.c_str() + 2 && v > 0) return static_cast<size_t>(v);
    }
    pos = amp + 1;
  }
  return fallback;
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

bool AdminServer::Start(const AdminServerOptions& options, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("admin server already started");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad bind address: " + options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return fail(message);
  }
  if (::listen(fd, options.backlog > 0 ? options.backlog : 16) != 0) {
    const std::string message = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return fail(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string message =
        std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return fail(message);
  }

  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  start_ns_ = NowNs();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
    pending_fds_.clear();
  }
  running_.store(true, std::memory_order_release);

  const int threads = options.handler_threads > 0 ? options.handler_threads : 1;
  handlers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(): shutdown makes the blocking accept return on Linux.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  // Drain any connections no handler picked up.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void AdminServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      // Transient accept failure (e.g. EMFILE); keep serving.
      continue;
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void AdminServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !pending_fds_.empty(); });
      if (!pending_fds_.empty()) {
        fd = pending_fds_.front();
        pending_fds_.pop_front();
      } else if (queue_closed_) {
        return;
      }
    }
    if (fd >= 0) HandleConnection(fd);
  }
}

void AdminServer::HandleConnection(int fd) {
  // A stalled client must not wedge a handler thread forever.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  constexpr size_t kMaxRequestBytes = 8192;
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  Route route;
  const size_t line_end = request.find("\r\n");
  std::string method, target;
  if (line_end != std::string::npos) {
    std::istringstream line(request.substr(0, line_end));
    std::string version;
    line >> method >> target >> version;
  }
  if (method != "GET" || target.empty() || target[0] != '/') {
    route.status = 404;
    route.body = "bad request\n";
  } else {
    std::string path = target, query;
    const size_t qpos = target.find('?');
    if (qpos != std::string::npos) {
      path = target.substr(0, qpos);
      query = target.substr(qpos + 1);
    }
    route = Dispatch(path, query);
  }

  std::string response = "HTTP/1.0 " + std::to_string(route.status) + " " +
                         StatusText(route.status) + "\r\n";
  response += "Content-Type: " + route.content_type + "\r\n";
  response += "Content-Length: " + std::to_string(route.body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += route.body;
  WriteAll(fd, response);
  ::close(fd);
}

std::string AdminServer::MetricsBody() {
  // Count the scrape *before* rendering so a scrape's own counter is already
  // included — the returned page is then byte-identical to an
  // ExportPrometheus() call made right after it.
  MetricsRegistry::Global()
      .GetCounter("gaia_admin_requests_total",
                  "HTTP requests handled by the admin server")
      .Increment();
  return MetricsRegistry::Global().ExportPrometheus();
}

AdminServer::Route AdminServer::Dispatch(const std::string& path,
                                         const std::string& query) {
  Route route;
  if (path == "/metrics") {
    route.body = MetricsBody();
    route.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return route;
  }
  // Every non-/metrics route counts itself too (after this point the body
  // does not embed the counter, so order no longer matters).
  MetricsRegistry::Global()
      .GetCounter("gaia_admin_requests_total",
                  "HTTP requests handled by the admin server")
      .Increment();
  if (path == "/metrics.json") {
    route.body = MetricsRegistry::Global().ExportJson();
    route.content_type = "application/json";
    return route;
  }
  if (path == "/healthz" || path == "/readyz") return HealthRoute();
  if (path == "/statusz") return StatusRoute();
  if (path == "/tracez") {
    const TraceBuffer& tb = TraceBuffer::Global();
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << "{\"total_recorded\":" << tb.total_recorded()
       << ",\"dropped\":" << tb.dropped() << ",\"spans\":{";
    bool first = true;
    for (const auto& [name, stats] : tb.AggregateByName()) {
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(name) << "\":{\"count\":" << stats.count
         << ",\"total_ms\":" << stats.total_ms
         << ",\"max_ms\":" << stats.max_ms << "}";
    }
    os << "}}";
    route.body = os.str();
    route.content_type = "application/json";
    return route;
  }
  if (path == "/requestz") {
    route.body = EventLog::Global().RecentJson(QueryParamN(query, 50));
    route.content_type = "application/json";
    return route;
  }
  if (path == "/quitz") {
    {
      std::lock_guard<std::mutex> lock(quit_mu_);
      quit_requested_ = true;
    }
    quit_cv_.notify_all();
    route.body = "quitting\n";
    return route;
  }
  route.status = 404;
  route.body = "not found: " + path + "\n";
  return route;
}

AdminServer::Route AdminServer::HealthRoute() {
  std::vector<std::pair<std::string, Check>> checks;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    checks = checks_;
  }
  std::string failures;
  for (const auto& [name, check] : checks) {
    std::string detail;
    if (!check(&detail)) {
      failures += name;
      if (!detail.empty()) failures += ": " + detail;
      failures += "\n";
    }
  }
  Route route;
  if (failures.empty()) {
    route.body = "ok\n";
  } else {
    route.status = 503;
    route.body = failures;
  }
  return route;
}

AdminServer::Route AdminServer::StatusRoute() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const EventLog& log = EventLog::Global();
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\"pid\":" << ::getpid()
     << ",\"uptime_seconds\":" << (NowNs() - start_ns_) * 1e-9
     << ",\"obs_level\":" << static_cast<int>(CurrentLevel())
     << ",\"eventlog\":{\"enabled\":" << (log.enabled() ? "true" : "false")
     << ",\"appended\":" << log.total_appended()
     << ",\"dropped\":" << log.dropped() << "}"
     << ",\"arena\":{\"bytes_in_use\":"
     << registry.GaugeValue("gaia_arena_bytes_in_use")
     << ",\"high_water\":" << registry.GaugeValue("gaia_arena_high_water")
     << ",\"reuse_total\":" << registry.CounterValue("gaia_arena_reuse_total")
     << "}"
     << ",\"drift\":{\"score\":" << registry.GaugeValue("gaia_drift_score")
     << ",\"window_cycles\":"
     << registry.GaugeValue("gaia_drift_window_cycles")
     << ",\"retrains_total\":"
     << registry.CounterValue("gaia_drift_retrains_total")
     << ",\"retrains_suppressed_total\":"
     << registry.CounterValue("gaia_drift_retrains_suppressed_total") << "}";
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    os << ",\"checks\":{";
    bool first = true;
    for (const auto& [name, check] : checks_) {
      std::string detail;
      const bool ok = check(&detail);
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(name) << "\":" << (ok ? "true" : "false");
    }
    os << "},\"info\":{";
    first = true;
    for (const auto& [key, info] : info_) {
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(info()) << "\"";
    }
    os << "}";
  }
  os << "}";
  Route route;
  route.body = os.str();
  route.content_type = "application/json";
  return route;
}

void AdminServer::AddCheck(const std::string& name, Check check) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  checks_.emplace_back(name, std::move(check));
}

void AdminServer::AddInfo(const std::string& key, Info info) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  info_.emplace_back(key, std::move(info));
}

bool AdminServer::WaitForQuit(double timeout_ms) {
  std::unique_lock<std::mutex> lock(quit_mu_);
  if (timeout_ms < 0) {
    quit_cv_.wait(lock, [this] { return quit_requested_; });
    return true;
  }
  return quit_cv_.wait_for(lock,
                           std::chrono::duration<double, std::milli>(timeout_ms),
                           [this] { return quit_requested_; });
}

}  // namespace gaia::obs
