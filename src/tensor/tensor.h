#ifndef GAIA_TENSOR_TENSOR_H_
#define GAIA_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/rng.h"

namespace gaia {

/// \brief Dense row-major float tensor.
///
/// The numeric workhorse of the library: owns a contiguous float buffer plus
/// a shape. Copies are deep; moves are cheap. All shape mismatches are
/// programming errors and abort via GAIA_CHECK — shape-correctness is
/// established at model-construction time through Status-returning factories.
///
/// Storage is a util::FloatBuffer drawn from the per-thread TensorArena:
/// under an ArenaScope (every serving/training hot path opens one) buffers
/// come from and return to a thread-local cache instead of the system heap,
/// so steady-state forwards allocate ~nothing. Buffers are always
/// zero-initialized and 64-byte aligned; see src/util/arena.h and
/// docs/PERFORMANCE.md.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Creates a tensor with the given shape and explicit contents.
  /// Pre: data.size() == product(shape).
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(std::vector<int64_t> shape) { return Full(std::move(shape), 1.0f); }
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// Gaussian-initialized tensor (mean 0, given stddev).
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng, float stddev = 1.0f);

  /// Uniformly initialized tensor in [lo, hi).
  static Tensor RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                            float hi);

  /// 2-D identity matrix of size n x n.
  static Tensor Eye(int64_t n);

  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int64_t axis) const;
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Element access; bounds-checked via GAIA_CHECK (cheap at our scale and
  /// invaluable for catching indexing bugs in model code).
  float& at(int64_t i);
  float at(int64_t i) const;
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Returns a tensor with the same data and a new shape.
  /// Pre: product(new_shape) == size().
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Human-readable shape, e.g. "[24, 32]".
  std::string ShapeString() const;

  /// Renders contents for debugging (truncated for big tensors).
  std::string ToString(int64_t max_elements = 64) const;

  /// In-place fill.
  void Fill(float value);

  /// In-place scaling.
  void Scale(float factor);

  /// In-place accumulate: this += other. Pre: same shape.
  void Accumulate(const Tensor& other);

  /// Sum of all elements.
  double Sum() const;

  /// Mean of all elements. Pre: non-empty.
  double Mean() const;

  /// Max / min over all elements. Pre: non-empty.
  float Max() const;
  float Min() const;

  /// Frobenius / L2 norm of the flattened tensor.
  double Norm() const;

  /// True when all elements are finite (no NaN / inf).
  bool AllFinite() const;

 private:
  std::vector<int64_t> shape_;
  util::FloatBuffer data_;
};

/// Elementwise arithmetic; all require identical shapes.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator/(const Tensor& a, const Tensor& b);

/// Tensor-scalar arithmetic.
Tensor operator+(const Tensor& a, float s);
Tensor operator-(const Tensor& a, float s);
Tensor operator*(const Tensor& a, float s);
Tensor operator*(float s, const Tensor& a);

/// True when shapes match and elements differ by at most `tol`.
bool AllClose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace gaia

#endif  // GAIA_TENSOR_TENSOR_H_
