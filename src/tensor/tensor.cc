#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"
#include "util/compiler.h"

namespace gaia {

namespace {

int64_t Product(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    GAIA_CHECK_GE(d, 0) << "negative dimension in shape";
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(Product(shape_)) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)),
      data_(static_cast<int64_t>(data.size()), data.data()) {
  GAIA_CHECK_EQ(Product(shape_), static_cast<int64_t>(data.size()))
      << "shape does not match data size";
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float stddev) {
  GAIA_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                           float hi) {
  GAIA_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t({n, n});
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

int64_t Tensor::dim(int64_t axis) const {
  GAIA_CHECK_GE(axis, 0);
  GAIA_CHECK_LT(axis, ndim());
  return shape_[static_cast<size_t>(axis)];
}

float& Tensor::at(int64_t i) {
  GAIA_CHECK_EQ(ndim(), 1) << "at(i) on tensor " << ShapeString();
  GAIA_CHECK_GE(i, 0);
  GAIA_CHECK_LT(i, shape_[0]);
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

float& Tensor::at(int64_t i, int64_t j) {
  GAIA_CHECK_EQ(ndim(), 2) << "at(i,j) on tensor " << ShapeString();
  GAIA_CHECK_GE(i, 0);
  GAIA_CHECK_LT(i, shape_[0]);
  GAIA_CHECK_GE(j, 0);
  GAIA_CHECK_LT(j, shape_[1]);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::at(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  GAIA_CHECK_EQ(ndim(), 3) << "at(i,j,k) on tensor " << ShapeString();
  GAIA_CHECK_GE(i, 0);
  GAIA_CHECK_LT(i, shape_[0]);
  GAIA_CHECK_GE(j, 0);
  GAIA_CHECK_LT(j, shape_[1]);
  GAIA_CHECK_GE(k, 0);
  GAIA_CHECK_LT(k, shape_[2]);
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  GAIA_CHECK_EQ(Product(new_shape), size())
      << "reshape from " << ShapeString();
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeString() << " {";
  int64_t n = std::min<int64_t>(size(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (n < size()) os << ", ...";
  os << '}';
  return os.str();
}

void Tensor::Fill(float value) {
  std::fill(data_.data(), data_.data() + size(), value);
}

void Tensor::Scale(float factor) {
  float* GAIA_RESTRICT p = data_.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] *= factor;
}

void Tensor::Accumulate(const Tensor& other) {
  GAIA_CHECK(SameShape(other))
      << ShapeString() << " vs " << other.ShapeString();
  float* GAIA_RESTRICT p = data_.data();
  const float* GAIA_RESTRICT q = other.data_.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] += q[i];
}

double Tensor::Sum() const {
  return std::accumulate(data_.data(), data_.data() + size(), 0.0);
}

double Tensor::Mean() const {
  GAIA_CHECK(!empty());
  return Sum() / static_cast<double>(size());
}

float Tensor::Max() const {
  GAIA_CHECK(!empty());
  return *std::max_element(data_.data(), data_.data() + size());
}

float Tensor::Min() const {
  GAIA_CHECK(!empty());
  return *std::min_element(data_.data(), data_.data() + size());
}

double Tensor::Norm() const {
  double sum_sq = 0.0;
  const float* p = data_.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) sum_sq += static_cast<double>(p[i]) * p[i];
  return std::sqrt(sum_sq);
}

bool Tensor::AllFinite() const {
  return std::all_of(data_.data(), data_.data() + size(),
                     [](float v) { return std::isfinite(v); });
}

namespace {

template <typename Op>
Tensor Zip(const Tensor& a, const Tensor& b, Op op) {
  GAIA_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = op(pa[i], pb[i]);
  return out;
}

template <typename Op>
Tensor MapScalar(const Tensor& a, float s, Op op) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = op(pa[i], s);
  return out;
}

}  // namespace

Tensor operator+(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x + y; });
}
Tensor operator-(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x - y; });
}
Tensor operator*(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x * y; });
}
Tensor operator/(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x / y; });
}

Tensor operator+(const Tensor& a, float s) {
  return MapScalar(a, s, [](float x, float y) { return x + y; });
}
Tensor operator-(const Tensor& a, float s) {
  return MapScalar(a, s, [](float x, float y) { return x - y; });
}
Tensor operator*(const Tensor& a, float s) {
  return MapScalar(a, s, [](float x, float y) { return x * y; });
}
Tensor operator*(float s, const Tensor& a) { return a * s; }

bool AllClose(const Tensor& a, const Tensor& b, float tol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace gaia
