#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace gaia {

namespace {

/// Approximate per-chunk work (in scalar ops) for the parallel kernels.
/// Anything smaller than one chunk runs serially — parallel dispatch costs a
/// few microseconds, so only tensors well past cache size benefit. Chunk
/// boundaries depend on shape only (never thread count), and every output
/// row/element is produced by the same serial inner loop either way, so the
/// parallel kernels are bitwise identical to the serial ones.
constexpr int64_t kGrainWork = int64_t{1} << 15;

/// Splits [0, rows) into chunks carrying ~kGrainWork of `work_per_row` each
/// and runs them on the global pool (inline when one chunk suffices).
template <typename Body>
void ParallelRows(int64_t rows, int64_t work_per_row, const Body& body) {
  const int64_t grain =
      std::max<int64_t>(1, kGrainWork / std::max<int64_t>(1, work_per_row));
  util::ParallelForRange(rows, grain, body);
}

template <typename Fn>
Tensor Map(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelRows(a.size(), 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

/// Leftmost input offset covered by kernel tap 0 for output position 0.
int64_t PadLeft(int64_t kernel_size, PadMode mode, int64_t dilation) {
  int64_t span = (kernel_size - 1) * dilation;
  return mode == PadMode::kCausal ? span : span / 2;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GAIA_CHECK_EQ(k, b.dim(0)) << "MatMul " << a.ShapeString() << " x "
                             << b.ShapeString();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelRows(m, k * n, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float aip = pa[i * k + p];
        if (aip == 0.0f) continue;
        const float* brow = pb + p * n;
        float* orow = po + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += aip * brow[j];
      }
    }
  });
  return out;
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(x.ndim(), 1);
  const int64_t m = a.dim(0), n = a.dim(1);
  GAIA_CHECK_EQ(n, x.dim(0));
  Tensor out({m});
  for (int64_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < n; ++j) acc += a.data()[i * n + j] * x.data()[j];
    out.at(i) = static_cast<float>(acc);
  }
  return out;
}

float Dot(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 1);
  GAIA_CHECK(a.SameShape(b));
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return static_cast<float>(acc);
}

Tensor Transpose(const Tensor& a) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor Outer(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 1);
  GAIA_CHECK_EQ(b.ndim(), 1);
  Tensor out({a.dim(0), b.dim(0)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < b.dim(0); ++j) out.at(i, j) = a.at(i) * b.at(j);
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return Map(a, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return Map(a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Tanh(const Tensor& a) {
  return Map(a, [](float v) { return std::tanh(v); });
}

Tensor Exp(const Tensor& a) {
  return Map(a, [](float v) { return std::exp(v); });
}

Tensor Log(const Tensor& a) {
  return Map(a, [](float v) { return std::log(v); });
}

Tensor Sqrt(const Tensor& a) {
  return Map(a, [](float v) { return std::sqrt(v); });
}

Tensor Abs(const Tensor& a) {
  return Map(a, [](float v) { return std::fabs(v); });
}

Tensor SoftmaxRows(const Tensor& logits) {
  GAIA_CHECK_EQ(logits.ndim(), 2);
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  // exp dominates the per-row cost; weight it when sizing parallel chunks.
  ParallelRows(rows, cols * 8, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* in = logits.data() + i * cols;
      float* po = out.data() + i * cols;
      float row_max = kMaskNegInf;
      for (int64_t j = 0; j < cols; ++j) row_max = std::max(row_max, in[j]);
      if (row_max <= kMaskNegInf) continue;  // fully masked row -> zeros
      double denom = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        float e = in[j] <= kMaskNegInf ? 0.0f : std::exp(in[j] - row_max);
        po[j] = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < cols; ++j) po[j] *= inv;
    }
  });
  return out;
}

Tensor SoftmaxRowsBackward(const Tensor& y, const Tensor& dy) {
  GAIA_CHECK(y.SameShape(dy));
  GAIA_CHECK_EQ(y.ndim(), 2);
  const int64_t rows = y.dim(0), cols = y.dim(1);
  Tensor dx({rows, cols});
  for (int64_t i = 0; i < rows; ++i) {
    const float* py = y.data() + i * cols;
    const float* pdy = dy.data() + i * cols;
    float* pdx = dx.data() + i * cols;
    double inner = 0.0;
    for (int64_t j = 0; j < cols; ++j) inner += static_cast<double>(py[j]) * pdy[j];
    for (int64_t j = 0; j < cols; ++j) {
      pdx[j] = py[j] * (pdy[j] - static_cast<float>(inner));
    }
  }
  return dx;
}

Tensor Softmax1D(const Tensor& logits) {
  GAIA_CHECK_EQ(logits.ndim(), 1);
  Tensor row = logits.Reshape({1, logits.dim(0)});
  return SoftmaxRows(row).Reshape({logits.dim(0)});
}

Tensor SumAxis0(const Tensor& a) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out({cols});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.at(j) += a.at(i, j);
  }
  return out;
}

Tensor SumAxis1(const Tensor& a) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out({rows});
  for (int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < cols; ++j) acc += a.at(i, j);
    out.at(i) = static_cast<float>(acc);
  }
  return out;
}

Tensor AddRowVector(const Tensor& a, const Tensor& v) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(v.ndim(), 1);
  GAIA_CHECK_EQ(a.dim(1), v.dim(0));
  Tensor out = a;
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(i, j) += v.at(j);
  }
  return out;
}

Tensor AddColVector(const Tensor& a, const Tensor& v) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(v.ndim(), 1);
  GAIA_CHECK_EQ(a.dim(0), v.dim(0));
  Tensor out = a;
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(i, j) += v.at(i);
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  GAIA_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    GAIA_CHECK_EQ(p.ndim(), 2);
    GAIA_CHECK_EQ(p.dim(0), rows);
    total_cols += p.dim(1);
  }
  Tensor out({rows, total_cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.dim(1);
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) out.at(i, offset + j) = p.at(i, j);
    }
    offset += cols;
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  GAIA_CHECK(!parts.empty());
  const int64_t cols = parts[0].dim(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    GAIA_CHECK_EQ(p.ndim(), 2);
    GAIA_CHECK_EQ(p.dim(1), cols);
    total_rows += p.dim(0);
  }
  Tensor out({total_rows, cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    for (int64_t i = 0; i < p.dim(0); ++i) {
      for (int64_t j = 0; j < cols; ++j) out.at(offset + i, j) = p.at(i, j);
    }
    offset += p.dim(0);
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_GE(start, 0);
  GAIA_CHECK_LE(start + len, a.dim(1));
  Tensor out({a.dim(0), len});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < len; ++j) out.at(i, j) = a.at(i, start + j);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_GE(start, 0);
  GAIA_CHECK_LE(start + len, a.dim(0));
  Tensor out({len, a.dim(1)});
  for (int64_t i = 0; i < len; ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(i, j) = a.at(start + i, j);
  }
  return out;
}

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              PadMode mode, int64_t dilation) {
  GAIA_CHECK_EQ(input.ndim(), 2);
  GAIA_CHECK_EQ(weight.ndim(), 3);
  GAIA_CHECK_GE(dilation, 1);
  const int64_t t_len = input.dim(0), c_in = input.dim(1);
  const int64_t c_out = weight.dim(0), kernel = weight.dim(1);
  GAIA_CHECK_EQ(weight.dim(2), c_in)
      << "Conv1d channel mismatch: input " << input.ShapeString()
      << " weight " << weight.ShapeString();
  const bool has_bias = !bias.empty();
  if (has_bias) {
    GAIA_CHECK_EQ(bias.ndim(), 1);
    GAIA_CHECK_EQ(bias.dim(0), c_out);
  }
  const int64_t left = PadLeft(kernel, mode, dilation);
  Tensor out({t_len, c_out});
  ParallelRows(t_len, c_out * kernel * c_in,
               [&](int64_t t_begin, int64_t t_end) {
    for (int64_t t = t_begin; t < t_end; ++t) {
      for (int64_t o = 0; o < c_out; ++o) {
        double acc = has_bias ? bias.at(o) : 0.0;
        for (int64_t k = 0; k < kernel; ++k) {
          const int64_t s = t + k * dilation - left;
          if (s < 0 || s >= t_len) continue;
          const float* in_row = input.data() + s * c_in;
          const float* w_row = weight.data() + (o * kernel + k) * c_in;
          for (int64_t c = 0; c < c_in; ++c) acc += in_row[c] * w_row[c];
        }
        out.at(t, o) = static_cast<float>(acc);
      }
    }
  });
  return out;
}

Tensor Conv1dBackwardInput(const Tensor& grad_out, const Tensor& weight,
                           int64_t input_len, PadMode mode, int64_t dilation) {
  GAIA_CHECK_EQ(grad_out.ndim(), 2);
  GAIA_CHECK_EQ(weight.ndim(), 3);
  const int64_t t_len = grad_out.dim(0), c_out = grad_out.dim(1);
  const int64_t kernel = weight.dim(1), c_in = weight.dim(2);
  GAIA_CHECK_EQ(weight.dim(0), c_out);
  GAIA_CHECK_EQ(t_len, input_len) << "Conv1d preserves length";
  const int64_t left = PadLeft(kernel, mode, dilation);
  Tensor grad_in({input_len, c_in});
  for (int64_t t = 0; t < t_len; ++t) {
    for (int64_t o = 0; o < c_out; ++o) {
      const float g = grad_out.at(t, o);
      if (g == 0.0f) continue;
      for (int64_t k = 0; k < kernel; ++k) {
        const int64_t s = t + k * dilation - left;
        if (s < 0 || s >= input_len) continue;
        float* gi_row = grad_in.data() + s * c_in;
        const float* w_row = weight.data() + (o * kernel + k) * c_in;
        for (int64_t c = 0; c < c_in; ++c) gi_row[c] += g * w_row[c];
      }
    }
  }
  return grad_in;
}

Tensor Conv1dBackwardWeight(const Tensor& grad_out, const Tensor& input,
                            int64_t kernel_size, PadMode mode,
                            int64_t dilation) {
  GAIA_CHECK_EQ(grad_out.ndim(), 2);
  GAIA_CHECK_EQ(input.ndim(), 2);
  const int64_t t_len = grad_out.dim(0), c_out = grad_out.dim(1);
  const int64_t c_in = input.dim(1);
  GAIA_CHECK_EQ(input.dim(0), t_len);
  const int64_t left = PadLeft(kernel_size, mode, dilation);
  Tensor grad_w({c_out, kernel_size, c_in});
  for (int64_t t = 0; t < t_len; ++t) {
    for (int64_t o = 0; o < c_out; ++o) {
      const float g = grad_out.at(t, o);
      if (g == 0.0f) continue;
      for (int64_t k = 0; k < kernel_size; ++k) {
        const int64_t s = t + k * dilation - left;
        if (s < 0 || s >= t_len) continue;
        const float* in_row = input.data() + s * c_in;
        float* gw_row = grad_w.data() + (o * kernel_size + k) * c_in;
        for (int64_t c = 0; c < c_in; ++c) gw_row[c] += g * in_row[c];
      }
    }
  }
  return grad_w;
}

Tensor Conv1dBackwardBias(const Tensor& grad_out) { return SumAxis0(grad_out); }

Tensor CausalMask(int64_t t) {
  Tensor mask({t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = i + 1; j < t; ++j) mask.at(i, j) = kMaskNegInf;
  }
  return mask;
}

}  // namespace gaia
