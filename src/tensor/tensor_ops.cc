#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/compiler.h"
#include "util/thread_pool.h"

namespace gaia {

namespace {

/// Approximate per-chunk work (in scalar ops) for the parallel kernels.
/// Anything smaller than one chunk runs serially — parallel dispatch costs a
/// few microseconds, so only tensors well past cache size benefit. Chunk
/// boundaries depend on shape only (never thread count), and every output
/// row/element is produced by the same serial inner loop either way, so the
/// parallel kernels are bitwise identical to the serial ones.
constexpr int64_t kGrainWork = int64_t{1} << 15;

/// Splits [0, rows) into chunks carrying ~kGrainWork of `work_per_row` each
/// and runs them on the global pool (inline when one chunk suffices).
template <typename Body>
void ParallelRows(int64_t rows, int64_t work_per_row, const Body& body) {
  const int64_t grain =
      std::max<int64_t>(1, kGrainWork / std::max<int64_t>(1, work_per_row));
  util::ParallelForRange(rows, grain, body);
}

template <typename Fn>
Tensor Map(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const float* GAIA_RESTRICT pa = a.data();
  float* GAIA_RESTRICT po = out.data();
  ParallelRows(a.size(), 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

/// Leftmost input offset covered by kernel tap 0 for output position 0.
int64_t PadLeft(int64_t kernel_size, PadMode mode, int64_t dilation) {
  int64_t span = (kernel_size - 1) * dilation;
  return mode == PadMode::kCausal ? span : span / 2;
}

// ---------------------------------------------------------------------------
// Packed GEMM (design notes in docs/PERFORMANCE.md)
// ---------------------------------------------------------------------------

constexpr int64_t kMR = 8;    ///< micro-tile rows (A panel width)
constexpr int64_t kNR = 8;    ///< micro-tile cols (B panel width)
constexpr int64_t kKC = 128;  ///< k-dimension cache block (panel depth)
constexpr int64_t kMC = 128;  ///< row cache block; one parallel task each

/// Dispatch floor: below this m*k*n (or with a thin k/n), packing overhead
/// beats the cache win and MatMul stays on the naive kernel — which also
/// keeps the golden tests' small matrices on their historical code path.
/// Measured on an AVX2 host: packed/naive crossover is below 32^3 for
/// square-ish shapes (32^3 ratio 1.85x, 48^3 2.1x, 64^3 2.0x) but thin
/// operands (k or n < 16) waste most of each 8-wide panel, so they stay
/// naive regardless of volume.
constexpr int64_t kPackedMinWork = int64_t{1} << 15;
constexpr int64_t kPackedMinDim = 16;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Thread-local packing scratch, reused across calls. B is packed once per
/// call by the calling thread (workers read it in place — ParallelForRange
/// blocks, so the buffer outlives them); each worker packs A tiles into its
/// own scratch.
thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

/// Packs all of B [k, n] into panel-major form: for each KC block of rows,
/// for each NR-panel of columns, `kc` rows of kNR contiguous values,
/// zero-padded on the right edge. The panel for (k0, j0) starts at
/// k0 * padded_n + (j0 / kNR) * kc * kNR.
void PackB(const float* GAIA_RESTRICT b, int64_t k, int64_t n,
           float* GAIA_RESTRICT out) {
  int64_t offset = 0;
  for (int64_t k0 = 0; k0 < k; k0 += kKC) {
    const int64_t kc = std::min(kKC, k - k0);
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min(kNR, n - j0);
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* GAIA_RESTRICT row = b + (k0 + kk) * n + j0;
        float* GAIA_RESTRICT dst = out + offset + kk * kNR;
        for (int64_t j = 0; j < nr; ++j) dst[j] = row[j];
        for (int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
      offset += kc * kNR;
    }
  }
}

/// Packs the A block rows [i0, i0+mc) x cols [k0, k0+kc) into MR-row panels,
/// k-major within a panel (out[panel][kk][row]), zero-padding the bottom
/// edge. Strided column loads happen once here; the micro-kernel then reads
/// A purely sequentially.
void PackA(const float* GAIA_RESTRICT a, int64_t lda, int64_t i0, int64_t mc,
           int64_t k0, int64_t kc, float* GAIA_RESTRICT out) {
  int64_t offset = 0;
  for (int64_t r0 = 0; r0 < mc; r0 += kMR) {
    const int64_t mr = std::min(kMR, mc - r0);
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* GAIA_RESTRICT col = a + (i0 + r0) * lda + (k0 + kk);
      float* GAIA_RESTRICT dst = out + offset + kk * kMR;
      for (int64_t rr = 0; rr < mr; ++rr) dst[rr] = col[rr * lda];
      for (int64_t rr = mr; rr < kMR; ++rr) dst[rr] = 0.0f;
    }
    offset += kc * kMR;
  }
}

/// 8x8 register-tiled micro-kernel: C += Ap * Bp over `kc` packed k-steps.
/// The C tile is loaded into registers, accumulated with k ascending, and
/// stored once — per element that is the chain ((c + a0*b0) + a1*b1) + ...,
/// exactly the naive kernel's per-element order, so packed and naive agree
/// bitwise on finite inputs (this file builds with -ffp-contract=off so FMA
/// contraction cannot perturb either side). All vector arithmetic is
/// lane-wise — no horizontal ops, no reassociation.
///
/// The accumulators are eight named GCC vector-extension values rather than
/// a float[8][8]: GCC does not reliably scalarize the 2-D array into
/// registers, and a spilled C tile costs 2x over the naive kernel. An
/// 8-lane vector op lowers to one YMM instruction under -mavx2 and to two
/// XMM instructions on baseline x86-64, with identical per-lane results.
#if defined(__GNUC__) || defined(__clang__)
#define GAIA_GEMM_VECTOR_KERNEL 1
typedef float Vec8 __attribute__((vector_size(32)));

GAIA_ALWAYS_INLINE Vec8 Load8(const float* GAIA_RESTRICT p) {
  Vec8 v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned-safe
  return v;
}

GAIA_ALWAYS_INLINE void Store8(float* GAIA_RESTRICT p, Vec8 v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

GAIA_ALWAYS_INLINE void MicroKernelFull(int64_t kc,
                                        const float* GAIA_RESTRICT ap,
                                        const float* GAIA_RESTRICT bp,
                                        float* GAIA_RESTRICT c, int64_t ldc) {
  Vec8 acc0 = Load8(c + 0 * ldc), acc1 = Load8(c + 1 * ldc);
  Vec8 acc2 = Load8(c + 2 * ldc), acc3 = Load8(c + 3 * ldc);
  Vec8 acc4 = Load8(c + 4 * ldc), acc5 = Load8(c + 5 * ldc);
  Vec8 acc6 = Load8(c + 6 * ldc), acc7 = Load8(c + 7 * ldc);
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* GAIA_RESTRICT a_col = ap + kk * kMR;
    const Vec8 b = Load8(bp + kk * kNR);
    // `vector + scalar` broadcasts the scalar across lanes.
    acc0 += (Vec8{} + a_col[0]) * b;
    acc1 += (Vec8{} + a_col[1]) * b;
    acc2 += (Vec8{} + a_col[2]) * b;
    acc3 += (Vec8{} + a_col[3]) * b;
    acc4 += (Vec8{} + a_col[4]) * b;
    acc5 += (Vec8{} + a_col[5]) * b;
    acc6 += (Vec8{} + a_col[6]) * b;
    acc7 += (Vec8{} + a_col[7]) * b;
  }
  Store8(c + 0 * ldc, acc0);
  Store8(c + 1 * ldc, acc1);
  Store8(c + 2 * ldc, acc2);
  Store8(c + 3 * ldc, acc3);
  Store8(c + 4 * ldc, acc4);
  Store8(c + 5 * ldc, acc5);
  Store8(c + 6 * ldc, acc6);
  Store8(c + 7 * ldc, acc7);
}
#else
// Portable fallback; same per-element accumulation chain.
GAIA_ALWAYS_INLINE void MicroKernelFull(int64_t kc,
                                        const float* GAIA_RESTRICT ap,
                                        const float* GAIA_RESTRICT bp,
                                        float* GAIA_RESTRICT c, int64_t ldc) {
  float acc[kMR][kNR];
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* GAIA_RESTRICT a_col = ap + kk * kMR;
    const float* GAIA_RESTRICT b_row = bp + kk * kNR;
    for (int64_t r = 0; r < kMR; ++r) {
      const float a_val = a_col[r];
      for (int64_t j = 0; j < kNR; ++j) acc[r][j] += a_val * b_row[j];
    }
  }
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}
#endif

/// Edge-tile variant: runs the same constant-bound accumulation over the
/// zero-padded panels (padded lanes accumulate zeros and are never stored),
/// loading/storing only the valid mr x nr sub-tile. Valid elements see the
/// identical chain as MicroKernelFull.
void MicroKernelEdge(int64_t kc, const float* GAIA_RESTRICT ap,
                     const float* GAIA_RESTRICT bp, float* GAIA_RESTRICT c,
                     int64_t ldc, int64_t mr, int64_t nr) {
  float acc[kMR][kNR] = {};
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* GAIA_RESTRICT a_col = ap + kk * kMR;
    const float* GAIA_RESTRICT b_row = bp + kk * kNR;
    for (int64_t r = 0; r < kMR; ++r) {
      const float a_val = a_col[r];
      for (int64_t j = 0; j < kNR; ++j) acc[r][j] += a_val * b_row[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

}  // namespace

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GAIA_CHECK_EQ(k, b.dim(0)) << "MatMul " << a.ShapeString() << " x "
                             << b.ShapeString();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelRows(m, k * n, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float aip = pa[i * k + p];
        if (aip == 0.0f) continue;
        const float* GAIA_RESTRICT brow = pb + p * n;
        float* GAIA_RESTRICT orow = po + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += aip * brow[j];
      }
    }
  });
  return out;
}

Tensor MatMulPacked(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GAIA_CHECK_EQ(k, b.dim(0)) << "MatMul " << a.ShapeString() << " x "
                             << b.ShapeString();
  Tensor out({m, n});
  if (m == 0 || n == 0 || k == 0) return out;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();

  const int64_t padded_n = CeilDiv(n, kNR) * kNR;
  std::vector<float>& bpack = tl_pack_b;
  if (static_cast<int64_t>(bpack.size()) < k * padded_n) {
    bpack.resize(static_cast<size_t>(k * padded_n));
  }
  PackB(pb, k, n, bpack.data());
  const float* bp_base = bpack.data();

  // One task per MC row block. Block boundaries depend on shape only and
  // each output element is written by exactly one task, so the result is
  // identical at any thread count.
  const int64_t row_blocks = CeilDiv(m, kMC);
  util::ParallelForRange(
      row_blocks, 1, [&](int64_t blk_begin, int64_t blk_end) {
        std::vector<float>& apack = tl_pack_a;
        if (static_cast<int64_t>(apack.size()) < kMC * kKC) {
          apack.resize(static_cast<size_t>(kMC * kKC));
        }
        for (int64_t blk = blk_begin; blk < blk_end; ++blk) {
          const int64_t i0 = blk * kMC;
          const int64_t mc = std::min(kMC, m - i0);
          for (int64_t k0 = 0; k0 < k; k0 += kKC) {
            const int64_t kc = std::min(kKC, k - k0);
            PackA(pa, k, i0, mc, k0, kc, apack.data());
            const float* bp_block = bp_base + k0 * padded_n;
            for (int64_t j0 = 0; j0 < n; j0 += kNR) {
              const int64_t nr = std::min(kNR, n - j0);
              const float* bp = bp_block + (j0 / kNR) * (kc * kNR);
              for (int64_t r0 = 0; r0 < mc; r0 += kMR) {
                const int64_t mr = std::min(kMR, mc - r0);
                const float* ap = apack.data() + (r0 / kMR) * (kc * kMR);
                float* c = po + (i0 + r0) * n + j0;
                if (mr == kMR && nr == kNR) {
                  MicroKernelFull(kc, ap, bp, c, n);
                } else {
                  MicroKernelEdge(kc, ap, bp, c, n, mr, nr);
                }
              }
            }
          }
        }
      });
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GAIA_CHECK_EQ(k, b.dim(0)) << "MatMul " << a.ShapeString() << " x "
                             << b.ShapeString();
  // Shape-only dispatch: results at a given shape never depend on thread
  // count or any runtime state.
  if (k >= kPackedMinDim && n >= kPackedMinDim && m * k * n >= kPackedMinWork) {
    return MatMulPacked(a, b);
  }
  return MatMulNaive(a, b);
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(x.ndim(), 1);
  const int64_t m = a.dim(0), n = a.dim(1);
  GAIA_CHECK_EQ(n, x.dim(0));
  Tensor out({m});
  for (int64_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < n; ++j) acc += a.data()[i * n + j] * x.data()[j];
    out.at(i) = static_cast<float>(acc);
  }
  return out;
}

float Dot(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 1);
  GAIA_CHECK(a.SameShape(b));
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return static_cast<float>(acc);
}

Tensor Transpose(const Tensor& a) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor Outer(const Tensor& a, const Tensor& b) {
  GAIA_CHECK_EQ(a.ndim(), 1);
  GAIA_CHECK_EQ(b.ndim(), 1);
  Tensor out({a.dim(0), b.dim(0)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < b.dim(0); ++j) out.at(i, j) = a.at(i) * b.at(j);
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return Map(a, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return Map(a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Tanh(const Tensor& a) {
  return Map(a, [](float v) { return std::tanh(v); });
}

Tensor Exp(const Tensor& a) {
  return Map(a, [](float v) { return std::exp(v); });
}

Tensor Log(const Tensor& a) {
  return Map(a, [](float v) { return std::log(v); });
}

Tensor Sqrt(const Tensor& a) {
  return Map(a, [](float v) { return std::sqrt(v); });
}

Tensor Abs(const Tensor& a) {
  return Map(a, [](float v) { return std::fabs(v); });
}

Tensor SoftmaxRows(const Tensor& logits) {
  GAIA_CHECK_EQ(logits.ndim(), 2);
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  const float* GAIA_RESTRICT pin = logits.data();
  float* GAIA_RESTRICT pout = out.data();
  // exp dominates the per-row cost; weight it when sizing parallel chunks.
  ParallelRows(rows, cols * 8, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* GAIA_RESTRICT in = pin + i * cols;
      float* GAIA_RESTRICT po = pout + i * cols;
      float row_max = kMaskNegInf;
      for (int64_t j = 0; j < cols; ++j) row_max = std::max(row_max, in[j]);
      if (row_max <= kMaskNegInf) continue;  // fully masked row -> zeros
      double denom = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        float e = in[j] <= kMaskNegInf ? 0.0f : std::exp(in[j] - row_max);
        po[j] = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      // Stride-1 scale; vectorizes lane-wise (no reassociation involved).
      for (int64_t j = 0; j < cols; ++j) po[j] *= inv;
    }
  });
  return out;
}

Tensor SoftmaxRowsBackward(const Tensor& y, const Tensor& dy) {
  GAIA_CHECK(y.SameShape(dy));
  GAIA_CHECK_EQ(y.ndim(), 2);
  const int64_t rows = y.dim(0), cols = y.dim(1);
  Tensor dx({rows, cols});
  for (int64_t i = 0; i < rows; ++i) {
    const float* GAIA_RESTRICT py = y.data() + i * cols;
    const float* GAIA_RESTRICT pdy = dy.data() + i * cols;
    float* GAIA_RESTRICT pdx = dx.data() + i * cols;
    double inner = 0.0;
    for (int64_t j = 0; j < cols; ++j) inner += static_cast<double>(py[j]) * pdy[j];
    for (int64_t j = 0; j < cols; ++j) {
      pdx[j] = py[j] * (pdy[j] - static_cast<float>(inner));
    }
  }
  return dx;
}

Tensor Softmax1D(const Tensor& logits) {
  GAIA_CHECK_EQ(logits.ndim(), 1);
  Tensor row = logits.Reshape({1, logits.dim(0)});
  return SoftmaxRows(row).Reshape({logits.dim(0)});
}

Tensor SumAxis0(const Tensor& a) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out({cols});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.at(j) += a.at(i, j);
  }
  return out;
}

Tensor SumAxis1(const Tensor& a) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out({rows});
  for (int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < cols; ++j) acc += a.at(i, j);
    out.at(i) = static_cast<float>(acc);
  }
  return out;
}

Tensor AddRowVector(const Tensor& a, const Tensor& v) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(v.ndim(), 1);
  GAIA_CHECK_EQ(a.dim(1), v.dim(0));
  Tensor out = a;
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(i, j) += v.at(j);
  }
  return out;
}

Tensor AddColVector(const Tensor& a, const Tensor& v) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_EQ(v.ndim(), 1);
  GAIA_CHECK_EQ(a.dim(0), v.dim(0));
  Tensor out = a;
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(i, j) += v.at(i);
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  GAIA_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    GAIA_CHECK_EQ(p.ndim(), 2);
    GAIA_CHECK_EQ(p.dim(0), rows);
    total_cols += p.dim(1);
  }
  Tensor out({rows, total_cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.dim(1);
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) out.at(i, offset + j) = p.at(i, j);
    }
    offset += cols;
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  GAIA_CHECK(!parts.empty());
  const int64_t cols = parts[0].dim(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    GAIA_CHECK_EQ(p.ndim(), 2);
    GAIA_CHECK_EQ(p.dim(1), cols);
    total_rows += p.dim(0);
  }
  Tensor out({total_rows, cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    for (int64_t i = 0; i < p.dim(0); ++i) {
      for (int64_t j = 0; j < cols; ++j) out.at(offset + i, j) = p.at(i, j);
    }
    offset += p.dim(0);
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_GE(start, 0);
  GAIA_CHECK_LE(start + len, a.dim(1));
  Tensor out({a.dim(0), len});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < len; ++j) out.at(i, j) = a.at(i, start + j);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  GAIA_CHECK_EQ(a.ndim(), 2);
  GAIA_CHECK_GE(start, 0);
  GAIA_CHECK_LE(start + len, a.dim(0));
  Tensor out({len, a.dim(1)});
  for (int64_t i = 0; i < len; ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(i, j) = a.at(start + i, j);
  }
  return out;
}

namespace {

/// Shared Conv1d body; shape validity established by the caller (Conv1d via
/// GAIA_CHECK, Conv1dChecked via Status). Per output position t the valid
/// kernel-tap window [k_lo, k_hi) is hoisted out of the (o, k) loops — the
/// old kernel re-derived s = t + k*dilation - left and bounds-checked it
/// c_out * kernel times per position. The surviving taps run in the same
/// ascending (k, c) order with the same float-multiply/double-accumulate
/// expression, so outputs are bitwise unchanged.
Tensor Conv1dImpl(const Tensor& input, const Tensor& weight, const Tensor& bias,
                  PadMode mode, int64_t dilation) {
  const int64_t t_len = input.dim(0), c_in = input.dim(1);
  const int64_t c_out = weight.dim(0), kernel = weight.dim(1);
  const bool has_bias = !bias.empty();
  const int64_t left = PadLeft(kernel, mode, dilation);
  Tensor out({t_len, c_out});
  const float* GAIA_RESTRICT pin = input.data();
  const float* GAIA_RESTRICT pw = weight.data();
  float* GAIA_RESTRICT po = out.data();
  ParallelRows(t_len, c_out * kernel * c_in,
               [&](int64_t t_begin, int64_t t_end) {
    for (int64_t t = t_begin; t < t_end; ++t) {
      const int64_t k_lo =
          left > t ? (left - t + dilation - 1) / dilation : 0;
      const int64_t k_hi =
          std::min(kernel, (t_len - 1 - t + left) / dilation + 1);
      const int64_t s0 = t + k_lo * dilation - left;
      for (int64_t o = 0; o < c_out; ++o) {
        double acc = has_bias ? bias.at(o) : 0.0;
        int64_t s = s0;
        for (int64_t k = k_lo; k < k_hi; ++k, s += dilation) {
          const float* GAIA_RESTRICT in_row = pin + s * c_in;
          const float* GAIA_RESTRICT w_row = pw + (o * kernel + k) * c_in;
          for (int64_t c = 0; c < c_in; ++c) acc += in_row[c] * w_row[c];
        }
        po[t * c_out + o] = static_cast<float>(acc);
      }
    }
  });
  return out;
}

}  // namespace

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              PadMode mode, int64_t dilation) {
  GAIA_CHECK_EQ(input.ndim(), 2);
  GAIA_CHECK_EQ(weight.ndim(), 3);
  GAIA_CHECK_GE(dilation, 1);
  GAIA_CHECK_EQ(weight.dim(2), input.dim(1))
      << "Conv1d channel mismatch: input " << input.ShapeString()
      << " weight " << weight.ShapeString();
  if (!bias.empty()) {
    GAIA_CHECK_EQ(bias.ndim(), 1);
    GAIA_CHECK_EQ(bias.dim(0), weight.dim(0));
  }
  return Conv1dImpl(input, weight, bias, mode, dilation);
}

Result<Tensor> Conv1dChecked(const Tensor& input, const Tensor& weight,
                             const Tensor& bias, PadMode mode,
                             int64_t dilation) {
  if (input.ndim() != 2) {
    return Status::InvalidArgument("Conv1d: input must be [T, Cin], got " +
                                   input.ShapeString());
  }
  if (weight.ndim() != 3) {
    return Status::InvalidArgument(
        "Conv1d: weight must be [Cout, K, Cin], got " + weight.ShapeString());
  }
  if (dilation < 1) {
    return Status::InvalidArgument("Conv1d: dilation must be >= 1, got " +
                                   std::to_string(dilation));
  }
  if (weight.dim(0) < 1 || weight.dim(1) < 1) {
    return Status::InvalidArgument("Conv1d: degenerate weight shape " +
                                   weight.ShapeString());
  }
  if (weight.dim(2) != input.dim(1)) {
    return Status::InvalidArgument("Conv1d: channel mismatch, input " +
                                   input.ShapeString() + " vs weight " +
                                   weight.ShapeString());
  }
  if (!bias.empty() &&
      (bias.ndim() != 1 || bias.dim(0) != weight.dim(0))) {
    return Status::InvalidArgument("Conv1d: bias must be [Cout], got " +
                                   bias.ShapeString() + " for weight " +
                                   weight.ShapeString());
  }
  return Conv1dImpl(input, weight, bias, mode, dilation);
}

Tensor Conv1dBackwardInput(const Tensor& grad_out, const Tensor& weight,
                           int64_t input_len, PadMode mode, int64_t dilation) {
  GAIA_CHECK_EQ(grad_out.ndim(), 2);
  GAIA_CHECK_EQ(weight.ndim(), 3);
  const int64_t t_len = grad_out.dim(0), c_out = grad_out.dim(1);
  const int64_t kernel = weight.dim(1), c_in = weight.dim(2);
  GAIA_CHECK_EQ(weight.dim(0), c_out);
  GAIA_CHECK_EQ(t_len, input_len) << "Conv1d preserves length";
  const int64_t left = PadLeft(kernel, mode, dilation);
  Tensor grad_in({input_len, c_in});
  for (int64_t t = 0; t < t_len; ++t) {
    // Same hoisted tap window as the forward kernel; surviving (o, k, c)
    // iterations run in the original order, so gradients are bitwise
    // unchanged.
    const int64_t k_lo = left > t ? (left - t + dilation - 1) / dilation : 0;
    const int64_t k_hi =
        std::min(kernel, (input_len - 1 - t + left) / dilation + 1);
    const int64_t s0 = t + k_lo * dilation - left;
    for (int64_t o = 0; o < c_out; ++o) {
      const float g = grad_out.at(t, o);
      if (g == 0.0f) continue;
      int64_t s = s0;
      for (int64_t k = k_lo; k < k_hi; ++k, s += dilation) {
        float* GAIA_RESTRICT gi_row = grad_in.data() + s * c_in;
        const float* GAIA_RESTRICT w_row =
            weight.data() + (o * kernel + k) * c_in;
        for (int64_t c = 0; c < c_in; ++c) gi_row[c] += g * w_row[c];
      }
    }
  }
  return grad_in;
}

Tensor Conv1dBackwardWeight(const Tensor& grad_out, const Tensor& input,
                            int64_t kernel_size, PadMode mode,
                            int64_t dilation) {
  GAIA_CHECK_EQ(grad_out.ndim(), 2);
  GAIA_CHECK_EQ(input.ndim(), 2);
  const int64_t t_len = grad_out.dim(0), c_out = grad_out.dim(1);
  const int64_t c_in = input.dim(1);
  GAIA_CHECK_EQ(input.dim(0), t_len);
  const int64_t left = PadLeft(kernel_size, mode, dilation);
  Tensor grad_w({c_out, kernel_size, c_in});
  for (int64_t t = 0; t < t_len; ++t) {
    const int64_t k_lo = left > t ? (left - t + dilation - 1) / dilation : 0;
    const int64_t k_hi =
        std::min(kernel_size, (t_len - 1 - t + left) / dilation + 1);
    const int64_t s0 = t + k_lo * dilation - left;
    for (int64_t o = 0; o < c_out; ++o) {
      const float g = grad_out.at(t, o);
      if (g == 0.0f) continue;
      int64_t s = s0;
      for (int64_t k = k_lo; k < k_hi; ++k, s += dilation) {
        const float* GAIA_RESTRICT in_row = input.data() + s * c_in;
        float* GAIA_RESTRICT gw_row =
            grad_w.data() + (o * kernel_size + k) * c_in;
        for (int64_t c = 0; c < c_in; ++c) gw_row[c] += g * in_row[c];
      }
    }
  }
  return grad_w;
}

Tensor Conv1dBackwardBias(const Tensor& grad_out) { return SumAxis0(grad_out); }

Tensor CausalMask(int64_t t) {
  Tensor mask({t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = i + 1; j < t; ++j) mask.at(i, j) = kMaskNegInf;
  }
  return mask;
}

}  // namespace gaia
