#ifndef GAIA_TENSOR_TENSOR_OPS_H_
#define GAIA_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace gaia {

/// Additive mask value treated as "minus infinity" by SoftmaxRows. A finite
/// large-negative value avoids NaN from (-inf) - (-inf) in the max-shift.
inline constexpr float kMaskNegInf = -1e9f;

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// Matrix product of a [m,k] and b [k,n] -> [m,n].
///
/// Dispatches by shape alone (so results are identical at every thread
/// count): large-enough products run the cache-blocked packed kernel,
/// small ones the row-streaming naive kernel. See docs/PERFORMANCE.md for
/// the blocking design and why the two kernels agree bitwise on finite
/// inputs.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// The row-streaming reference kernel (pre-blocking implementation). Public
/// so the packed-vs-naive equivalence property test and the bench suite can
/// pin the packed kernel against it; model code should call MatMul.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);

/// The cache-blocked, register-tiled kernel: packs A into MR-row panels and
/// B into NR-column panels once per call, then drives an 8x8 micro-kernel
/// whose per-element accumulation order is exactly the naive kernel's
/// ascending-k chain — so packed and naive agree bitwise on finite inputs,
/// at any thread count. Parallelism is ParallelForRange over row blocks;
/// chunk boundaries depend on shape only.
Tensor MatMulPacked(const Tensor& a, const Tensor& b);

/// Matrix-vector product of a [m,n] and x [n] -> [m].
Tensor MatVec(const Tensor& a, const Tensor& x);

/// Dot product of two equal-length 1-D tensors.
float Dot(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose(const Tensor& a);

/// Outer product of a [m] and b [n] -> [m,n].
Tensor Outer(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Activations (elementwise)
// ---------------------------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  ///< Natural log; pre: strictly positive input.
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

/// Row-wise softmax of a 2-D tensor. Entries <= kMaskNegInf contribute zero
/// probability. Rows where every entry is masked yield a uniform row of
/// zeros (callers that mask whole rows must handle that themselves).
Tensor SoftmaxRows(const Tensor& logits);

/// Gradient of SoftmaxRows: given y = SoftmaxRows(x) and dL/dy, returns dL/dx.
Tensor SoftmaxRowsBackward(const Tensor& y, const Tensor& dy);

/// Softmax over a 1-D tensor.
Tensor Softmax1D(const Tensor& logits);

// ---------------------------------------------------------------------------
// Reductions and broadcasting
// ---------------------------------------------------------------------------

/// Column sums of a [R,C] tensor -> [C].
Tensor SumAxis0(const Tensor& a);

/// Row sums of a [R,C] tensor -> [R].
Tensor SumAxis1(const Tensor& a);

/// Adds a length-C row vector to every row of a [R,C] tensor.
Tensor AddRowVector(const Tensor& a, const Tensor& v);

/// Adds a length-R column vector to every column of a [R,C] tensor.
Tensor AddColVector(const Tensor& a, const Tensor& v);

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

/// Concatenates 2-D tensors with equal row counts along columns.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates 2-D tensors with equal column counts along rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Column slice [R, len] of a 2-D tensor starting at column `start`.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);

/// Row slice [len, C] of a 2-D tensor starting at row `start`.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);

// ---------------------------------------------------------------------------
// 1-D convolution along the time axis
// ---------------------------------------------------------------------------

/// Zero-padding mode for Conv1d. The paper's TEL uses centered ("same") zero
/// padding (Eq. 5-6); CAU projections use causal padding so convolution
/// features never peek past the current timestamp.
enum class PadMode { kSame, kCausal };

/// 1-D convolution: input [T, Cin], weight [Cout, K, Cin], optional bias
/// [Cout] (pass an empty tensor to skip), output [T, Cout]. `dilation`
/// spaces kernel taps (2^k dilations give the TEL multi-scale receptive
/// fields). Output length always equals input length.
Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              PadMode mode, int64_t dilation = 1);

/// Validated Conv1d: returns kInvalidArgument on any shape mismatch
/// (rank, channel count, bias length, non-positive kernel/dilation) instead
/// of aborting — the single source of truth for Conv1d shape rules (the
/// checked autograd path routes through it, so a mismatched weight can
/// never silently drop taps or truncate the output). On success the output
/// is exactly Conv1d's.
Result<Tensor> Conv1dChecked(const Tensor& input, const Tensor& weight,
                             const Tensor& bias, PadMode mode,
                             int64_t dilation = 1);

/// Gradient of Conv1d w.r.t. its input.
Tensor Conv1dBackwardInput(const Tensor& grad_out, const Tensor& weight,
                           int64_t input_len, PadMode mode, int64_t dilation = 1);

/// Gradient of Conv1d w.r.t. its weight.
Tensor Conv1dBackwardWeight(const Tensor& grad_out, const Tensor& input,
                            int64_t kernel_size, PadMode mode,
                            int64_t dilation = 1);

/// Gradient of Conv1d w.r.t. its bias (column sums of grad_out).
Tensor Conv1dBackwardBias(const Tensor& grad_out);

// ---------------------------------------------------------------------------
// Masks
// ---------------------------------------------------------------------------

/// Lower-triangular causal attention mask M in {0, kMaskNegInf}^{T x T}:
/// M[i][j] = 0 when j <= i (may attend to past/self), else kMaskNegInf.
Tensor CausalMask(int64_t t);

}  // namespace gaia

#endif  // GAIA_TENSOR_TENSOR_OPS_H_
