#include "baselines/geniepath.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

GeniePath::BreadthLayer::BreadthLayer(int64_t dim, Rng* rng) : dim_(dim) {
  proj_ = AddModule("proj", std::make_shared<nn::Linear>(dim, dim, rng,
                                                         /*use_bias=*/false));
  attn_self_ =
      AddParameter("attn_self", Tensor::RandUniform({dim}, rng, -0.3f, 0.3f));
  attn_neigh_ =
      AddParameter("attn_neigh", Tensor::RandUniform({dim}, rng, -0.3f, 0.3f));
}

std::vector<Var> GeniePath::BreadthLayer::Forward(
    const graph::EsellerGraph& graph, const std::vector<Var>& h) const {
  const auto n = static_cast<int32_t>(h.size());
  std::vector<Var> projected, self_score, neigh_score;
  projected.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    Var p = proj_->Forward(ag::Reshape(h[static_cast<size_t>(u)], {1, dim_}));
    p = ag::Reshape(p, {dim_});
    projected.push_back(p);
    self_score.push_back(ag::Dot(ag::Tanh(p), attn_self_));
    neigh_score.push_back(ag::Dot(ag::Tanh(p), attn_neigh_));
  }
  std::vector<Var> out;
  out.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    std::vector<int32_t> sources = {u};
    for (const graph::Neighbor& nb : graph.InNeighbors(u)) {
      sources.push_back(nb.node);
    }
    std::vector<Var> scores;
    scores.reserve(sources.size());
    for (int32_t v : sources) {
      scores.push_back(ag::Add(self_score[static_cast<size_t>(u)],
                               neigh_score[static_cast<size_t>(v)]));
    }
    Var alpha = ag::Softmax1D(ag::StackScalars(scores));
    std::vector<Var> messages;
    messages.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      messages.push_back(ag::ScaleByScalar(
          projected[static_cast<size_t>(sources[i])],
          ag::SelectScalar(alpha, static_cast<int64_t>(i))));
    }
    out.push_back(ag::Tanh(ag::AddN(messages)));
  }
  return out;
}

GeniePath::GeniePath(const GeniePathConfig& config,
                     const data::ForecastDataset& dataset)
    : config_(config) {
  Rng rng(config.seed);
  input_proj_ = AddModule(
      "input", std::make_shared<nn::Linear>(FlatFeatureDim(dataset),
                                            config.hidden, &rng));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    breadth_.push_back(AddModule("breadth" + std::to_string(l),
                                 std::make_shared<BreadthLayer>(config.hidden,
                                                                &rng)));
  }
  depth_ = AddModule("depth", std::make_shared<nn::LstmCell>(
                                  config.hidden, config.hidden, &rng));
  head_ = AddModule("head", std::make_shared<nn::Mlp>(
                                config.hidden, config.hidden,
                                dataset.horizon(), &rng,
                                /*out_bias_init=*/1.0f));
}

std::vector<Var> GeniePath::PredictNodes(const data::ForecastDataset& dataset,
                                         const std::vector<int32_t>& nodes,
                                         bool /*training*/, Rng* /*rng*/) {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<Var> h;
  std::vector<nn::LstmCell::State> states;
  h.reserve(static_cast<size_t>(n));
  states.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    Var x = input_proj_->Forward(
        ag::Reshape(ag::Constant(FlatNodeFeatures(dataset, v)),
                    {1, FlatFeatureDim(dataset)}));
    h.push_back(ag::Tanh(ag::Reshape(x, {config_.hidden})));
    states.push_back(depth_->InitialState());
  }
  // Adaptive path: breadth explores, the shared depth LSTM gates.
  for (const auto& layer : breadth_) {
    std::vector<Var> breadth_out = layer->Forward(dataset.graph(), h);
    for (int32_t v = 0; v < n; ++v) {
      states[static_cast<size_t>(v)] = depth_->Forward(
          breadth_out[static_cast<size_t>(v)], states[static_cast<size_t>(v)]);
      h[static_cast<size_t>(v)] = states[static_cast<size_t>(v)].h;
    }
  }
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    Var pred = head_->Forward(
        ag::Reshape(h[static_cast<size_t>(v)], {1, config_.hidden}));
    out.push_back(ag::Relu(ag::Reshape(pred, {dataset.horizon()})));
  }
  return out;
}

}  // namespace gaia::baselines
