#ifndef GAIA_BASELINES_GRAPHSAGE_H_
#define GAIA_BASELINES_GRAPHSAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct GraphSageConfig {
  int64_t hidden = 32;
  int64_t num_layers = 2;
  /// Neighbours sampled per node per layer (GraphSAGE fanout); 0 = all.
  int64_t fanout = 10;
  uint64_t seed = 41;
};

/// \brief GraphSAGE (Hamilton et al., 2017) with the mean aggregator:
/// h_u' = ReLU(W [h_u || mean_{v in N(u)} h_v]), 2 layers, MLP readout.
class GraphSage : public core::ForecastModel {
 public:
  GraphSage(const GraphSageConfig& config,
            const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "GraphSage"; }

 private:
  class Layer : public nn::Module {
   public:
    Layer(int64_t in_dim, int64_t out_dim, Rng* rng);
    std::vector<Var> Forward(const graph::EsellerGraph& graph,
                             const std::vector<Var>& h, int64_t fanout,
                             Rng* rng) const;

   private:
    std::shared_ptr<nn::Linear> proj_;  ///< [2 * in] -> out
  };

  GraphSageConfig config_;
  std::vector<std::shared_ptr<Layer>> layers_;
  std::shared_ptr<nn::Mlp> head_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_GRAPHSAGE_H_
