#include "baselines/zoo.h"

#include "baselines/gat.h"
#include "baselines/geniepath.h"
#include "baselines/gman.h"
#include "baselines/graphsage.h"
#include "baselines/logtrans.h"
#include "baselines/lstm_forecaster.h"
#include "baselines/mtgnn.h"
#include "baselines/stgcn.h"
#include "core/gaia_model.h"

namespace gaia::baselines {

std::vector<std::string> TrainableModelNames() {
  return {"LogTrans", "GAT",  "GraphSage", "Geniepath",
          "STGCN",    "GMAN", "MTGNN",     "Gaia"};
}

std::vector<std::string> ExtraModelNames() { return {"LSTM", "LSTNet"}; }

Result<std::unique_ptr<core::ForecastModel>> CreateModel(
    const std::string& name, const data::ForecastDataset& dataset,
    int64_t channels, uint64_t seed) {
  const int64_t t_len = dataset.history_len();
  const int64_t horizon = dataset.horizon();
  const int64_t d_temporal = dataset.temporal_dim();
  const int64_t d_static = dataset.static_dim();

  if (name == "LogTrans") {
    LogTransConfig cfg;
    cfg.channels = (channels / 3) * 3;  // divisible by 3 heads
    if (cfg.channels < 3) cfg.channels = 3;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(
        new LogTrans(cfg, t_len, horizon, d_temporal, d_static));
  }
  if (name == "GAT") {
    GatConfig cfg;
    cfg.hidden = 2 * channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new Gat(cfg, dataset));
  }
  if (name == "GraphSage") {
    GraphSageConfig cfg;
    cfg.hidden = 2 * channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new GraphSage(cfg, dataset));
  }
  if (name == "Geniepath") {
    GeniePathConfig cfg;
    cfg.hidden = 2 * channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new GeniePath(cfg, dataset));
  }
  if (name == "STGCN") {
    StgcnConfig cfg;
    cfg.channels = channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new Stgcn(cfg, dataset));
  }
  if (name == "GMAN") {
    GmanConfig cfg;
    cfg.channels = channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new Gman(cfg, dataset));
  }
  if (name == "MTGNN") {
    MtgnnConfig cfg;
    cfg.channels = (channels / 3) * 3;  // divisible by 3 branches
    if (cfg.channels < 3) cfg.channels = 3;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new Mtgnn(cfg, dataset));
  }
  if (name == "LSTM") {
    LstmConfig cfg;
    cfg.hidden = 2 * channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(
        new LstmForecaster(cfg, dataset));
  }
  if (name == "LSTNet") {
    LstNet::Config cfg;
    cfg.channels = channels;
    cfg.hidden = 2 * channels;
    cfg.seed = seed;
    return std::unique_ptr<core::ForecastModel>(new LstNet(cfg, dataset));
  }
  if (name == "Gaia" || name == "Gaia w/o ITA" || name == "Gaia w/o FFL" ||
      name == "Gaia w/o TEL") {
    core::GaiaConfig cfg;
    cfg.channels = channels;
    cfg.tel_groups = 4;
    while (cfg.tel_groups > 1 && channels % cfg.tel_groups != 0) {
      --cfg.tel_groups;
    }
    cfg.seed = seed;
    cfg.use_ita = name != "Gaia w/o ITA";
    cfg.use_ffl = name != "Gaia w/o FFL";
    cfg.use_tel = name != "Gaia w/o TEL";
    auto model = core::GaiaModel::Create(cfg, t_len, horizon, d_temporal,
                                         d_static);
    if (!model.ok()) return model.status();
    return std::unique_ptr<core::ForecastModel>(std::move(model).value());
  }
  return Status::NotFound("unknown model: " + name);
}

}  // namespace gaia::baselines
