#include "baselines/arima_forecaster.h"

namespace gaia::baselines {

std::vector<double> ArimaForecaster::RawHistory(
    const data::ForecastDataset& dataset, int32_t v) {
  const Tensor& z = dataset.z(v);
  const int64_t t_len = z.dim(0);
  const int64_t start = t_len - dataset.series_length(v);
  std::vector<double> history;
  history.reserve(static_cast<size_t>(t_len - start));
  for (int64_t t = start; t < t_len; ++t) {
    history.push_back(dataset.Denormalize(v, z.at(t)));
  }
  return history;
}

std::vector<std::vector<double>> ArimaForecaster::ForecastNodes(
    const data::ForecastDataset& dataset,
    const std::vector<int32_t>& nodes) const {
  std::vector<std::vector<double>> out;
  out.reserve(nodes.size());
  const int horizon = static_cast<int>(dataset.horizon());
  for (int32_t v : nodes) {
    out.push_back(ts::ForecastWithFallback(RawHistory(dataset, v), horizon,
                                           max_p_, max_d_, max_q_));
  }
  return out;
}

core::EvaluationReport ArimaForecaster::Evaluate(
    const data::ForecastDataset& dataset,
    const std::vector<int32_t>& nodes) const {
  return core::Evaluator::FromPredictions("ARIMA", dataset, nodes,
                                          ForecastNodes(dataset, nodes));
}

}  // namespace gaia::baselines
