#ifndef GAIA_BASELINES_LSTM_FORECASTER_H_
#define GAIA_BASELINES_LSTM_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct LstmConfig {
  int64_t hidden = 32;
  uint64_t seed = 91;
};

/// \brief Plain per-shop LSTM forecaster (Hochreiter & Schmidhuber, 1997) —
/// the classical deep sequence baseline from the paper's related work.
/// Consumes [z_t || F^T_t] step by step; the final hidden state plus the
/// static context feeds an MLP head.
class LstmForecaster : public core::ForecastModel {
 public:
  LstmForecaster(const LstmConfig& config,
                 const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "LSTM"; }

 private:
  LstmConfig config_;
  std::shared_ptr<nn::LstmCell> cell_;
  std::shared_ptr<nn::Linear> static_proj_;
  std::shared_ptr<nn::Mlp> head_;
};

/// \brief LSTNet-style forecaster (Lai et al., SIGIR 2018), simplified to
/// its three signature parts: a temporal convolution front-end, a recurrent
/// (LSTM) component over the conv features, and a parallel autoregressive
/// highway on the raw GMV series that anchors scale.
class LstNet : public core::ForecastModel {
 public:
  struct Config {
    int64_t channels = 16;
    int64_t hidden = 32;
    int64_t ar_window = 6;  ///< months feeding the linear AR highway
    uint64_t seed = 93;
  };

  LstNet(const Config& config, const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "LSTNet"; }

 private:
  Config config_;
  std::shared_ptr<nn::Conv1dLayer> conv_;
  std::shared_ptr<nn::LstmCell> cell_;
  std::shared_ptr<nn::Mlp> head_;
  Var ar_weight_;  ///< [ar_window, T'] linear highway
  Var ar_bias_;    ///< [T']
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_LSTM_FORECASTER_H_
