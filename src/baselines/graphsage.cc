#include "baselines/graphsage.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

GraphSage::Layer::Layer(int64_t in_dim, int64_t out_dim, Rng* rng) {
  proj_ = AddModule("proj",
                    std::make_shared<nn::Linear>(2 * in_dim, out_dim, rng));
}

std::vector<Var> GraphSage::Layer::Forward(const graph::EsellerGraph& graph,
                                           const std::vector<Var>& h,
                                           int64_t fanout, Rng* rng) const {
  const auto n = static_cast<int32_t>(h.size());
  std::vector<Var> out;
  out.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    const Var& self = h[static_cast<size_t>(u)];
    std::vector<graph::Neighbor> neighbors =
        fanout > 0 ? graph.SampleInNeighbors(u, fanout, rng)
                   : graph.InNeighbors(u);
    Var agg;
    if (neighbors.empty()) {
      agg = ag::Constant(Tensor(self->value.shape()));
    } else {
      std::vector<Var> parts;
      parts.reserve(neighbors.size());
      for (const graph::Neighbor& nb : neighbors) {
        parts.push_back(h[static_cast<size_t>(nb.node)]);
      }
      agg = MeanVars(parts);
    }
    const int64_t dim = self->value.dim(0);
    Var concat = ag::ConcatCols({ag::Reshape(self, {1, dim}),
                                 ag::Reshape(agg, {1, dim})});
    Var next = ag::Relu(proj_->Forward(concat));
    out.push_back(ag::Reshape(next, {next->value.dim(1)}));
  }
  return out;
}

GraphSage::GraphSage(const GraphSageConfig& config,
                     const data::ForecastDataset& dataset)
    : config_(config) {
  Rng rng(config.seed);
  int64_t in_dim = FlatFeatureDim(dataset);
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(AddModule("layer" + std::to_string(l),
                                std::make_shared<Layer>(in_dim, config.hidden,
                                                        &rng)));
    in_dim = config.hidden;
  }
  head_ = AddModule("head", std::make_shared<nn::Mlp>(
                                config.hidden, config.hidden,
                                dataset.horizon(), &rng,
                                /*out_bias_init=*/1.0f));
}

std::vector<Var> GraphSage::PredictNodes(const data::ForecastDataset& dataset,
                                         const std::vector<int32_t>& nodes,
                                         bool training, Rng* rng) {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<Var> h;
  h.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    h.push_back(ag::Constant(FlatNodeFeatures(dataset, v)));
  }
  // Sampling only during training; evaluation uses the full neighbourhood.
  const int64_t fanout = training ? config_.fanout : 0;
  for (const auto& layer : layers_) {
    h = layer->Forward(dataset.graph(), h, fanout, rng);
  }
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    Var pred = head_->Forward(
        ag::Reshape(h[static_cast<size_t>(v)], {1, config_.hidden}));
    out.push_back(ag::Relu(ag::Reshape(pred, {dataset.horizon()})));
  }
  return out;
}

}  // namespace gaia::baselines
