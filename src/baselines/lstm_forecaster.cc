#include "baselines/lstm_forecaster.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

LstmForecaster::LstmForecaster(const LstmConfig& config,
                               const data::ForecastDataset& dataset)
    : config_(config) {
  Rng rng(config.seed);
  cell_ = AddModule("cell", std::make_shared<nn::LstmCell>(
                                1 + dataset.temporal_dim(), config.hidden,
                                &rng));
  static_proj_ = AddModule(
      "static", std::make_shared<nn::Linear>(dataset.static_dim(),
                                             config.hidden, &rng));
  head_ = AddModule("head", std::make_shared<nn::Mlp>(
                                config.hidden, config.hidden,
                                dataset.horizon(), &rng,
                                /*out_bias_init=*/1.0f));
}

std::vector<Var> LstmForecaster::PredictNodes(
    const data::ForecastDataset& dataset, const std::vector<int32_t>& nodes,
    bool /*training*/, Rng* /*rng*/) {
  std::vector<Var> out;
  out.reserve(nodes.size());
  const int64_t t_len = dataset.history_len();
  const int64_t in_dim = 1 + dataset.temporal_dim();
  for (int32_t v : nodes) {
    Var seq = ag::Constant(SequenceFeatures(dataset, v));  // [T, in_dim]
    auto state = cell_->InitialState();
    for (int64_t t = 0; t < t_len; ++t) {
      Var x_t = ag::Reshape(ag::SliceRows(seq, t, 1), {in_dim});
      state = cell_->Forward(x_t, state);
    }
    Var context = ag::Reshape(
        static_proj_->Forward(
            ag::Reshape(ag::Constant(dataset.static_features(v)),
                        {1, dataset.static_dim()})),
        {config_.hidden});
    Var pred = head_->Forward(
        ag::Reshape(ag::Add(state.h, context), {1, config_.hidden}));
    out.push_back(ag::Relu(ag::Reshape(pred, {dataset.horizon()})));
  }
  return out;
}

LstNet::LstNet(const Config& config, const data::ForecastDataset& dataset)
    : config_(config) {
  GAIA_CHECK_LE(config.ar_window, dataset.history_len());
  Rng rng(config.seed);
  conv_ = AddModule("conv", std::make_shared<nn::Conv1dLayer>(
                                1 + dataset.temporal_dim(), config.channels,
                                3, PadMode::kCausal, &rng));
  cell_ = AddModule("cell", std::make_shared<nn::LstmCell>(
                                config.channels, config.hidden, &rng));
  head_ = AddModule("head", std::make_shared<nn::Mlp>(
                                config.hidden, config.hidden,
                                dataset.horizon(), &rng));
  ar_weight_ = AddParameter(
      "ar_weight", nn::LinearInit(config.ar_window, dataset.horizon(), &rng));
  // AR highway initialized near persistence: bias opens the ReLU.
  ar_bias_ = AddParameter("ar_bias", Tensor::Ones({dataset.horizon()}));
}

std::vector<Var> LstNet::PredictNodes(const data::ForecastDataset& dataset,
                                      const std::vector<int32_t>& nodes,
                                      bool /*training*/, Rng* /*rng*/) {
  std::vector<Var> out;
  out.reserve(nodes.size());
  const int64_t t_len = dataset.history_len();
  for (int32_t v : nodes) {
    Var seq = ag::Constant(SequenceFeatures(dataset, v));
    Var features = ag::Relu(conv_->Forward(seq));  // [T, channels]
    auto state = cell_->InitialState();
    for (int64_t t = 0; t < t_len; ++t) {
      Var x_t = ag::Reshape(ag::SliceRows(features, t, 1),
                            {config_.channels});
      state = cell_->Forward(x_t, state);
    }
    Var neural = head_->Forward(
        ag::Reshape(state.h, {1, config_.hidden}));  // [1, T']
    // Linear AR highway on the raw recent GMV values.
    Var z = ag::Constant(dataset.z(v));
    Var recent = ag::Reshape(
        ag::SelectSpan(z, t_len - config_.ar_window, config_.ar_window),
        {1, config_.ar_window});
    Var ar = ag::AddRowVector(ag::MatMul(recent, ar_weight_), ar_bias_);
    Var combined = ag::Add(neural, ar);
    out.push_back(ag::Relu(ag::Reshape(combined, {dataset.horizon()})));
  }
  return out;
}

}  // namespace gaia::baselines
