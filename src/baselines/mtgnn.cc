#include "baselines/mtgnn.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

Mtgnn::InceptionConv::InceptionConv(int64_t channels, int64_t dilation,
                                    Rng* rng) {
  GAIA_CHECK_EQ(channels % 3, 0) << "inception needs channels divisible by 3";
  const int64_t per_branch = channels / 3;
  const int64_t widths[] = {2, 3, 6};
  for (int64_t b = 0; b < 3; ++b) {
    filter_branches_.push_back(AddModule(
        "filter" + std::to_string(b),
        std::make_shared<nn::Conv1dLayer>(channels, per_branch, widths[b],
                                          PadMode::kCausal, rng, dilation)));
    gate_branches_.push_back(AddModule(
        "gate" + std::to_string(b),
        std::make_shared<nn::Conv1dLayer>(channels, per_branch, widths[b],
                                          PadMode::kCausal, rng, dilation)));
  }
}

Var Mtgnn::InceptionConv::Forward(const Var& x) const {
  std::vector<Var> filters, gates;
  for (const auto& conv : filter_branches_) filters.push_back(conv->Forward(x));
  for (const auto& conv : gate_branches_) gates.push_back(conv->Forward(x));
  return ag::Mul(ag::Tanh(ag::ConcatCols(filters)),
                 ag::Sigmoid(ag::ConcatCols(gates)));
}

Mtgnn::MixHop::MixHop(int64_t channels, float beta, Rng* rng) : beta_(beta) {
  out_proj_ = AddModule(
      "out", std::make_shared<nn::Linear>(3 * channels, channels, rng));
}

std::vector<Var> Mtgnn::MixHop::Forward(
    const std::vector<std::vector<std::pair<int32_t, Var>>>& neighbors,
    const std::vector<Var>& h) const {
  const auto n = static_cast<int32_t>(h.size());
  auto propagate = [&](const std::vector<Var>& x) {
    std::vector<Var> next;
    next.reserve(x.size());
    for (int32_t u = 0; u < n; ++u) {
      const auto& nbrs = neighbors[static_cast<size_t>(u)];
      Var retained = ag::ScalarMul(h[static_cast<size_t>(u)], beta_);
      if (nbrs.empty()) {
        next.push_back(retained);
        continue;
      }
      std::vector<Var> messages;
      messages.reserve(nbrs.size());
      for (const auto& [v, weight] : nbrs) {
        messages.push_back(
            ag::ScaleByScalar(x[static_cast<size_t>(v)], weight));
      }
      next.push_back(ag::Add(
          retained, ag::ScalarMul(ag::AddN(messages), 1.0f - beta_)));
    }
    return next;
  };
  std::vector<Var> hop1 = propagate(h);
  std::vector<Var> hop2 = propagate(hop1);
  std::vector<Var> out;
  out.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    out.push_back(out_proj_->Forward(
        ag::ConcatCols({h[static_cast<size_t>(u)],
                        hop1[static_cast<size_t>(u)],
                        hop2[static_cast<size_t>(u)]})));
  }
  return out;
}

Mtgnn::Mtgnn(const MtgnnConfig& config, const data::ForecastDataset& dataset)
    : config_(config), num_nodes_(dataset.num_nodes()) {
  Rng rng(config.seed);
  input_proj_ = AddModule(
      "input", std::make_shared<nn::Linear>(1 + dataset.temporal_dim(),
                                            config.channels, &rng));
  emb1_ = AddParameter(
      "emb1", Tensor::Randn({num_nodes_, config.node_embedding_dim}, &rng,
                            0.5f));
  emb2_ = AddParameter(
      "emb2", Tensor::Randn({num_nodes_, config.node_embedding_dim}, &rng,
                            0.5f));
  int64_t dilation = 1;
  for (int64_t l = 0; l < config.num_layers; ++l) {
    temporal_layers_.push_back(AddModule(
        "temporal" + std::to_string(l),
        std::make_shared<InceptionConv>(config.channels, dilation, &rng)));
    spatial_layers_.push_back(AddModule(
        "spatial" + std::to_string(l),
        std::make_shared<MixHop>(config.channels, config.mix_hop_beta, &rng)));
    dilation *= 2;
  }
  readout_ = AddModule(
      "readout", std::make_shared<TemporalReadout>(
                     config.channels, dataset.history_len(),
                     dataset.horizon(), &rng));
}

std::vector<std::vector<int32_t>> Mtgnn::LearnedNeighbors() const {
  std::vector<std::vector<int32_t>> out(static_cast<size_t>(num_nodes_));
  const Tensor& e1 = emb1_->value;
  const Tensor& e2 = emb2_->value;
  const int64_t d = config_.node_embedding_dim;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    std::vector<std::pair<float, int32_t>> scored;
    scored.reserve(static_cast<size_t>(num_nodes_) - 1);
    for (int32_t v = 0; v < num_nodes_; ++v) {
      if (v == u) continue;
      double dot = 0.0;
      for (int64_t k = 0; k < d; ++k) dot += e1.at(u, k) * e2.at(v, k);
      const float score = static_cast<float>(std::tanh(dot));
      if (score > 0.0f) scored.emplace_back(score, v);
    }
    const auto k = std::min<size_t>(static_cast<size_t>(config_.top_k),
                                    scored.size());
    std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(k),
                      scored.end(), std::greater<>());
    for (size_t i = 0; i < k; ++i) out[static_cast<size_t>(u)].push_back(
        scored[i].second);
  }
  return out;
}

std::vector<std::vector<std::pair<int32_t, Var>>> Mtgnn::LearnGraph() const {
  // Top-k selection uses current values (non-differentiable, as in the
  // original); the retained edge weights stay differentiable through a
  // softmax over tanh(e1_u . e2_v).
  std::vector<std::vector<int32_t>> topk = LearnedNeighbors();
  std::vector<std::vector<std::pair<int32_t, Var>>> out(
      static_cast<size_t>(num_nodes_));
  for (int32_t u = 0; u < num_nodes_; ++u) {
    const auto& nbrs = topk[static_cast<size_t>(u)];
    if (nbrs.empty()) continue;
    Var e1_u = ag::SelectRow(emb1_, u);
    std::vector<Var> scores;
    scores.reserve(nbrs.size());
    for (int32_t v : nbrs) {
      scores.push_back(ag::Tanh(ag::Dot(e1_u, ag::SelectRow(emb2_, v))));
    }
    Var alpha = ag::Softmax1D(ag::StackScalars(scores));
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out[static_cast<size_t>(u)].emplace_back(
          nbrs[i], ag::SelectScalar(alpha, static_cast<int64_t>(i)));
    }
  }
  return out;
}

std::vector<Var> Mtgnn::PredictNodes(const data::ForecastDataset& dataset,
                                     const std::vector<int32_t>& nodes,
                                     bool /*training*/, Rng* /*rng*/) {
  GAIA_CHECK_EQ(dataset.num_nodes(), num_nodes_)
      << "MTGNN is transductive: dataset must match construction";
  std::vector<Var> h;
  h.reserve(static_cast<size_t>(num_nodes_));
  for (int32_t v = 0; v < num_nodes_; ++v) {
    h.push_back(
        input_proj_->Forward(ag::Constant(SequenceFeatures(dataset, v))));
  }
  const auto learned = LearnGraph();
  for (size_t l = 0; l < temporal_layers_.size(); ++l) {
    std::vector<Var> residual = h;
    for (Var& node : h) node = temporal_layers_[l]->Forward(node);
    h = spatial_layers_[l]->Forward(learned, h);
    for (size_t v = 0; v < h.size(); ++v) h[v] = ag::Add(h[v], residual[v]);
  }
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    out.push_back(readout_->Forward(h[static_cast<size_t>(v)]));
  }
  return out;
}

}  // namespace gaia::baselines
