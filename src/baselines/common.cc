#include "baselines/common.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

int64_t FlatFeatureDim(const data::ForecastDataset& dataset) {
  return dataset.history_len() + dataset.temporal_dim() + dataset.static_dim();
}

Tensor FlatNodeFeatures(const data::ForecastDataset& dataset, int32_t v) {
  const Tensor& z = dataset.z(v);
  const Tensor& temporal = dataset.temporal(v);
  const Tensor& statics = dataset.static_features(v);
  Tensor out({FlatFeatureDim(dataset)});
  int64_t idx = 0;
  for (int64_t t = 0; t < z.dim(0); ++t) out.at(idx++) = z.at(t);
  for (int64_t d = 0; d < temporal.dim(1); ++d) {
    double mean = 0.0;
    for (int64_t t = 0; t < temporal.dim(0); ++t) mean += temporal.at(t, d);
    out.at(idx++) = static_cast<float>(mean / temporal.dim(0));
  }
  for (int64_t d = 0; d < statics.dim(0); ++d) out.at(idx++) = statics.at(d);
  return out;
}

Tensor SequenceFeatures(const data::ForecastDataset& dataset, int32_t v) {
  const Tensor& z = dataset.z(v);
  const Tensor& temporal = dataset.temporal(v);
  const int64_t t_len = z.dim(0);
  Tensor out({t_len, 1 + temporal.dim(1)});
  for (int64_t t = 0; t < t_len; ++t) {
    out.at(t, 0) = z.at(t);
    for (int64_t d = 0; d < temporal.dim(1); ++d) {
      out.at(t, 1 + d) = temporal.at(t, d);
    }
  }
  return out;
}

Var MeanVars(const std::vector<Var>& parts) {
  GAIA_CHECK(!parts.empty());
  return ag::ScalarMul(ag::AddN(parts),
                       1.0f / static_cast<float>(parts.size()));
}

TemporalReadout::TemporalReadout(int64_t channels, int64_t t_len,
                                 int64_t horizon, Rng* rng)
    : t_len_(t_len), horizon_(horizon) {
  pool_conv_ = AddModule("pool", std::make_shared<nn::Conv1dLayer>(
                                     channels, 1, 1, PadMode::kCausal, rng));
  weight_ = AddParameter("weight", nn::LinearInit(t_len, horizon, rng));
  // Positive init keeps the ReLU readout alive (normalized GMV mean ~1).
  bias_ = AddParameter("bias", Tensor::Ones({horizon}));
}

Var TemporalReadout::Forward(const Var& h) const {
  GAIA_CHECK_EQ(h->value.dim(0), t_len_);
  Var pooled = pool_conv_->Forward(h);                    // [T, 1]
  Var row = ag::Reshape(pooled, {1, t_len_});             // [1, T]
  Var out = ag::AddRowVector(ag::MatMul(row, weight_), bias_);
  return ag::Relu(ag::Reshape(out, {horizon_}));
}

}  // namespace gaia::baselines
