#ifndef GAIA_BASELINES_COMMON_H_
#define GAIA_BASELINES_COMMON_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "graph/eseller_graph.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace gaia::baselines {

using autograd::Var;

/// Flattened per-node feature vector used by the pure-GNN baselines (GAT,
/// GraphSAGE, GeniePath), which per the paper "only consider the graph
/// structure": [ z (T values) || per-column means of F^T (D^T) || f^S ].
Tensor FlatNodeFeatures(const data::ForecastDataset& dataset, int32_t v);

/// Dimension of FlatNodeFeatures for the given dataset.
int64_t FlatFeatureDim(const data::ForecastDataset& dataset);

/// Sequence input for the temporal baselines: [ z_t || F^T_t ] rows, shape
/// [T, 1 + D^T].
Tensor SequenceFeatures(const data::ForecastDataset& dataset, int32_t v);

/// Differentiable mean over a set of same-shaped vars (mean aggregator).
Var MeanVars(const std::vector<Var>& parts);

/// \brief Readout head shared by the sequence models: width-1 conv to a
/// single channel over [T, C], then a dense map from T to the horizon T',
/// with ReLU to keep GMV non-negative (same form as Gaia's Eq. 9 head).
class TemporalReadout : public nn::Module {
 public:
  TemporalReadout(int64_t channels, int64_t t_len, int64_t horizon, Rng* rng);

  /// h: [T, C] -> prediction: [T'].
  Var Forward(const Var& h) const;

 private:
  int64_t t_len_;
  int64_t horizon_;
  std::shared_ptr<nn::Conv1dLayer> pool_conv_;
  Var weight_;  ///< [T, T']
  Var bias_;    ///< [T']
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_COMMON_H_
