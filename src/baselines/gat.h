#ifndef GAIA_BASELINES_GAT_H_
#define GAIA_BASELINES_GAT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct GatConfig {
  int64_t hidden = 32;
  int64_t num_layers = 2;
  float leaky_slope = 0.2f;
  uint64_t seed = 31;
};

/// \brief Graph Attention Network (Veličković et al., 2018) on flattened
/// node features: 2 attention layers, additive attention with LeakyReLU
/// scoring, then an MLP readout to the T' horizon. Represents the "GNN
/// structure only" family of Table I.
class Gat : public core::ForecastModel {
 public:
  Gat(const GatConfig& config, const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "GAT"; }

 private:
  /// One additive-attention layer over in-neighbours (self included).
  class Layer : public nn::Module {
   public:
    Layer(int64_t in_dim, int64_t out_dim, float leaky_slope, Rng* rng);
    std::vector<Var> Forward(const graph::EsellerGraph& graph,
                             const std::vector<Var>& h) const;

   private:
    Var LeakyRelu(const Var& x) const;
    int64_t out_dim_;
    float slope_;
    std::shared_ptr<nn::Linear> proj_;
    Var attn_self_;   ///< [out_dim] half of the attention vector
    Var attn_neigh_;  ///< [out_dim] other half
  };

  GatConfig config_;
  std::vector<std::shared_ptr<Layer>> layers_;
  std::shared_ptr<nn::Mlp> head_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_GAT_H_
