#include "baselines/gat.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

Gat::Layer::Layer(int64_t in_dim, int64_t out_dim, float leaky_slope, Rng* rng)
    : out_dim_(out_dim), slope_(leaky_slope) {
  proj_ = AddModule("proj", std::make_shared<nn::Linear>(in_dim, out_dim, rng,
                                                         /*use_bias=*/false));
  attn_self_ = AddParameter(
      "attn_self", Tensor::RandUniform({out_dim}, rng, -0.3f, 0.3f));
  attn_neigh_ = AddParameter(
      "attn_neigh", Tensor::RandUniform({out_dim}, rng, -0.3f, 0.3f));
}

Var Gat::Layer::LeakyRelu(const Var& x) const {
  // leaky_relu(x) = relu(x) - slope * relu(-x)
  return ag::Sub(ag::Relu(x), ag::ScalarMul(ag::Relu(ag::Neg(x)), slope_));
}

std::vector<Var> Gat::Layer::Forward(const graph::EsellerGraph& graph,
                                     const std::vector<Var>& h) const {
  const auto n = static_cast<int32_t>(h.size());
  std::vector<Var> projected;
  std::vector<Var> self_score, neigh_score;  // [1] scalars per node
  projected.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    Var p = proj_->Forward(ag::Reshape(h[static_cast<size_t>(u)],
                                       {1, h[static_cast<size_t>(u)]->value.dim(0)}));
    p = ag::Reshape(p, {out_dim_});
    projected.push_back(p);
    self_score.push_back(ag::Dot(p, attn_self_));
    neigh_score.push_back(ag::Dot(p, attn_neigh_));
  }
  std::vector<Var> out;
  out.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    // Self edge plus in-neighbours, softmax over additive scores.
    std::vector<int32_t> sources = {u};
    for (const graph::Neighbor& nb : graph.InNeighbors(u)) {
      sources.push_back(nb.node);
    }
    std::vector<Var> scores;
    scores.reserve(sources.size());
    for (int32_t v : sources) {
      scores.push_back(LeakyRelu(
          ag::Add(self_score[static_cast<size_t>(u)],
                  neigh_score[static_cast<size_t>(v)])));
    }
    Var alpha = ag::Softmax1D(ag::StackScalars(scores));
    std::vector<Var> messages;
    messages.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      messages.push_back(ag::ScaleByScalar(
          projected[static_cast<size_t>(sources[i])],
          ag::SelectScalar(alpha, static_cast<int64_t>(i))));
    }
    out.push_back(ag::Relu(ag::AddN(messages)));
  }
  return out;
}

Gat::Gat(const GatConfig& config, const data::ForecastDataset& dataset)
    : config_(config) {
  Rng rng(config.seed);
  int64_t in_dim = FlatFeatureDim(dataset);
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(AddModule(
        "layer" + std::to_string(l),
        std::make_shared<Layer>(in_dim, config.hidden, config.leaky_slope,
                                &rng)));
    in_dim = config.hidden;
  }
  head_ = AddModule("head", std::make_shared<nn::Mlp>(
                                config.hidden, config.hidden,
                                dataset.horizon(), &rng,
                                /*out_bias_init=*/1.0f));
}

std::vector<Var> Gat::PredictNodes(const data::ForecastDataset& dataset,
                                   const std::vector<int32_t>& nodes,
                                   bool /*training*/, Rng* /*rng*/) {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<Var> h;
  h.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    h.push_back(ag::Constant(FlatNodeFeatures(dataset, v)));
  }
  for (const auto& layer : layers_) {
    h = layer->Forward(dataset.graph(), h);
  }
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    Var pred = head_->Forward(
        ag::Reshape(h[static_cast<size_t>(v)], {1, config_.hidden}));
    out.push_back(ag::Relu(ag::Reshape(pred, {dataset.horizon()})));
  }
  return out;
}

}  // namespace gaia::baselines
