#include "baselines/logtrans.h"

#include <cmath>

#include "autograd/ops.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

LogTrans::Block::Block(int64_t channels, int64_t num_heads, float dropout,
                       Rng* rng)
    : channels_(channels),
      num_heads_(num_heads),
      head_dim_(channels / num_heads) {
  GAIA_CHECK_EQ(head_dim_ * num_heads_, channels_);
  conv_q_ = AddModule("q", std::make_shared<nn::Conv1dLayer>(
                               channels, channels, 3, PadMode::kCausal, rng));
  conv_k_ = AddModule("k", std::make_shared<nn::Conv1dLayer>(
                               channels, channels, 3, PadMode::kCausal, rng));
  conv_v_ = AddModule("v", std::make_shared<nn::Conv1dLayer>(
                               channels, channels, 1, PadMode::kCausal, rng));
  proj_out_ = AddModule("out", std::make_shared<nn::Linear>(channels, channels,
                                                            rng));
  norm1_ = AddModule("norm1", std::make_shared<nn::LayerNorm>(channels));
  norm2_ = AddModule("norm2", std::make_shared<nn::LayerNorm>(channels));
  ffn1_ = AddModule("ffn1",
                    std::make_shared<nn::Linear>(channels, 2 * channels, rng));
  ffn2_ = AddModule("ffn2",
                    std::make_shared<nn::Linear>(2 * channels, channels, rng));
  dropout_ = AddModule("dropout", std::make_shared<nn::Dropout>(dropout));
}

Var LogTrans::Block::Forward(const Var& x, const Tensor& mask, bool training,
                             Rng* rng) const {
  Var q = conv_q_->Forward(x);
  Var k = conv_k_->Forward(x);
  Var v = conv_v_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Var> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    Var qh = ag::SliceCols(q, h * head_dim_, head_dim_);
    Var kh = ag::SliceCols(k, h * head_dim_, head_dim_);
    Var vh = ag::SliceCols(v, h * head_dim_, head_dim_);
    Var logits = ag::ScalarMul(ag::MatMul(qh, ag::Transpose(kh)), scale);
    logits = ag::Add(logits, ag::Constant(mask));
    heads.push_back(ag::MatMul(ag::SoftmaxRows(logits), vh));
  }
  Var attended = proj_out_->Forward(ag::ConcatCols(heads));
  attended = dropout_->Forward(attended, training, rng);
  Var x1 = norm1_->Forward(ag::Add(x, attended));
  Var ffn = ffn2_->Forward(ag::Relu(ffn1_->Forward(x1)));
  ffn = dropout_->Forward(ffn, training, rng);
  return norm2_->Forward(ag::Add(x1, ffn));
}

LogTrans::LogTrans(const LogTransConfig& config, int64_t t_len,
                   int64_t horizon, int64_t d_temporal, int64_t d_static)
    : config_(config), t_len_(t_len), horizon_(horizon), d_static_(d_static) {
  Rng rng(config.seed);
  input_proj_ = AddModule(
      "input",
      std::make_shared<nn::Linear>(1 + d_temporal, config.channels, &rng));
  static_proj_ = AddModule(
      "static", std::make_shared<nn::Linear>(d_static, config.channels, &rng));
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    blocks_.push_back(AddModule(
        "block" + std::to_string(b),
        std::make_shared<Block>(config.channels, config.num_heads,
                                config.dropout, &rng)));
  }
  readout_ = AddModule("readout", std::make_shared<TemporalReadout>(
                                      config.channels, t_len, horizon, &rng));
}

Var LogTrans::PredictOne(const data::ForecastDataset& dataset, int32_t v,
                         bool training, Rng* rng) const {
  Var seq = ag::Constant(SequenceFeatures(dataset, v));  // [T, 1 + D^T]
  Var x = input_proj_->Forward(seq);
  // Static context added to every timestep.
  Var stat = static_proj_->Forward(
      ag::Reshape(ag::Constant(dataset.static_features(v)), {1, d_static_}));
  x = ag::Add(x, ag::MatMul(ag::Constant(Tensor::Ones({t_len_, 1})), stat));
  const Tensor mask = CausalMask(t_len_);
  for (const auto& block : blocks_) {
    x = block->Forward(x, mask, training, rng);
  }
  return readout_->Forward(x);
}

std::vector<Var> LogTrans::PredictNodes(const data::ForecastDataset& dataset,
                                        const std::vector<int32_t>& nodes,
                                        bool training, Rng* rng) {
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) out.push_back(PredictOne(dataset, v, training, rng));
  return out;
}

}  // namespace gaia::baselines
