#ifndef GAIA_BASELINES_GENIEPATH_H_
#define GAIA_BASELINES_GENIEPATH_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct GeniePathConfig {
  int64_t hidden = 32;
  int64_t num_layers = 2;
  uint64_t seed = 51;
};

/// \brief GeniePath (Liu et al., AAAI 2019): adaptive receptive paths.
/// Each layer couples a *breadth* function (GAT-style additive attention
/// over neighbours) with a *depth* function (an LSTM cell that gates how
/// much of the new neighbourhood signal enters the node memory).
class GeniePath : public core::ForecastModel {
 public:
  GeniePath(const GeniePathConfig& config,
            const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "Geniepath"; }

 private:
  /// Breadth: tanh-additive attention over {u} ∪ N(u).
  class BreadthLayer : public nn::Module {
   public:
    BreadthLayer(int64_t dim, Rng* rng);
    std::vector<Var> Forward(const graph::EsellerGraph& graph,
                             const std::vector<Var>& h) const;

   private:
    int64_t dim_;
    std::shared_ptr<nn::Linear> proj_;
    Var attn_self_;
    Var attn_neigh_;
  };

  GeniePathConfig config_;
  std::shared_ptr<nn::Linear> input_proj_;
  std::vector<std::shared_ptr<BreadthLayer>> breadth_;
  std::shared_ptr<nn::LstmCell> depth_;  ///< shared depth gate across layers
  std::shared_ptr<nn::Mlp> head_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_GENIEPATH_H_
