#ifndef GAIA_BASELINES_GMAN_H_
#define GAIA_BASELINES_GMAN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct GmanConfig {
  int64_t channels = 16;
  int64_t num_blocks = 2;
  int64_t num_heads = 2;
  uint64_t seed = 71;
};

/// \brief GMAN (Zheng et al., AAAI 2020): spatio-temporal embedding plus
/// ST-attention blocks where a *spatial* attention over neighbours and a
/// *temporal* self-attention over timestamps are combined by a learned
/// gated fusion H = z ⊙ HS + (1 - z) ⊙ HT.
///
/// Simplification vs. the original (documented in DESIGN.md): spatial
/// attention weights are shared across timestamps (scored from mean-pooled
/// hidden states) rather than computed per timestep, which keeps the
/// per-edge cost linear in T.
class Gman : public core::ForecastModel {
 public:
  Gman(const GmanConfig& config, const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "GMAN"; }

 private:
  class Block : public nn::Module {
   public:
    Block(int64_t channels, int64_t num_heads, Rng* rng);
    std::vector<Var> Forward(const graph::EsellerGraph& graph,
                             const std::vector<Var>& h) const;

   private:
    int64_t channels_;
    // Spatial attention.
    std::shared_ptr<nn::Linear> spatial_proj_;
    Var spatial_query_;   ///< [C]
    Var spatial_key_;     ///< [C]
    // Temporal attention.
    std::shared_ptr<nn::SelfAttention> temporal_;
    // Gated fusion.
    std::shared_ptr<nn::Linear> gate_spatial_;
    std::shared_ptr<nn::Linear> gate_temporal_;
  };

  GmanConfig config_;
  std::shared_ptr<nn::Linear> input_proj_;
  std::shared_ptr<nn::Linear> ste_proj_;  ///< spatio-temporal embedding
  std::vector<std::shared_ptr<Block>> blocks_;
  std::shared_ptr<TemporalReadout> readout_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_GMAN_H_
