#ifndef GAIA_BASELINES_ZOO_H_
#define GAIA_BASELINES_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/forecast_model.h"
#include "data/dataset.h"
#include "util/status.h"

namespace gaia::baselines {

/// Names of all trainable models in Table-I order (Gaia last). ARIMA is
/// classical and handled by ArimaForecaster separately.
std::vector<std::string> TrainableModelNames();

/// Extra deep time-series baselines from the paper's related work ("LSTM",
/// "LSTNet") that are not part of Table I but share the same interface.
std::vector<std::string> ExtraModelNames();

/// \brief Factory building any trainable model by its Table-I name
/// ("LogTrans", "GAT", "GraphSage", "Geniepath", "STGCN", "GMAN", "MTGNN",
/// "Gaia", "Gaia w/o ITA", "Gaia w/o FFL", "Gaia w/o TEL").
///
/// All models get comparable capacity (the paper fixes embedding size 32
/// across methods; we scale that with `channels`).
Result<std::unique_ptr<core::ForecastModel>> CreateModel(
    const std::string& name, const data::ForecastDataset& dataset,
    int64_t channels = 16, uint64_t seed = 17);

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_ZOO_H_
