#ifndef GAIA_BASELINES_STGCN_H_
#define GAIA_BASELINES_STGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct StgcnConfig {
  int64_t channels = 16;
  int64_t num_blocks = 2;
  uint64_t seed = 61;
};

/// \brief STGCN (Yu et al., IJCAI 2018): "sandwich" ST-Conv blocks of
/// gated temporal convolution -> first-order spatial graph convolution ->
/// gated temporal convolution, followed by a temporal readout.
class Stgcn : public core::ForecastModel {
 public:
  Stgcn(const StgcnConfig& config, const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "STGCN"; }

 private:
  /// Gated temporal convolution (GLU): conv to 2C channels, P ⊙ σ(Q).
  class GatedTemporalConv : public nn::Module {
   public:
    GatedTemporalConv(int64_t c_in, int64_t c_out, Rng* rng);
    Var Forward(const Var& x) const;

   private:
    int64_t c_out_;
    std::shared_ptr<nn::Conv1dLayer> conv_;
  };

  /// First-order spatial convolution: ReLU(W_s H_u + W_n mean_v H_v).
  class SpatialConv : public nn::Module {
   public:
    SpatialConv(int64_t channels, Rng* rng);
    std::vector<Var> Forward(const graph::EsellerGraph& graph,
                             const std::vector<Var>& h) const;

   private:
    std::shared_ptr<nn::Linear> proj_self_;
    std::shared_ptr<nn::Linear> proj_neigh_;
  };

  class Block : public nn::Module {
   public:
    Block(int64_t channels, Rng* rng);
    std::vector<Var> Forward(const graph::EsellerGraph& graph,
                             const std::vector<Var>& h) const;

   private:
    std::shared_ptr<GatedTemporalConv> temporal_in_;
    std::shared_ptr<SpatialConv> spatial_;
    std::shared_ptr<GatedTemporalConv> temporal_out_;
  };

  StgcnConfig config_;
  std::shared_ptr<nn::Linear> input_proj_;
  std::shared_ptr<nn::Linear> static_proj_;
  std::vector<std::shared_ptr<Block>> blocks_;
  std::shared_ptr<TemporalReadout> readout_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_STGCN_H_
