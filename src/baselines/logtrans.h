#ifndef GAIA_BASELINES_LOGTRANS_H_
#define GAIA_BASELINES_LOGTRANS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"
#include "nn/layers.h"

namespace gaia::baselines {

/// \brief Hyper-parameters for LogTrans (paper setting: 3 blocks, 3 heads).
struct LogTransConfig {
  int64_t channels = 18;  ///< must be divisible by num_heads
  int64_t num_blocks = 3;
  int64_t num_heads = 3;
  float dropout = 0.1f;
  uint64_t seed = 21;
};

/// \brief LogTrans (Li et al., NeurIPS 2019): Transformer for time series
/// with *convolutional* (locality-aware, causal) Q/K projections and causal
/// masking. A pure sequence model — each shop is forecast from its own
/// series and auxiliary features only, no graph.
class LogTrans : public core::ForecastModel {
 public:
  LogTrans(const LogTransConfig& config, int64_t t_len, int64_t horizon,
           int64_t d_temporal, int64_t d_static);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "LogTrans"; }

  /// Forecast for one node (used by the serving comparison).
  Var PredictOne(const data::ForecastDataset& dataset, int32_t v,
                 bool training, Rng* rng) const;

 private:
  /// One encoder block: causal conv attention + FFN, both with residual
  /// connections and layer normalization.
  class Block : public nn::Module {
   public:
    Block(int64_t channels, int64_t num_heads, float dropout, Rng* rng);
    Var Forward(const Var& x, const Tensor& mask, bool training,
                Rng* rng) const;

   private:
    int64_t channels_;
    int64_t num_heads_;
    int64_t head_dim_;
    std::shared_ptr<nn::Conv1dLayer> conv_q_;  ///< width 3, causal
    std::shared_ptr<nn::Conv1dLayer> conv_k_;  ///< width 3, causal
    std::shared_ptr<nn::Conv1dLayer> conv_v_;  ///< width 1
    std::shared_ptr<nn::Linear> proj_out_;
    std::shared_ptr<nn::LayerNorm> norm1_;
    std::shared_ptr<nn::LayerNorm> norm2_;
    std::shared_ptr<nn::Linear> ffn1_;
    std::shared_ptr<nn::Linear> ffn2_;
    std::shared_ptr<nn::Dropout> dropout_;
  };

  LogTransConfig config_;
  int64_t t_len_;
  int64_t horizon_;
  int64_t d_static_;
  std::shared_ptr<nn::Linear> input_proj_;    ///< [1 + D^T] -> C
  std::shared_ptr<nn::Linear> static_proj_;   ///< [D^S] -> C, added to rows
  std::vector<std::shared_ptr<Block>> blocks_;
  std::shared_ptr<TemporalReadout> readout_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_LOGTRANS_H_
