#include "baselines/gman.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

Gman::Block::Block(int64_t channels, int64_t num_heads, Rng* rng)
    : channels_(channels) {
  spatial_proj_ = AddModule(
      "s_proj", std::make_shared<nn::Linear>(channels, channels, rng));
  spatial_query_ = AddParameter(
      "s_query", Tensor::RandUniform({channels}, rng, -0.3f, 0.3f));
  spatial_key_ = AddParameter(
      "s_key", Tensor::RandUniform({channels}, rng, -0.3f, 0.3f));
  temporal_ = AddModule(
      "temporal", std::make_shared<nn::SelfAttention>(channels, num_heads,
                                                      rng));
  gate_spatial_ = AddModule(
      "g_s", std::make_shared<nn::Linear>(channels, channels, rng));
  gate_temporal_ = AddModule(
      "g_t", std::make_shared<nn::Linear>(channels, channels, rng));
}

std::vector<Var> Gman::Block::Forward(const graph::EsellerGraph& graph,
                                      const std::vector<Var>& h) const {
  const auto n = static_cast<int32_t>(h.size());
  const int64_t t_len = h.front()->value.dim(0);
  const Tensor mask = CausalMask(t_len);

  // Pooled summaries drive the (timestep-shared) spatial scores.
  std::vector<Var> pooled_q, pooled_k, projected;
  pooled_q.reserve(h.size());
  pooled_k.reserve(h.size());
  projected.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    Var p = spatial_proj_->Forward(h[static_cast<size_t>(u)]);  // [T, C]
    projected.push_back(p);
    Var mean = ag::ScalarMul(
        ag::Reshape(ag::MatMul(ag::Constant(Tensor::Ones({1, t_len})), p),
                    {channels_}),
        1.0f / static_cast<float>(t_len));
    pooled_q.push_back(ag::Dot(mean, spatial_query_));
    pooled_k.push_back(ag::Dot(mean, spatial_key_));
  }

  std::vector<Var> out;
  out.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    // Spatial attention over {u} ∪ N(u).
    std::vector<int32_t> sources = {u};
    for (const graph::Neighbor& nb : graph.InNeighbors(u)) {
      sources.push_back(nb.node);
    }
    std::vector<Var> scores;
    scores.reserve(sources.size());
    for (int32_t v : sources) {
      scores.push_back(ag::Add(pooled_q[static_cast<size_t>(u)],
                               pooled_k[static_cast<size_t>(v)]));
    }
    Var alpha = ag::Softmax1D(ag::StackScalars(scores));
    std::vector<Var> messages;
    messages.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      messages.push_back(ag::ScaleByScalar(
          projected[static_cast<size_t>(sources[i])],
          ag::SelectScalar(alpha, static_cast<int64_t>(i))));
    }
    Var hs = ag::AddN(messages);

    // Temporal self-attention on the node's own sequence.
    Var ht = temporal_->Forward(h[static_cast<size_t>(u)], mask);

    // Gated fusion with residual.
    Var z = ag::Sigmoid(ag::Add(gate_spatial_->Forward(hs),
                                gate_temporal_->Forward(ht)));
    Var ones = ag::Constant(Tensor::Ones(z->value.shape()));
    Var fused = ag::Add(ag::Mul(z, hs), ag::Mul(ag::Sub(ones, z), ht));
    out.push_back(ag::Add(fused, h[static_cast<size_t>(u)]));
  }
  return out;
}

Gman::Gman(const GmanConfig& config, const data::ForecastDataset& dataset)
    : config_(config) {
  Rng rng(config.seed);
  input_proj_ = AddModule(
      "input", std::make_shared<nn::Linear>(1 + dataset.temporal_dim(),
                                            config.channels, &rng));
  ste_proj_ = AddModule(
      "ste", std::make_shared<nn::Linear>(dataset.static_dim(),
                                          config.channels, &rng));
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    blocks_.push_back(AddModule(
        "block" + std::to_string(b),
        std::make_shared<Block>(config.channels, config.num_heads, &rng)));
  }
  readout_ = AddModule(
      "readout", std::make_shared<TemporalReadout>(
                     config.channels, dataset.history_len(),
                     dataset.horizon(), &rng));
}

std::vector<Var> Gman::PredictNodes(const data::ForecastDataset& dataset,
                                    const std::vector<int32_t>& nodes,
                                    bool /*training*/, Rng* /*rng*/) {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  const int64_t t_len = dataset.history_len();
  std::vector<Var> h;
  h.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    Var x = input_proj_->Forward(ag::Constant(SequenceFeatures(dataset, v)));
    // Spatio-temporal embedding: static node identity added per row.
    Var ste = ste_proj_->Forward(
        ag::Reshape(ag::Constant(dataset.static_features(v)),
                    {1, dataset.static_dim()}));
    h.push_back(ag::Add(
        x, ag::MatMul(ag::Constant(Tensor::Ones({t_len, 1})), ste)));
  }
  for (const auto& block : blocks_) {
    h = block->Forward(dataset.graph(), h);
  }
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    out.push_back(readout_->Forward(h[static_cast<size_t>(v)]));
  }
  return out;
}

}  // namespace gaia::baselines
