#ifndef GAIA_BASELINES_MTGNN_H_
#define GAIA_BASELINES_MTGNN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/forecast_model.h"

namespace gaia::baselines {

struct MtgnnConfig {
  int64_t channels = 18;        ///< divisible by 3 (inception branches)
  int64_t num_layers = 3;       ///< paper sets MTGNN layer size to 3
  int64_t node_embedding_dim = 8;
  int64_t top_k = 5;            ///< learned-graph sparsification
  float mix_hop_beta = 0.5f;    ///< retain ratio in mix-hop propagation
  uint64_t seed = 81;
};

/// \brief MTGNN (Wu et al., KDD 2020): joint graph-structure learning and
/// spatio-temporal convolution — the strongest baseline in Table I.
///
/// Components reproduced: (a) graph learning layer building a sparse
/// directed adjacency from two learned node-embedding tables with top-k
/// selection, (b) dilated inception temporal convolutions (widths 2/3/6,
/// gated tanh ⊙ sigmoid), (c) two-hop mix-hop propagation over the learned
/// graph, with residual connections. Transductive: the model is constructed
/// for a fixed node set.
class Mtgnn : public core::ForecastModel {
 public:
  Mtgnn(const MtgnnConfig& config, const data::ForecastDataset& dataset);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "MTGNN"; }

  /// The currently learned top-k neighbour lists (for inspection/tests).
  std::vector<std::vector<int32_t>> LearnedNeighbors() const;

 private:
  /// Gated dilated inception convolution.
  class InceptionConv : public nn::Module {
   public:
    InceptionConv(int64_t channels, int64_t dilation, Rng* rng);
    Var Forward(const Var& x) const;

   private:
    std::vector<std::shared_ptr<nn::Conv1dLayer>> filter_branches_;
    std::vector<std::shared_ptr<nn::Conv1dLayer>> gate_branches_;
  };

  /// Mix-hop propagation over the learned adjacency.
  class MixHop : public nn::Module {
   public:
    MixHop(int64_t channels, float beta, Rng* rng);
    /// `neighbors[u]` lists (v, weight-var) pairs with softmax-normalized
    /// differentiable weights.
    std::vector<Var> Forward(
        const std::vector<std::vector<std::pair<int32_t, Var>>>& neighbors,
        const std::vector<Var>& h) const;

   private:
    float beta_;
    std::shared_ptr<nn::Linear> out_proj_;  ///< [3C] (hops 0..2) -> C
  };

  /// Builds the differentiable sparse adjacency from the embedding tables.
  std::vector<std::vector<std::pair<int32_t, Var>>> LearnGraph() const;

  MtgnnConfig config_;
  int64_t num_nodes_;
  std::shared_ptr<nn::Linear> input_proj_;
  Var emb1_;  ///< [N, d] source embeddings
  Var emb2_;  ///< [N, d] target embeddings
  std::vector<std::shared_ptr<InceptionConv>> temporal_layers_;
  std::vector<std::shared_ptr<MixHop>> spatial_layers_;
  std::shared_ptr<TemporalReadout> readout_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_MTGNN_H_
