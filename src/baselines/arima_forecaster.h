#ifndef GAIA_BASELINES_ARIMA_FORECASTER_H_
#define GAIA_BASELINES_ARIMA_FORECASTER_H_

#include <vector>

#include "core/evaluator.h"
#include "data/dataset.h"
#include "ts/arima.h"

namespace gaia::baselines {

/// \brief Per-shop classical ARIMA baseline (Table I row 1).
///
/// Each shop's raw GMV history (active months only) is fitted independently
/// with AutoArima(max p = max q = 2, as in the paper's grid) and the horizon
/// is forecast directly in GMV units; degenerate histories fall back to a
/// recent-mean forecast.
class ArimaForecaster {
 public:
  ArimaForecaster(int max_p = 2, int max_d = 1, int max_q = 2)
      : max_p_(max_p), max_d_(max_d), max_q_(max_q) {}

  /// Raw active-history GMV series of one shop (GMV units).
  static std::vector<double> RawHistory(const data::ForecastDataset& dataset,
                                        int32_t v);

  /// Forecasts for each node, in GMV units; [i][h] is node i, month h.
  std::vector<std::vector<double>> ForecastNodes(
      const data::ForecastDataset& dataset,
      const std::vector<int32_t>& nodes) const;

  /// Convenience: forecasts + metric report.
  core::EvaluationReport Evaluate(const data::ForecastDataset& dataset,
                                  const std::vector<int32_t>& nodes) const;

 private:
  int max_p_;
  int max_d_;
  int max_q_;
};

}  // namespace gaia::baselines

#endif  // GAIA_BASELINES_ARIMA_FORECASTER_H_
