#include "baselines/stgcn.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace gaia::baselines {

namespace ag = autograd;

Stgcn::GatedTemporalConv::GatedTemporalConv(int64_t c_in, int64_t c_out,
                                            Rng* rng)
    : c_out_(c_out) {
  conv_ = AddModule("conv", std::make_shared<nn::Conv1dLayer>(
                                c_in, 2 * c_out, 3, PadMode::kCausal, rng));
}

Var Stgcn::GatedTemporalConv::Forward(const Var& x) const {
  Var both = conv_->Forward(x);
  Var p = ag::SliceCols(both, 0, c_out_);
  Var q = ag::SliceCols(both, c_out_, c_out_);
  return ag::Mul(p, ag::Sigmoid(q));
}

Stgcn::SpatialConv::SpatialConv(int64_t channels, Rng* rng) {
  proj_self_ = AddModule("self",
                         std::make_shared<nn::Linear>(channels, channels, rng));
  proj_neigh_ = AddModule(
      "neigh", std::make_shared<nn::Linear>(channels, channels, rng));
}

std::vector<Var> Stgcn::SpatialConv::Forward(const graph::EsellerGraph& graph,
                                             const std::vector<Var>& h) const {
  const auto n = static_cast<int32_t>(h.size());
  std::vector<Var> out;
  out.reserve(h.size());
  for (int32_t u = 0; u < n; ++u) {
    Var self_term = proj_self_->Forward(h[static_cast<size_t>(u)]);
    const std::vector<graph::Neighbor> neighbors = graph.InNeighbors(u);
    if (neighbors.empty()) {
      out.push_back(ag::Relu(self_term));
      continue;
    }
    std::vector<Var> parts;
    parts.reserve(neighbors.size());
    for (const graph::Neighbor& nb : neighbors) {
      parts.push_back(h[static_cast<size_t>(nb.node)]);
    }
    Var neigh_term = proj_neigh_->Forward(MeanVars(parts));
    out.push_back(ag::Relu(ag::Add(self_term, neigh_term)));
  }
  return out;
}

Stgcn::Block::Block(int64_t channels, Rng* rng) {
  temporal_in_ = AddModule("t_in",
                           std::make_shared<GatedTemporalConv>(channels,
                                                               channels, rng));
  spatial_ = AddModule("spatial", std::make_shared<SpatialConv>(channels, rng));
  temporal_out_ = AddModule(
      "t_out", std::make_shared<GatedTemporalConv>(channels, channels, rng));
}

std::vector<Var> Stgcn::Block::Forward(const graph::EsellerGraph& graph,
                                       const std::vector<Var>& h) const {
  std::vector<Var> x;
  x.reserve(h.size());
  for (const Var& node : h) x.push_back(temporal_in_->Forward(node));
  x = spatial_->Forward(graph, x);
  for (Var& node : x) node = temporal_out_->Forward(node);
  return x;
}

Stgcn::Stgcn(const StgcnConfig& config, const data::ForecastDataset& dataset)
    : config_(config) {
  Rng rng(config.seed);
  input_proj_ = AddModule(
      "input", std::make_shared<nn::Linear>(1 + dataset.temporal_dim(),
                                            config.channels, &rng));
  static_proj_ = AddModule(
      "static", std::make_shared<nn::Linear>(dataset.static_dim(),
                                             config.channels, &rng));
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    blocks_.push_back(AddModule("block" + std::to_string(b),
                                std::make_shared<Block>(config.channels,
                                                        &rng)));
  }
  readout_ = AddModule(
      "readout", std::make_shared<TemporalReadout>(
                     config.channels, dataset.history_len(),
                     dataset.horizon(), &rng));
}

std::vector<Var> Stgcn::PredictNodes(const data::ForecastDataset& dataset,
                                     const std::vector<int32_t>& nodes,
                                     bool /*training*/, Rng* /*rng*/) {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  const int64_t t_len = dataset.history_len();
  std::vector<Var> h;
  h.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    Var x = input_proj_->Forward(ag::Constant(SequenceFeatures(dataset, v)));
    Var stat = static_proj_->Forward(
        ag::Reshape(ag::Constant(dataset.static_features(v)),
                    {1, dataset.static_dim()}));
    h.push_back(ag::Add(
        x, ag::MatMul(ag::Constant(Tensor::Ones({t_len, 1})), stat)));
  }
  for (const auto& block : blocks_) {
    h = block->Forward(dataset.graph(), h);
  }
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    out.push_back(readout_->Forward(h[static_cast<size_t>(v)]));
  }
  return out;
}

}  // namespace gaia::baselines
