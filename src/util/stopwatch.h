#ifndef GAIA_UTIL_STOPWATCH_H_
#define GAIA_UTIL_STOPWATCH_H_

#include <chrono>

namespace gaia {

/// \brief Monotonic wall-clock stopwatch for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gaia

#endif  // GAIA_UTIL_STOPWATCH_H_
