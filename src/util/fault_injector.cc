#include "util/fault_injector.h"

#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"

namespace gaia::util {

namespace {

/// FNV-1a — stable across runs, so per-site streams are reproducible.
uint64_t HashSite(const std::string& site) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

obs::Counter& InjectedMetric() {
  static obs::Counter* counter = &obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_faults_injected_total",
      "Faults fired by util::FaultInjector across all sites");
  return *counter;
}

}  // namespace

Result<FaultKind> ParseFaultKind(const std::string& text) {
  if (text == "io") return FaultKind::kIoError;
  if (text == "unavailable") return FaultKind::kUnavailable;
  if (text == "deadline") return FaultKind::kDeadline;
  if (text == "corrupt") return FaultKind::kCorrupt;
  if (text == "nan") return FaultKind::kNan;
  return Status::InvalidArgument("unknown fault kind: " + text);
}

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError:
      return "io";
    case FaultKind::kUnavailable:
      return "unavailable";
    case FaultKind::kDeadline:
      return "deadline";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kNan:
      return "nan";
  }
  return "unknown";
}

Status FaultStatus(FaultKind kind, const std::string& site) {
  const std::string what = "injected fault at " + site;
  switch (kind) {
    case FaultKind::kIoError:
      return Status::IoError(what);
    case FaultKind::kUnavailable:
      return Status::Unavailable(what);
    case FaultKind::kDeadline:
      return Status::DeadlineExceeded(what);
    case FaultKind::kCorrupt:
    case FaultKind::kNan:
      return Status::DataLoss(what);
  }
  return Status::Internal(what);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* seed_env = std::getenv("GAIA_FAULTS_SEED")) {
      inj->Reseed(std::strtoull(seed_env, nullptr, 10));
    }
    if (const char* faults = std::getenv("GAIA_FAULTS")) {
      Status armed = inj->ArmFromString(faults);
      // A malformed env spec is a configuration error worth failing loudly
      // on: silently running a chaos suite with no faults armed would pass
      // vacuously.
      GAIA_CHECK(armed.ok()) << "bad GAIA_FAULTS: " << armed.ToString();
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::Arm(const FaultSpec& spec) {
  GAIA_CHECK(!spec.site.empty());
  GAIA_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0)
      << "fault probability out of [0,1]: " << spec.probability;
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[spec.site];
  if (state.specs.empty()) {
    state.rng.Seed(seed_ ^ HashSite(spec.site));
  }
  state.specs.push_back(spec);
  state.fires_per_spec.push_back(0);
  state.samples_per_spec.push_back(0);
  armed_.store(1, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromString(const std::string& text) {
  std::stringstream rules(text);
  std::string rule;
  int parsed = 0;
  while (std::getline(rules, rule, ';')) {
    if (rule.empty()) continue;
    std::stringstream fields(rule);
    std::string site, kind_text, prob_text, count_text, skip_text;
    std::getline(fields, site, ':');
    std::getline(fields, kind_text, ':');
    std::getline(fields, prob_text, ':');
    std::getline(fields, count_text, ':');
    std::getline(fields, skip_text, ':');
    if (site.empty() || kind_text.empty()) {
      return Status::InvalidArgument(
          "fault rule needs site:kind[:prob[:count[:skip]]]: " + rule);
    }
    FaultSpec spec;
    spec.site = site;
    GAIA_ASSIGN_OR_RETURN(spec.kind, ParseFaultKind(kind_text));
    if (!prob_text.empty()) {
      char* end = nullptr;
      spec.probability = std::strtod(prob_text.c_str(), &end);
      if (end == nullptr || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return Status::InvalidArgument("bad fault probability: " + prob_text);
      }
    }
    if (!count_text.empty()) {
      char* end = nullptr;
      spec.max_fires = std::strtoll(count_text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || spec.max_fires < 0) {
        return Status::InvalidArgument("bad fault count: " + count_text);
      }
    }
    if (!skip_text.empty()) {
      char* end = nullptr;
      spec.skip = std::strtoll(skip_text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || spec.skip < 0) {
        return Status::InvalidArgument("bad fault skip: " + skip_text);
      }
    }
    Arm(spec);
    ++parsed;
  }
  if (parsed == 0) {
    return Status::InvalidArgument("empty GAIA_FAULTS spec: " + text);
  }
  return Status::OK();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [site, state] : sites_) {
    state.rng.Seed(seed_ ^ HashSite(site));
  }
}

std::optional<FaultKind> FaultInjector::Sample(const std::string& site) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  SiteState& state = it->second;
  for (size_t i = 0; i < state.specs.size(); ++i) {
    const FaultSpec& spec = state.specs[i];
    const int64_t seen = state.samples_per_spec[i]++;
    if (seen < spec.skip) continue;  // not this occurrence yet; no draw
    if (spec.max_fires >= 0 && state.fires_per_spec[i] >= spec.max_fires) {
      continue;
    }
    // Draw even for probability 1.0 so adding/removing a rule's budget does
    // not shift the decision stream of later rules on the same site.
    const bool hit = state.rng.Uniform() < spec.probability;
    if (!hit) continue;
    ++state.fires_per_spec[i];
    ++state.fired;
    InjectedMetric().Increment();
    return spec.kind;
  }
  return std::nullopt;
}

int64_t FaultInjector::fired_count(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

int64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.fired;
  return total;
}

}  // namespace gaia::util
