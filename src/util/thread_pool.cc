#include "util/thread_pool.h"
#include "util/arena.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <optional>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"

namespace gaia::util {

namespace {

/// Set while a thread is executing chunks of some job; nested ParallelFor
/// calls observe it and run inline.
thread_local bool tl_in_parallel_region = false;

/// Pool metrics, resolved once (registry lookups take a mutex; the returned
/// references are stable). Only touched when obs::Enabled().
struct PoolMetrics {
  obs::Counter& jobs = obs::MetricsRegistry::Global().GetCounter(
      "gaia_pool_jobs_total", "Top-level ParallelFor jobs dispatched to workers");
  obs::Counter& chunks = obs::MetricsRegistry::Global().GetCounter(
      "gaia_pool_chunks_total", "Loop chunks executed across all threads");
  obs::Counter& busy_ns = obs::MetricsRegistry::Global().GetCounter(
      "gaia_pool_busy_ns_total",
      "Nanoseconds spent running loop bodies, summed over threads");
  obs::Counter& inline_chunks = obs::MetricsRegistry::Global().GetCounter(
      "gaia_pool_inline_chunks_total",
      "Loops run inline on the caller (1-thread pool, nested, or sub-grain)");
  obs::Histogram& queue_wait = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_pool_queue_wait_seconds", {},
      "Delay between job submit and a thread claiming its first chunk");
  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

/// Inline execution shared by the no-worker / nested / sub-grain paths.
/// Without a token this is the single body(0, n) call it always was; with
/// one armed, the loop runs the same grain-sized chunks the pool would
/// have dispatched and polls the token between them — identical chunk
/// boundaries, so an unfired token changes nothing, and a 1-thread run
/// can still abort mid-loop.
void RunInline(int64_t n, int64_t grain,
               const std::function<void(int64_t, int64_t)>& body,
               const CancelToken* cancel) {
  if (obs::Enabled()) PoolMetrics::Get().inline_chunks.Increment();
  if (cancel == nullptr) {
    body(0, n);
    return;
  }
  for (int64_t begin = 0; begin < n; begin += grain) {
    if (cancel->Cancelled()) {
      NoteCancelObserved();
      return;
    }
    body(begin, std::min(n, begin + grain));
  }
}

}  // namespace

/// One dispatched loop. Chunks are claimed through `next`; the job is done
/// when `completed` reaches `num_chunks`.
struct ThreadPool::Job {
  int64_t n = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  uint64_t submit_ns = 0;  ///< obs: trace-epoch time of dispatch (0 = off)
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  const CancelToken* cancel = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  std::atomic<bool> has_error{false};
  std::atomic<bool> cancel_noted{false};
  std::mutex error_mu;
  std::exception_ptr error;
  std::mutex done_mu;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(int num_threads) {
  GAIA_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  // Permanent arena scope: a pool worker's tensor churn (chunk bodies of the
  // parallel kernels) caches in its thread-local free lists across jobs.
  ArenaScope arena_scope;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->num_chunks);
      });
      if (stop_) return;
      job = job_;
    }
    RunChunks(*job);
  }
}

void ThreadPool::RunChunks(Job& job) {
  const bool previous = tl_in_parallel_region;
  tl_in_parallel_region = true;
  // Workers re-install the job's token so code called from the body (and,
  // later, nested inline loops) observes cancellation on every thread. The
  // submitting caller blocks in ParallelForRange until the job drains, so
  // the raw pointer cannot dangle.
  std::optional<CancelScope> cancel_scope;
  if (job.cancel != nullptr) cancel_scope.emplace(job.cancel);
  // Timing is read but never fed back into scheduling or the loop body, so
  // enabling observability cannot perturb chunk order or numerics.
  const bool obs_on = job.submit_ns != 0 && obs::Enabled();
  bool first_chunk = true;
  for (;;) {
    const int64_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    uint64_t chunk_start = 0;
    if (obs_on) {
      chunk_start = obs::internal_trace::NowNs();
      if (first_chunk) {
        first_chunk = false;
        PoolMetrics::Get().queue_wait.Observe(
            static_cast<double>(chunk_start - job.submit_ns) * 1e-9);
      }
    }
    const bool cancelled =
        job.cancel != nullptr && job.cancel->Cancelled();
    if (cancelled && !job.cancel_noted.exchange(true)) NoteCancelObserved();
    if (!cancelled && !job.has_error.load(std::memory_order_relaxed)) {
      try {
        const int64_t begin = chunk * job.grain;
        const int64_t end = std::min(job.n, begin + job.grain);
        (*job.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (job.error == nullptr) job.error = std::current_exception();
        job.has_error.store(true, std::memory_order_relaxed);
      }
    }
    if (obs_on) {
      PoolMetrics& metrics = PoolMetrics::Get();
      metrics.chunks.Increment();
      metrics.busy_ns.Increment(obs::internal_trace::NowNs() - chunk_start);
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
  tl_in_parallel_region = previous;
}

void ThreadPool::ParallelForRange(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body,
    const CancelToken* cancel) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  if (workers_.empty() || tl_in_parallel_region || n <= grain) {
    // The inline path bypasses worker dispatch entirely, so without its own
    // counter a 1-thread run reports all-zero pool metrics (the documented
    // metrics_snapshot footgun). Count it so the work is still visible.
    RunInline(n, grain, body, cancel);
    return;
  }
  // One job at a time: concurrent top-level callers queue up here.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = grain;
  job->num_chunks = (n + grain - 1) / grain;
  job->body = &body;
  job->cancel = cancel;
  if (obs::Enabled()) {
    job->submit_ns = obs::internal_trace::NowNs();
    PoolMetrics::Get().jobs.Increment();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
  }
  cv_.notify_all();
  RunChunks(*job);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == job->num_chunks;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job_ == job) job_ = nullptr;
  }
  if (job->error != nullptr) std::rethrow_exception(job->error);
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body,
                             int64_t grain, const CancelToken* cancel) {
  ParallelForRange(
      n, grain,
      [&body](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) body(i);
      },
      cancel);
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  GAIA_CHECK_GE(num_threads, 1);
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool != nullptr &&
      g_global_pool->num_threads() == num_threads) {
    return;
  }
  g_global_pool.reset();  // join old workers before spawning new ones
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

int ThreadPool::GlobalThreads() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_pool != nullptr ? g_global_pool->num_threads()
                                  : DefaultThreads();
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("GAIA_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::InParallelRegion() { return tl_in_parallel_region; }

ThreadPool::InlineScope::InlineScope() : previous_(tl_in_parallel_region) {
  tl_in_parallel_region = true;
}

ThreadPool::InlineScope::~InlineScope() { tl_in_parallel_region = previous_; }

void ParallelFor(int64_t n, const std::function<void(int64_t)>& body,
                 int64_t grain) {
  if (n <= 0) return;
  const CancelToken* cancel = CancelToken::Current();
  grain = std::max<int64_t>(1, grain);
  if (ThreadPool::InParallelRegion() || n <= grain) {
    RunInline(
        n, grain,
        [&body](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) body(i);
        },
        cancel);
    return;
  }
  ThreadPool::Global().ParallelFor(n, body, grain, cancel);
}

void ParallelForRange(int64_t n, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const CancelToken* cancel = CancelToken::Current();
  grain = std::max<int64_t>(1, grain);
  if (ThreadPool::InParallelRegion() || n <= grain) {
    RunInline(n, grain, body, cancel);
    return;
  }
  ThreadPool::Global().ParallelForRange(n, grain, body, cancel);
}

}  // namespace gaia::util
