#ifndef GAIA_UTIL_LOGGING_H_
#define GAIA_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace gaia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to Info.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define GAIA_LOG(level)                                        \
  ::gaia::internal_logging::LogMessage(::gaia::LogLevel::k##level, \
                                       __FILE__, __LINE__)

}  // namespace gaia

#endif  // GAIA_UTIL_LOGGING_H_
