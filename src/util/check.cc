#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace gaia::internal_check {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "GAIA_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace gaia::internal_check
