#ifndef GAIA_UTIL_COMPILER_H_
#define GAIA_UTIL_COMPILER_H_

/// Compiler hints shared by the hot kernels. Kept in one tiny header so the
/// tensor ops, the arena, and any future kernel agree on the spelling.

/// No-alias pointer qualifier. The packed GEMM and the vectorized inner
/// loops in tensor_ops.cc use it to tell the autovectorizer that input and
/// output spans never overlap, which is what lets a
/// `for (j) out[j] += a * in[j]` body compile to mulps/addps instead of a
/// scalar load-op-store chain.
#if defined(__GNUC__) || defined(__clang__)
#define GAIA_RESTRICT __restrict__
#else
#define GAIA_RESTRICT
#endif

/// Force-inline for the GEMM micro-kernel: the whole point of the 8x8 tile
/// is that it lives in registers, which dies if the call is outlined.
#if defined(__GNUC__) || defined(__clang__)
#define GAIA_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define GAIA_ALWAYS_INLINE inline
#endif

#endif  // GAIA_UTIL_COMPILER_H_
