#ifndef GAIA_UTIL_THREAD_POOL_H_
#define GAIA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gaia::util {

class CancelToken;

/// \brief Fixed-size thread pool with a blocking, deterministic ParallelFor.
///
/// Design goals, in order: deterministic numerics, simplicity, speed. There
/// is no work stealing; a loop is split into contiguous chunks handed out
/// through one atomic cursor. Chunk *assignment* to threads is dynamic, but
/// every chunk runs exactly the same serial inner loop over the same
/// indices, so any kernel that writes disjoint output slots per index is
/// bitwise identical at every thread count — including 1, which runs inline
/// on the caller with no synchronization at all.
///
/// Semantics:
///  - A pool of `num_threads` runs `num_threads - 1` background workers; the
///    calling thread always participates, so ThreadPool(1) spawns nothing
///    and recovers the exact serial path.
///  - Nested ParallelFor calls (issued from inside a pool task) run inline
///    serially; composed parallel code cannot deadlock.
///  - Empty or negative ranges are no-ops.
///  - Exceptions thrown by the body are captured; remaining chunks are
///    skipped and the first exception is rethrown on the calling thread
///    after the loop drains.
///  - With a CancelToken armed, the token is checked once per claimed chunk:
///    after it fires, remaining chunk bodies are skipped and the loop drains
///    early. Chunk boundaries and accumulation order never depend on the
///    token, so an armed-but-unfired token is bitwise identical to no token,
///    and a fired one never interrupts a chunk mid-write.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers. Pre: num_threads >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that can run loop bodies (workers + the caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n), blocking until all complete.
  /// `grain` is the number of consecutive indices claimed at a time.
  /// With `cancel` non-null, chunks claimed after the token fires are
  /// skipped (see class comment); the token is also installed as
  /// CancelToken::Current() on the worker threads for the duration of
  /// their chunk runs, so nested kernels observe it too.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body,
                   int64_t grain = 1, const CancelToken* cancel = nullptr);

  /// Blocked variant: body(begin, end) over disjoint chunks of at most
  /// `grain` consecutive indices covering [0, n).
  void ParallelForRange(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& body,
                        const CancelToken* cancel = nullptr);

  /// Process-wide pool used by the parallel kernels. Created on first use
  /// with DefaultThreads().
  static ThreadPool& Global();

  /// Resizes the global pool (the GAIA_NUM_THREADS-style runtime knob,
  /// plumbed through GaiaConfig / TrainConfig / ServerConfig). Must not be
  /// called while parallel work is in flight. Pre: num_threads >= 1.
  static void SetGlobalThreads(int num_threads);

  /// Current size of the global pool (DefaultThreads() if not yet created).
  static int GlobalThreads();

  /// Thread count from the GAIA_NUM_THREADS environment variable when set
  /// (clamped to [1, 256]), else std::thread::hardware_concurrency().
  static int DefaultThreads();

  /// True when called from inside a ParallelFor body (on any thread).
  static bool InParallelRegion();

  /// \brief RAII scope that marks the current thread as already inside a
  /// parallel region, forcing every nested ParallelFor to run inline
  /// serially instead of dispatching to the global pool.
  ///
  /// Long-lived service threads (the sharded server's per-shard workers) use
  /// this so K shards can run K forwards truly concurrently: without it each
  /// worker would submit to the one global pool and serialize on its submit
  /// mutex. The inline path is the exact serial path, so results stay
  /// bitwise identical (parallel_determinism_test's guarantee).
  class InlineScope {
   public:
    InlineScope();
    ~InlineScope();
    InlineScope(const InlineScope&) = delete;
    InlineScope& operator=(const InlineScope&) = delete;

   private:
    bool previous_;
  };

 private:
  struct Job;

  void WorkerLoop();
  void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;                ///< guards job_ / stop_
  std::condition_variable cv_;   ///< wakes workers when a job arrives
  std::shared_ptr<Job> job_;     ///< currently dispatched job, if any
  bool stop_ = false;
  std::mutex submit_mu_;         ///< serializes top-level ParallelFor calls
};

/// Convenience wrappers over the global pool. These check the nesting flag
/// before touching the pool, so nested and small loops stay lock-free.
/// They consult CancelToken::Current() automatically, which is how the
/// tensor kernels and model layers become abortable without signature
/// changes: installing a CancelScope above them is enough.
void ParallelFor(int64_t n, const std::function<void(int64_t)>& body,
                 int64_t grain = 1);
void ParallelForRange(int64_t n, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& body);

}  // namespace gaia::util

#endif  // GAIA_UTIL_THREAD_POOL_H_
