#include "util/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace gaia::util {

namespace {

/// Every buffer carries a 64-byte header so Release can tell how it was
/// allocated (arena size-class vs exact-size heap) without any side table,
/// and so the payload stays 64-byte aligned for the vectorized kernels.
constexpr uint64_t kArenaMagic = 0xA13ACAFEF00D0001ull;
constexpr uint64_t kPlainMagic = 0xA13ACAFEF00D0002ull;
constexpr size_t kHeaderBytes = 64;

struct alignas(64) Header {
  uint64_t magic;
  int64_t payload_bytes;  ///< capacity (class-rounded for arena buffers)
};
static_assert(sizeof(Header) <= kHeaderBytes, "header must fit its slot");

/// Size classes: powers of two from 256 B (64 floats) to 2 GiB. Anything
/// larger bypasses the cache — at that size the memset dominates the malloc
/// anyway.
constexpr int64_t kMinClassBytes = 256;
constexpr int kNumClasses = 24;
constexpr int64_t kMaxClassBytes = kMinClassBytes << (kNumClasses - 1);

int ClassIndex(int64_t bytes) {
  int idx = 0;
  int64_t cap = kMinClassBytes;
  while (cap < bytes) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

int64_t ClassCapacity(int idx) { return kMinClassBytes << idx; }

/// Arena instruments. Resolved once; references are stable for the
/// registry's lifetime. gaia_alloc_* moved here from tensor.cc: they now
/// count buffers that actually hit the system heap, so "arena working"
/// reads directly as those counters flatlining per request.
struct ArenaMetrics {
  obs::Counter& heap_tensors = obs::MetricsRegistry::Global().GetCounter(
      "gaia_alloc_tensors_total",
      "Tensor buffers allocated from the system heap (arena hits excluded)");
  obs::Counter& heap_bytes = obs::MetricsRegistry::Global().GetCounter(
      "gaia_alloc_bytes_total",
      "Bytes allocated from the system heap for tensor buffers");
  obs::Counter& reuse = obs::MetricsRegistry::Global().GetCounter(
      "gaia_arena_reuse_total",
      "Tensor allocations served from a thread-local arena cache");
  obs::Gauge& in_use = obs::MetricsRegistry::Global().GetGauge(
      "gaia_arena_bytes_in_use",
      "Arena-class bytes currently lent out to live tensors");
  obs::Gauge& high_water = obs::MetricsRegistry::Global().GetGauge(
      "gaia_arena_high_water",
      "Maximum of gaia_arena_bytes_in_use over the process lifetime");
  static ArenaMetrics& Get() {
    static ArenaMetrics* metrics = new ArenaMetrics();
    return *metrics;
  }
};

std::atomic<bool> g_enabled{TensorArena::ParseEnabled(
    std::getenv("GAIA_ARENA"))};

int64_t CapBytes() {
  static const int64_t cap = [] {
    const char* value = std::getenv("GAIA_ARENA_CAP_MB");
    if (value == nullptr || *value == '\0') return int64_t{256} << 20;
    const long long mb = std::atoll(value);
    return mb > 0 ? int64_t{mb} << 20 : int64_t{256} << 20;
  }();
  return cap;
}

float* Payload(Header* header) {
  return reinterpret_cast<float*>(reinterpret_cast<char*>(header) +
                                  kHeaderBytes);
}

Header* HeaderOf(float* payload) {
  return reinterpret_cast<Header*>(reinterpret_cast<char*>(payload) -
                                   kHeaderBytes);
}

Header* RawAllocate(int64_t payload_bytes, uint64_t magic) {
  void* raw = ::operator new(kHeaderBytes + static_cast<size_t>(payload_bytes),
                             std::align_val_t{64});
  Header* header = static_cast<Header*>(raw);
  header->magic = magic;
  header->payload_bytes = payload_bytes;
  return header;
}

void RawFree(Header* header) {
  ::operator delete(static_cast<void*>(header), std::align_val_t{64});
}

/// The per-thread cache. Lives as a function-local thread_local so it is
/// constructed on first use and destroyed at thread exit; the POD
/// `tl_cache_dead` flag outlives it (trivially destructible), letting
/// static-destruction stragglers detect the dead cache and fall back to a
/// plain heap free instead of touching a destroyed object.
thread_local bool tl_cache_dead = false;

struct ThreadCache {
  std::vector<void*> free_lists[kNumClasses];
  TensorArena::ThreadStats stats;
  int scope_depth = 0;

  ~ThreadCache() {
    TrimLists();
    tl_cache_dead = true;
  }

  void TrimLists() {
    for (auto& list : free_lists) {
      for (void* entry : list) RawFree(static_cast<Header*>(entry));
      list.clear();
    }
    stats.cached_bytes = 0;
  }
};

ThreadCache* Cache() {
  if (tl_cache_dead) return nullptr;
  thread_local ThreadCache cache;
  return &cache;
}

void CountHeapAlloc(int64_t bytes) {
  if (obs::Enabled()) {
    ArenaMetrics& metrics = ArenaMetrics::Get();
    metrics.heap_tensors.Increment();
    metrics.heap_bytes.Increment(static_cast<uint64_t>(bytes));
  }
}

float* AllocateImpl(int64_t n, bool zero) {
  if (n <= 0) return nullptr;
  const int64_t bytes = n * static_cast<int64_t>(sizeof(float));
  ThreadCache* cache = Cache();
  const bool use_arena = bytes <= kMaxClassBytes && cache != nullptr &&
                         cache->scope_depth > 0 &&
                         g_enabled.load(std::memory_order_relaxed);
  if (use_arena) {
    const int cls = ClassIndex(bytes);
    std::vector<void*>& list = cache->free_lists[cls];
    Header* header;
    if (!list.empty()) {
      header = static_cast<Header*>(list.back());
      list.pop_back();
      cache->stats.cached_bytes -= header->payload_bytes;
      ++cache->stats.reuse_count;
      if (obs::Enabled()) ArenaMetrics::Get().reuse.Increment();
    } else {
      header = RawAllocate(ClassCapacity(cls), kArenaMagic);
      ++cache->stats.heap_allocs;
      CountHeapAlloc(header->payload_bytes);
    }
    cache->stats.live_bytes += header->payload_bytes;
    if (cache->stats.live_bytes > cache->stats.high_water_bytes) {
      cache->stats.high_water_bytes = cache->stats.live_bytes;
    }
    if (obs::Enabled()) {
      ArenaMetrics& metrics = ArenaMetrics::Get();
      metrics.in_use.Add(static_cast<double>(header->payload_bytes));
      metrics.high_water.Max(metrics.in_use.value());
    }
    float* payload = Payload(header);
    // Zero only the requested span: callers never read past `n`, and the
    // class-rounded tail would be wasted bandwidth.
    if (zero) std::memset(payload, 0, static_cast<size_t>(bytes));
    return payload;
  }
  Header* header = RawAllocate(bytes, kPlainMagic);
  if (cache != nullptr) ++cache->stats.heap_allocs;
  CountHeapAlloc(bytes);
  float* payload = Payload(header);
  if (zero) std::memset(payload, 0, static_cast<size_t>(bytes));
  return payload;
}

}  // namespace

float* TensorArena::Allocate(int64_t n) { return AllocateImpl(n, true); }

float* TensorArena::AllocateUninitialized(int64_t n) {
  return AllocateImpl(n, false);
}

void TensorArena::Release(float* ptr) {
  if (ptr == nullptr) return;
  Header* header = HeaderOf(ptr);
  GAIA_CHECK(header->magic == kArenaMagic || header->magic == kPlainMagic)
      << "TensorArena::Release: pointer was not allocated by the arena";
  if (header->magic == kArenaMagic) {
    const int64_t bytes = header->payload_bytes;
    if (obs::Enabled()) {
      ArenaMetrics::Get().in_use.Add(-static_cast<double>(bytes));
    }
    ThreadCache* cache = Cache();
    if (cache != nullptr) {
      cache->stats.live_bytes -= bytes;
      if (g_enabled.load(std::memory_order_relaxed) &&
          cache->stats.cached_bytes + bytes <= CapBytes()) {
        cache->free_lists[ClassIndex(bytes)].push_back(
            static_cast<void*>(header));
        cache->stats.cached_bytes += bytes;
        return;
      }
    }
  }
  RawFree(header);
}

bool TensorArena::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void TensorArena::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TensorArena::ScopeActive() {
  ThreadCache* cache = Cache();
  return cache != nullptr && cache->scope_depth > 0;
}

TensorArena::ThreadStats TensorArena::Stats() {
  ThreadCache* cache = Cache();
  return cache != nullptr ? cache->stats : ThreadStats{};
}

void TensorArena::Trim() {
  ThreadCache* cache = Cache();
  if (cache != nullptr) cache->TrimLists();
}

bool TensorArena::ParseEnabled(const char* value) {
  if (value == nullptr || *value == '\0') return true;
  const std::string_view v(value);
  return !(v == "0" || v == "off" || v == "OFF" || v == "false" ||
           v == "FALSE" || v == "no");
}

ArenaScope::ArenaScope() {
  ThreadCache* cache = Cache();
  if (cache != nullptr) ++cache->scope_depth;
}

ArenaScope::~ArenaScope() {
  ThreadCache* cache = Cache();
  if (cache != nullptr) --cache->scope_depth;
}

FloatBuffer::FloatBuffer(int64_t n, const float* src)
    : data_(TensorArena::AllocateUninitialized(n)), size_(n) {
  if (n > 0) std::memcpy(data_, src, static_cast<size_t>(n) * sizeof(float));
}

FloatBuffer::FloatBuffer(const FloatBuffer& other)
    : FloatBuffer(other.size_, other.data_) {}

FloatBuffer& FloatBuffer::operator=(const FloatBuffer& other) {
  if (this == &other) return *this;
  if (size_ == other.size_) {
    // Equal-size assignment reuses the allocation: the optimizer's
    // snapshot/restore and checkpoint-load paths hit this every epoch.
    if (size_ > 0) {
      std::memcpy(data_, other.data_,
                  static_cast<size_t>(size_) * sizeof(float));
    }
    return *this;
  }
  if (data_ != nullptr) TensorArena::Release(data_);
  data_ = TensorArena::AllocateUninitialized(other.size_);
  size_ = other.size_;
  if (size_ > 0) {
    std::memcpy(data_, other.data_,
                static_cast<size_t>(size_) * sizeof(float));
  }
  return *this;
}

FloatBuffer& FloatBuffer::operator=(FloatBuffer&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) TensorArena::Release(data_);
  data_ = other.data_;
  size_ = other.size_;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

}  // namespace gaia::util
