#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace gaia {

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform on two uniforms; guard against log(0).
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  GAIA_CHECK_GT(rate, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

double Rng::Pareto(double alpha, double x_min) {
  GAIA_CHECK_GT(alpha, 0.0);
  GAIA_CHECK_GT(x_min, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return x_min / std::pow(u, 1.0 / alpha);
}

}  // namespace gaia
