#include "util/cancel.h"

#include "obs/metrics.h"

namespace gaia::util {

namespace {

/// Innermost installed token for this thread (see CancelScope).
thread_local const CancelToken* tl_current_token = nullptr;

/// Cancellation metrics are unconditional (like gaia_robust_*): a deadline
/// abort is an operational event worth counting even with GAIA_OBS off.
struct CancelMetrics {
  obs::Counter& requested = obs::MetricsRegistry::Global().GetCounter(
      "gaia_cancel_requested_total",
      "Cancel tokens fired (explicit Cancel or deadline expiry)");
  obs::Counter& observed = obs::MetricsRegistry::Global().GetCounter(
      "gaia_cancel_observed_total",
      "Cooperative abort events: work units that saw a fired token and "
      "stopped early");
  static CancelMetrics& Get() {
    static CancelMetrics* metrics = new CancelMetrics();
    return *metrics;
  }
};

}  // namespace

std::shared_ptr<CancelToken> CancelToken::Create() {
  return std::make_shared<CancelToken>();
}

std::shared_ptr<CancelToken> CancelToken::WithDeadline(double deadline_ms) {
  auto token = std::make_shared<CancelToken>();
  token->has_deadline_ = true;
  token->deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(deadline_ms));
  return token;
}

std::shared_ptr<CancelToken> CancelToken::Child(const CancelToken* parent,
                                                double deadline_ms) {
  auto token = deadline_ms > 0.0 ? WithDeadline(deadline_ms) : Create();
  token->parent_ = parent;
  return token;
}

bool CancelToken::CheckSlow() const {
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Fire("deadline_exceeded");
    return true;
  }
  if (parent_ != nullptr && parent_->Cancelled()) {
    Fire(parent_->reason());
    return true;
  }
  return false;
}

void CancelToken::Fire(const char* reason) const {
  bool expected = false;
  if (fired_.compare_exchange_strong(expected, true,
                                     std::memory_order_acq_rel)) {
    reason_.store(reason, std::memory_order_release);
    CancelMetrics::Get().requested.Increment();
  }
}

Status CancelToken::ToStatus() const {
  if (!Cancelled()) return Status::OK();
  return Status::Cancelled(reason());
}

const CancelToken* CancelToken::Current() { return tl_current_token; }

CancelScope::CancelScope(const CancelToken* token) {
  if (token == nullptr) return;
  previous_ = tl_current_token;
  tl_current_token = token;
  installed_ = true;
}

CancelScope::~CancelScope() {
  if (installed_) tl_current_token = previous_;
}

bool CurrentCancelled() {
  const CancelToken* token = tl_current_token;
  return token != nullptr && token->Cancelled();
}

void NoteCancelObserved() { CancelMetrics::Get().observed.Increment(); }

}  // namespace gaia::util
