#ifndef GAIA_UTIL_STATUS_H_
#define GAIA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace gaia {

/// \brief Error codes for fallible gaia operations.
///
/// Modeled after the Arrow/RocksDB status idiom: recoverable failures are
/// reported through Status/Result rather than exceptions; internal invariant
/// violations abort through GAIA_CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kNotImplemented,
  kInternal,
  kDataLoss,          ///< stored data is corrupt (bad CRC, torn write, NaN)
  kUnavailable,       ///< transient failure; safe to retry with backoff
  kDeadlineExceeded,  ///< operation exceeded its latency budget
  kCancelled,         ///< work aborted cooperatively via util::CancelToken
};

/// \brief Returns a human readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Lightweight status object carrying a code and a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for the OK
/// case and carry a heap string only on error.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Value-or-error result type, the return convention for fallible
/// factory functions (e.g. config validation, data loading).
template <typename T>
class Result {
 public:
  /// Implicit conversions from both T and Status keep call sites terse, the
  /// same convention as arrow::Result.
  Result(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)), status_(Status::OK()) {}
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Aborts with the carried status message otherwise.
  const T& value() const& {
    GAIA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    GAIA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GAIA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("uninitialized result");
};

/// Propagates a non-OK status to the caller.
#define GAIA_RETURN_NOT_OK(expr)           \
  do {                                     \
    ::gaia::Status _st = (expr);           \
    if (!_st.ok()) return _st;             \
  } while (false)

/// Evaluates a Result<T> expression; on success assigns the value to `lhs`
/// (which may declare a new variable), on error propagates the status:
///   GAIA_ASSIGN_OR_RETURN(auto market, LoadMarketCsv(dir));
#define GAIA_ASSIGN_OR_RETURN(lhs, expr) \
  GAIA_ASSIGN_OR_RETURN_IMPL_(           \
      GAIA_STATUS_CONCAT_(gaia_result_, __LINE__), lhs, expr)

#define GAIA_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define GAIA_STATUS_CONCAT_INNER_(a, b) a##b
#define GAIA_STATUS_CONCAT_(a, b) GAIA_STATUS_CONCAT_INNER_(a, b)

}  // namespace gaia

#endif  // GAIA_UTIL_STATUS_H_
