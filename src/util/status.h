#ifndef GAIA_UTIL_STATUS_H_
#define GAIA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace gaia {

/// \brief Error codes for fallible gaia operations.
///
/// Modeled after the Arrow/RocksDB status idiom: recoverable failures are
/// reported through Status/Result rather than exceptions; internal invariant
/// violations abort through GAIA_CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kNotImplemented,
  kInternal,
};

/// \brief Returns a human readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Lightweight status object carrying a code and a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for the OK
/// case and carry a heap string only on error.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Value-or-error result type, the return convention for fallible
/// factory functions (e.g. config validation, data loading).
template <typename T>
class Result {
 public:
  /// Implicit conversions from both T and Status keep call sites terse, the
  /// same convention as arrow::Result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                           // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Aborts otherwise (checked by the caller via ok()).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("uninitialized result");
};

/// Propagates a non-OK status to the caller.
#define GAIA_RETURN_NOT_OK(expr)           \
  do {                                     \
    ::gaia::Status _st = (expr);           \
    if (!_st.ok()) return _st;             \
  } while (false)

}  // namespace gaia

#endif  // GAIA_UTIL_STATUS_H_
