#ifndef GAIA_UTIL_CRC32_H_
#define GAIA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gaia::util {

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
///
/// Used by the checkpoint format to detect torn writes and bit rot. To
/// checksum a stream incrementally, feed the previous return value back in
/// as `seed` (the function handles the pre/post inversion internally, so
/// Crc32(a+b) == Crc32(b, Crc32(a))).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace gaia::util

#endif  // GAIA_UTIL_CRC32_H_
