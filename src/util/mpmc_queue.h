#ifndef GAIA_UTIL_MPMC_QUEUE_H_
#define GAIA_UTIL_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gaia::util {

/// \brief Bounded multi-producer/multi-consumer queue, std-only.
///
/// The micro-batching buffer in front of each serving shard: clients push
/// requests from any thread, the shard worker pops them (with a deadline, so
/// a partially filled batch window can flush on time). The queue is
/// mutex+condvar based — correctness and TSan-cleanliness over lock-free
/// cleverness; one push/pop is microseconds-scale against a
/// milliseconds-scale model forward.
///
/// Closing semantics: Close() wakes everyone; pushes fail immediately, pops
/// keep draining buffered items and return nullopt only once the queue is
/// both closed and empty. This lets a server shut down without dropping
/// accepted requests.
template <typename T>
class MpmcQueue {
 public:
  /// Pre: capacity >= 1. Pushes beyond `capacity` block (backpressure).
  explicit MpmcQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while the queue is full; returns false iff the queue was closed.
  /// On false the item has NOT been moved from — the caller still owns it
  /// and can handle the request inline.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed (item left intact).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return PopLocked(lock);
  }

  /// Like Pop but gives up at `deadline` (steady clock): nullopt then means
  /// "window expired", which the shard worker treats as a batch flush.
  std::optional<T> PopUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_until(
            lock, deadline, [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;  // timed out with nothing buffered
    }
    return PopLocked(lock);
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (monitoring only; racy by nature).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gaia::util

#endif  // GAIA_UTIL_MPMC_QUEUE_H_
