#include "util/logging.h"

#include <cstdio>

namespace gaia {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* /*file*/, int /*line*/)
    : enabled_(level >= g_level), level_(level) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level_), stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace gaia
