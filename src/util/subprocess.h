#ifndef GAIA_UTIL_SUBPROCESS_H_
#define GAIA_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace gaia::util {

class CancelToken;

/// \brief POSIX helpers for the multi-process training tier (src/dist):
/// pipe plumbing, fork/exec spawning with explicit fd inheritance, and
/// waitpid-based reaping. std-only + POSIX, no external dependencies.

/// One unidirectional pipe. Both ends are created close-on-exec; a child
/// keeps an end across exec only when it is listed in SpawnSpec::keep_fds.
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};

/// Creates a pipe with CLOEXEC set on both ends.
Result<Pipe> CreatePipe();

/// Closes `*fd` when >= 0 and resets it to -1 (idempotent).
void CloseFd(int* fd);

/// Sets or clears O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool enabled);

/// \brief What to exec and which inherited fds the child may keep.
///
/// Between fork and exec the child clears CLOEXEC on every fd in `keep_fds`
/// (so pipe ends created by CreatePipe survive into the new image) and
/// resets SIGPIPE to default; everything else stays close-on-exec.
struct SpawnSpec {
  std::vector<std::string> argv;  ///< argv[0] is the binary path
  std::vector<int> keep_fds;
};

/// fork + execv. Returns the child pid; kIoError when fork or the pre-exec
/// fd fixup fails (an exec failure surfaces as the child exiting 127).
Result<pid_t> SpawnProcess(const SpawnSpec& spec);

/// Outcome of a waitpid call.
struct ExitInfo {
  bool exited = false;       ///< child state was collected (zombie reaped)
  int exit_code = 0;         ///< valid when exited via exit()
  bool signaled = false;     ///< true when killed by a signal
  int term_signal = 0;       ///< valid when signaled
};

/// Non-blocking reap (WNOHANG). exited == false means still running.
ExitInfo TryReap(pid_t pid);

/// Polls waitpid until the child exits or `timeout_ms` passes; when
/// `kill_on_timeout` the child is SIGKILLed at the deadline and then
/// collected, so the caller never leaks a zombie.
ExitInfo ReapWithTimeout(pid_t pid, double timeout_ms, bool kill_on_timeout);

/// Path of the running executable (/proc/self/exe), or `fallback` when the
/// link cannot be read.
std::string SelfExePath(const std::string& fallback);

/// Writes exactly `n` bytes (blocking, EINTR-safe). A closed peer comes
/// back as kUnavailable so the caller's supervision ladder can react.
Status WriteFull(int fd, const void* data, size_t n);

/// Reads exactly `n` bytes, polling in short slices so `cancel` (typically
/// a util::CancelToken with a deadline — the heartbeat/receive timeout) is
/// honoured between slices. EOF is kUnavailable ("peer closed"), a fired
/// token kDeadlineExceeded/kCancelled via CancelToken::ToStatus.
Status ReadFull(int fd, void* data, size_t n, const CancelToken* cancel);

}  // namespace gaia::util

#endif  // GAIA_UTIL_SUBPROCESS_H_
