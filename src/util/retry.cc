#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace gaia::util {

namespace internal_retry {

void CountRetry() {
  static obs::Counter* counter = &obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_retry_attempts_total",
      "Re-attempts made by util::RetryCall (first tries not counted)");
  counter->Increment();
}

void CountExhausted() {
  static obs::Counter* counter = &obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_retry_exhausted_total",
      "RetryCall invocations that used every attempt and still failed");
  counter->Increment();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace internal_retry

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

double BackoffMs(const RetryPolicy& policy, int attempt, Rng* rng) {
  double base = policy.initial_backoff_ms;
  for (int i = 0; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, policy.max_backoff_ms);
  const double jitter =
      rng->Uniform(-policy.jitter_fraction, policy.jitter_fraction);
  return std::max(0.0, base * (1.0 + jitter));
}

Status RetryCall(const RetryPolicy& policy, const std::function<Status()>& fn,
                 RetryStats* stats,
                 const std::function<bool(const Status&)>& retryable) {
  Rng rng(policy.jitter_seed);
  Status last = Status::Internal("retry: no attempts made");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      const double backoff = BackoffMs(policy, attempt - 1, &rng);
      if (stats != nullptr) stats->total_backoff_ms += backoff;
      if (policy.sleep) internal_retry::SleepMs(backoff);
      internal_retry::CountRetry();
    }
    last = fn();
    if (stats != nullptr) stats->attempts = attempt + 1;
    if (last.ok() || !retryable(last)) return last;
  }
  internal_retry::CountExhausted();
  return last;
}

}  // namespace gaia::util
