#ifndef GAIA_UTIL_CHECK_H_
#define GAIA_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace gaia::internal_check {

/// Prints a fatal check failure and aborts. Out of line to keep the macro
/// expansion small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream that collects an optional diagnostic message and aborts on
/// destruction (glog idiom). Only ever constructed on the failure path.
class FatalStream {
 public:
  FatalStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  FatalStream(const FatalStream&) = delete;
  FatalStream& operator=(const FatalStream&) = delete;
  [[noreturn]] ~FatalStream() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  FatalStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

/// Swallows the FatalStream so both ternary branches have type void.
struct Voidify {
  void operator&(const FatalStream&) {}
};

}  // namespace gaia::internal_check

/// Aborts with a diagnostic when `condition` is false. For programming errors
/// and internal invariants only; recoverable failures use gaia::Status.
/// Supports streaming extra context: GAIA_CHECK(n > 0) << "n=" << n;
#define GAIA_CHECK(condition)                              \
  (condition) ? (void)0                                    \
              : ::gaia::internal_check::Voidify() &        \
                    ::gaia::internal_check::FatalStream(   \
                        __FILE__, __LINE__, #condition)

#define GAIA_CHECK_BINOP(lhs, rhs, op)                     \
  GAIA_CHECK((lhs)op(rhs)) << "(" << (lhs) << " vs "       \
                           << (rhs) << ") "

#define GAIA_CHECK_EQ(lhs, rhs) GAIA_CHECK_BINOP(lhs, rhs, ==)
#define GAIA_CHECK_NE(lhs, rhs) GAIA_CHECK_BINOP(lhs, rhs, !=)
#define GAIA_CHECK_LT(lhs, rhs) GAIA_CHECK_BINOP(lhs, rhs, <)
#define GAIA_CHECK_LE(lhs, rhs) GAIA_CHECK_BINOP(lhs, rhs, <=)
#define GAIA_CHECK_GT(lhs, rhs) GAIA_CHECK_BINOP(lhs, rhs, >)
#define GAIA_CHECK_GE(lhs, rhs) GAIA_CHECK_BINOP(lhs, rhs, >=)

#endif  // GAIA_UTIL_CHECK_H_
