#ifndef GAIA_UTIL_ARENA_H_
#define GAIA_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace gaia::util {

/// \brief Per-thread caching allocator for tensor storage.
///
/// The forward/backward hot paths churn thousands of small float buffers per
/// call (op results, gradients, packed activations). TensorArena kills that
/// heap traffic the way the classic caching-allocator idiom does: freed
/// buffers are parked on per-thread free lists bucketed by power-of-two size
/// class, and the next allocation of the same class pops the list instead of
/// touching the system heap. In steady state a `Predict` allocates ~zero
/// from the heap — every buffer is a cache hit.
///
/// Ownership model (why there is no lifetime footgun): the arena only ever
/// owns *free* buffers. A live buffer is owned by its FloatBuffer/Tensor and
/// may outlive every ArenaScope and even the allocating thread; Release
/// simply parks it on the *releasing* thread's free list. Caches are
/// returned to the heap when their thread exits; releases that happen after
/// that (static-destruction stragglers) fall back to a plain heap free.
///
/// Determinism: Allocate always returns zero-filled memory (exactly what the
/// previous std::vector-backed storage provided), so arena on/off/reuse is
/// bitwise invisible to every kernel. The 8-thread hammer in
/// tensor_arena_test plus the TSan CI job keep the cross-thread release
/// path honest.
///
/// Knobs:
///  - `GAIA_ARENA=0` env (or SetEnabled(false)) is the kill-switch: every
///    allocation goes straight to the heap, for allocator-suspect debugging.
///  - `GAIA_ARENA_CAP_MB` bounds the bytes one thread may cache (default
///    256 MiB); releases beyond the cap free to the heap instead.
///
/// Metrics (docs/OBSERVABILITY.md): `gaia_arena_bytes_in_use` /
/// `gaia_arena_high_water` gauges and `gaia_arena_reuse_total` counter,
/// plus `gaia_alloc_{tensors,bytes}_total` which — since this PR — count
/// buffers that actually hit the system heap (arena hits excluded), so the
/// bench harness's per-case allocation attribution directly reads "how much
/// heap churn is left".
class TensorArena {
 public:
  /// Per-thread accounting, exact for single-threaded sections (tests use
  /// this; cross-thread frees make live_bytes a net flow, not a gauge).
  struct ThreadStats {
    int64_t live_bytes = 0;       ///< arena bytes lent out minus returned
    int64_t high_water_bytes = 0; ///< max of live_bytes on this thread
    int64_t cached_bytes = 0;     ///< bytes parked on this thread's free lists
    int64_t reuse_count = 0;      ///< allocations served from the cache
    int64_t heap_allocs = 0;      ///< allocations that hit the system heap
  };

  /// Returns a zero-filled buffer of `n` floats (nullptr when n == 0).
  /// Served from the current thread's cache when the arena is enabled and
  /// an ArenaScope is active; from the heap otherwise.
  static float* Allocate(int64_t n);

  /// Variant that skips the zero-fill for callers that overwrite every
  /// element immediately (FloatBuffer's copy path).
  static float* AllocateUninitialized(int64_t n);

  /// Returns a buffer obtained from Allocate*. Arena-class buffers are
  /// parked on the *current* thread's free list (wherever they were
  /// allocated); plain buffers are freed to the heap.
  static void Release(float* ptr);

  /// Process-wide enable flag. Defaults to the GAIA_ARENA environment
  /// variable ("0"/"off"/"false" disable; anything else, including unset,
  /// enables). SetEnabled overrides at runtime — tests use it to prove the
  /// fallback path is bitwise identical.
  static bool Enabled();
  static void SetEnabled(bool enabled);

  /// True when at least one ArenaScope is live on this thread.
  static bool ScopeActive();

  /// This thread's accounting (see ThreadStats).
  static ThreadStats Stats();

  /// Frees every buffer cached by this thread back to the heap.
  static void Trim();

  /// Parses a GAIA_ARENA-style value; exposed for the env-knob test.
  static bool ParseEnabled(const char* value);
};

/// \brief RAII activation of the arena on the current thread.
///
/// The hot-path entries (ModelServer::Serve, GaiaModel::Predict*,
/// Trainer::Fit, pool worker loops) open one of these; every Tensor
/// constructed below them draws from / returns to the thread cache. Scopes
/// nest freely (a refcount); tensors may escape the scope — see the
/// ownership model above.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

/// \brief Owning float buffer backing Tensor, allocated via TensorArena.
///
/// The rule-of-five replacement for the old std::vector<float> storage:
/// copies are deep, moves are pointer swaps, destruction returns the buffer
/// to the arena. Copy-assignment between equal-sized buffers reuses the
/// destination allocation (the optimizer snapshot/restore path hits this).
class FloatBuffer {
 public:
  FloatBuffer() = default;
  /// Zero-filled buffer of `n` floats.
  explicit FloatBuffer(int64_t n)
      : data_(TensorArena::Allocate(n)), size_(n) {}
  /// Buffer initialized from `src[0, n)`.
  FloatBuffer(int64_t n, const float* src);
  FloatBuffer(const FloatBuffer& other);
  FloatBuffer(FloatBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  FloatBuffer& operator=(const FloatBuffer& other);
  FloatBuffer& operator=(FloatBuffer&& other) noexcept;
  ~FloatBuffer() {
    if (data_ != nullptr) TensorArena::Release(data_);
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  float* data_ = nullptr;
  int64_t size_ = 0;
};

}  // namespace gaia::util

#endif  // GAIA_UTIL_ARENA_H_
