#ifndef GAIA_UTIL_RETRY_H_
#define GAIA_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "util/status.h"

namespace gaia::util {

/// \brief Bounded-attempt retry with exponential backoff and deterministic
/// jitter.
///
/// Used by checkpoint loading and market CSV ingestion; any Status-returning
/// operation can be wrapped. Backoff for attempt k (0-based re-attempt
/// index) is
///   min(initial_backoff_ms * multiplier^k, max_backoff_ms) * (1 + jitter)
/// where jitter is drawn uniformly from [-jitter_fraction, +jitter_fraction]
/// by a PCG32 stream seeded with `jitter_seed` — the same policy always
/// produces the same backoff schedule, keeping chaos tests reproducible.
struct RetryPolicy {
  int max_attempts = 3;            ///< total tries, including the first
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  double jitter_fraction = 0.1;    ///< in [0, 1)
  uint64_t jitter_seed = 0;
  /// False skips the actual sleep (tests verify schedules without waiting).
  bool sleep = true;
};

/// Default retryable predicate: transient codes only. Corruption (kDataLoss)
/// and caller bugs (kInvalidArgument, ...) are not retryable — retrying a
/// torn checkpoint re-reads the same bad bytes.
bool IsRetryableStatus(const Status& status);

/// Backoff before re-attempt `attempt` (0-based), in milliseconds, including
/// the deterministic jitter drawn from `rng`. Exposed for tests.
double BackoffMs(const RetryPolicy& policy, int attempt, Rng* rng);

/// Outcome bookkeeping for logs/metrics.
struct RetryStats {
  int attempts = 0;          ///< tries actually made
  double total_backoff_ms = 0.0;
};

/// Runs `fn` until it succeeds, a non-retryable status comes back, or
/// attempts are exhausted (the last status is returned). Emits
/// gaia_robust_retry_attempts_total per re-attempt and
/// gaia_robust_retry_exhausted_total when the budget runs out.
Status RetryCall(const RetryPolicy& policy, const std::function<Status()>& fn,
                 RetryStats* stats = nullptr,
                 const std::function<bool(const Status&)>& retryable =
                     IsRetryableStatus);

namespace internal_retry {
void CountRetry();
void CountExhausted();
void SleepMs(double ms);
}  // namespace internal_retry

/// Result<T> flavour of RetryCall, same semantics.
template <typename T>
Result<T> RetryResult(const RetryPolicy& policy,
                      const std::function<Result<T>()>& fn,
                      RetryStats* stats = nullptr,
                      const std::function<bool(const Status&)>& retryable =
                          IsRetryableStatus) {
  Rng rng(policy.jitter_seed);
  Result<T> last = Status::Internal("retry: no attempts made");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      const double backoff = BackoffMs(policy, attempt - 1, &rng);
      if (stats != nullptr) stats->total_backoff_ms += backoff;
      if (policy.sleep) internal_retry::SleepMs(backoff);
      internal_retry::CountRetry();
    }
    last = fn();
    if (stats != nullptr) stats->attempts = attempt + 1;
    if (last.ok() || !retryable(last.status())) return last;
  }
  internal_retry::CountExhausted();
  return last;
}

}  // namespace gaia::util

#endif  // GAIA_UTIL_RETRY_H_
