#ifndef GAIA_UTIL_TABLE_PRINTER_H_
#define GAIA_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace gaia {

/// \brief Plain-text table formatter used by the benchmark harnesses to print
/// paper-style result tables (Table I, Table II, ...).
///
/// Usage:
///   TablePrinter table({"Method", "MAE", "RMSE", "MAPE"});
///   table.AddRow({"Gaia", "24064", "112516", "0.0909"});
///   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  /// Renders the table with column alignment and box-drawing separators.
  void Print(std::ostream& os) const;

  /// Renders as comma separated values (no separators), for machine parsing.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double with the given precision (helper for callers).
  static std::string FormatDouble(double value, int precision = 4);

  /// Formats a value as a thousands-separated integer string (GMV-style).
  static std::string FormatCount(double value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace gaia

#endif  // GAIA_UTIL_TABLE_PRINTER_H_
