#ifndef GAIA_UTIL_CANCEL_H_
#define GAIA_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "util/status.h"

namespace gaia::util {

/// \brief Cooperative cancellation token, std-only.
///
/// A token is a shared atomic flag plus an optional steady-clock deadline.
/// Work that wants to be abortable polls `Cancelled()` at chunk granularity
/// (between loop chunks, between layers, between epochs) and unwinds through
/// the normal Status/Result machinery with StatusCode::kCancelled — never
/// mid-write, so a cancelled run leaves no partially updated state
/// observable, and an armed-but-unfired token changes nothing (chunk
/// boundaries and accumulation order do not depend on the token).
///
/// Cost model: `Cancelled()` on a flag-only token is one relaxed atomic
/// load; a deadline token additionally reads the steady clock until the
/// deadline fires (after which the flag short-circuits). Tokens form a
/// hierarchy: a child observes its parent's cancellation (checked on poll,
/// no registration or callbacks), while cancelling a child leaves the
/// parent live — e.g. one request aborting does not abort its batch.
///
/// Lifetime: children hold a raw pointer to the parent; the parent must
/// outlive the child. In practice every child lives inside the lexical
/// scope that owns its parent (a serve request inside the server, a Fit
/// call inside the scheduler's cycle), so this needs no reference counting.
class CancelToken {
 public:
  /// A live token with no deadline; fires only via Cancel().
  CancelToken() = default;

  /// Heap factories for the common shared-ownership call sites.
  static std::shared_ptr<CancelToken> Create();
  /// Token that auto-fires `deadline_ms` from now (steady clock).
  /// Pre: deadline_ms > 0.
  static std::shared_ptr<CancelToken> WithDeadline(double deadline_ms);
  /// Child of `parent` (may be nullptr = no parent), with an optional own
  /// deadline (0 = none). Fires when either its own flag/deadline fires or
  /// the parent chain is cancelled.
  static std::shared_ptr<CancelToken> Child(const CancelToken* parent,
                                            double deadline_ms = 0.0);

  /// True once the token has fired (explicitly, via deadline, or through a
  /// parent). One relaxed load on the fast path.
  bool Cancelled() const {
    if (fired_.load(std::memory_order_relaxed)) return true;
    return CheckSlow();
  }

  /// Fires the token. First call wins; `reason` must be a string literal or
  /// otherwise outlive the token (tokens never allocate).
  void Cancel(const char* reason = "cancelled") const { Fire(reason); }

  /// Why the token fired ("" while live). Typical values: "cancelled",
  /// "deadline_exceeded".
  const char* reason() const {
    const char* r = reason_.load(std::memory_order_acquire);
    return r != nullptr ? r : "";
  }

  /// OK while live; Status::Cancelled(reason) once fired.
  Status ToStatus() const;

  /// The token installed on this thread by the innermost CancelScope, or
  /// nullptr. Parallel workers re-install the submitting job's token, so
  /// nested kernels observe cancellation on every thread.
  static const CancelToken* Current();

 private:
  friend class CancelScope;

  bool CheckSlow() const;
  void Fire(const char* reason) const;

  mutable std::atomic<bool> fired_{false};
  mutable std::atomic<const char*> reason_{nullptr};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// \brief RAII scope installing a token as the thread's current one.
///
/// Kernels and model layers poll `CancelToken::Current()` through the
/// ParallelFor free functions, so arming cancellation for a whole call tree
/// is one scope at the top — no signature changes down the stack. Scopes
/// nest; the previous token is restored on destruction. A nullptr token is
/// a no-op (the ambient token, if any, stays installed).
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_ = nullptr;
  bool installed_ = false;
};

/// True when a token is installed on this thread and it has fired.
bool CurrentCancelled();

/// Records one cooperative abort event (a loop, forward, or epoch observed
/// a fired token and stopped early) in gaia_cancel_observed_total. Counted
/// unconditionally, like the gaia_robust_* family.
void NoteCancelObserved();

}  // namespace gaia::util

#endif  // GAIA_UTIL_CANCEL_H_
