#ifndef GAIA_UTIL_RNG_H_
#define GAIA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gaia {

/// \brief Deterministic PCG32 random number generator.
///
/// All randomness in gaia flows through explicitly seeded Rng instances; there
/// is no global RNG state, so every experiment is reproducible from its
/// printed seed. PCG32 (O'Neill 2014) is small, fast and statistically strong
/// enough for simulation and weight initialization.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator; the same seed always yields the same stream.
  void Seed(uint64_t seed) {
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    NextUint32();
    state_ += 0x853c49e6748fea9bULL + seed;
    NextUint32();
  }

  /// Next raw 32-bit draw.
  uint32_t NextUint32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  double Uniform() { return NextUint32() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Pre: n > 0.
  uint32_t UniformInt(uint32_t n) {
    // Lemire's nearly-divisionless bounded draw; bias is negligible for the
    // ranges used here but we keep the rejection loop for exactness.
    uint64_t m = static_cast<uint64_t>(NextUint32()) * n;
    auto lo = static_cast<uint32_t>(m);
    if (lo < n) {
      uint32_t threshold = (0u - n) % n;
      while (lo < threshold) {
        m = static_cast<uint64_t>(NextUint32()) * n;
        lo = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Standard normal draw (Box–Muller, cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Log-normal draw: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate);

  /// Pareto(alpha, x_min) draw — heavy-tailed; used for shop-age skew.
  double Pareto(double alpha, double x_min);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (std::size_t i = values->size(); i > 1; --i) {
      std::size_t j = UniformInt(static_cast<uint32_t>(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Splits off an independent child stream; handy for giving each subsystem
  /// its own generator while keeping one top-level seed.
  Rng Split() {
    uint64_t s = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
    return Rng(s);
  }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gaia

#endif  // GAIA_UTIL_RNG_H_
