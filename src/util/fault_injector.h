#ifndef GAIA_UTIL_FAULT_INJECTOR_H_
#define GAIA_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace gaia::util {

/// What an armed fault does when it fires. Status-shaped kinds (kIoError,
/// kUnavailable, kDeadline) are converted by FaultStatus(); data-shaped kinds
/// (kCorrupt, kNan) are interpreted by the site itself (flip bytes, poison an
/// output tensor).
enum class FaultKind {
  kIoError = 0,  ///< site fails with StatusCode::kIoError
  kUnavailable,  ///< transient failure, StatusCode::kUnavailable (retryable)
  kDeadline,     ///< site reports StatusCode::kDeadlineExceeded
  kCorrupt,      ///< site corrupts its payload (e.g. checkpoint byte flip)
  kNan,          ///< site poisons its numeric output with NaN
};

/// Parses "io" / "unavailable" / "deadline" / "corrupt" / "nan".
Result<FaultKind> ParseFaultKind(const std::string& text);
const char* FaultKindToString(FaultKind kind);

/// One armed fault rule.
struct FaultSpec {
  std::string site;         ///< e.g. "checkpoint.read" (see docs/ROBUSTNESS.md)
  FaultKind kind = FaultKind::kIoError;
  double probability = 1.0; ///< chance of firing per Sample() call, in [0, 1]
  int64_t max_fires = -1;   ///< stop firing after this many hits (-1 = never)
  /// Let this many Sample() calls at the site pass before the rule becomes
  /// eligible — targets the Nth occurrence ("corrupt only cycle 1's
  /// publish") deterministically. Skipped calls do not draw, matching how
  /// exhausted (max_fires) rules behave.
  int64_t skip = 0;
};

/// \brief Deterministic, process-wide fault injection registry.
///
/// Robustness tests (and chaos CI runs) arm faults at named sites; production
/// code consults Sample(site) at each site and fails accordingly. With
/// nothing armed the fast path is a single relaxed atomic load, and no
/// behavior changes — PR 1's bitwise determinism is preserved.
///
/// Arming is either programmatic (Arm / ArmFromString) or via the
/// environment:
///   GAIA_FAULTS="site:kind:prob[:count[:skip]][;...]"
///   GAIA_FAULTS_SEED=<uint64>   (default 0)
/// e.g. GAIA_FAULTS="checkpoint.read:corrupt:1.0:2;serving.forward:nan:0.25"
///
/// Firing decisions draw from one seeded PCG32 stream per site (under a
/// mutex), so a given site sees a reproducible decision sequence for a given
/// seed and call order. Exact-count chaos tests should use probability 1.0
/// with max_fires, which is order-independent.
class FaultInjector {
 public:
  /// Process singleton; armed once from GAIA_FAULTS on first access.
  static FaultInjector& Global();

  FaultInjector() = default;

  /// Arms one fault rule. Multiple rules on a site fire independently; the
  /// first that fires wins.
  void Arm(const FaultSpec& spec);

  /// Arms rules from the GAIA_FAULTS mini-language above.
  Status ArmFromString(const std::string& text);

  /// Disarms everything and zeroes fire counters (tests isolate with this).
  void Reset();

  /// Re-seeds all per-site decision streams.
  void Reseed(uint64_t seed);

  /// True when at least one rule is armed (the cheap hot-path gate).
  bool enabled() const {
    return armed_.load(std::memory_order_relaxed) != 0;
  }

  /// Consults the rules for `site`; returns the fault to apply, or nullopt.
  /// Increments fire counters and the gaia_robust_faults_injected_total
  /// metric on a hit. Thread-safe.
  std::optional<FaultKind> Sample(const std::string& site);

  /// Times `site` has fired since construction / Reset.
  int64_t fired_count(const std::string& site) const;
  /// Total fires across all sites.
  int64_t total_fired() const;

 private:
  struct SiteState {
    std::vector<FaultSpec> specs;
    std::vector<int64_t> fires_per_spec;
    std::vector<int64_t> samples_per_spec;
    Rng rng{0};
    int64_t fired = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::atomic<int> armed_{0};
  uint64_t seed_ = 0;
};

/// Maps a status-shaped fault kind to the Status a site should return.
/// kCorrupt/kNan map to kDataLoss (the site should prefer to interpret them
/// itself).
Status FaultStatus(FaultKind kind, const std::string& site);

}  // namespace gaia::util

#endif  // GAIA_UTIL_FAULT_INJECTOR_H_
