#include "util/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace gaia {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  GAIA_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  GAIA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) print_row(row);
  }
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::FormatCount(double value) {
  long long v = static_cast<long long>(std::llround(value));
  bool negative = v < 0;
  unsigned long long magnitude =
      negative ? static_cast<unsigned long long>(-(v + 1)) + 1ULL
               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gaia
