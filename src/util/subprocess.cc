#include "util/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/cancel.h"

namespace gaia::util {

namespace {

/// Poll slice for cancellable reads: short enough that a fired deadline
/// token is observed promptly, long enough to stay cheap.
constexpr int kReadPollMs = 20;

}  // namespace

Result<Pipe> CreatePipe() {
  int fds[2];
#if defined(__linux__)
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
#else
  if (::pipe(fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
#endif
  Pipe p;
  p.read_fd = fds[0];
  p.write_fd = fds[1];
  return p;
}

void CloseFd(int* fd) {
  if (fd == nullptr || *fd < 0) return;
  ::close(*fd);
  *fd = -1;
}

Status SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) {
    return Status::IoError(std::string("fcntl(F_GETFL): ") +
                           std::strerror(errno));
  }
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) {
    return Status::IoError(std::string("fcntl(F_SETFL): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<pid_t> SpawnProcess(const SpawnSpec& spec) {
  GAIA_CHECK(!spec.argv.empty());
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& arg : spec.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls until exec. Clear CLOEXEC on the
    // fds the new image must keep; everything else closes automatically.
    for (int fd : spec.keep_fds) {
      if (::fcntl(fd, F_SETFD, 0) < 0) _exit(126);
    }
    ::signal(SIGPIPE, SIG_DFL);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the supervisor sees a code-127 death
  }
  return pid;
}

ExitInfo TryReap(pid_t pid) {
  ExitInfo info;
  int status = 0;
  const pid_t got = ::waitpid(pid, &status, WNOHANG);
  if (got == 0) return info;  // still running
  if (got < 0) {
    // ECHILD: already reaped (or never ours). Report it as exited so
    // callers looping until exit can never spin forever on a stale pid.
    info.exited = true;
    info.exit_code = -1;
    return info;
  }
  info.exited = true;
  if (WIFEXITED(status)) {
    info.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    info.signaled = true;
    info.term_signal = WTERMSIG(status);
  }
  return info;
}

ExitInfo ReapWithTimeout(pid_t pid, double timeout_ms, bool kill_on_timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  for (;;) {
    ExitInfo info = TryReap(pid);
    if (info.exited) return info;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (kill_on_timeout) {
    ::kill(pid, SIGKILL);
    // SIGKILL cannot be blocked; the zombie appears promptly.
    for (;;) {
      ExitInfo info = TryReap(pid);
      if (info.exited) return info;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return ExitInfo{};
}

std::string SelfExePath(const std::string& fallback) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
#endif
  return fallback;
}

Status WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = n;
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd, p, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) {
        return Status::Unavailable("write: peer closed the pipe");
      }
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    p += wrote;
    remaining -= static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t n, const CancelToken* cancel) {
  char* p = static_cast<char*>(data);
  size_t remaining = n;
  while (remaining > 0) {
    if (cancel != nullptr && cancel->Cancelled()) return cancel->ToStatus();
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kReadPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // slice elapsed; re-check the token
    const ssize_t got = ::read(fd, p, remaining);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (got == 0) return Status::Unavailable("read: peer closed the pipe");
    p += got;
    remaining -= static_cast<size_t>(got);
  }
  return Status::OK();
}

}  // namespace gaia::util
