#include "graph/partitioner.h"

#include "util/check.h"

namespace gaia::graph {

namespace {

/// splitmix64 finalizer (Steele et al.): a full-avalanche mix so dense shop
/// ids land on uncorrelated shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HashPartitioner::HashPartitioner(int num_shards) : num_shards_(num_shards) {
  GAIA_CHECK_GE(num_shards, 1);
}

int HashPartitioner::ShardOf(int32_t node) const {
  if (num_shards_ == 1) return 0;
  return static_cast<int>(Mix64(static_cast<uint64_t>(
                              static_cast<uint32_t>(node))) %
                          static_cast<uint64_t>(num_shards_));
}

std::unique_ptr<Partitioner> MakePartitioner(PartitionStrategy strategy,
                                             int num_shards) {
  GAIA_CHECK_GE(num_shards, 1);
  switch (strategy) {
    case PartitionStrategy::kHash:
      return std::make_unique<HashPartitioner>(num_shards);
  }
  return std::make_unique<HashPartitioner>(num_shards);
}

std::vector<int64_t> ShardSizes(const Partitioner& partitioner,
                                int64_t num_nodes) {
  std::vector<int64_t> sizes(static_cast<size_t>(partitioner.num_shards()), 0);
  for (int64_t v = 0; v < num_nodes; ++v) {
    ++sizes[static_cast<size_t>(
        partitioner.ShardOf(static_cast<int32_t>(v)))];
  }
  return sizes;
}

}  // namespace gaia::graph
