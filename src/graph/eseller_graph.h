#ifndef GAIA_GRAPH_ESELLER_GRAPH_H_
#define GAIA_GRAPH_ESELLER_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace gaia::graph {

/// Relationship type carried as an edge feature (the e-seller graph is
/// homogeneous with typed edges, paper §III-B).
enum class EdgeType : uint8_t {
  kSupplyChain = 0,  ///< supplier -> retailer trading relation
  kSameOwner = 1,    ///< shared owner / shareholder relation
};

/// One directed edge `src -> dst`: src is a neighbour whose messages flow
/// into dst during aggregation.
struct Edge {
  int32_t src = 0;
  int32_t dst = 0;
  EdgeType type = EdgeType::kSupplyChain;
};

/// A (neighbour, edge type) pair produced when iterating in-neighbours.
struct Neighbor {
  int32_t node = 0;
  EdgeType type = EdgeType::kSupplyChain;
};

/// Summary statistics used by dataset reports and tests.
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int64_t supply_chain_edges = 0;
  int64_t same_owner_edges = 0;
  double avg_in_degree = 0.0;
  int64_t max_in_degree = 0;
  int64_t isolated_nodes = 0;
};

/// \brief The e-seller graph: immutable CSR over in-edges.
///
/// Aggregation in ITA-GCN reads N(u) = in-neighbours of u; relations that are
/// bidirectional in the domain (same-owner, and supply-chain influence in
/// both directions) should be inserted as two directed edges by the builder.
class EsellerGraph {
 public:
  /// An empty graph; assign from Create()'s result to populate.
  EsellerGraph() = default;

  /// Validates node ids and builds the CSR. Rejects out-of-range endpoints
  /// and self loops (the intra-shift term is handled by the model itself).
  static Result<EsellerGraph> Create(int64_t num_nodes,
                                     const std::vector<Edge>& edges);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(in_src_.size()); }

  /// In-degree of node u.
  int64_t InDegree(int32_t u) const;

  /// In-neighbours of node u with their edge types.
  std::vector<Neighbor> InNeighbors(int32_t u) const;

  /// Uniform sample (without replacement) of at most `max_count`
  /// in-neighbours of u — GraphSAGE-style fanout control.
  std::vector<Neighbor> SampleInNeighbors(int32_t u, int64_t max_count,
                                          Rng* rng) const;

  GraphStats ComputeStats() const;

  /// Weakly connected components (edges treated as undirected). Returns a
  /// per-node component id in [0, #components); ids are assigned in order
  /// of first appearance. Used by dataset sanity reports.
  std::vector<int32_t> WeaklyConnectedComponents() const;

  /// Number of weakly connected components.
  int64_t NumWeaklyConnectedComponents() const;

  /// Renders a short human-readable summary.
  std::string ToString() const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<int64_t> in_offsets_;  ///< size num_nodes_ + 1
  std::vector<int32_t> in_src_;      ///< size num_edges
  std::vector<EdgeType> in_type_;    ///< size num_edges
};

/// \brief Convenience builder that expands domain relations into directed
/// edges and deduplicates.
class GraphBuilder {
 public:
  explicit GraphBuilder(int64_t num_nodes) : num_nodes_(num_nodes) {}

  /// Supply-chain relation: supplier trades with retailer. Influence is
  /// modeled in both directions (downstream demand moves upstream GMV and
  /// vice versa), so two directed edges are added.
  GraphBuilder& AddSupplyChain(int32_t supplier, int32_t retailer);

  /// Same-owner relation (symmetric): adds both directions.
  GraphBuilder& AddSameOwner(int32_t a, int32_t b);

  /// Adds one raw directed edge.
  GraphBuilder& AddDirected(int32_t src, int32_t dst, EdgeType type);

  int64_t num_pending_edges() const {
    return static_cast<int64_t>(edges_.size());
  }

  /// Deduplicates and builds the immutable graph.
  Result<EsellerGraph> Build() const;

 private:
  int64_t num_nodes_;
  std::vector<Edge> edges_;
};

/// \brief An ego subgraph around a centre node, used by the online serving
/// path (§VI: real-time prediction on the newcomer's ego-subgraph).
struct EgoSubgraph {
  /// Original node ids; nodes[0] is the centre.
  std::vector<int32_t> nodes;
  /// Edges in local (remapped) ids, restricted to the kept node set.
  std::vector<Edge> edges;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
};

/// Breadth-first k-hop ego extraction with per-node fanout cap. When a node
/// has more than `max_fanout` in-neighbours a uniform sample is kept
/// (deterministic given `rng`).
EgoSubgraph ExtractEgoSubgraph(const EsellerGraph& graph, int32_t center,
                               int64_t num_hops, int64_t max_fanout, Rng* rng);

}  // namespace gaia::graph

#endif  // GAIA_GRAPH_ESELLER_GRAPH_H_
