#ifndef GAIA_GRAPH_PARTITIONER_H_
#define GAIA_GRAPH_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gaia::graph {

/// \brief Assigns e-seller nodes to serving shards.
///
/// The sharded serving tier routes each request to ShardOf(shop)'s worker,
/// so the assignment must be a pure function of the node id — stable across
/// processes and restarts, independent of request order. The interface
/// exists so a later PR can drop in a community/METIS-style partitioner
/// (keeping supply-chain neighbourhoods shard-local for drift and anomaly
/// handling, cf. GraphAD's entity-wise serving) without touching the server.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Number of shards this partitioner maps into (>= 1).
  virtual int num_shards() const = 0;

  /// Shard of node `node`, in [0, num_shards()). Pure and thread-safe.
  virtual int ShardOf(int32_t node) const = 0;

  /// Human-readable strategy name ("hash", ...).
  virtual std::string name() const = 0;
};

/// \brief Stateless hash partitioner: splitmix64(node) % num_shards.
///
/// The id is mixed before the modulo so contiguous shop ids (the simulator
/// allocates them densely) spread across shards instead of striping.
class HashPartitioner : public Partitioner {
 public:
  /// Pre: num_shards >= 1.
  explicit HashPartitioner(int num_shards);

  int num_shards() const override { return num_shards_; }
  int ShardOf(int32_t node) const override;
  std::string name() const override { return "hash"; }

 private:
  int num_shards_;
};

/// Shard-assignment strategy selector (config-file friendly).
enum class PartitionStrategy {
  kHash = 0,  ///< HashPartitioner (the only strategy implemented so far)
};

/// Builds a partitioner for the given strategy. Pre: num_shards >= 1.
std::unique_ptr<Partitioner> MakePartitioner(PartitionStrategy strategy,
                                             int num_shards);

/// Node count per shard for nodes [0, num_nodes) — balance diagnostics.
std::vector<int64_t> ShardSizes(const Partitioner& partitioner,
                                int64_t num_nodes);

}  // namespace gaia::graph

#endif  // GAIA_GRAPH_PARTITIONER_H_
