#include "graph/eseller_graph.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/cancel.h"
#include "util/check.h"
#include "util/fault_injector.h"

namespace gaia::graph {

Result<EsellerGraph> EsellerGraph::Create(int64_t num_nodes,
                                          const std::vector<Edge>& edges) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      std::ostringstream os;
      os << "edge (" << e.src << " -> " << e.dst << ") out of range for "
         << num_nodes << " nodes";
      return Status::InvalidArgument(os.str());
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument(
          "self loop on node " + std::to_string(e.src) +
          "; the intra-shift term is built into the model");
    }
  }
  EsellerGraph g;
  g.num_nodes_ = num_nodes;
  // Counting sort by destination -> CSR over in-edges.
  g.in_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) ++g.in_offsets_[static_cast<size_t>(e.dst) + 1];
  for (int64_t i = 0; i < num_nodes; ++i) {
    g.in_offsets_[static_cast<size_t>(i) + 1] +=
        g.in_offsets_[static_cast<size_t>(i)];
  }
  g.in_src_.resize(edges.size());
  g.in_type_.resize(edges.size());
  std::vector<int64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    const int64_t pos = cursor[static_cast<size_t>(e.dst)]++;
    g.in_src_[static_cast<size_t>(pos)] = e.src;
    g.in_type_[static_cast<size_t>(pos)] = e.type;
  }
  return g;
}

int64_t EsellerGraph::InDegree(int32_t u) const {
  GAIA_CHECK_GE(u, 0);
  GAIA_CHECK_LT(u, num_nodes_);
  return in_offsets_[static_cast<size_t>(u) + 1] -
         in_offsets_[static_cast<size_t>(u)];
}

std::vector<Neighbor> EsellerGraph::InNeighbors(int32_t u) const {
  GAIA_CHECK_GE(u, 0);
  GAIA_CHECK_LT(u, num_nodes_);
  std::vector<Neighbor> out;
  const int64_t begin = in_offsets_[static_cast<size_t>(u)];
  const int64_t end = in_offsets_[static_cast<size_t>(u) + 1];
  out.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    out.push_back(Neighbor{in_src_[static_cast<size_t>(i)],
                           in_type_[static_cast<size_t>(i)]});
  }
  return out;
}

std::vector<Neighbor> EsellerGraph::SampleInNeighbors(int32_t u,
                                                      int64_t max_count,
                                                      Rng* rng) const {
  GAIA_CHECK(rng != nullptr);
  GAIA_CHECK_GT(max_count, 0);
  std::vector<Neighbor> all = InNeighbors(u);
  if (static_cast<int64_t>(all.size()) <= max_count) return all;
  rng->Shuffle(&all);
  all.resize(static_cast<size_t>(max_count));
  return all;
}

GraphStats EsellerGraph::ComputeStats() const {
  GraphStats stats;
  stats.num_nodes = num_nodes_;
  stats.num_edges = num_edges();
  for (EdgeType t : in_type_) {
    if (t == EdgeType::kSupplyChain) {
      ++stats.supply_chain_edges;
    } else {
      ++stats.same_owner_edges;
    }
  }
  for (int32_t u = 0; u < num_nodes_; ++u) {
    const int64_t deg = InDegree(u);
    stats.max_in_degree = std::max(stats.max_in_degree, deg);
    if (deg == 0) ++stats.isolated_nodes;
  }
  stats.avg_in_degree =
      num_nodes_ > 0
          ? static_cast<double>(num_edges()) / static_cast<double>(num_nodes_)
          : 0.0;
  return stats;
}

std::vector<int32_t> EsellerGraph::WeaklyConnectedComponents() const {
  // Union-find over the undirected view of the edge set.
  std::vector<int32_t> parent(static_cast<size_t>(num_nodes_));
  for (int32_t v = 0; v < num_nodes_; ++v) parent[static_cast<size_t>(v)] = v;
  std::function<int32_t(int32_t)> find = [&](int32_t v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  for (int32_t u = 0; u < num_nodes_; ++u) {
    const int64_t begin = in_offsets_[static_cast<size_t>(u)];
    const int64_t end = in_offsets_[static_cast<size_t>(u) + 1];
    for (int64_t i = begin; i < end; ++i) {
      const int32_t a = find(u);
      const int32_t b = find(in_src_[static_cast<size_t>(i)]);
      if (a != b) parent[static_cast<size_t>(a)] = b;
    }
  }
  // Renumber roots in order of first appearance.
  std::vector<int32_t> component(static_cast<size_t>(num_nodes_), -1);
  std::unordered_map<int32_t, int32_t> root_to_id;
  for (int32_t v = 0; v < num_nodes_; ++v) {
    const int32_t root = find(v);
    auto [it, inserted] =
        root_to_id.emplace(root, static_cast<int32_t>(root_to_id.size()));
    component[static_cast<size_t>(v)] = it->second;
  }
  return component;
}

int64_t EsellerGraph::NumWeaklyConnectedComponents() const {
  const std::vector<int32_t> component = WeaklyConnectedComponents();
  int32_t max_id = -1;
  for (int32_t id : component) max_id = std::max(max_id, id);
  return max_id + 1;
}

std::string EsellerGraph::ToString() const {
  GraphStats s = ComputeStats();
  std::ostringstream os;
  os << "EsellerGraph{nodes=" << s.num_nodes << ", edges=" << s.num_edges
     << ", supply_chain=" << s.supply_chain_edges
     << ", same_owner=" << s.same_owner_edges
     << ", avg_in_degree=" << s.avg_in_degree
     << ", isolated=" << s.isolated_nodes << "}";
  return os.str();
}

GraphBuilder& GraphBuilder::AddSupplyChain(int32_t supplier,
                                           int32_t retailer) {
  edges_.push_back(Edge{supplier, retailer, EdgeType::kSupplyChain});
  edges_.push_back(Edge{retailer, supplier, EdgeType::kSupplyChain});
  return *this;
}

GraphBuilder& GraphBuilder::AddSameOwner(int32_t a, int32_t b) {
  edges_.push_back(Edge{a, b, EdgeType::kSameOwner});
  edges_.push_back(Edge{b, a, EdgeType::kSameOwner});
  return *this;
}

GraphBuilder& GraphBuilder::AddDirected(int32_t src, int32_t dst,
                                        EdgeType type) {
  edges_.push_back(Edge{src, dst, type});
  return *this;
}

Result<EsellerGraph> GraphBuilder::Build() const {
  // Deduplicate (src, dst, type) triples while preserving insertion order.
  std::vector<Edge> unique_edges;
  unique_edges.reserve(edges_.size());
  std::set<std::tuple<int32_t, int32_t, uint8_t>> seen;
  for (const Edge& e : edges_) {
    auto key = std::make_tuple(e.src, e.dst, static_cast<uint8_t>(e.type));
    if (seen.insert(key).second) unique_edges.push_back(e);
  }
  return EsellerGraph::Create(num_nodes_, unique_edges);
}

EgoSubgraph ExtractEgoSubgraph(const EsellerGraph& graph, int32_t center,
                               int64_t num_hops, int64_t max_fanout,
                               Rng* rng) {
  GAIA_CHECK_GE(num_hops, 0);
  // Fault site "graph.ego_extract": an empty subgraph signals extraction
  // failure (e.g. the graph store shard being unreachable in production);
  // the model server degrades such requests to its fallback forecaster.
  util::FaultInjector& faults = util::FaultInjector::Global();
  if (faults.enabled() && faults.Sample("graph.ego_extract").has_value()) {
    return EgoSubgraph{};
  }
  EgoSubgraph ego;
  std::unordered_map<int32_t, int32_t> local_id;
  auto intern = [&](int32_t node) -> int32_t {
    auto [it, inserted] =
        local_id.emplace(node, static_cast<int32_t>(ego.nodes.size()));
    if (inserted) ego.nodes.push_back(node);
    return it->second;
  };
  intern(center);
  std::vector<int32_t> frontier = {center};
  std::unordered_set<int32_t> visited = {center};
  for (int64_t hop = 0; hop < num_hops && !frontier.empty(); ++hop) {
    std::vector<int32_t> next_frontier;
    for (int32_t u : frontier) {
      // Cooperative cancellation at frontier-node granularity: an empty
      // subgraph is the same "extraction failed, degrade" signal the fault
      // site above produces.
      if (util::CurrentCancelled()) return EgoSubgraph{};
      std::vector<Neighbor> neighbors =
          max_fanout > 0 ? graph.SampleInNeighbors(u, max_fanout, rng)
                         : graph.InNeighbors(u);
      for (const Neighbor& nb : neighbors) {
        const int32_t local_u = intern(u);
        const int32_t local_v = intern(nb.node);
        ego.edges.push_back(Edge{local_v, local_u, nb.type});
        if (visited.insert(nb.node).second) next_frontier.push_back(nb.node);
      }
    }
    frontier = std::move(next_frontier);
  }
  return ego;
}

}  // namespace gaia::graph
