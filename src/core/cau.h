#ifndef GAIA_CORE_CAU_H_
#define GAIA_CORE_CAU_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace gaia::core {

using autograd::Var;

/// \brief Convolutional Attention Unit (paper §IV-C1).
///
/// The heart of the ITA mechanism: scaled-dot-product attention over
/// timestamps of a (possibly cross-node) pair of temporal representations,
/// with *convolutional* Q/K projections (width 3) so that attention matches
/// local GMV shapes rather than single points, a width-1 V projection, and a
/// causal mask M forbidding rightward (future) attention.
///
/// For efficiency the projections are exposed separately: in an ITA-GCN
/// layer each node is projected once and each edge only pays the T x T
/// attention. `Forward(h_u, h_v)` is the convenience composition.
///
/// Constructed with `dense_projections = true` and `causal = false` this
/// degrades to the "traditional self-attention" of the w/o-ITA ablation.
class ConvAttentionUnit : public nn::Module {
 public:
  /// `num_heads` > 1 splits the C channels into independent attention heads
  /// (an extension beyond the paper, which uses a single head); channels
  /// must divide evenly.
  ConvAttentionUnit(int64_t channels, Rng* rng, bool dense_projections = false,
                    bool causal = true, int64_t num_heads = 1);

  struct Projection {
    Var q;  ///< [T, C]
    Var k;  ///< [T, C]
    Var v;  ///< [T, C]
  };

  /// Projects one node's representation [T, C].
  Projection Project(const Var& h) const;

  /// Attention for edge v -> u given projected tensors. When
  /// `attention_out` is non-null the [T, T] attention weights are copied out
  /// (Fig. 4 introspection).
  Var Attend(const Var& q_u, const Var& k_v, const Var& v_v,
             Tensor* attention_out = nullptr) const;

  /// CAU(H_u, H_v): full composition for a single edge.
  Var Forward(const Var& h_u, const Var& h_v,
              Tensor* attention_out = nullptr) const;

  bool causal() const { return causal_; }
  int64_t channels() const { return channels_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t channels_;
  bool causal_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::shared_ptr<nn::Conv1dLayer> conv_q_;
  std::shared_ptr<nn::Conv1dLayer> conv_k_;
  std::shared_ptr<nn::Conv1dLayer> conv_v_;
};

}  // namespace gaia::core

#endif  // GAIA_CORE_CAU_H_
