#ifndef GAIA_CORE_FORECAST_MODEL_H_
#define GAIA_CORE_FORECAST_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"

namespace gaia::core {

using autograd::Var;

/// \brief Common interface for all trainable GMV forecasters (Gaia and the
/// neural baselines). Predictions are in *normalized* units (the dataset's
/// per-shop scale); the Evaluator denormalizes before computing metrics.
class ForecastModel : public nn::Module {
 public:
  /// Predicts the [T'] target for each requested node. Graph-based models
  /// run a full-graph forward internally; per-node models process each node
  /// independently. `training` toggles dropout-style stochastic layers.
  virtual std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                        const std::vector<int32_t>& nodes,
                                        bool training, Rng* rng) = 0;

  /// Short method name as it appears in result tables ("Gaia", "MTGNN", ...).
  virtual std::string name() const = 0;

  /// Differentiable training loss for a node batch. The default is the
  /// paper's MSE on PredictNodes outputs (Eq. 10); probabilistic models
  /// override this with a likelihood-based objective.
  virtual Var TrainingLoss(const data::ForecastDataset& dataset,
                           const std::vector<int32_t>& nodes, bool training,
                           Rng* rng);
};

}  // namespace gaia::core

#endif  // GAIA_CORE_FORECAST_MODEL_H_
