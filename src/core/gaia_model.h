#ifndef GAIA_CORE_GAIA_MODEL_H_
#define GAIA_CORE_GAIA_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cau.h"
#include "core/ffl.h"
#include "core/forecast_model.h"
#include "core/ita_gcn.h"
#include "core/tel.h"
#include "nn/layers.h"
#include "util/status.h"

namespace gaia::core {

/// \brief Hyper-parameters of the Gaia model.
struct GaiaConfig {
  int64_t channels = 16;    ///< C, embedding size (paper uses 32)
  int64_t tel_groups = 4;   ///< K, TEL kernel groups (widths 2..2^K)
  int64_t num_layers = 2;   ///< L, stacked ITA-GCN layers
  /// Attention heads inside the CAU (1 = the paper's setting; >1 is a
  /// multi-head extension; channels must divide evenly).
  int64_t cau_heads = 1;

  // Ablation switches (Table II). All true = full Gaia.
  bool use_ffl = true;  ///< false: plain concat + shared linear fusion
  bool use_tel = true;  ///< false: single {4 x C; C} kernel
  bool use_ita = true;  ///< false: traditional (dense, unmasked) attention
                        ///  with uniform neighbour weights
  /// Extra design-choice ablation (ours): disable the causal mask M while
  /// keeping the rest of the ITA mechanism.
  bool causal_mask = true;

  uint64_t seed = 1;

  /// Worker threads for the parallel ITA-GCN forward. 0 keeps the current
  /// process-wide pool (GAIA_NUM_THREADS or hardware concurrency); > 0 pins
  /// the global pool to that size when the model is created. Outputs are
  /// bitwise identical at any setting; 1 recovers the serial path exactly.
  int num_threads = 0;

  /// Validates against the sequence length (kernel group widths must fit).
  Status Validate(int64_t t_len) const;
};

/// \brief Gaia: FFL -> TEL -> L x ITA-GCN -> prediction head (paper Fig. 2).
class GaiaModel : public ForecastModel {
 public:
  /// Builds a model for the given data dimensions; rejects invalid configs.
  static Result<std::unique_ptr<GaiaModel>> Create(const GaiaConfig& config,
                                                   int64_t t_len,
                                                   int64_t horizon,
                                                   int64_t d_temporal,
                                                   int64_t d_static);

  /// Per-node feature bundle for graph-forward entry points.
  struct NodeInput {
    const Tensor* z = nullptr;         ///< [T]
    const Tensor* temporal = nullptr;  ///< [T, D^T]
    const Tensor* statics = nullptr;   ///< [D^S]
  };

  /// Full forward over an arbitrary graph and matching node features.
  /// Returns one [T'] prediction var per node. `probe` (optional) collects
  /// last-layer attention for introspection. If the ambient CancelToken
  /// (see util::CancelScope) fires mid-forward, returns an *empty* vector:
  /// callers must treat a size mismatch as "aborted, discard".
  std::vector<Var> ForwardGraph(const graph::EsellerGraph& graph,
                                const std::vector<NodeInput>& inputs,
                                ItaProbe* probe = nullptr) const;

  // ForecastModel:
  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override;

  /// Serving path: predicts the centre node of an ego subgraph (normalized
  /// units), matching the online deployment of §VI. Returns
  /// StatusCode::kCancelled when the ambient CancelToken aborts the forward
  /// mid-flight (the server degrades such requests to the fallback).
  Result<Tensor> PredictEgo(const data::ForecastDataset& dataset,
                            const graph::EgoSubgraph& ego) const;

  /// AGL-style mini-batch path: one differentiable prediction per node, each
  /// computed on that node's k-hop ego subgraph instead of the full graph.
  /// With `max_fanout == 0` (no sampling) and `num_hops >= num_layers` this
  /// is exact: message passing only reaches L hops, so the result matches
  /// the full-graph forward bit for bit.
  std::vector<Var> PredictNodesViaEgo(const data::ForecastDataset& dataset,
                                      const std::vector<int32_t>& nodes,
                                      int64_t num_hops, int64_t max_fanout,
                                      Rng* rng) const;

  /// Runs a full-graph forward and returns the last layer's attention
  /// records (Fig. 4 case study).
  ItaProbe CollectAttention(const data::ForecastDataset& dataset) const;

  const GaiaConfig& config() const { return config_; }

 private:
  GaiaModel(const GaiaConfig& config, int64_t t_len, int64_t horizon,
            int64_t d_temporal, int64_t d_static);

  /// FFL/TEL node encoding (respecting the ablation switches).
  Var EncodeNode(const NodeInput& input) const;

  GaiaConfig config_;
  int64_t t_len_;
  int64_t horizon_;
  int64_t d_temporal_;
  int64_t d_static_;

  std::shared_ptr<FeatureFusionLayer> ffl_;     // null when !use_ffl
  std::shared_ptr<nn::Linear> plain_fusion_;    // w/o-FFL fallback
  std::shared_ptr<TemporalEmbeddingLayer> tel_;
  std::vector<std::shared_ptr<ItaGcnLayer>> layers_;
  // Prediction head (Eq. 9).
  std::shared_ptr<nn::Conv1dLayer> head_conv_;  ///< L^P: 1 filter, width 1
  Var head_weight_;                             ///< W^P: [T, T']
  Var head_bias_;                               ///< b^P: [T']
};

/// \brief Trainer adapter that runs Gaia in AGL-style mini-batch mode: every
/// prediction is computed on the node's sampled ego subgraph (the industrial
/// training regime of the paper's AGL stack) instead of the full graph.
/// During evaluation (training == false) the full unsampled neighbourhood is
/// used, which is exact for num_hops >= num_layers.
class EgoSamplingGaia : public ForecastModel {
 public:
  EgoSamplingGaia(std::shared_ptr<GaiaModel> inner, int64_t num_hops,
                  int64_t train_fanout);

  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override;

  const GaiaModel& inner() const { return *inner_; }

 private:
  std::shared_ptr<GaiaModel> inner_;
  int64_t num_hops_;
  int64_t train_fanout_;
};

}  // namespace gaia::core

#endif  // GAIA_CORE_GAIA_MODEL_H_
