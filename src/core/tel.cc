#include "core/tel.h"

#include <string>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"

namespace gaia::core {

namespace ag = autograd;

TemporalEmbeddingLayer::TemporalEmbeddingLayer(int64_t channels,
                                               int64_t num_groups, Rng* rng,
                                               bool single_kernel)
    : channels_(channels), num_groups_(single_kernel ? 1 : num_groups) {
  if (single_kernel) {
    // Ablation: one {4 x C; C} kernel per bank (paper §V-B2).
    capture_.push_back(AddModule(
        "capture0", std::make_shared<nn::Conv1dLayer>(
                        channels, channels, /*kernel=*/4, PadMode::kSame, rng)));
    denoise_.push_back(AddModule(
        "denoise0", std::make_shared<nn::Conv1dLayer>(
                        channels, channels, /*kernel=*/4, PadMode::kSame, rng)));
    return;
  }
  GAIA_CHECK_GT(num_groups, 0);
  GAIA_CHECK_EQ(channels % num_groups, 0)
      << "channels must divide evenly into kernel groups";
  const int64_t per_group = channels / num_groups;
  for (int64_t k = 1; k <= num_groups; ++k) {
    const int64_t width = int64_t{1} << k;  // 2, 4, 8, ...
    capture_.push_back(AddModule(
        "capture" + std::to_string(k),
        std::make_shared<nn::Conv1dLayer>(channels, per_group, width,
                                          PadMode::kSame, rng)));
    denoise_.push_back(AddModule(
        "denoise" + std::to_string(k),
        std::make_shared<nn::Conv1dLayer>(channels, per_group, width,
                                          PadMode::kSame, rng)));
  }
}

Var TemporalEmbeddingLayer::Forward(const Var& s) const {
  GAIA_OBS_SPAN("tel.forward");
  GAIA_CHECK_EQ(s->value.ndim(), 2);
  GAIA_CHECK_EQ(s->value.dim(1), channels_);
  // Cancelled forwards are discarded at the next checked boundary; a
  // shape-correct zero skips the convolution banks.
  if (util::CurrentCancelled()) {
    return ag::Constant(Tensor({s->value.dim(0), channels_}));
  }
  std::vector<Var> capture_parts, denoise_parts;
  capture_parts.reserve(capture_.size());
  denoise_parts.reserve(denoise_.size());
  for (const auto& conv : capture_) capture_parts.push_back(conv->Forward(s));
  for (const auto& conv : denoise_) denoise_parts.push_back(conv->Forward(s));
  Var s_capture = capture_parts.size() == 1 ? capture_parts[0]
                                            : ag::ConcatCols(capture_parts);
  Var s_denoise = denoise_parts.size() == 1 ? denoise_parts[0]
                                            : ag::ConcatCols(denoise_parts);
  // Eq. 7: gated combination.
  return ag::Mul(ag::Relu(s_capture), ag::Sigmoid(s_denoise));
}

}  // namespace gaia::core
