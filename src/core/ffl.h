#ifndef GAIA_CORE_FFL_H_
#define GAIA_CORE_FFL_H_

#include "nn/layers.h"
#include "nn/module.h"

namespace gaia::core {

using autograd::Var;

/// \brief Feature Fusion Layer (paper §IV-A, Eq. 1-4).
///
/// Per timestamp t, projects the scalar GMV z_{v,t}, the temporal auxiliary
/// vector f^T_{v,t} and the static vector f^S_v into a shared C-dimensional
/// space, concatenates and fuses with a final affine map. As in the paper,
/// the temporal-projection and fusion biases are *per timestep* ({b^T_t} and
/// {b^F_t}), which lets the fusion adapt to calendar position.
class FeatureFusionLayer : public nn::Module {
 public:
  FeatureFusionLayer(int64_t t_len, int64_t d_temporal, int64_t d_static,
                     int64_t channels, Rng* rng);

  /// z: [T], f_temporal: [T, D^T], f_static: [D^S]  ->  S_v: [T, C].
  Var Forward(const Var& z, const Var& f_temporal, const Var& f_static) const;

  int64_t channels() const { return channels_; }

 private:
  int64_t t_len_;
  int64_t d_temporal_;
  int64_t d_static_;
  int64_t channels_;
  Var w_gmv_;     ///< w^I: [1, C] projection of the scalar GMV
  Var b_gmv_;     ///< b^I: [C]
  Var w_temp_;    ///< W^T: [D^T, C]
  Var b_temp_t_;  ///< {b^T_t}: [T, C] per-timestep bias
  Var w_stat_;    ///< W^S: [D^S, C]
  Var b_stat_;    ///< b^S: [C]
  Var w_fuse_;    ///< W^F: [3C, C]
  Var b_fuse_t_;  ///< {b^F_t}: [T, C] per-timestep bias
};

}  // namespace gaia::core

#endif  // GAIA_CORE_FFL_H_
