#include "core/ita_gcn.h"

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace gaia::core {

namespace ag = autograd;

ItaGcnLayer::ItaGcnLayer(int64_t channels, int64_t t_len, Rng* rng,
                         bool use_ita, bool causal_mask, int64_t cau_heads)
    : channels_(channels), t_len_(t_len), use_ita_(use_ita) {
  cau_ = AddModule("cau", std::make_shared<ConvAttentionUnit>(
                              channels, rng,
                              /*dense_projections=*/!use_ita,
                              /*causal=*/use_ita && causal_mask, cau_heads));
  if (use_ita_) {
    conv_src_ = AddModule("score_s", std::make_shared<nn::Conv1dLayer>(
                                         channels, 1, 1, PadMode::kCausal, rng,
                                         /*dilation=*/1, /*use_bias=*/false));
    conv_dst_ = AddModule("score_d", std::make_shared<nn::Conv1dLayer>(
                                         channels, 1, 1, PadMode::kCausal, rng,
                                         /*dilation=*/1, /*use_bias=*/false));
    mu_ = AddParameter("mu", Tensor::RandUniform({t_len}, rng, -0.5f, 0.5f));
    edge_type_bias_ = AddParameter("edge_type_bias", Tensor({2}));
  }
}

std::vector<Var> ItaGcnLayer::Forward(const graph::EsellerGraph& graph,
                                      const std::vector<Var>& h,
                                      ItaProbe* probe) const {
  GAIA_OBS_SPAN("ita_gcn.forward");
  const auto n = static_cast<int32_t>(h.size());
  GAIA_CHECK_EQ(static_cast<int64_t>(n), graph.num_nodes());

  // Phase 1 — project every node once; edges then only pay the T x T
  // attention. Nodes are independent, and each task writes only its own
  // slot, so the fan-out is bitwise-deterministic at any thread count.
  std::vector<ConvAttentionUnit::Projection> proj(static_cast<size_t>(n));
  std::vector<Var> score_src, score_dst;
  if (use_ita_) {
    score_src.resize(static_cast<size_t>(n));
    score_dst.resize(static_cast<size_t>(n));
  }
  {
    GAIA_OBS_SPAN("ita_gcn.project");
    util::ParallelFor(n, [&](int64_t i) {
      const auto u = static_cast<size_t>(i);
      GAIA_CHECK_EQ(h[u]->value.dim(0), t_len_);
      proj[u] = cau_->Project(h[u]);
      if (use_ita_) {
        score_src[u] = conv_src_->Forward(h[u]);
        score_dst[u] = conv_dst_->Forward(h[u]);
      }
    });
  }
  // A cancelled projection loop leaves unfilled slots; bail before phase 2
  // dereferences them. Empty return = "forward aborted", understood by
  // ForwardGraph.
  if (util::CurrentCancelled()) return {};

  // Phase 2 — CAU attention fans across this node's in-edges; neighbour
  // messages accumulate in the graph's fixed in-neighbour order, so the sum
  // does not depend on which thread runs the node.
  std::vector<Var> out(static_cast<size_t>(n));
  auto compute_node = [&](int32_t u, ItaProbe* node_probe) {
    const auto& pu = proj[static_cast<size_t>(u)];

    // Intra self-attention term CAU(H_u, H_u).
    Tensor self_attention;
    Var self_term = cau_->Attend(pu.q, pu.k, pu.v,
                                 node_probe ? &self_attention : nullptr);
    if (node_probe) {
      node_probe->intra.push_back(EdgeAttentionRecord{u, u, self_attention});
    }

    const std::vector<graph::Neighbor> neighbors = graph.InNeighbors(u);
    if (neighbors.empty()) {
      out[static_cast<size_t>(u)] = self_term;
      return;
    }

    // Neighbour aggregation weights alpha_uv.
    Var alpha;  // [|N|]
    if (use_ita_) {
      std::vector<Var> scores;
      scores.reserve(neighbors.size());
      for (const graph::Neighbor& nb : neighbors) {
        Var combined = ag::Tanh(
            ag::Add(score_src[static_cast<size_t>(u)],
                    score_dst[static_cast<size_t>(nb.node)]));  // [T, 1]
        Var score = ag::Dot(ag::Reshape(combined, {t_len_}), mu_);
        // Relation type enters the aggregation score additively.
        score = ag::Add(score,
                        ag::SelectScalar(edge_type_bias_,
                                         static_cast<int64_t>(nb.type)));
        scores.push_back(score);
      }
      alpha = ag::Softmax1D(ag::StackScalars(scores));
    } else {
      alpha = ag::Constant(Tensor::Full(
          {static_cast<int64_t>(neighbors.size())},
          1.0f / static_cast<float>(neighbors.size())));
    }
    if (node_probe) {
      NeighborAlphaRecord rec;
      rec.u = u;
      for (const graph::Neighbor& nb : neighbors) {
        rec.neighbors.push_back(nb.node);
      }
      rec.alpha = alpha->value;
      node_probe->alphas.push_back(std::move(rec));
    }

    // Inter neighbour-attention term: sum_v alpha_uv CAU(H_u, H_v).
    std::vector<Var> messages;
    messages.reserve(neighbors.size());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const auto& pv = proj[static_cast<size_t>(neighbors[i].node)];
      Tensor edge_attention;
      Var message = cau_->Attend(pu.q, pv.k, pv.v,
                                 node_probe ? &edge_attention : nullptr);
      if (node_probe) {
        node_probe->inter.push_back(
            EdgeAttentionRecord{u, neighbors[i].node, edge_attention});
      }
      messages.push_back(ag::ScaleByScalar(
          message, ag::SelectScalar(alpha, static_cast<int64_t>(i))));
    }
    out[static_cast<size_t>(u)] = ag::Add(ag::AddN(messages), self_term);
  };

  GAIA_OBS_SPAN("ita_gcn.attend");
  if (probe != nullptr) {
    // Introspection path stays serial so probe records keep their documented
    // node-then-edge order.
    for (int32_t u = 0; u < n; ++u) {
      if (util::CurrentCancelled()) return {};
      compute_node(u, probe);
    }
  } else {
    util::ParallelFor(n, [&](int64_t u) {
      GAIA_OBS_SPAN_DETAIL("ita_gcn.node");
      compute_node(static_cast<int32_t>(u), nullptr);
    });
    if (util::CurrentCancelled()) return {};
  }
  return out;
}

}  // namespace gaia::core
