#include "core/gaia_model.h"
#include "util/arena.h"

#include "nn/init.h"
#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace gaia::core {

namespace ag = autograd;

Status GaiaConfig::Validate(int64_t t_len) const {
  if (channels < 2) return Status::InvalidArgument("channels must be >= 2");
  if (num_layers < 1) return Status::InvalidArgument("need >= 1 ITA layer");
  if (cau_heads < 1 || channels % cau_heads != 0) {
    return Status::InvalidArgument("channels must divide evenly into CAU heads");
  }
  if (use_tel) {
    if (tel_groups < 1) {
      return Status::InvalidArgument("tel_groups must be >= 1");
    }
    if (channels % tel_groups != 0) {
      return Status::InvalidArgument("channels must be divisible by tel_groups");
    }
    if ((int64_t{1} << tel_groups) > 2 * t_len) {
      return Status::InvalidArgument(
          "largest TEL kernel exceeds the sequence length");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<GaiaModel>> GaiaModel::Create(const GaiaConfig& config,
                                                     int64_t t_len,
                                                     int64_t horizon,
                                                     int64_t d_temporal,
                                                     int64_t d_static) {
  GAIA_RETURN_NOT_OK(config.Validate(t_len));
  if (t_len < 1 || horizon < 1 || d_temporal < 1 || d_static < 1) {
    return Status::InvalidArgument("invalid data dimensions");
  }
  return std::unique_ptr<GaiaModel>(
      new GaiaModel(config, t_len, horizon, d_temporal, d_static));
}

GaiaModel::GaiaModel(const GaiaConfig& config, int64_t t_len, int64_t horizon,
                     int64_t d_temporal, int64_t d_static)
    : config_(config),
      t_len_(t_len),
      horizon_(horizon),
      d_temporal_(d_temporal),
      d_static_(d_static) {
  if (config.num_threads > 0) {
    util::ThreadPool::SetGlobalThreads(config.num_threads);
  }
  Rng rng(config.seed);
  const int64_t c = config.channels;
  if (config.use_ffl) {
    ffl_ = AddModule("ffl", std::make_shared<FeatureFusionLayer>(
                                t_len, d_temporal, d_static, c, &rng));
  } else {
    // Ablation: plain per-timestep concat + shared affine fusion.
    plain_fusion_ = AddModule(
        "plain_fusion",
        std::make_shared<nn::Linear>(1 + d_temporal + d_static, c, &rng));
  }
  tel_ = AddModule("tel", std::make_shared<TemporalEmbeddingLayer>(
                              c, config.tel_groups, &rng,
                              /*single_kernel=*/!config.use_tel));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(AddModule(
        "ita" + std::to_string(l),
        std::make_shared<ItaGcnLayer>(c, t_len, &rng, config.use_ita,
                                      config.causal_mask,
                                      config.cau_heads)));
  }
  head_conv_ = AddModule("head_conv", std::make_shared<nn::Conv1dLayer>(
                                          c, 1, 1, PadMode::kCausal, &rng));
  head_weight_ =
      AddParameter("head_weight", nn::LinearInit(t_len, horizon, &rng));
  // Bias starts at the normalized-GMV mean (~1) so the ReLU head (Eq. 9)
  // opens positive everywhere; a zero init leaves dead output units that MSE
  // gradients can never revive.
  head_bias_ = AddParameter("head_bias", Tensor::Ones({horizon}));
}

Var GaiaModel::EncodeNode(const NodeInput& input) const {
  GAIA_CHECK(input.z != nullptr && input.temporal != nullptr &&
             input.statics != nullptr);
  Var z = ag::Constant(*input.z);
  Var temporal = ag::Constant(*input.temporal);
  Var statics = ag::Constant(*input.statics);
  Var fused;
  if (config_.use_ffl) {
    fused = ffl_->Forward(z, temporal, statics);
  } else {
    // [z_t || f^T_t || f^S] -> shared linear, no per-timestep structure.
    Var z_col = ag::Reshape(z, {t_len_, 1});
    Var stat_rows = ag::MatMul(ag::Constant(Tensor::Ones({t_len_, 1})),
                               ag::Reshape(statics, {1, d_static_}));
    fused = plain_fusion_->Forward(
        ag::ConcatCols({z_col, temporal, stat_rows}));
  }
  return tel_->Forward(fused);
}

std::vector<Var> GaiaModel::ForwardGraph(const graph::EsellerGraph& graph,
                                         const std::vector<NodeInput>& inputs,
                                         ItaProbe* probe) const {
  util::ArenaScope arena_scope;
  GAIA_OBS_SPAN("model.forward_graph");
  GAIA_CHECK_EQ(static_cast<int64_t>(inputs.size()), graph.num_nodes());
  std::vector<Var> embeddings;  // E_v from TEL
  embeddings.reserve(inputs.size());
  {
    GAIA_OBS_SPAN("model.encode");
    for (const NodeInput& input : inputs) {
      if (util::CurrentCancelled()) return {};
      embeddings.push_back(EncodeNode(input));
    }
  }
  std::vector<Var> h = embeddings;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool is_last = l + 1 == layers_.size();
    h = layers_[l]->Forward(graph, h, is_last ? probe : nullptr);
    // A layer that observed the token returns {}; unwind without touching
    // the partially built state.
    if (h.size() != inputs.size()) return {};
  }
  // Prediction head with the TEL residual (Eq. 9).
  GAIA_OBS_SPAN("model.head");
  std::vector<Var> predictions;
  predictions.reserve(inputs.size());
  for (size_t v = 0; v < inputs.size(); ++v) {
    if (util::CurrentCancelled()) return {};
    Var residual = ag::Add(h[v], embeddings[v]);          // [T, C]
    Var pooled = head_conv_->Forward(residual);            // [T, 1]
    Var row = ag::Reshape(pooled, {1, t_len_});            // [1, T]
    Var out = ag::AddRowVector(ag::MatMul(row, head_weight_), head_bias_);
    predictions.push_back(ag::Relu(ag::Reshape(out, {horizon_})));
  }
  return predictions;
}

std::vector<Var> GaiaModel::PredictNodes(const data::ForecastDataset& dataset,
                                         const std::vector<int32_t>& nodes,
                                         bool /*training*/, Rng* /*rng*/) {
  util::ArenaScope arena_scope;
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<NodeInput> inputs(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    inputs[static_cast<size_t>(v)] =
        NodeInput{&dataset.z(v), &dataset.temporal(v),
                  &dataset.static_features(v)};
  }
  std::vector<Var> all = ForwardGraph(dataset.graph(), inputs);
  if (all.size() != inputs.size()) return {};  // cancelled mid-forward
  std::vector<Var> selected;
  selected.reserve(nodes.size());
  for (int32_t v : nodes) {
    GAIA_CHECK_GE(v, 0);
    GAIA_CHECK_LT(v, n);
    selected.push_back(all[static_cast<size_t>(v)]);
  }
  return selected;
}

std::string GaiaModel::name() const {
  if (config_.use_ffl && config_.use_tel && config_.use_ita) return "Gaia";
  std::string n = "Gaia";
  if (!config_.use_ita) n += " w/o ITA";
  if (!config_.use_ffl) n += " w/o FFL";
  if (!config_.use_tel) n += " w/o TEL";
  return n;
}

Result<Tensor> GaiaModel::PredictEgo(const data::ForecastDataset& dataset,
                                     const graph::EgoSubgraph& ego) const {
  util::ArenaScope arena_scope;
  Result<graph::EsellerGraph> local =
      graph::EsellerGraph::Create(ego.num_nodes(), ego.edges);
  GAIA_CHECK(local.ok()) << local.status().ToString();
  std::vector<NodeInput> inputs;
  inputs.reserve(ego.nodes.size());
  for (int32_t global_id : ego.nodes) {
    inputs.push_back(NodeInput{&dataset.z(global_id),
                               &dataset.temporal(global_id),
                               &dataset.static_features(global_id)});
  }
  std::vector<Var> preds = ForwardGraph(local.value(), inputs);
  if (preds.size() != inputs.size()) {
    return Status::Cancelled("ego forward aborted by cancel token");
  }
  return preds.front()->value;  // centre node is local id 0
}

std::vector<Var> GaiaModel::PredictNodesViaEgo(
    const data::ForecastDataset& dataset, const std::vector<int32_t>& nodes,
    int64_t num_hops, int64_t max_fanout, Rng* rng) const {
  util::ArenaScope arena_scope;
  // Ego extraction stays serial: sampling consumes the rng, whose draw order
  // must not depend on thread scheduling. The per-sample forwards are then
  // independent graphs and fan out across the pool.
  struct EgoWork {
    graph::EsellerGraph graph;
    std::vector<NodeInput> inputs;
  };
  std::vector<EgoWork> work(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (util::CurrentCancelled()) return {};
    graph::EgoSubgraph ego = graph::ExtractEgoSubgraph(
        dataset.graph(), nodes[i], num_hops, max_fanout, rng);
    // A failed extraction (fault injection) yields an empty subgraph; degrade
    // to the isolated centre node so the batch forward stays well-formed.
    if (ego.nodes.empty()) ego.nodes.push_back(nodes[i]);
    Result<graph::EsellerGraph> local =
        graph::EsellerGraph::Create(ego.num_nodes(), ego.edges);
    GAIA_CHECK(local.ok()) << local.status().ToString();
    work[i].graph = std::move(local).value();
    work[i].inputs.reserve(ego.nodes.size());
    for (int32_t global_id : ego.nodes) {
      work[i].inputs.push_back(NodeInput{&dataset.z(global_id),
                                         &dataset.temporal(global_id),
                                         &dataset.static_features(global_id)});
    }
  }
  std::vector<Var> out(nodes.size());
  util::ParallelFor(static_cast<int64_t>(work.size()), [&](int64_t i) {
    const EgoWork& w = work[static_cast<size_t>(i)];
    std::vector<Var> preds = ForwardGraph(w.graph, w.inputs);
    if (!preds.empty()) out[static_cast<size_t>(i)] = preds.front();
  });
  if (util::CurrentCancelled()) return {};
  return out;
}

ItaProbe GaiaModel::CollectAttention(
    const data::ForecastDataset& dataset) const {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<NodeInput> inputs(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    inputs[static_cast<size_t>(v)] =
        NodeInput{&dataset.z(v), &dataset.temporal(v),
                  &dataset.static_features(v)};
  }
  ItaProbe probe;
  ForwardGraph(dataset.graph(), inputs, &probe);
  return probe;
}

EgoSamplingGaia::EgoSamplingGaia(std::shared_ptr<GaiaModel> inner,
                                 int64_t num_hops, int64_t train_fanout)
    : num_hops_(num_hops), train_fanout_(train_fanout) {
  GAIA_CHECK(inner != nullptr);
  inner_ = AddModule("inner", std::move(inner));
}

std::vector<Var> EgoSamplingGaia::PredictNodes(
    const data::ForecastDataset& dataset, const std::vector<int32_t>& nodes,
    bool training, Rng* rng) {
  GAIA_CHECK(rng != nullptr);
  const int64_t fanout = training ? train_fanout_ : 0;
  return inner_->PredictNodesViaEgo(dataset, nodes, num_hops_, fanout, rng);
}

std::string EgoSamplingGaia::name() const {
  return inner_->name() + " (ego-batch)";
}

}  // namespace gaia::core
