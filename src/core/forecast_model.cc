#include "core/forecast_model.h"

#include "autograd/ops.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace gaia::core {

namespace ag = autograd;

Var ForecastModel::TrainingLoss(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) {
  GAIA_CHECK(!nodes.empty());
  std::vector<Var> preds = PredictNodes(dataset, nodes, training, rng);
  if (preds.size() != nodes.size()) {
    // Forward aborted by the ambient cancel token; the trainer checks the
    // token before ever backpropagating this placeholder.
    return ag::Constant(Tensor({1}));
  }
  // Per-sample losses are independent subgraphs; build them in parallel into
  // fixed slots, then reduce with AddN in batch order (deterministic at any
  // thread count).
  std::vector<Var> losses(preds.size());
  util::ParallelFor(static_cast<int64_t>(preds.size()), [&](int64_t i) {
    losses[static_cast<size_t>(i)] =
        ag::MseLoss(preds[static_cast<size_t>(i)],
                    dataset.target(nodes[static_cast<size_t>(i)]));
  });
  return ag::ScalarMul(ag::AddN(losses),
                       1.0f / static_cast<float>(losses.size()));
}

}  // namespace gaia::core
