#include "core/forecast_model.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace gaia::core {

namespace ag = autograd;

Var ForecastModel::TrainingLoss(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) {
  GAIA_CHECK(!nodes.empty());
  std::vector<Var> preds = PredictNodes(dataset, nodes, training, rng);
  std::vector<Var> losses;
  losses.reserve(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    losses.push_back(ag::MseLoss(preds[i], dataset.target(nodes[i])));
  }
  return ag::ScalarMul(ag::AddN(losses),
                       1.0f / static_cast<float>(losses.size()));
}

}  // namespace gaia::core
