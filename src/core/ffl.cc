#include "core/ffl.h"

#include "nn/init.h"
#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"

namespace gaia::core {

namespace ag = autograd;

FeatureFusionLayer::FeatureFusionLayer(int64_t t_len, int64_t d_temporal,
                                       int64_t d_static, int64_t channels,
                                       Rng* rng)
    : t_len_(t_len),
      d_temporal_(d_temporal),
      d_static_(d_static),
      channels_(channels) {
  w_gmv_ = AddParameter("w_gmv", nn::GlorotUniform({1, channels}, 1, channels,
                                                   rng));
  b_gmv_ = AddParameter("b_gmv", Tensor({channels}));
  w_temp_ = AddParameter("w_temp", nn::LinearInit(d_temporal, channels, rng));
  b_temp_t_ = AddParameter("b_temp_t", Tensor({t_len, channels}));
  w_stat_ = AddParameter("w_stat", nn::LinearInit(d_static, channels, rng));
  b_stat_ = AddParameter("b_stat", Tensor({channels}));
  w_fuse_ = AddParameter("w_fuse", nn::LinearInit(3 * channels, channels, rng));
  b_fuse_t_ = AddParameter("b_fuse_t", Tensor({t_len, channels}));
}

Var FeatureFusionLayer::Forward(const Var& z, const Var& f_temporal,
                                const Var& f_static) const {
  GAIA_OBS_SPAN("ffl.forward");
  GAIA_CHECK_EQ(z->value.ndim(), 1);
  GAIA_CHECK_EQ(z->value.dim(0), t_len_);
  GAIA_CHECK_EQ(f_temporal->value.dim(0), t_len_);
  GAIA_CHECK_EQ(f_temporal->value.dim(1), d_temporal_);
  GAIA_CHECK_EQ(f_static->value.dim(0), d_static_);
  // Cooperative cancellation: once the ambient token fires, the whole
  // forward is going to be discarded at the next checked boundary, so skip
  // the kernels and return a correctly shaped zero to keep downstream
  // shape checks happy.
  if (util::CurrentCancelled()) {
    return ag::Constant(Tensor({t_len_, channels_}));
  }

  // Eq. 1: per-timestep scalar projection z_t * w^I + b^I.
  Var z_col = ag::Reshape(z, {t_len_, 1});
  Var z_emb = ag::AddRowVector(ag::MatMul(z_col, w_gmv_), b_gmv_);

  // Eq. 2: temporal features with per-timestep bias.
  Var temp_emb = ag::Add(ag::MatMul(f_temporal, w_temp_), b_temp_t_);

  // Eq. 3: static features, broadcast over the T rows.
  Var stat_row = ag::Reshape(f_static, {1, d_static_});
  Var stat_emb_row =
      ag::AddRowVector(ag::MatMul(stat_row, w_stat_), b_stat_);  // [1, C]
  Var stat_emb = ag::MatMul(ag::Constant(Tensor::Ones({t_len_, 1})),
                            stat_emb_row);  // [T, C]

  // Eq. 4: concatenate and fuse with per-timestep bias.
  Var fused = ag::MatMul(ag::ConcatCols({z_emb, temp_emb, stat_emb}), w_fuse_);
  return ag::Add(fused, b_fuse_t_);
}

}  // namespace gaia::core
