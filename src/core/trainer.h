#ifndef GAIA_CORE_TRAINER_H_
#define GAIA_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/forecast_model.h"
#include "data/dataset.h"

namespace gaia::core {

/// \brief Training hyper-parameters shared by Gaia and all neural baselines.
///
/// The paper trains with Adam; we keep that but raise the learning rate to
/// suit the (much smaller) synthetic market. Validation-loss early stopping
/// with best-checkpoint restore matches the paper's grid-searched protocol.
struct TrainConfig {
  int max_epochs = 120;
  float learning_rate = 3e-3f;
  float grad_clip = 5.0f;
  int patience = 12;        ///< early-stop patience, in evaluations
  int eval_every = 5;       ///< epochs between validation evaluations
  /// Nodes sampled per epoch; 0 trains full batch.
  int64_t batch_nodes = 0;
  /// Cosine-decay the learning rate to lr/10 across max_epochs. Reduces
  /// late-training oscillation, which matters for the attention models.
  bool cosine_lr_decay = true;
  uint64_t seed = 99;
  bool verbose = false;
  /// Worker threads for the parallel forward/eval paths. 0 keeps the current
  /// process-wide pool (GAIA_NUM_THREADS or hardware concurrency); > 0 pins
  /// the global pool to that size when Fit starts. Results are bitwise
  /// identical at any setting; 1 recovers the serial path exactly.
  int num_threads = 0;
  /// Wall-clock budget for the whole Fit call in milliseconds (0 = none).
  /// Arms a util::CancelToken (a child of any ambient token, so a caller's
  /// budget also applies); when it fires the loop stops at the next safe
  /// point — never between backward and the optimizer step, so parameters
  /// are always a consistent "end of epoch k" state.
  double deadline_ms = 0.0;
};

/// \brief Outcome of a training run.
struct TrainResult {
  int epochs_run = 0;
  /// True when the run was aborted by a deadline or cancel token; the
  /// parameters still hold the best (or last completed) epoch's state.
  bool cancelled = false;
  /// Epochs whose optimizer step was skipped by an injected fault
  /// (train.grad_exchange / train.optimizer_step sites).
  int skipped_steps = 0;
  double best_val_loss = 0.0;
  double final_train_loss = 0.0;
  double seconds = 0.0;
  std::vector<double> train_loss_history;
  std::vector<double> val_loss_history;
};

/// \brief Extension points that let a data-parallel driver (dist::DistTrainer
/// workers) reuse Fit's exact epoch loop — batch selection, loss, backward,
/// clip, Adam, eval, early stopping — while inserting sharding and a gradient
/// exchange at the two spots where distributed training differs.
///
/// Both hooks are optional; default-constructed TrainHooks reproduce the
/// in-process Fit bit for bit. A hook that does no numeric work (world size
/// 1) also reproduces it bit for bit, which is the N=1 equality contract.
struct TrainHooks {
  /// Called after the epoch's batch is selected (post shuffle/trim); the
  /// worker replaces `*batch` with its shard. The shared rng has already
  /// advanced identically on every worker, so all shards are consistent.
  std::function<void(int epoch, std::vector<int32_t>* batch)> shard_batch;
  /// Called between backward and the optimizer step with the shard loss and
  /// whether this worker's own train.grad_exchange / train.optimizer_step
  /// fault fired. Performs the all-reduce, leaves the reduced gradients in
  /// the parameters, and returns true to apply the step or false to skip it
  /// (counted via CountSkippedStep, exactly like a local fault).
  std::function<bool(int epoch, float shard_loss, bool local_fault)>
      exchange_gradients;
};

/// \brief MSE training loop (Eq. 10) with gradient clipping, validation
/// early stopping and best-parameter restore.
class Trainer {
 public:
  explicit Trainer(const TrainConfig& config) : config_(config) {}

  TrainResult Fit(ForecastModel* model,
                  const data::ForecastDataset& dataset) const;

  /// Fit with distributed-training extension points; see TrainHooks.
  TrainResult Fit(ForecastModel* model, const data::ForecastDataset& dataset,
                  const TrainHooks& hooks) const;

  /// Mean squared error of the model on the given nodes (normalized units,
  /// no gradient bookkeeping kept).
  static double EvaluateMse(ForecastModel* model,
                            const data::ForecastDataset& dataset,
                            const std::vector<int32_t>& nodes);

  /// Samples the train.grad_exchange and train.optimizer_step fault sites
  /// (both every call, so count-bounded budgets stay exact across processes)
  /// and returns true when either fired. Shared by Fit and DistTrainer
  /// workers so single- and multi-process training draw identical fault
  /// sequences.
  static bool SampleTrainStepFaults();

  /// Records one skipped optimizer step: bumps result->skipped_steps and the
  /// unconditional gaia_robust_train_steps_skipped_total counter. The one
  /// place skip-step bookkeeping lives for both training modes.
  static void CountSkippedStep(TrainResult* result);

 private:
  TrainConfig config_;
};

}  // namespace gaia::core

#endif  // GAIA_CORE_TRAINER_H_
