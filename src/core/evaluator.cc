#include "core/evaluator.h"

#include "util/check.h"
#include "util/rng.h"

namespace gaia::core {

EvaluationReport Evaluator::FromPredictions(
    const std::string& method, const data::ForecastDataset& dataset,
    const std::vector<int32_t>& nodes,
    const std::vector<std::vector<double>>& predictions) {
  GAIA_CHECK_EQ(nodes.size(), predictions.size());
  const auto horizon = static_cast<int>(dataset.horizon());
  const double floor = dataset.mape_floor();

  std::vector<ts::MetricsAccumulator> monthly(
      static_cast<size_t>(horizon), ts::MetricsAccumulator(floor));
  ts::MetricsAccumulator overall(floor);
  ts::MetricsAccumulator new_shop(floor);
  ts::MetricsAccumulator old_shop(floor);

  for (size_t i = 0; i < nodes.size(); ++i) {
    const int32_t v = nodes[i];
    GAIA_CHECK_EQ(static_cast<int>(predictions[i].size()), horizon);
    const bool is_new = dataset.series_length(v) < kNewShopThreshold;
    for (int h = 0; h < horizon; ++h) {
      const double pred = predictions[i][static_cast<size_t>(h)];
      const double actual = dataset.ActualGmv(v, h);
      monthly[static_cast<size_t>(h)].Add(pred, actual);
      overall.Add(pred, actual);
      (is_new ? new_shop : old_shop).Add(pred, actual);
    }
  }

  EvaluationReport report;
  report.method = method;
  report.per_month.reserve(static_cast<size_t>(horizon));
  for (const auto& acc : monthly) report.per_month.push_back(acc.Finalize());
  report.overall = overall.Finalize();
  report.new_shop = new_shop.Finalize();
  report.old_shop = old_shop.Finalize();
  return report;
}

EvaluationReport Evaluator::Evaluate(ForecastModel* model,
                                     const data::ForecastDataset& dataset,
                                     const std::vector<int32_t>& nodes) {
  GAIA_CHECK(model != nullptr);
  Rng rng(0);
  std::vector<Var> preds =
      model->PredictNodes(dataset, nodes, /*training=*/false, &rng);
  std::vector<std::vector<double>> denorm(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Tensor& p = preds[i]->value;
    denorm[i].resize(static_cast<size_t>(p.size()));
    for (int64_t h = 0; h < p.size(); ++h) {
      denorm[i][static_cast<size_t>(h)] =
          dataset.Denormalize(nodes[i], p.data()[h]);
    }
  }
  return FromPredictions(model->name(), dataset, nodes, denorm);
}

}  // namespace gaia::core
