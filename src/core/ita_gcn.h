#ifndef GAIA_CORE_ITA_GCN_H_
#define GAIA_CORE_ITA_GCN_H_

#include <memory>
#include <vector>

#include "core/cau.h"
#include "graph/eseller_graph.h"
#include "nn/module.h"

namespace gaia::core {

/// \brief Introspection record for the Fig. 4 case study.
struct EdgeAttentionRecord {
  int32_t u = 0;          ///< centre node (local id)
  int32_t v = 0;          ///< source node; v == u for the intra/self term
  Tensor attention;       ///< [T, T] CAU attention weights
};

struct NeighborAlphaRecord {
  int32_t u = 0;
  std::vector<int32_t> neighbors;
  Tensor alpha;           ///< [|N(u)|] aggregation weights
};

/// Collected attention state for one ITA-GCN layer forward pass.
struct ItaProbe {
  std::vector<EdgeAttentionRecord> inter;  ///< one per edge
  std::vector<EdgeAttentionRecord> intra;  ///< one per node (self attention)
  std::vector<NeighborAlphaRecord> alphas;
};

/// \brief One ITA-GCN layer (paper §IV-C2, Eq. 8).
///
///   H_u^{l+1} = sum_{v in N(u)} alpha_uv CAU(H_u, H_v)  +  CAU(H_u, H_u)
///
/// with neighbour weights alpha_uv = softmax_v g(u, v),
/// g(u, v) = mu' tanh(L^s * H_u + L^d * H_v)  (width-1, single-filter convs).
///
/// With `use_ita = false` the layer reproduces the w/o-ITA ablation:
/// dense-projection, unmasked attention and uniform neighbour weights.
class ItaGcnLayer : public nn::Module {
 public:
  ItaGcnLayer(int64_t channels, int64_t t_len, Rng* rng, bool use_ita = true,
              bool causal_mask = true, int64_t cau_heads = 1);

  /// Full-graph propagation: `h` holds one [T, C] var per node; returns the
  /// next layer's representations in the same order.
  std::vector<Var> Forward(const graph::EsellerGraph& graph,
                           const std::vector<Var>& h,
                           ItaProbe* probe = nullptr) const;

  const ConvAttentionUnit& cau() const { return *cau_; }

 private:
  int64_t channels_;
  int64_t t_len_;
  bool use_ita_;
  std::shared_ptr<ConvAttentionUnit> cau_;
  std::shared_ptr<nn::Conv1dLayer> conv_src_;  ///< L^s (centre side)
  std::shared_ptr<nn::Conv1dLayer> conv_dst_;  ///< L^d (neighbour side)
  Var mu_;                                     ///< [T] context vector
  /// Learned additive score bias per relation type (supply-chain /
  /// same-owner) — the paper carries the edge type as an edge feature.
  Var edge_type_bias_;                         ///< [num edge types]
};

}  // namespace gaia::core

#endif  // GAIA_CORE_ITA_GCN_H_
