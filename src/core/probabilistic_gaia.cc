#include "core/probabilistic_gaia.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace gaia::core {

namespace ag = autograd;

Var GaussianNll(const Var& mean, const Var& logvar, const Tensor& target) {
  GAIA_CHECK(mean->value.SameShape(target));
  GAIA_CHECK(logvar->value.SameShape(target));
  // nll = 0.5 * mean( logvar + (target - mean)^2 * exp(-logvar) )
  Var diff = ag::Sub(ag::Constant(target), mean);
  Var precision = ag::Exp(ag::Neg(logvar));
  Var quad = ag::Mul(ag::Mul(diff, diff), precision);
  return ag::ScalarMul(ag::MeanAll(ag::Add(logvar, quad)), 0.5f);
}

Result<std::unique_ptr<ProbabilisticGaia>> ProbabilisticGaia::Create(
    const Config& config, int64_t t_len, int64_t horizon, int64_t d_temporal,
    int64_t d_static) {
  if (config.channels < 2 || config.num_layers < 1) {
    return Status::InvalidArgument("invalid probabilistic Gaia config");
  }
  if (config.tel_groups < 1 || config.channels % config.tel_groups != 0) {
    return Status::InvalidArgument("channels must divide into tel_groups");
  }
  if (config.max_logvar <= 0.0f) {
    return Status::InvalidArgument("max_logvar must be positive");
  }
  if (t_len < 1 || horizon < 1 || d_temporal < 1 || d_static < 1) {
    return Status::InvalidArgument("invalid data dimensions");
  }
  return std::unique_ptr<ProbabilisticGaia>(
      new ProbabilisticGaia(config, t_len, horizon, d_temporal, d_static));
}

ProbabilisticGaia::ProbabilisticGaia(const Config& config, int64_t t_len,
                                     int64_t horizon, int64_t d_temporal,
                                     int64_t d_static)
    : config_(config), t_len_(t_len), horizon_(horizon) {
  Rng rng(config.seed);
  const int64_t c = config.channels;
  ffl_ = AddModule("ffl", std::make_shared<FeatureFusionLayer>(
                              t_len, d_temporal, d_static, c, &rng));
  tel_ = AddModule("tel", std::make_shared<TemporalEmbeddingLayer>(
                              c, config.tel_groups, &rng));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(AddModule("ita" + std::to_string(l),
                                std::make_shared<ItaGcnLayer>(c, t_len, &rng)));
  }
  mean_conv_ = AddModule("mean_conv", std::make_shared<nn::Conv1dLayer>(
                                          c, 1, 1, PadMode::kCausal, &rng));
  mean_weight_ =
      AddParameter("mean_weight", nn::LinearInit(t_len, horizon, &rng));
  mean_bias_ = AddParameter("mean_bias", Tensor::Ones({horizon}));
  var_conv_ = AddModule("var_conv", std::make_shared<nn::Conv1dLayer>(
                                        c, 1, 1, PadMode::kCausal, &rng));
  var_weight_ =
      AddParameter("var_weight", nn::LinearInit(t_len, horizon, &rng));
  var_bias_ = AddParameter("var_bias", Tensor({horizon}));
}

std::vector<ProbabilisticGaia::HeadOutput> ProbabilisticGaia::ForwardAll(
    const data::ForecastDataset& dataset) const {
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<Var> embeddings;
  embeddings.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    Var fused = ffl_->Forward(ag::Constant(dataset.z(v)),
                              ag::Constant(dataset.temporal(v)),
                              ag::Constant(dataset.static_features(v)));
    embeddings.push_back(tel_->Forward(fused));
  }
  std::vector<Var> h = embeddings;
  for (const auto& layer : layers_) {
    h = layer->Forward(dataset.graph(), h);
  }
  std::vector<HeadOutput> out;
  out.reserve(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    Var residual = ag::Add(h[static_cast<size_t>(v)],
                           embeddings[static_cast<size_t>(v)]);
    Var mean_row = ag::Reshape(mean_conv_->Forward(residual), {1, t_len_});
    Var mean = ag::Relu(ag::Reshape(
        ag::AddRowVector(ag::MatMul(mean_row, mean_weight_), mean_bias_),
        {horizon_}));
    Var var_row = ag::Reshape(var_conv_->Forward(residual), {1, t_len_});
    Var raw_logvar = ag::Reshape(
        ag::AddRowVector(ag::MatMul(var_row, var_weight_), var_bias_),
        {horizon_});
    // Bounded log-variance keeps the NLL well-conditioned.
    Var logvar = ag::ScalarMul(ag::Tanh(raw_logvar), config_.max_logvar);
    out.push_back(HeadOutput{mean, logvar});
  }
  return out;
}

std::vector<Var> ProbabilisticGaia::PredictNodes(
    const data::ForecastDataset& dataset, const std::vector<int32_t>& nodes,
    bool /*training*/, Rng* /*rng*/) {
  auto all = ForwardAll(dataset);
  std::vector<Var> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) out.push_back(all[static_cast<size_t>(v)].mean);
  return out;
}

Var ProbabilisticGaia::TrainingLoss(const data::ForecastDataset& dataset,
                                    const std::vector<int32_t>& nodes,
                                    bool /*training*/, Rng* /*rng*/) {
  GAIA_CHECK(!nodes.empty());
  auto all = ForwardAll(dataset);
  std::vector<Var> losses;
  losses.reserve(nodes.size());
  for (int32_t v : nodes) {
    const auto& head = all[static_cast<size_t>(v)];
    losses.push_back(GaussianNll(head.mean, head.logvar, dataset.target(v)));
  }
  return ag::ScalarMul(ag::AddN(losses),
                       1.0f / static_cast<float>(losses.size()));
}

Result<QuantileBandTable> CalibrateQuantileBands(
    ProbabilisticGaia* model, const data::ForecastDataset& dataset,
    const std::vector<int32_t>& calibration_nodes, double coverage) {
  GAIA_CHECK(model != nullptr);
  if (coverage <= 0.0 || coverage >= 1.0) {
    return Status::InvalidArgument("band coverage must be in (0, 1)");
  }
  if (calibration_nodes.empty()) {
    return Status::InvalidArgument("band calibration needs held-out nodes");
  }
  const auto n = static_cast<int32_t>(dataset.num_nodes());
  std::vector<int32_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  std::vector<ProbabilisticGaia::Distribution> dists =
      model->PredictDistribution(dataset, all);

  QuantileBandTable table;
  table.coverage = coverage;
  table.sigma.resize(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    const Tensor& stddev = dists[static_cast<size_t>(v)].stddev;
    std::vector<double>& row = table.sigma[static_cast<size_t>(v)];
    row.reserve(static_cast<size_t>(stddev.size()));
    for (int64_t h = 0; h < stddev.size(); ++h) {
      row.push_back(static_cast<double>(stddev.data()[h]));
    }
  }

  // Conformity scores on the held-out nodes: |target - mean| in sigma
  // units, one score per (node, month).
  constexpr double kSigmaFloor = 1e-9;
  std::vector<double> scores;
  for (int32_t v : calibration_nodes) {
    if (v < 0 || v >= n) {
      return Status::InvalidArgument("calibration node out of range");
    }
    const auto& dist = dists[static_cast<size_t>(v)];
    const Tensor& target = dataset.target(v);
    for (int64_t h = 0; h < target.size(); ++h) {
      const double residual = std::abs(
          static_cast<double>(target.data()[h]) -
          static_cast<double>(dist.mean.data()[h]));
      const double sigma = std::max(
          static_cast<double>(dist.stddev.data()[h]), kSigmaFloor);
      scores.push_back(residual / sigma);
    }
  }
  // The classic split-conformal quantile: k-th order statistic with
  // k = ceil((n + 1) * coverage), clamped to the sample.
  std::sort(scores.begin(), scores.end());
  const auto count = scores.size();
  size_t k = static_cast<size_t>(std::ceil(
      (static_cast<double>(count) + 1.0) * coverage));
  k = std::min(std::max<size_t>(k, 1), count);
  table.scale = scores[k - 1];
  return table;
}

std::vector<ProbabilisticGaia::Distribution>
ProbabilisticGaia::PredictDistribution(const data::ForecastDataset& dataset,
                                       const std::vector<int32_t>& nodes) {
  auto all = ForwardAll(dataset);
  std::vector<Distribution> out;
  out.reserve(nodes.size());
  for (int32_t v : nodes) {
    const auto& head = all[static_cast<size_t>(v)];
    Distribution dist;
    dist.mean = head.mean->value;
    dist.stddev = Tensor(dist.mean.shape());
    for (int64_t h = 0; h < dist.mean.size(); ++h) {
      dist.stddev.data()[h] =
          std::exp(0.5f * head.logvar->value.data()[h]);
    }
    out.push_back(std::move(dist));
  }
  return out;
}

}  // namespace gaia::core
