#ifndef GAIA_CORE_TEL_H_
#define GAIA_CORE_TEL_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace gaia::core {

using autograd::Var;

/// \brief Temporal Embedding Layer (paper §IV-B, Eq. 5-7).
///
/// Two coupled banks of multi-scale temporal convolutions: the *capture*
/// bank extracts temporal patterns, the *denoise* bank gates them. Bank k
/// uses C/K kernels of width 2^k (k = 1..K) with zero "same" padding; bank
/// outputs are concatenated back to C channels and combined as
/// E = ReLU(S^C) ⊙ Sigmoid(S^D).
///
/// `single_kernel` reproduces the paper's "w/o TEL" ablation: one {4 x C; C}
/// convolution per bank instead of the kernel group.
class TemporalEmbeddingLayer : public nn::Module {
 public:
  TemporalEmbeddingLayer(int64_t channels, int64_t num_groups, Rng* rng,
                         bool single_kernel = false);

  /// S: [T, C] -> E: [T, C].
  Var Forward(const Var& s) const;

  int64_t num_groups() const { return num_groups_; }

 private:
  int64_t channels_;
  int64_t num_groups_;
  std::vector<std::shared_ptr<nn::Conv1dLayer>> capture_;
  std::vector<std::shared_ptr<nn::Conv1dLayer>> denoise_;
};

}  // namespace gaia::core

#endif  // GAIA_CORE_TEL_H_
