#ifndef GAIA_CORE_EVALUATOR_H_
#define GAIA_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "core/forecast_model.h"
#include "data/dataset.h"
#include "ts/metrics.h"

namespace gaia::core {

/// \brief Metric report in the paper's layout: one {MAE, RMSE, MAPE} triple
/// per forecast month (Table I columns) plus an overall aggregate and the
/// Fig. 3 new-shop / old-shop split.
struct EvaluationReport {
  std::string method;
  std::vector<ts::ForecastMetrics> per_month;  ///< size = horizon T'
  ts::ForecastMetrics overall;
  ts::ForecastMetrics new_shop;  ///< shops with series length < threshold
  ts::ForecastMetrics old_shop;
};

/// \brief Computes Table-I style metrics over denormalized GMV predictions.
class Evaluator {
 public:
  /// Threshold on observed series length separating "New Shop Group" from
  /// "Old Shop Group" (paper §V-B3 uses T < 10).
  static constexpr int kNewShopThreshold = 10;

  /// Evaluates a trained neural model on the given nodes.
  static EvaluationReport Evaluate(ForecastModel* model,
                                   const data::ForecastDataset& dataset,
                                   const std::vector<int32_t>& nodes);

  /// Evaluates externally produced predictions; `predictions[i]` holds the
  /// T' GMV-unit forecasts for `nodes[i]`. This is the path for ARIMA and
  /// any non-autograd forecaster.
  static EvaluationReport FromPredictions(
      const std::string& method, const data::ForecastDataset& dataset,
      const std::vector<int32_t>& nodes,
      const std::vector<std::vector<double>>& predictions);
};

}  // namespace gaia::core

#endif  // GAIA_CORE_EVALUATOR_H_
