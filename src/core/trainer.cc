#include "core/trainer.h"
#include "util/arena.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "autograd/ops.h"
#include "obs/obs.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gaia::core {

namespace ag = autograd;

double Trainer::EvaluateMse(ForecastModel* model,
                            const data::ForecastDataset& dataset,
                            const std::vector<int32_t>& nodes) {
  util::ArenaScope arena_scope;
  GAIA_OBS_SPAN("trainer.eval");
  GAIA_CHECK(!nodes.empty());
  Rng rng(0);
  std::vector<Var> preds =
      model->PredictNodes(dataset, nodes, /*training=*/false, &rng);
  if (preds.size() != nodes.size()) {
    // Forward aborted by the ambient cancel token; the caller must check the
    // token before trusting this value.
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Per-sample squared-error partials run in parallel; the reduction over
  // samples stays serial in node order so the result is thread-count
  // invariant.
  std::vector<double> partial(preds.size(), 0.0);
  util::ParallelFor(static_cast<int64_t>(preds.size()), [&](int64_t i) {
    const Tensor& target = dataset.target(nodes[static_cast<size_t>(i)]);
    double sample_total = 0.0;
    for (int64_t h = 0; h < target.size(); ++h) {
      const double d = preds[static_cast<size_t>(i)]->value.data()[h] -
                       target.data()[h];
      sample_total += d * d;
    }
    partial[static_cast<size_t>(i)] = sample_total;
  });
  double total = 0.0;
  int64_t count = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    total += partial[i];
    count += dataset.target(nodes[i]).size();
  }
  return total / static_cast<double>(count);
}

bool Trainer::SampleTrainStepFaults() {
  // Fault sites "train.grad_exchange" (a lost gradient all-reduce) and
  // "train.optimizer_step" (a failed update) both resolve to skipping this
  // epoch's parameter update entirely — params and optimizer state stay at
  // the previous epoch — and training retries on the next epoch. Both sites
  // are sampled every epoch so count-bounded budgets stay exact.
  util::FaultInjector& faults = util::FaultInjector::Global();
  if (!faults.enabled()) return false;
  const bool grad_fault = faults.Sample("train.grad_exchange").has_value();
  const bool step_fault = faults.Sample("train.optimizer_step").has_value();
  return grad_fault || step_fault;
}

void Trainer::CountSkippedStep(TrainResult* result) {
  ++result->skipped_steps;
  static obs::Counter& skipped_metric =
      obs::MetricsRegistry::Global().GetCounter(
          "gaia_robust_train_steps_skipped_total",
          "Training epochs whose optimizer step was skipped by an "
          "injected fault");
  skipped_metric.Increment();
}

TrainResult Trainer::Fit(ForecastModel* model,
                         const data::ForecastDataset& dataset) const {
  return Fit(model, dataset, TrainHooks{});
}

TrainResult Trainer::Fit(ForecastModel* model,
                         const data::ForecastDataset& dataset,
                         const TrainHooks& hooks) const {
  util::ArenaScope arena_scope;
  GAIA_CHECK(model != nullptr);
  if (config_.num_threads > 0) {
    util::ThreadPool::SetGlobalThreads(config_.num_threads);
  }
  GAIA_OBS_SPAN("trainer.fit");
  // Fit's own deadline becomes a child of whatever token the caller
  // installed (e.g. the scheduler's retrain budget), so either can abort
  // the loop at the next safe point.
  std::shared_ptr<util::CancelToken> fit_token;
  const util::CancelToken* ambient = util::CancelToken::Current();
  if (config_.deadline_ms > 0.0) {
    fit_token = util::CancelToken::Child(ambient, config_.deadline_ms);
  }
  const util::CancelToken* token =
      fit_token != nullptr ? fit_token.get() : ambient;
  std::optional<util::CancelScope> cancel_scope;
  if (fit_token != nullptr) cancel_scope.emplace(fit_token.get());
  Stopwatch watch;
  Rng rng(config_.seed);
  std::vector<Var> params = model->Parameters();
  optim::Adam optimizer(params, config_.learning_rate);
  optim::EarlyStopping stopper(config_.patience);

  TrainResult result;
  std::vector<Tensor> best_params;
  auto snapshot = [&] {
    best_params.clear();
    best_params.reserve(params.size());
    for (const Var& p : params) best_params.push_back(p->value);
  };
  auto restore = [&] {
    if (best_params.empty()) return;
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_params[i];
    }
  };

  const std::vector<int32_t>& train_nodes = dataset.train_nodes();
  const std::vector<int32_t>& val_nodes = dataset.val_nodes();
  double best_val = 1e300;
  const optim::CosineDecayLr schedule(config_.learning_rate,
                                      config_.learning_rate * 0.1f);
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    if (token != nullptr && token->Cancelled()) {
      result.cancelled = true;
      util::NoteCancelObserved();
      break;
    }
    if (config_.cosine_lr_decay) {
      optimizer.set_lr(schedule.LearningRate(epoch, config_.max_epochs));
    }
    // Select the epoch's node batch.
    std::vector<int32_t> batch = train_nodes;
    if (config_.batch_nodes > 0 &&
        config_.batch_nodes < static_cast<int64_t>(batch.size())) {
      rng.Shuffle(&batch);
      batch.resize(static_cast<size_t>(config_.batch_nodes));
    }
    if (hooks.shard_batch) hooks.shard_batch(epoch, &batch);
    Stopwatch step_watch;
    float step_loss = 0.0f;
    bool aborted = false;
    {
      GAIA_OBS_SPAN("trainer.step");
      Var loss;
      {
        GAIA_OBS_SPAN("trainer.loss_forward");
        loss = model->TrainingLoss(dataset, batch, /*training=*/true, &rng);
      }
      // Never backpropagate a forward the token aborted (the loss would be
      // a placeholder), and never step on gradients from an aborted
      // backward: the check sits immediately before the only parameter
      // write, so a cancelled Fit always leaves a consistent end-of-epoch
      // parameter state.
      if (token != nullptr && token->Cancelled()) {
        aborted = true;
      } else {
        model->ZeroGrad();
        ag::Backward(loss);
        if (token != nullptr && token->Cancelled()) {
          aborted = true;
        } else {
          GAIA_OBS_SPAN("trainer.optimizer_step");
          const bool local_fault = SampleTrainStepFaults();
          bool skip_step = local_fault;
          if (hooks.exchange_gradients) {
            // Distributed mode: the hook all-reduces the shard gradients
            // and folds this worker's local fault into the collective
            // verdict, so every worker skips or steps in lockstep.
            skip_step = !hooks.exchange_gradients(
                epoch, loss->value.data()[0], local_fault);
          }
          if (skip_step) {
            CountSkippedStep(&result);
          } else {
            optim::ClipGradNorm(params, config_.grad_clip);
            optimizer.Step();
          }
        }
      }
      if (!aborted) step_loss = loss->value.data()[0];
    }
    if (aborted) {
      result.cancelled = true;
      util::NoteCancelObserved();
      break;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      registry
          .GetCounter("gaia_train_steps_total", "Optimizer steps completed")
          .Increment();
      registry
          .GetHistogram("gaia_train_step_seconds", {},
                        "Wall time of one training step (forward + backward "
                        "+ optimizer)")
          .Observe(step_watch.ElapsedSeconds());
      registry
          .GetGauge("gaia_train_last_train_loss",
                    "Training loss of the most recent step")
          .Set(static_cast<double>(step_loss));
    }
    result.train_loss_history.push_back(step_loss);
    result.final_train_loss = step_loss;
    ++result.epochs_run;

    const bool eval_now = (epoch + 1) % config_.eval_every == 0 ||
                          epoch + 1 == config_.max_epochs;
    if (eval_now && !val_nodes.empty()) {
      const double val_loss = EvaluateMse(model, dataset, val_nodes);
      if (token != nullptr && token->Cancelled()) {
        result.cancelled = true;
        util::NoteCancelObserved();
        break;
      }
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge("gaia_train_last_val_loss",
                      "Validation MSE of the most recent evaluation")
            .Set(val_loss);
      }
      result.val_loss_history.push_back(val_loss);
      if (config_.verbose) {
        GAIA_LOG(Info) << model->name() << " epoch " << (epoch + 1)
                       << " train=" << result.final_train_loss
                       << " val=" << val_loss;
      }
      if (val_loss < best_val) {
        best_val = val_loss;
        snapshot();
      }
      if (stopper.Update(val_loss)) break;
    }
  }
  restore();
  result.best_val_loss = best_val;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace gaia::core
