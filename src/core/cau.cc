#include "core/cau.h"

#include <cmath>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"

namespace gaia::core {

namespace ag = autograd;

ConvAttentionUnit::ConvAttentionUnit(int64_t channels, Rng* rng,
                                     bool dense_projections, bool causal,
                                     int64_t num_heads)
    : channels_(channels),
      causal_(causal),
      num_heads_(num_heads),
      head_dim_(channels / num_heads) {
  GAIA_CHECK_GE(num_heads_, 1);
  GAIA_CHECK_EQ(head_dim_ * num_heads_, channels_)
      << "channels must divide evenly into heads";
  const int64_t qk_width = dense_projections ? 1 : 3;
  // Q/K convs see local shape context (width 3, causal so features never
  // leak future values); V is a pointwise projection (width 1).
  conv_q_ = AddModule("q", std::make_shared<nn::Conv1dLayer>(
                               channels, channels, qk_width, PadMode::kCausal,
                               rng));
  conv_k_ = AddModule("k", std::make_shared<nn::Conv1dLayer>(
                               channels, channels, qk_width, PadMode::kCausal,
                               rng));
  conv_v_ = AddModule("v", std::make_shared<nn::Conv1dLayer>(
                               channels, channels, 1, PadMode::kCausal, rng));
}

ConvAttentionUnit::Projection ConvAttentionUnit::Project(const Var& h) const {
  GAIA_CHECK_EQ(h->value.ndim(), 2);
  GAIA_CHECK_EQ(h->value.dim(1), channels_);
  return Projection{conv_q_->Forward(h), conv_k_->Forward(h),
                    conv_v_->Forward(h)};
}

Var ConvAttentionUnit::Attend(const Var& q_u, const Var& k_v, const Var& v_v,
                              Tensor* attention_out) const {
  // Per-edge hot path: span only at detail level, counter at phase level.
  GAIA_OBS_SPAN_DETAIL("cau.attend");
  if (obs::Enabled()) {
    static obs::Counter& attends = obs::MetricsRegistry::Global().GetCounter(
        "gaia_cau_attend_total", "CAU attention evaluations (edges + self)");
    attends.Increment();
  }
  const int64_t t_len = q_u->value.dim(0);
  // Per-edge cancellation checkpoint: a fired token skips the T x T
  // attention; the zero result is discarded upstream.
  if (util::CurrentCancelled()) {
    return ag::Constant(Tensor({t_len, channels_}));
  }
  const Tensor mask = causal_ ? CausalMask(t_len) : Tensor();
  if (num_heads_ == 1) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(channels_));
    Var logits = ag::ScalarMul(ag::MatMul(q_u, ag::Transpose(k_v)), scale);
    if (causal_) logits = ag::Add(logits, ag::Constant(mask));
    Var attention = ag::SoftmaxRows(logits);
    if (attention_out != nullptr) *attention_out = attention->value;
    return ag::MatMul(attention, v_v);
  }
  // Multi-head extension: independent attention per channel slice; the
  // probe reports the head-averaged attention map.
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Var> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  Tensor averaged({t_len, t_len});
  for (int64_t h = 0; h < num_heads_; ++h) {
    Var qh = ag::SliceCols(q_u, h * head_dim_, head_dim_);
    Var kh = ag::SliceCols(k_v, h * head_dim_, head_dim_);
    Var vh = ag::SliceCols(v_v, h * head_dim_, head_dim_);
    Var logits = ag::ScalarMul(ag::MatMul(qh, ag::Transpose(kh)), scale);
    if (causal_) logits = ag::Add(logits, ag::Constant(mask));
    Var attention = ag::SoftmaxRows(logits);
    if (attention_out != nullptr) averaged.Accumulate(attention->value);
    heads.push_back(ag::MatMul(attention, vh));
  }
  if (attention_out != nullptr) {
    averaged.Scale(1.0f / static_cast<float>(num_heads_));
    *attention_out = averaged;
  }
  return ag::ConcatCols(heads);
}

Var ConvAttentionUnit::Forward(const Var& h_u, const Var& h_v,
                               Tensor* attention_out) const {
  Projection pu = Project(h_u);
  // Only K/V of the source node are needed; recompute lazily.
  Var k_v = h_v == h_u ? pu.k : Project(h_v).k;
  Var v_v = h_v == h_u ? pu.v : Project(h_v).v;
  return Attend(pu.q, k_v, v_v, attention_out);
}

}  // namespace gaia::core
