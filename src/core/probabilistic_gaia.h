#ifndef GAIA_CORE_PROBABILISTIC_GAIA_H_
#define GAIA_CORE_PROBABILISTIC_GAIA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ffl.h"
#include "core/forecast_model.h"
#include "core/ita_gcn.h"
#include "core/tel.h"
#include "nn/layers.h"
#include "util/status.h"

namespace gaia::core {

/// \brief Probabilistic extension of Gaia (beyond the paper, in the spirit
/// of its DeepAR citation): the same FFL -> TEL -> ITA-GCN encoder, but the
/// head emits a Gaussian per forecast month — a ReLU mean and a bounded
/// log-variance — trained with the negative log-likelihood instead of MSE.
///
/// PredictNodes returns the means (so the standard Evaluator applies);
/// PredictDistribution additionally exposes per-month standard deviations
/// for interval forecasts, in normalized units.
class ProbabilisticGaia : public ForecastModel {
 public:
  struct Config {
    int64_t channels = 16;
    int64_t tel_groups = 4;
    int64_t num_layers = 2;
    /// log-variance is clamped to [-max_logvar, max_logvar] via tanh.
    float max_logvar = 4.0f;
    uint64_t seed = 2;
  };

  static Result<std::unique_ptr<ProbabilisticGaia>> Create(
      const Config& config, int64_t t_len, int64_t horizon,
      int64_t d_temporal, int64_t d_static);

  struct Distribution {
    Tensor mean;    ///< [T'] normalized means
    Tensor stddev;  ///< [T'] normalized standard deviations
  };

  // ForecastModel:
  std::vector<Var> PredictNodes(const data::ForecastDataset& dataset,
                                const std::vector<int32_t>& nodes,
                                bool training, Rng* rng) override;
  std::string name() const override { return "Gaia (probabilistic)"; }
  Var TrainingLoss(const data::ForecastDataset& dataset,
                   const std::vector<int32_t>& nodes, bool training,
                   Rng* rng) override;

  /// Full predictive distribution for the requested nodes.
  std::vector<Distribution> PredictDistribution(
      const data::ForecastDataset& dataset,
      const std::vector<int32_t>& nodes);

 private:
  ProbabilisticGaia(const Config& config, int64_t t_len, int64_t horizon,
                    int64_t d_temporal, int64_t d_static);

  struct HeadOutput {
    Var mean;    ///< [T']
    Var logvar;  ///< [T']
  };

  /// Encoder + two-branch head for every node of the full graph.
  std::vector<HeadOutput> ForwardAll(const data::ForecastDataset& dataset) const;

  Config config_;
  int64_t t_len_;
  int64_t horizon_;
  std::shared_ptr<FeatureFusionLayer> ffl_;
  std::shared_ptr<TemporalEmbeddingLayer> tel_;
  std::vector<std::shared_ptr<ItaGcnLayer>> layers_;
  std::shared_ptr<nn::Conv1dLayer> mean_conv_;
  Var mean_weight_;
  Var mean_bias_;
  std::shared_ptr<nn::Conv1dLayer> var_conv_;
  Var var_weight_;
  Var var_bias_;
};

/// Gaussian negative log-likelihood of `target` under N(mean, exp(logvar)),
/// averaged over elements (constant terms dropped). Exposed for tests.
autograd::Var GaussianNll(const autograd::Var& mean,
                          const autograd::Var& logvar, const Tensor& target);

/// \brief Conformally calibrated per-shop uncertainty widths, ready for the
/// serving tier: ModelServer::EnableQuantileBands turns every answer's point
/// forecast into p10/p50/p90 bands from this table.
///
/// `sigma[shop][h]` is ProbabilisticGaia's predictive stddev in normalized
/// units; `scale` is the split-conformal multiplier chosen so that the
/// central band `mean ± scale * sigma` covered a `coverage` fraction of the
/// held-out calibration targets. The table is a pure value: cheap to copy,
/// safe to share across generations and shards.
struct QuantileBandTable {
  /// Central coverage the bands were calibrated to (p90 - p10 mass).
  double coverage = 0.8;
  /// Conformal half-width multiplier on sigma.
  double scale = 1.0;
  /// Extra width multiplier for degraded/fallback answers: a Holt-Winters
  /// answer carries the model's uncertainty *plus* the uncertainty of not
  /// being the model, so its bands are honestly wider.
  double degraded_inflation = 1.5;
  /// [num_nodes][horizon] predictive stddevs, normalized units.
  std::vector<std::vector<double>> sigma;

  bool empty() const { return sigma.empty(); }
};

/// Split-conformal calibration (Kozodoi et al.-style probabilistic demand
/// forecasting): runs the probabilistic model over the whole graph, scores
/// the calibration nodes' absolute residuals in sigma units, and picks the
/// ceil((n+1)*coverage)-th order statistic as the band multiplier — a
/// distribution-free finite-sample coverage guarantee on exchangeable data.
/// The calibration nodes must be disjoint from training (val split).
Result<QuantileBandTable> CalibrateQuantileBands(
    ProbabilisticGaia* model, const data::ForecastDataset& dataset,
    const std::vector<int32_t>& calibration_nodes, double coverage = 0.8);

}  // namespace gaia::core

#endif  // GAIA_CORE_PROBABILISTIC_GAIA_H_
