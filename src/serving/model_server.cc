#include "serving/model_server.h"

#include "graph/eseller_graph.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace gaia::serving {

ModelServer::ModelServer(std::shared_ptr<core::GaiaModel> model,
                         std::shared_ptr<const data::ForecastDataset> dataset,
                         const ServerConfig& config)
    : model_(std::move(model)),
      dataset_(std::move(dataset)),
      config_(config),
      rng_(config.seed) {
  GAIA_CHECK(model_ != nullptr);
  GAIA_CHECK(dataset_ != nullptr);
}

ModelServer::Prediction ModelServer::Predict(int32_t shop) {
  Stopwatch watch;
  graph::EgoSubgraph ego =
      graph::ExtractEgoSubgraph(dataset_->graph(), shop, config_.ego_hops,
                                config_.max_fanout, &rng_);
  Tensor normalized = model_->PredictEgo(*dataset_, ego);
  Prediction prediction;
  prediction.shop = shop;
  prediction.gmv.reserve(static_cast<size_t>(normalized.size()));
  for (int64_t h = 0; h < normalized.size(); ++h) {
    prediction.gmv.push_back(
        dataset_->Denormalize(shop, normalized.data()[h]));
  }
  prediction.latency_ms = watch.ElapsedMillis();
  prediction.ego_nodes = ego.num_nodes();
  ++total_requests_;
  total_latency_ms_ += prediction.latency_ms;
  return prediction;
}

std::vector<ModelServer::Prediction> ModelServer::PredictBatch(
    const std::vector<int32_t>& shops) {
  std::vector<Prediction> out;
  out.reserve(shops.size());
  for (int32_t shop : shops) out.push_back(Predict(shop));
  return out;
}

Status ModelServer::LoadCheckpoint(const std::string& path) {
  return model_->Load(path);
}

Result<std::shared_ptr<core::GaiaModel>> OfflineTrainingPipeline::Run(
    const data::ForecastDataset& dataset, RunReport* report) const {
  auto created = core::GaiaModel::Create(
      config_.model, dataset.history_len(), dataset.horizon(),
      dataset.temporal_dim(), dataset.static_dim());
  if (!created.ok()) return created.status();
  std::shared_ptr<core::GaiaModel> model = std::move(created).value();
  core::TrainResult train_result =
      core::Trainer(config_.train).Fit(model.get(), dataset);
  if (!config_.checkpoint_path.empty()) {
    GAIA_RETURN_NOT_OK(model->Save(config_.checkpoint_path));
  }
  if (report != nullptr) {
    report->train = train_result;
    report->checkpoint_path = config_.checkpoint_path;
  }
  return model;
}

}  // namespace gaia::serving
